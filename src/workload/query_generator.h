#ifndef CHUNKCACHE_WORKLOAD_QUERY_GENERATOR_H_
#define CHUNKCACHE_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "backend/star_join_query.h"
#include "common/random.h"
#include "common/status.h"
#include "schema/star_schema.h"

namespace chunkcache::workload {

/// Knobs of the paper's query generator (Section 6.1.2). Locality enters in
/// two ways:
///  - Designated hot region: `hot_access_prob` of the randomly generated
///    queries are constrained to a sub-cube covering `hot_fraction` of the
///    multidimensional space (Q60/Q80/Q100 set this to .6/.8/1.0 with a
///    20 % hot region).
///  - Proximity: with probability `proximity_prob` the next query reuses
///    the previous query's aggregation level and shifts its selection to
///    adjacent members, modeling hierarchical locality (Table 2: Random
///    0/1, EQPR .5/.5, Proximity .8/.2).
struct WorkloadOptions {
  double hot_fraction = 0.2;
  double hot_access_prob = 0.8;
  double proximity_prob = 0.5;
  uint64_t seed = 1;

  /// Selected fraction of each grouped dimension's level range, drawn
  /// uniformly from [min_range_fraction, max_range_fraction].
  double min_range_fraction = 0.05;
  double max_range_fraction = 0.4;

  /// Probability that a dimension is aggregated away (level 0) when
  /// drawing a random aggregation level.
  double all_level_prob = 0.25;

  /// Zipfian multi-region locality (0 = off, the classic single hot
  /// prefix). When > 0, a "hot" query first draws one of `zipf_regions`
  /// fixed regions with Zipf(zipf_s) popularity — region k is a
  /// hot-fraction-sized window per dimension whose position is hashed
  /// from (k, dim), stable for the whole stream — and then selects inside
  /// that window. Region 0 is hit most, the tail rarely: the skewed reuse
  /// distribution replacement policies differ on.
  uint32_t zipf_regions = 0;
  double zipf_s = 0.9;
};

/// The three named streams of Table 2, with the hot-region setting of the
/// Figure 9 experiments (Q80).
WorkloadOptions RandomStream(uint64_t seed);
WorkloadOptions EqprStream(uint64_t seed);
WorkloadOptions ProximityStream(uint64_t seed);

/// Replacement-lab mixes (bench_replacement). Zipfian: 16 fixed regions
/// with Zipf(0.9) popularity and moderate proximity — skewed reuse where
/// recency/frequency policies separate. Scan-heavy: wide selections
/// (50–90 % of each level) with almost no locality — the flood that
/// punishes policies without scan resistance.
WorkloadOptions ZipfianStream(uint64_t seed);
WorkloadOptions ScanHeavyStream(uint64_t seed);

/// Generates a stream of star-join queries over `schema` with tunable
/// locality. Deterministic for a fixed seed.
class QueryGenerator {
 public:
  QueryGenerator(const schema::StarSchema* schema, WorkloadOptions options);

  /// The next query in the stream.
  backend::StarJoinQuery Next();

  /// Whether the most recent query was constrained to the hot region
  /// (directly or by proximity inheritance) — used by tests to validate
  /// the stream's composition.
  bool last_was_hot() const { return last_hot_; }
  bool last_was_proximity() const { return last_proximity_; }

  const WorkloadOptions& options() const { return options_; }

 private:
  /// Largest ordinal at (dim, level) whose base range lies inside the hot
  /// region (inclusive). The hot region is the ordinal prefix of every
  /// dimension sized so the sub-cube covers ~hot_fraction of the space.
  uint32_t HotMaxOrdinal(uint32_t dim, uint32_t level) const;

  /// Draws a Zipf-distributed region index in [0, zipf_regions) via
  /// inverse CDF over the precomputed cumulative weights.
  uint32_t ZipfRegion();

  /// The [begin, end] ordinal window of zipf region `k` on (dim, level):
  /// hot-fraction-sized, anchored at a position hashed from (k, dim,
  /// level) so every revisit of region k lands on the same members.
  void RegionWindow(uint32_t k, uint32_t dim, uint32_t level,
                    uint32_t* begin, uint32_t* end) const;

  backend::StarJoinQuery RandomQuery(bool hot);
  backend::StarJoinQuery ProximityQuery();

  const schema::StarSchema* schema_;
  WorkloadOptions options_;
  Random rng_;
  // Per-dimension fraction of base values inside the hot region
  // (hot_fraction ^ (1/num_dims)).
  double per_dim_hot_fraction_;
  // Cumulative Zipf weights (empty when zipf_regions == 0).
  std::vector<double> zipf_cum_;
  std::optional<backend::StarJoinQuery> last_query_;
  bool last_hot_ = false;
  bool last_proximity_ = false;
};

}  // namespace chunkcache::workload

#endif  // CHUNKCACHE_WORKLOAD_QUERY_GENERATOR_H_
