#include "workload/session_generator.h"

#include <algorithm>

#include "common/logging.h"

namespace chunkcache::workload {

using backend::StarJoinQuery;
using schema::OrdinalRange;

SessionGenerator::SessionGenerator(const schema::StarSchema* schema,
                                   SessionOptions options)
    : schema_(schema), options_(options), rng_(options.seed) {
  CHUNKCACHE_CHECK(schema != nullptr);
  CHUNKCACHE_CHECK(options_.min_width >= 1);
  CHUNKCACHE_CHECK(options_.max_width >= options_.min_width);
}

StarJoinQuery SessionGenerator::MakeCoarse() {
  StarJoinQuery q;
  q.group_by.num_dims = schema_->num_dims();
  for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    const uint32_t level = std::min(options_.coarse_level, h.depth());
    q.group_by.levels[d] = static_cast<uint8_t>(level);
    const uint32_t card = h.LevelCardinality(level);
    uint32_t width = options_.min_width +
                     static_cast<uint32_t>(rng_.Uniform(
                         options_.max_width - options_.min_width + 1));
    width = std::min(width, card);
    const uint32_t begin =
        static_cast<uint32_t>(rng_.Uniform(card - width + 1));
    q.selection[d] = OrdinalRange{begin, begin + width - 1};
  }
  return q;
}

StarJoinQuery SessionGenerator::Refine(const StarJoinQuery& coarse) const {
  StarJoinQuery fine;
  fine.group_by.num_dims = schema_->num_dims();
  for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    const uint32_t coarse_level = coarse.group_by.levels[d];
    const uint32_t fine_level = std::min(coarse_level + 1, h.depth());
    fine.group_by.levels[d] = static_cast<uint8_t>(fine_level);
    if (fine_level == coarse_level) {
      fine.selection[d] = coarse.selection[d];
    } else {
      fine.selection[d] = OrdinalRange{
          h.ChildRange(coarse_level, coarse.selection[d].begin).begin,
          h.ChildRange(coarse_level, coarse.selection[d].end).end};
    }
  }
  return fine;
}

StarJoinQuery SessionGenerator::Next() {
  if (pending_) {
    StarJoinQuery q = *pending_;
    pending_.reset();
    last_started_ = false;
    return q;
  }
  const StarJoinQuery coarse = MakeCoarse();
  const StarJoinQuery fine = Refine(coarse);
  last_started_ = true;
  if (options_.drill_down) {
    pending_ = fine;
    return coarse;
  }
  pending_ = coarse;
  return fine;
}

uint64_t HashQuery(const StarJoinQuery& q, uint64_t seed) {
  uint64_t acc = seed;
  auto mix = [&acc](uint64_t v) { acc = (acc ^ v) * 0x100000001b3ULL; };
  mix(q.group_by.num_dims);
  for (uint32_t d = 0; d < q.group_by.num_dims; ++d) {
    mix(q.group_by.levels[d]);
    mix(q.selection[d].begin);
    mix(q.selection[d].end);
  }
  mix(q.non_group_by.size());
  for (const auto& pred : q.non_group_by) {
    mix(pred.dim);
    mix(pred.level);
    mix(pred.range.begin);
    mix(pred.range.end);
  }
  return acc;
}

uint64_t SessionStreamHash(const schema::StarSchema& schema,
                           const SessionOptions& options, size_t n) {
  SessionGenerator gen(&schema, options);
  uint64_t acc = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) acc = HashQuery(gen.Next(), acc);
  return acc;
}

}  // namespace chunkcache::workload
