#include "workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace chunkcache::workload {

using backend::StarJoinQuery;
using chunks::GroupBySpec;
using schema::OrdinalRange;

WorkloadOptions RandomStream(uint64_t seed) {
  WorkloadOptions o;
  o.proximity_prob = 0.0;
  o.seed = seed;
  return o;
}

WorkloadOptions EqprStream(uint64_t seed) {
  WorkloadOptions o;
  o.proximity_prob = 0.5;
  o.seed = seed;
  return o;
}

WorkloadOptions ProximityStream(uint64_t seed) {
  WorkloadOptions o;
  o.proximity_prob = 0.8;
  o.seed = seed;
  return o;
}

WorkloadOptions ZipfianStream(uint64_t seed) {
  WorkloadOptions o;
  o.hot_access_prob = 0.9;
  o.proximity_prob = 0.3;
  o.zipf_regions = 16;
  o.zipf_s = 0.9;
  o.seed = seed;
  return o;
}

WorkloadOptions ScanHeavyStream(uint64_t seed) {
  WorkloadOptions o;
  o.hot_access_prob = 0.1;   // almost everything roams the full space
  o.proximity_prob = 0.0;
  o.min_range_fraction = 0.5;
  o.max_range_fraction = 0.9;
  o.seed = seed;
  return o;
}

QueryGenerator::QueryGenerator(const schema::StarSchema* schema,
                               WorkloadOptions options)
    : schema_(schema), options_(options), rng_(options.seed) {
  CHUNKCACHE_CHECK(schema != nullptr);
  per_dim_hot_fraction_ =
      std::pow(options_.hot_fraction, 1.0 / schema_->num_dims());
  if (options_.zipf_regions > 0) {
    zipf_cum_.reserve(options_.zipf_regions);
    double total = 0;
    for (uint32_t k = 0; k < options_.zipf_regions; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), options_.zipf_s);
      zipf_cum_.push_back(total);
    }
    for (double& c : zipf_cum_) c /= total;
  }
}

uint32_t QueryGenerator::ZipfRegion() {
  const double u = rng_.NextDouble();
  const auto it = std::upper_bound(zipf_cum_.begin(), zipf_cum_.end(), u);
  const size_t k = static_cast<size_t>(it - zipf_cum_.begin());
  return static_cast<uint32_t>(std::min(k, zipf_cum_.size() - 1));
}

void QueryGenerator::RegionWindow(uint32_t k, uint32_t dim, uint32_t level,
                                  uint32_t* begin, uint32_t* end) const {
  const auto& h = schema_->dimension(dim).hierarchy;
  const uint32_t card = h.LevelCardinality(level);
  const uint32_t size = std::min<uint32_t>(
      card, std::max<uint32_t>(
                1, static_cast<uint32_t>(
                       std::lround(per_dim_hot_fraction_ * card))));
  // splitmix64-style mix of (k, dim, level): the anchor is a pure function
  // of the region identity, so region k always covers the same members.
  uint64_t x = (static_cast<uint64_t>(k) << 34) ^
               (static_cast<uint64_t>(dim) << 17) ^ level;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  *begin = static_cast<uint32_t>(x % (card - size + 1));
  *end = *begin + size - 1;
}

uint32_t QueryGenerator::HotMaxOrdinal(uint32_t dim, uint32_t level) const {
  const auto& h = schema_->dimension(dim).hierarchy;
  if (level == 0) return 0;
  const uint32_t base_card = h.LevelCardinality(h.depth());
  const uint32_t hot_base_end = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(per_dim_hot_fraction_ *
                                           base_card))) - 1;
  // Largest ordinal at `level` whose base range ends within the hot prefix.
  uint32_t best = 0;
  for (uint32_t v = 0; v < h.LevelCardinality(level); ++v) {
    if (h.BaseRange(level, v).end <= hot_base_end) {
      best = v;
    } else {
      break;  // base ranges are ordered; later members only extend further
    }
  }
  return best;
}

StarJoinQuery QueryGenerator::RandomQuery(bool hot) {
  StarJoinQuery q;
  q.group_by.num_dims = schema_->num_dims();
  bool any_grouped = false;
  for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    uint32_t level;
    if (rng_.Bernoulli(options_.all_level_prob)) {
      level = 0;
    } else {
      level = 1 + static_cast<uint32_t>(rng_.Uniform(h.depth()));
      any_grouped = true;
    }
    q.group_by.levels[d] = static_cast<uint8_t>(level);
  }
  // Avoid the degenerate grand-total query dominating: if every dimension
  // came out at ALL, force one to a real level.
  if (!any_grouped) {
    const uint32_t d = static_cast<uint32_t>(rng_.Uniform(schema_->num_dims()));
    q.group_by.levels[d] = 1;
  }
  // Zipfian mode: a hot query draws one popularity-skewed region for the
  // whole query, so its per-dimension windows are correlated (a real
  // recurring report, not independent per-axis noise).
  const bool zipf = hot && options_.zipf_regions > 0;
  const uint32_t zipf_k = zipf ? ZipfRegion() : 0;
  for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
    const uint32_t level = q.group_by.levels[d];
    if (level == 0) {
      q.selection[d] = OrdinalRange{0, 0};
      continue;
    }
    const auto& h = schema_->dimension(d).hierarchy;
    uint32_t region_begin = 0;
    uint32_t region_end = h.LevelCardinality(level) - 1;
    if (zipf) {
      RegionWindow(zipf_k, d, level, &region_begin, &region_end);
    } else if (hot) {
      region_end = HotMaxOrdinal(d, level);
    }
    const uint32_t region_size = region_end - region_begin + 1;
    const double frac = options_.min_range_fraction +
                        rng_.NextDouble() * (options_.max_range_fraction -
                                             options_.min_range_fraction);
    uint32_t width = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               std::lround(frac * h.LevelCardinality(level))));
    width = std::min(width, region_size);
    const uint32_t start =
        region_begin +
        static_cast<uint32_t>(rng_.Uniform(region_size - width + 1));
    q.selection[d] = OrdinalRange{start, start + width - 1};
  }
  return q;
}

StarJoinQuery QueryGenerator::ProximityQuery() {
  CHUNKCACHE_DCHECK(last_query_.has_value());
  StarJoinQuery q = *last_query_;
  // Shift the selection of one randomly chosen grouped dimension to the
  // adjacent members on its level ("same level of aggregation but the
  // selection predicate access adjacent members").
  std::vector<uint32_t> grouped;
  for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
    if (q.group_by.levels[d] > 0) grouped.push_back(d);
  }
  if (grouped.empty()) return q;  // grand total: nothing to shift
  const uint32_t d = grouped[rng_.Uniform(grouped.size())];
  const uint32_t level = q.group_by.levels[d];
  const auto& h = schema_->dimension(d).hierarchy;
  // With zipf regions the parent's window is anywhere in the space, so
  // clamp only to the level range; the shift stays adjacent regardless.
  const uint32_t region_end =
      (last_hot_ && options_.zipf_regions == 0)
          ? HotMaxOrdinal(d, level)
          : h.LevelCardinality(level) - 1;
  const uint32_t width = q.selection[d].size();
  const bool forward = rng_.Bernoulli(0.5);
  int64_t begin = static_cast<int64_t>(q.selection[d].begin) +
                  (forward ? static_cast<int64_t>(width)
                           : -static_cast<int64_t>(width));
  // Clamp into the (possibly hot) region so proximity inherits locality.
  const int64_t max_begin =
      static_cast<int64_t>(region_end) - static_cast<int64_t>(width) + 1;
  begin = std::clamp<int64_t>(begin, 0, std::max<int64_t>(0, max_begin));
  q.selection[d] = OrdinalRange{static_cast<uint32_t>(begin),
                                static_cast<uint32_t>(begin) + width - 1};
  return q;
}

StarJoinQuery QueryGenerator::Next() {
  const bool proximity =
      last_query_.has_value() && rng_.Bernoulli(options_.proximity_prob);
  StarJoinQuery q;
  if (proximity) {
    q = ProximityQuery();
    // last_hot_ unchanged: the proximity query stays in its parent region.
    last_proximity_ = true;
  } else {
    const bool hot = rng_.Bernoulli(options_.hot_access_prob);
    q = RandomQuery(hot);
    last_hot_ = hot;
    last_proximity_ = false;
  }
  last_query_ = q;
  return q;
}

}  // namespace chunkcache::workload
