#ifndef CHUNKCACHE_WORKLOAD_SESSION_GENERATOR_H_
#define CHUNKCACHE_WORKLOAD_SESSION_GENERATOR_H_

#include <cstdint>
#include <optional>

#include "backend/star_join_query.h"
#include "common/random.h"
#include "schema/star_schema.h"

namespace chunkcache::workload {

/// Models the analyst sessions of the paper's Section 2.2 (hierarchical
/// locality): the stream alternates coarse and fine views of one randomly
/// chosen region — either coarse-then-drill-down or fine-then-roll-up —
/// then moves to a sibling region. This is the workload shape that
/// motivates the §7 extensions (drill-down prefetch, in-cache
/// aggregation); the plain hot-region/proximity streams of
/// QueryGenerator model Table 2 instead.
struct SessionOptions {
  /// Coarse query first (drill-down session) or fine first (roll-up).
  bool drill_down = true;
  /// Hierarchy level of the coarse query on every dimension; the fine
  /// query is one level deeper (capped at each dimension's depth).
  uint32_t coarse_level = 1;
  /// Members selected per dimension at the coarse level: min..max width.
  uint32_t min_width = 2;
  uint32_t max_width = 4;
  uint64_t seed = 1;
};

/// Deterministic generator of drill-down / roll-up session pairs.
///
/// Determinism contract (the serving harness leans on this): the stream is
/// a pure function of (schema, options) — the generator owns its Random,
/// touches no global or time-dependent state, and is oblivious to how many
/// threads consume the queries downstream. SessionStreamHash pins the
/// contract with a golden hash in workload_test.
class SessionGenerator {
 public:
  SessionGenerator(const schema::StarSchema* schema, SessionOptions options);

  /// Next query: alternately the session's first view and its paired
  /// second view of the same region.
  backend::StarJoinQuery Next();

  /// True when the *previous* Next() started a new region.
  bool last_started_session() const { return last_started_; }

 private:
  backend::StarJoinQuery MakeCoarse();
  backend::StarJoinQuery Refine(const backend::StarJoinQuery& coarse) const;

  const schema::StarSchema* schema_;
  SessionOptions options_;
  Random rng_;
  std::optional<backend::StarJoinQuery> pending_;
  bool last_started_ = false;
};

/// Order-sensitive FNV-1a over one query's normalized fields; chain over a
/// stream by passing the previous hash as `seed`.
uint64_t HashQuery(const backend::StarJoinQuery& q, uint64_t seed);

/// Hash of the first `n` queries a fresh SessionGenerator(schema, options)
/// emits. Two runs (any machine, any consumer thread count) agree on this
/// value iff they saw the identical query stream — the regression tests
/// compare it against a golden constant, and bench_serving records it so a
/// latency difference can never be explained away by workload drift.
uint64_t SessionStreamHash(const schema::StarSchema& schema,
                           const SessionOptions& options, size_t n);

}  // namespace chunkcache::workload

#endif  // CHUNKCACHE_WORKLOAD_SESSION_GENERATOR_H_
