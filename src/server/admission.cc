#include "server/admission.h"

namespace chunkcache::server {

const char* AdmitDecisionName(AdmitDecision d) {
  switch (d) {
    case AdmitDecision::kAdmitted:
      return "admitted";
    case AdmitDecision::kShedRate:
      return "shed-rate";
    case AdmitDecision::kShedTenantInflight:
      return "shed-tenant-inflight";
    case AdmitDecision::kShedGlobalInflight:
      return "shed-global-inflight";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics),
      admitted_(metrics->GetCounter("server.admission.admitted")),
      shed_rate_(metrics->GetCounter("server.admission.shed_rate")),
      shed_tenant_(metrics->GetCounter("server.admission.shed_tenant_inflight")),
      shed_global_(metrics->GetCounter("server.admission.shed_global_inflight")),
      inflight_gauge_(metrics->GetGauge("server.admission.inflight")),
      inflight_peak_(metrics->GetGauge("server.admission.inflight_peak")) {}

AdmissionController::Tenant& AdmissionController::GetTenantLocked(
    uint32_t tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it != tenants_.end()) return *it->second;
  auto quota_it = options_.tenant_quotas.find(tenant_id);
  const TenantQuota& q = quota_it != options_.tenant_quotas.end()
                             ? quota_it->second
                             : options_.default_quota;
  auto tenant = std::make_unique<Tenant>(q);
  const std::string base = "server.tenant." + std::to_string(tenant_id);
  tenant->admitted = metrics_->GetCounter(base + ".admitted");
  tenant->shed = metrics_->GetCounter(base + ".shed");
  return *tenants_.emplace(tenant_id, std::move(tenant)).first->second;
}

AdmitDecision AdmissionController::TryAdmit(uint32_t tenant_id,
                                            uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = GetTenantLocked(tenant_id);
  if (options_.global_max_inflight != 0 &&
      global_inflight_ >= options_.global_max_inflight) {
    shed_global_->Increment();
    t.shed->Increment();
    return AdmitDecision::kShedGlobalInflight;
  }
  if (t.quota.max_inflight != 0 && t.inflight >= t.quota.max_inflight) {
    shed_tenant_->Increment();
    t.shed->Increment();
    return AdmitDecision::kShedTenantInflight;
  }
  if (!t.bucket.TryAcquire(now_ns)) {
    shed_rate_->Increment();
    t.shed->Increment();
    return AdmitDecision::kShedRate;
  }
  ++t.inflight;
  ++global_inflight_;
  admitted_->Increment();
  t.admitted->Increment();
  inflight_gauge_->Set(global_inflight_);
  inflight_peak_->SetMax(global_inflight_);
  return AdmitDecision::kAdmitted;
}

void AdmissionController::Release(uint32_t tenant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = GetTenantLocked(tenant_id);
  if (t.inflight > 0) --t.inflight;
  if (global_inflight_ > 0) --global_inflight_;
  inflight_gauge_->Set(global_inflight_);
}

uint32_t AdmissionController::global_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_inflight_;
}

}  // namespace chunkcache::server
