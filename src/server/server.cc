#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "server/wire.h"

namespace chunkcache::server {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// How long a worker keeps retrying a full socket buffer before giving the
/// client up for dead. Streaming responses block the worker, never the I/O
/// thread, so a stalled reader costs one worker slot for at most this long.
constexpr int kWriteStallBudgetMs = 5000;

}  // namespace

struct ChunkServer::Connection {
  Connection(int fd_in, uint32_t max_payload)
      : fd(fd_in), reader(max_payload) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  FrameReader reader;  ///< I/O thread only.
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  CancellationSource cancel;
};

ChunkServer::ChunkServer(core::MiddleTier* tier, ServerOptions options)
    : tier_(tier), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  admission_ =
      std::make_unique<AdmissionController>(options_.admission, metrics_);
  connections_opened_ = metrics_->GetCounter("server.connections.opened");
  connections_closed_ = metrics_->GetCounter("server.connections.closed");
  connections_open_ = metrics_->GetGauge("server.connections.open");
  frames_received_ = metrics_->GetCounter("server.frames.received");
  frames_bad_ = metrics_->GetCounter("server.frames.bad");
  bytes_read_ = metrics_->GetCounter("server.bytes.read");
  bytes_written_ = metrics_->GetCounter("server.bytes.written");
  queries_offered_ = metrics_->GetCounter("server.queries.offered");
  queries_ok_ = metrics_->GetCounter("server.queries.ok");
  queries_shed_ = metrics_->GetCounter("server.queries.shed");
  queries_error_ = metrics_->GetCounter("server.queries.errors");
  queries_deadline_ = metrics_->GetCounter("server.queries.deadline_exceeded");
  result_frames_ = metrics_->GetCounter("server.result.frames");
  result_rows_ = metrics_->GetCounter("server.result.rows");
  send_failures_ = metrics_->GetCounter("server.send_failures");
  query_latency_ns_ = metrics_->GetHistogram("server.query.latency_ns");
}

ChunkServer::~ChunkServer() { Stop(); }

Status ChunkServer::Start() {
  if (running_.load()) return Status::AlreadyExists("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  pool_ = std::make_unique<ThreadPool>(
      options_.num_workers == 0 ? 1 : options_.num_workers);
  stopping_.store(false);
  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void ChunkServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  stopping_.store(true);
  // Wake the poll loop; the pipe is non-blocking, a full pipe is fine.
  const char b = 'x';
  (void)!::write(wake_pipe_[1], &b, 1);
  io_thread_.join();
  // Every admitted query either already finished or sees its connection's
  // cancellation (IoLoop cancelled them all on the way out).
  inflight_.Wait();
  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void ChunkServer::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> order;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      pfds.push_back(pollfd{fd, POLLIN, 0});
      order.push_back(conn);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (rc <= 0) continue;
    if (pfds[0].revents != 0) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) AcceptConnections();
    for (size_t i = 0; i < order.size(); ++i) {
      const short ev = pfds[i + 2].revents;
      if (ev & (POLLIN | POLLHUP | POLLERR)) ReadConnection(order[i]);
    }
  }
  // Shutdown: cancel and close every connection so workers fail fast.
  for (auto& [fd, conn] : conns_) {
    conn->cancel.Cancel();
    conn->closed.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
    connections_closed_->Increment();
  }
  conns_.clear();
  connections_open_->Set(0);
}

void ChunkServer::AcceptConnections() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the poll loop will retry
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conns_.emplace(fd,
                   std::make_shared<Connection>(fd, options_.max_payload_bytes));
    connections_opened_->Increment();
    connections_open_->Set(static_cast<int64_t>(conns_.size()));
  }
}

void ChunkServer::ReadConnection(const std::shared_ptr<Connection>& conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_read_->Add(static_cast<uint64_t>(n));
      conn->reader.Append(buf, static_cast<size_t>(n));
      for (;;) {
        auto next = conn->reader.Next();
        if (!next.ok()) {
          // Malformed stream: answer with one best-effort error frame,
          // then close — frame boundaries are untrustworthy from here on.
          frames_bad_->Increment();
          SendError(conn, FrameHeader{}, next.status(), 0);
          CloseConnection(conn);
          return;
        }
        if (!next->has_value()) break;
        frames_received_->Increment();
        HandleFrame(conn, std::move(**next));
        if (conn->closed.load(std::memory_order_acquire)) return;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF
      CloseConnection(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn);
    return;
  }
}

void ChunkServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  const FrameHeader& h = frame.header;
  switch (h.type) {
    case FrameType::kPing: {
      FrameHeader pong = h;
      pong.type = FrameType::kPong;
      pong.flags = kFlagLast;
      WriteFrame(conn, pong, {});
      return;
    }
    case FrameType::kMetricsRequest: {
      const std::string json = metrics_->ExportJson();
      FrameHeader dump = h;
      dump.type = FrameType::kMetricsDump;
      dump.flags = kFlagLast;
      std::vector<uint8_t> payload(json.begin(), json.end());
      WriteFrame(conn, dump, payload);
      return;
    }
    case FrameType::kQuery: {
      queries_offered_->Increment();
      metrics_
          ->GetCounter("server.tenant." + std::to_string(h.tenant_id) +
                       ".offered")
          ->Increment();
      auto query = wire::DecodeQuery(frame.payload.data(),
                                     frame.payload.size());
      if (!query.ok()) {
        queries_error_->Increment();
        SendError(conn, h, query.status(), 0);
        return;
      }
      const uint64_t now = NowNs();
      const AdmitDecision decision = admission_->TryAdmit(h.tenant_id, now);
      if (decision != AdmitDecision::kAdmitted) {
        queries_shed_->Increment();
        SendError(conn, h,
                  Status::ResourceExhausted(std::string("query shed: ") +
                                            AdmitDecisionName(decision)),
                  kFlagShed);
        return;
      }
      inflight_.Add();
      pool_->Submit([this, conn, h, q = std::move(*query), now]() {
        ExecuteQuery(conn, h, q, now);
        inflight_.Done();
      });
      return;
    }
    default:
      // Well-formed frame of a type the server does not consume: report
      // and keep the connection (the client may just be confused).
      SendError(conn, h,
                Status::InvalidArgument(
                    "unexpected frame type " +
                    std::to_string(static_cast<int>(h.type))),
                0);
      return;
  }
}

void ChunkServer::ExecuteQuery(const std::shared_ptr<Connection>& conn,
                               FrameHeader req,
                               const backend::StarJoinQuery& query,
                               uint64_t admit_ns) {
  core::QueryStats stats;
  ExecControl ctrl;
  uint64_t deadline_ms = req.deadline_ms;
  if (options_.max_deadline_ms != 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  if (deadline_ms != 0) ctrl.deadline = Deadline::AfterMs(deadline_ms);
  ctrl.cancel = conn->cancel.token();

  auto rows = tier_->ExecuteWithControl(query, &stats, ctrl);

  admission_->Release(req.tenant_id);
  query_latency_ns_->Record(NowNs() - admit_ns);
  const std::string tenant_base =
      "server.tenant." + std::to_string(req.tenant_id);
  if (!rows.ok()) {
    queries_error_->Increment();
    metrics_->GetCounter(tenant_base + ".errors")->Increment();
    if (rows.status().code() == StatusCode::kDeadlineExceeded) {
      queries_deadline_->Increment();
    }
    SendError(conn, req, rows.status(), 0);
    return;
  }
  queries_ok_->Increment();
  metrics_->GetCounter(tenant_base + ".ok")->Increment();

  const size_t rows_per_frame =
      std::max<size_t>(1, options_.result_batch_bytes / wire::kRowBytes);
  FrameHeader batch;
  batch.type = FrameType::kResultBatch;
  batch.tenant_id = req.tenant_id;
  batch.request_id = req.request_id;
  std::vector<uint8_t> payload;
  for (size_t off = 0; off < rows->size(); off += rows_per_frame) {
    const size_t count = std::min(rows_per_frame, rows->size() - off);
    payload.clear();
    wire::EncodeRowBatch(*rows, off, count, &payload);
    if (!WriteFrame(conn, batch, payload)) return;  // client gone
    result_frames_->Increment();
    result_rows_->Add(count);
  }
  FrameHeader done;
  done.type = FrameType::kDone;
  done.flags = kFlagLast;
  done.tenant_id = req.tenant_id;
  done.request_id = req.request_id;
  payload.clear();
  wire::EncodeDone(wire::SummaryOf(*rows, stats), &payload);
  WriteFrame(conn, done, payload);
}

void ChunkServer::SendError(const std::shared_ptr<Connection>& conn,
                            const FrameHeader& req, const Status& status,
                            uint16_t extra_flags) {
  FrameHeader h;
  h.type = FrameType::kError;
  h.flags = static_cast<uint16_t>(kFlagLast | extra_flags);
  h.tenant_id = req.tenant_id;
  h.request_id = req.request_id;
  std::vector<uint8_t> payload;
  wire::EncodeError(status, &payload);
  WriteFrame(conn, h, payload);
}

bool ChunkServer::WriteFrame(const std::shared_ptr<Connection>& conn,
                             FrameHeader header,
                             const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> bytes;
  EncodeFrame(header, payload.data(), payload.size(), &bytes);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return false;
  size_t off = 0;
  int stalled_ms = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(conn->fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Socket buffer full: the client is slow. Wait for writability with
      // a bounded budget, then declare the client dead.
      if (stalled_ms >= kWriteStallBudgetMs ||
          conn->closed.load(std::memory_order_acquire)) {
        send_failures_->Increment();
        return false;
      }
      pollfd p{conn->fd, POLLOUT, 0};
      (void)::poll(&p, 1, 100);
      stalled_ms += 100;
      continue;
    }
    send_failures_->Increment();
    return false;
  }
  bytes_written_->Add(bytes.size());
  return true;
}

void ChunkServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  conn->cancel.Cancel();
  ::shutdown(conn->fd, SHUT_RDWR);
  conns_.erase(conn->fd);
  connections_closed_->Increment();
  connections_open_->Set(static_cast<int64_t>(conns_.size()));
}

}  // namespace chunkcache::server
