#ifndef CHUNKCACHE_SERVER_ADMISSION_H_
#define CHUNKCACHE_SERVER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/token_bucket.h"

namespace chunkcache::server {

/// Per-tenant admission limits. Zeroed fields mean "unlimited", so a
/// default-constructed quota admits everything — rate limiting is opt-in.
struct TenantQuota {
  double rate_qps = 0;        ///< Sustained queries/second (0 = unlimited).
  double burst = 0;           ///< Bucket depth (0 = max(1, rate_qps / 10)).
  uint32_t max_inflight = 0;  ///< Concurrent admitted queries (0 = unlim).
};

struct AdmissionOptions {
  /// Quota applied to any tenant without an explicit entry below.
  TenantQuota default_quota;
  /// Per-tenant overrides, keyed by the frame header's tenant id.
  std::map<uint32_t, TenantQuota> tenant_quotas;
  /// Cap on concurrently admitted queries across all tenants — the
  /// server-wide overload backstop (0 = unlimited).
  uint32_t global_max_inflight = 0;
};

/// Why a query was (not) admitted. Every shed reason maps to one
/// RESOURCE_EXHAUSTED error frame; the enum keys the per-reason counters.
enum class AdmitDecision : uint8_t {
  kAdmitted = 0,
  kShedRate,            ///< Tenant token bucket empty.
  kShedTenantInflight,  ///< Tenant at its concurrency quota.
  kShedGlobalInflight,  ///< Server at the global concurrency cap.
};

const char* AdmitDecisionName(AdmitDecision d);

/// Multi-tenant admission: one token bucket + inflight count per tenant,
/// plus a global inflight cap, all under one mutex (the hot path is a few
/// arithmetic ops; the serving layer calls this once per query frame).
///
/// Time is an explicit nanosecond argument (see TokenBucket), so tests
/// drive a synthetic clock and decisions are deterministic. Checks are
/// ordered global cap -> tenant cap -> token bucket, and a shed never
/// consumes tokens — a rejected burst does not also starve the tenant's
/// future budget.
///
/// Metrics (on the registry passed in): server.admission.admitted plus one
/// server.admission.shed_* counter per reason, an inflight gauge + peak,
/// and per-tenant server.tenant.<id>.{admitted,shed} counters.
class AdmissionController {
 public:
  AdmissionController(AdmissionOptions options, MetricsRegistry* metrics);

  AdmitDecision TryAdmit(uint32_t tenant_id, uint64_t now_ns);

  /// Releases one admitted query's slot (tenant + global inflight).
  void Release(uint32_t tenant_id);

  uint32_t global_inflight() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Tenant {
    explicit Tenant(const TenantQuota& q)
        : quota(q),
          bucket(q.rate_qps, q.burst > 0 ? q.burst
                                         : (q.rate_qps > 0 ? q.rate_qps / 10
                                                           : 1)) {}
    TenantQuota quota;
    TokenBucket bucket;
    uint32_t inflight = 0;
    Counter* admitted = nullptr;
    Counter* shed = nullptr;
  };

  Tenant& GetTenantLocked(uint32_t tenant_id);

  AdmissionOptions options_;
  MetricsRegistry* metrics_;
  Counter* admitted_;
  Counter* shed_rate_;
  Counter* shed_tenant_;
  Counter* shed_global_;
  Gauge* inflight_gauge_;
  Gauge* inflight_peak_;

  mutable std::mutex mu_;
  uint32_t global_inflight_ = 0;
  std::map<uint32_t, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace chunkcache::server

#endif  // CHUNKCACHE_SERVER_ADMISSION_H_
