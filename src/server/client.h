#ifndef CHUNKCACHE_SERVER_CLIENT_H_
#define CHUNKCACHE_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/star_join_query.h"
#include "common/status.h"
#include "server/frame.h"
#include "server/wire.h"

namespace chunkcache::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t tenant_id = 0;
  /// Same meaning as ServerOptions::max_payload_bytes, client side.
  uint32_t max_payload_bytes = 1u << 20;
  /// Receive timeout per recv() call; 0 = block forever.
  uint32_t recv_timeout_ms = 30000;
};

/// One request's complete outcome as seen by the client.
struct QueryResponse {
  uint64_t request_id = 0;
  Status status;     ///< OK, or the server's error (shed, deadline, ...).
  bool shed = false; ///< Error frame carried kFlagShed (admission shed).
  std::vector<backend::ResultRow> rows;
  wire::DoneSummary summary;  ///< Valid when status is OK.
};

/// Blocking client for the ChunkServer protocol. Not thread-safe as a
/// whole, but deliberately split into SendQuery / WaitResponse halves so an
/// open-loop driver can pipeline: one thread sends on its schedule, one
/// thread drains responses (each half is internally single-threaded).
///
/// WaitResponse verifies every completed result against the kDone frame's
/// row hash (wire::HashRows) — a served result that differs by one bit from
/// what the server computed fails with Corruption, which is what makes the
/// bit-identity tests structural rather than statistical.
class ChunkClient {
 public:
  ~ChunkClient();

  ChunkClient(const ChunkClient&) = delete;
  ChunkClient& operator=(const ChunkClient&) = delete;

  static Result<std::unique_ptr<ChunkClient>> Connect(ClientOptions options);

  /// Convenience: SendQuery + WaitResponse for that id.
  Result<QueryResponse> Execute(const backend::StarJoinQuery& query,
                                uint32_t deadline_ms = 0);

  /// Writes one query frame; returns its request id immediately (pipelining
  /// entry point). Fails only on transport errors.
  Result<uint64_t> SendQuery(const backend::StarJoinQuery& query,
                             uint32_t deadline_ms = 0);

  /// Blocks until the response stream for `request_id` completes (kDone or
  /// kError). Frames for other request ids arriving meanwhile are accrued
  /// and their completed responses stashed for later WaitResponse calls.
  Result<QueryResponse> WaitResponse(uint64_t request_id);

  /// Requests and returns the server's metrics registry JSON dump.
  Result<std::string> FetchMetrics();

  Status Ping();

  /// Writes raw bytes to the socket, bypassing the framing layer — the fuzz
  /// tests use this to deliver truncated and corrupted frames.
  Status SendRaw(const uint8_t* data, size_t len);

  /// Kills the connection with an RST (SO_LINGER 0) instead of an orderly
  /// close — the storm tests use this to model crashing clients.
  void CloseAbruptly();

  uint32_t tenant_id() const { return options_.tenant_id; }

 private:
  explicit ChunkClient(ClientOptions options, int fd);

  /// Reads socket bytes into reader_ until at least one frame is parseable.
  Result<Frame> ReadFrame();
  Status WriteAll(const uint8_t* data, size_t len);
  uint64_t NextRequestId() { return next_request_id_++; }

  ClientOptions options_;
  int fd_;
  FrameReader reader_;
  uint64_t next_request_id_ = 1;
  /// Responses completed while waiting for a different request id.
  std::map<uint64_t, QueryResponse> stashed_;
  /// Row accumulators for streams still in flight.
  std::map<uint64_t, std::vector<backend::ResultRow>> partial_;
};

}  // namespace chunkcache::server

#endif  // CHUNKCACHE_SERVER_CLIENT_H_
