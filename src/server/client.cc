#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace chunkcache::server {

ChunkClient::ChunkClient(ClientOptions options, int fd)
    : options_(std::move(options)),
      fd_(fd),
      reader_(options_.max_payload_bytes) {}

ChunkClient::~ChunkClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<ChunkClient>> ChunkClient::Connect(
    ClientOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_timeout_ms != 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return std::unique_ptr<ChunkClient>(
      new ChunkClient(std::move(options), fd));
}

Status ChunkClient::WriteAll(const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status ChunkClient::SendRaw(const uint8_t* data, size_t len) {
  return WriteAll(data, len);
}

Result<Frame> ChunkClient::ReadFrame() {
  for (;;) {
    auto next = reader_.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) return std::move(**next);
    uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timeout waiting for frame");
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

Result<uint64_t> ChunkClient::SendQuery(const backend::StarJoinQuery& query,
                                        uint32_t deadline_ms) {
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.flags = kFlagLast;
  h.tenant_id = options_.tenant_id;
  h.deadline_ms = deadline_ms;
  h.request_id = NextRequestId();
  std::vector<uint8_t> payload;
  wire::EncodeQuery(query, &payload);
  std::vector<uint8_t> bytes;
  EncodeFrame(h, payload.data(), payload.size(), &bytes);
  CHUNKCACHE_RETURN_IF_ERROR(WriteAll(bytes.data(), bytes.size()));
  return h.request_id;
}

Result<QueryResponse> ChunkClient::WaitResponse(uint64_t request_id) {
  for (;;) {
    auto stashed = stashed_.find(request_id);
    if (stashed != stashed_.end()) {
      QueryResponse resp = std::move(stashed->second);
      stashed_.erase(stashed);
      return resp;
    }
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    const FrameHeader& h = frame->header;
    switch (h.type) {
      case FrameType::kResultBatch: {
        Status st = wire::DecodeRowBatch(frame->payload.data(),
                                         frame->payload.size(),
                                         &partial_[h.request_id]);
        if (!st.ok()) return st;
        break;
      }
      case FrameType::kDone: {
        auto summary =
            wire::DecodeDone(frame->payload.data(), frame->payload.size());
        if (!summary.ok()) return summary.status();
        QueryResponse resp;
        resp.request_id = h.request_id;
        auto rows_it = partial_.find(h.request_id);
        if (rows_it != partial_.end()) {
          resp.rows = std::move(rows_it->second);
          partial_.erase(rows_it);
        }
        resp.summary = *summary;
        if (resp.rows.size() != summary->total_rows ||
            wire::HashRows(resp.rows) != summary->row_hash) {
          resp.status = Status::Corruption(
              "served rows disagree with the server's row hash");
        }
        stashed_.emplace(h.request_id, std::move(resp));
        break;
      }
      case FrameType::kError: {
        Status remote;
        Status decode = wire::DecodeError(frame->payload.data(),
                                          frame->payload.size(), &remote);
        if (!decode.ok()) return decode;
        QueryResponse resp;
        resp.request_id = h.request_id;
        resp.status = remote;
        resp.shed = (h.flags & kFlagShed) != 0;
        partial_.erase(h.request_id);
        stashed_.emplace(h.request_id, std::move(resp));
        break;
      }
      default:
        return Status::Internal("unexpected frame type " +
                                std::to_string(static_cast<int>(h.type)) +
                                " while awaiting a query response");
    }
  }
}

Result<QueryResponse> ChunkClient::Execute(const backend::StarJoinQuery& query,
                                           uint32_t deadline_ms) {
  auto id = SendQuery(query, deadline_ms);
  if (!id.ok()) return id.status();
  return WaitResponse(*id);
}

Result<std::string> ChunkClient::FetchMetrics() {
  FrameHeader h;
  h.type = FrameType::kMetricsRequest;
  h.flags = kFlagLast;
  h.tenant_id = options_.tenant_id;
  h.request_id = NextRequestId();
  std::vector<uint8_t> bytes;
  EncodeFrame(h, nullptr, 0, &bytes);
  CHUNKCACHE_RETURN_IF_ERROR(WriteAll(bytes.data(), bytes.size()));
  for (;;) {
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame->header.type == FrameType::kMetricsDump &&
        frame->header.request_id == h.request_id) {
      return std::string(frame->payload.begin(), frame->payload.end());
    }
    if (frame->header.type == FrameType::kError &&
        frame->header.request_id == h.request_id) {
      Status remote;
      Status decode = wire::DecodeError(frame->payload.data(),
                                        frame->payload.size(), &remote);
      return decode.ok() ? remote : decode;
    }
    // A response for a pipelined query may interleave; FetchMetrics is only
    // used on otherwise-quiet connections, so anything else is a protocol
    // violation.
    return Status::Internal("unexpected frame while awaiting metrics dump");
  }
}

Status ChunkClient::Ping() {
  FrameHeader h;
  h.type = FrameType::kPing;
  h.flags = kFlagLast;
  h.tenant_id = options_.tenant_id;
  h.request_id = NextRequestId();
  std::vector<uint8_t> bytes;
  EncodeFrame(h, nullptr, 0, &bytes);
  CHUNKCACHE_RETURN_IF_ERROR(WriteAll(bytes.data(), bytes.size()));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->header.type != FrameType::kPong ||
      frame->header.request_id != h.request_id) {
    return Status::Internal("ping answered by a non-pong frame");
  }
  return Status::OK();
}

void ChunkClient::CloseAbruptly() {
  if (fd_ < 0) return;
  linger lin{};
  lin.l_onoff = 1;
  lin.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  ::close(fd_);
  fd_ = -1;
}

}  // namespace chunkcache::server
