#ifndef CHUNKCACHE_SERVER_SERVER_H_
#define CHUNKCACHE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/middle_tier.h"
#include "server/admission.h"
#include "server/frame.h"

namespace chunkcache::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Workers executing admitted queries (the serving thread pool; the
  /// tier's own miss pipeline parallelism is configured on the tier).
  uint32_t num_workers = 4;
  /// Hard cap on any received frame's payload; a frame declaring more is
  /// rejected before buffering (ResourceExhausted, connection closed).
  uint32_t max_payload_bytes = 1u << 20;
  /// Streaming bound: result rows are sent in frames of at most this many
  /// payload bytes, so a huge result never materializes one giant frame.
  uint32_t result_batch_bytes = 256u << 10;
  /// Cap applied to client-requested deadlines; queries arriving with no
  /// deadline get exactly this one. 0 = deadlines pass through unaltered.
  uint64_t max_deadline_ms = 0;
  AdmissionOptions admission;
  /// Registry the server homes its statistics on. Pass the tier's registry
  /// for one process-wide export (what the shell and bench do); nullptr
  /// gives the server a private registry.
  MetricsRegistry* metrics = nullptr;
};

/// Binary-framed TCP front end over a MiddleTier (DESIGN.md §15).
///
/// One I/O thread owns accept + all socket reads: it parses frames,
/// answers pings and metrics dumps inline, runs admission on query frames
/// (shedding with an explicit RESOURCE_EXHAUSTED error frame — never a
/// silent drop), and submits admitted queries to a worker pool. Workers
/// execute through MiddleTier::ExecuteWithControl — the frame header's
/// deadline and the connection's cancellation token ride the PR 4
/// ExecControl plumbing — then stream the result back in bounded frames
/// terminated by a kDone summary carrying the row-stream hash.
///
/// Accounting invariant (checked by the overload tests): every well-formed
/// query frame terminates in exactly one of ok / shed / error, so
///   server.queries.offered == server.queries.ok + server.queries.shed
///                             + server.queries.errors
/// holds exactly once traffic drains — including queries whose client
/// vanished mid-execution (their connection's cancellation fails them into
/// `errors`; the response write is skipped, the outcome still counts).
class ChunkServer {
 public:
  ChunkServer(core::MiddleTier* tier, ServerOptions options);
  ~ChunkServer();

  ChunkServer(const ChunkServer&) = delete;
  ChunkServer& operator=(const ChunkServer&) = delete;

  /// Binds, listens and starts the I/O thread + worker pool.
  Status Start();

  /// Stops accepting, cancels in-flight queries, drains workers, joins.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return port_; }

  MetricsRegistry& metrics() const { return *metrics_; }
  AdmissionController& admission() { return *admission_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Connection;

  void IoLoop();
  void AcceptConnections();
  void ReadConnection(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void ExecuteQuery(const std::shared_ptr<Connection>& conn, FrameHeader req,
                    const backend::StarJoinQuery& query, uint64_t admit_ns);
  /// Sends a kError frame echoing `req`'s request/tenant ids.
  void SendError(const std::shared_ptr<Connection>& conn,
                 const FrameHeader& req, const Status& status,
                 uint16_t extra_flags);
  /// Serializes and writes one frame under the connection's write lock;
  /// false when the connection is gone (the caller just stops streaming).
  bool WriteFrame(const std::shared_ptr<Connection>& conn, FrameHeader header,
                  const std::vector<uint8_t>& payload);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  core::MiddleTier* tier_;
  ServerOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::unique_ptr<AdmissionController> admission_;

  // Registry-backed counters (names under "server.*").
  Counter* connections_opened_;
  Counter* connections_closed_;
  Gauge* connections_open_;
  Counter* frames_received_;
  Counter* frames_bad_;
  Counter* bytes_read_;
  Counter* bytes_written_;
  Counter* queries_offered_;
  Counter* queries_ok_;
  Counter* queries_shed_;
  Counter* queries_error_;
  Counter* queries_deadline_;
  Counter* result_frames_;
  Counter* result_rows_;
  Counter* send_failures_;
  Histogram* query_latency_ns_;  // admitted queries, admission -> outcome

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Live connections; touched only by the I/O thread.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::thread io_thread_;
  WaitGroup inflight_;
  /// Declared last: queries in flight capture `this` and their connection;
  /// Stop() joins the I/O thread, waits out inflight_, then destroys the
  /// pool while every other member is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace chunkcache::server

#endif  // CHUNKCACHE_SERVER_SERVER_H_
