#include "server/wire.h"

#include <cstring>

#include "server/frame.h"

namespace chunkcache::server::wire {

namespace {

/// Bounded reader over a payload: every Get checks the remaining length, so
/// a lying header can never drive an over-read.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t len) : p_(data), left_(len) {}

  bool GetU8(uint8_t* v) { return Take(1, [&](const uint8_t* p) { *v = *p; }); }
  bool GetU32(uint32_t* v) {
    return Take(4, [&](const uint8_t* p) { *v = server::GetU32(p); });
  }
  bool GetU64(uint64_t* v) {
    return Take(8, [&](const uint8_t* p) { *v = server::GetU64(p); });
  }
  bool GetF64(double* v) {
    return Take(8, [&](const uint8_t* p) { *v = server::GetF64(p); });
  }
  size_t left() const { return left_; }

 private:
  template <typename Fn>
  bool Take(size_t n, Fn&& fn) {
    if (left_ < n) return false;
    fn(p_);
    p_ += n;
    left_ -= n;
    return true;
  }

  const uint8_t* p_;
  size_t left_;
};

Status Truncated(const char* what) {
  return Status::Corruption(std::string("wire: truncated ") + what);
}

}  // namespace

void EncodeQuery(const backend::StarJoinQuery& q, std::vector<uint8_t>* out) {
  PutU32(out, q.group_by.num_dims);
  for (uint32_t d = 0; d < q.group_by.num_dims; ++d) {
    out->push_back(q.group_by.levels[d]);
  }
  for (uint32_t d = 0; d < q.group_by.num_dims; ++d) {
    PutU32(out, q.selection[d].begin);
    PutU32(out, q.selection[d].end);
  }
  PutU32(out, static_cast<uint32_t>(q.non_group_by.size()));
  for (const auto& pred : q.non_group_by) {
    PutU32(out, pred.dim);
    PutU32(out, pred.level);
    PutU32(out, pred.range.begin);
    PutU32(out, pred.range.end);
  }
}

Result<backend::StarJoinQuery> DecodeQuery(const uint8_t* data, size_t len) {
  Cursor c(data, len);
  backend::StarJoinQuery q;
  uint32_t num_dims = 0;
  if (!c.GetU32(&num_dims)) return Truncated("query header");
  if (num_dims == 0 || num_dims > storage::kMaxDims) {
    return Status::Corruption("wire: query num_dims " +
                              std::to_string(num_dims) + " out of range");
  }
  q.group_by.num_dims = num_dims;
  for (uint32_t d = 0; d < num_dims; ++d) {
    if (!c.GetU8(&q.group_by.levels[d])) return Truncated("group-by levels");
  }
  for (uint32_t d = 0; d < num_dims; ++d) {
    if (!c.GetU32(&q.selection[d].begin) || !c.GetU32(&q.selection[d].end)) {
      return Truncated("selection");
    }
    if (q.selection[d].begin > q.selection[d].end) {
      return Status::Corruption("wire: inverted selection range");
    }
  }
  uint32_t num_preds = 0;
  if (!c.GetU32(&num_preds)) return Truncated("predicate count");
  // 16 bytes per predicate must fit in what is left — checked before the
  // reserve so a lying count cannot force a giant allocation.
  if (static_cast<uint64_t>(num_preds) * 16 > c.left()) {
    return Status::Corruption("wire: predicate count exceeds payload");
  }
  q.non_group_by.reserve(num_preds);
  for (uint32_t i = 0; i < num_preds; ++i) {
    backend::NonGroupByPredicate pred;
    if (!c.GetU32(&pred.dim) || !c.GetU32(&pred.level) ||
        !c.GetU32(&pred.range.begin) || !c.GetU32(&pred.range.end)) {
      return Truncated("predicate");
    }
    if (pred.dim >= num_dims) {
      return Status::Corruption("wire: predicate names dimension " +
                                std::to_string(pred.dim));
    }
    if (pred.range.begin > pred.range.end) {
      return Status::Corruption("wire: inverted predicate range");
    }
    q.non_group_by.push_back(pred);
  }
  if (c.left() != 0) return Status::Corruption("wire: trailing query bytes");
  return q;
}

void EncodeRowBatch(const std::vector<backend::ResultRow>& rows, size_t first,
                    size_t count, std::vector<uint8_t>* out) {
  PutU32(out, static_cast<uint32_t>(count));
  out->reserve(out->size() + count * kRowBytes);
  for (size_t i = first; i < first + count; ++i) {
    const backend::ResultRow& r = rows[i];
    for (uint32_t d = 0; d < storage::kMaxDims; ++d) PutU32(out, r.coords[d]);
    PutF64(out, r.sum);
    PutU64(out, r.count);
    PutF64(out, r.min_v);
    PutF64(out, r.max_v);
  }
}

Status DecodeRowBatch(const uint8_t* data, size_t len,
                      std::vector<backend::ResultRow>* rows) {
  Cursor c(data, len);
  uint32_t count = 0;
  if (!c.GetU32(&count)) return Truncated("row batch header");
  if (static_cast<uint64_t>(count) * kRowBytes != c.left()) {
    return Status::Corruption("wire: row count does not match payload size");
  }
  rows->reserve(rows->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    backend::ResultRow r;
    for (uint32_t d = 0; d < storage::kMaxDims; ++d) {
      if (!c.GetU32(&r.coords[d])) return Truncated("row coords");
    }
    if (!c.GetF64(&r.sum) || !c.GetU64(&r.count) || !c.GetF64(&r.min_v) ||
        !c.GetF64(&r.max_v)) {
      return Truncated("row aggregates");
    }
    rows->push_back(r);
  }
  return Status::OK();
}

uint64_t HashRows(const std::vector<backend::ResultRow>& rows) {
  uint64_t acc = 0xcbf29ce484222325ULL;
  auto mix = [&acc](uint64_t v) { acc = (acc ^ v) * 0x100000001b3ULL; };
  for (const backend::ResultRow& r : rows) {
    for (uint32_t d = 0; d < storage::kMaxDims; ++d) mix(r.coords[d]);
    uint64_t bits;
    std::memcpy(&bits, &r.sum, 8);
    mix(bits);
    mix(r.count);
    std::memcpy(&bits, &r.min_v, 8);
    mix(bits);
    std::memcpy(&bits, &r.max_v, 8);
    mix(bits);
  }
  return acc;
}

void EncodeDone(const DoneSummary& s, std::vector<uint8_t>* out) {
  PutU64(out, s.total_rows);
  PutU64(out, s.row_hash);
  PutU64(out, s.chunks_needed);
  PutU64(out, s.chunks_from_cache);
  PutU64(out, s.chunks_from_aggregation);
  PutU64(out, s.chunks_from_backend);
  PutU64(out, s.coalesced_waits);
  PutU64(out, s.degraded_answers);
  PutU64(out, s.deadline_expired);
  out->push_back(s.full_cache_hit);
}

Result<DoneSummary> DecodeDone(const uint8_t* data, size_t len) {
  Cursor c(data, len);
  DoneSummary s;
  if (!c.GetU64(&s.total_rows) || !c.GetU64(&s.row_hash) ||
      !c.GetU64(&s.chunks_needed) || !c.GetU64(&s.chunks_from_cache) ||
      !c.GetU64(&s.chunks_from_aggregation) ||
      !c.GetU64(&s.chunks_from_backend) || !c.GetU64(&s.coalesced_waits) ||
      !c.GetU64(&s.degraded_answers) || !c.GetU64(&s.deadline_expired) ||
      !c.GetU8(&s.full_cache_hit)) {
    return Truncated("done summary");
  }
  if (c.left() != 0) return Status::Corruption("wire: trailing done bytes");
  return s;
}

void EncodeError(const Status& status, std::vector<uint8_t>* out) {
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutU32(out, static_cast<uint32_t>(status.message().size()));
  out->insert(out->end(), status.message().begin(), status.message().end());
}

Status DecodeError(const uint8_t* data, size_t len, Status* remote) {
  Cursor c(data, len);
  uint32_t code = 0, msg_len = 0;
  if (!c.GetU32(&code) || !c.GetU32(&msg_len)) return Truncated("error frame");
  if (msg_len != c.left()) {
    return Status::Corruption("wire: error message length mismatch");
  }
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return Status::Corruption("wire: unknown status code " +
                              std::to_string(code));
  }
  *remote =
      Status(static_cast<StatusCode>(code),
             std::string(reinterpret_cast<const char*>(data) + 8, msg_len));
  return Status::OK();
}

DoneSummary SummaryOf(const std::vector<backend::ResultRow>& rows,
                      const core::QueryStats& stats) {
  DoneSummary s;
  s.total_rows = rows.size();
  s.row_hash = HashRows(rows);
  s.chunks_needed = stats.chunks_needed;
  s.chunks_from_cache = stats.chunks_from_cache;
  s.chunks_from_aggregation = stats.chunks_from_aggregation;
  s.chunks_from_backend = stats.chunks_from_backend;
  s.coalesced_waits = stats.coalesced_waits;
  s.degraded_answers = stats.degraded_answers;
  s.deadline_expired = stats.deadline_expired;
  s.full_cache_hit = stats.full_cache_hit ? 1 : 0;
  return s;
}

}  // namespace chunkcache::server::wire
