#ifndef CHUNKCACHE_SERVER_WIRE_H_
#define CHUNKCACHE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backend/star_join_query.h"
#include "common/status.h"
#include "core/middle_tier.h"

namespace chunkcache::server::wire {

/// Payload codecs of the serving protocol. Every decoder validates the
/// declared counts against the bytes actually present *before* allocating,
/// and returns Status::Corruption on any mismatch — the fuzz suite feeds
/// these bit-flipped and truncated payloads under ASAN.

/// StarJoinQuery payload (FrameType::kQuery):
///   u32 num_dims; num_dims * u8 group-by level;
///   num_dims * (u32 begin, u32 end) selection;
///   u32 num_preds; num_preds * (u32 dim, u32 level, u32 begin, u32 end).
void EncodeQuery(const backend::StarJoinQuery& q, std::vector<uint8_t>* out);
Result<backend::StarJoinQuery> DecodeQuery(const uint8_t* data, size_t len);

/// One serialized result row: kMaxDims u32 coords, then sum/count/min/max
/// (8 bytes each) — 64 bytes, fixed, in canonical result order.
inline constexpr size_t kRowBytes = storage::kMaxDims * 4 + 32;

/// Result-batch payload (FrameType::kResultBatch):
///   u32 row_count; row_count * kRowBytes.
/// `first`/`count` select the batch out of `rows` (bounded streaming).
void EncodeRowBatch(const std::vector<backend::ResultRow>& rows, size_t first,
                    size_t count, std::vector<uint8_t>* out);
Status DecodeRowBatch(const uint8_t* data, size_t len,
                      std::vector<backend::ResultRow>* rows);

/// Order-sensitive FNV-1a over the wire serialization of every row: the
/// bit-identity signature compared between served and in-process execution
/// (the closure tests and bench_serving both hash with this).
uint64_t HashRows(const std::vector<backend::ResultRow>& rows);

/// End-of-response payload (FrameType::kDone): the row-stream signature
/// plus the provenance counters a client-side cache report needs.
struct DoneSummary {
  uint64_t total_rows = 0;
  uint64_t row_hash = 0;
  uint64_t chunks_needed = 0;
  uint64_t chunks_from_cache = 0;
  uint64_t chunks_from_aggregation = 0;
  uint64_t chunks_from_backend = 0;
  uint64_t coalesced_waits = 0;
  uint64_t degraded_answers = 0;
  uint64_t deadline_expired = 0;
  uint8_t full_cache_hit = 0;
};
void EncodeDone(const DoneSummary& s, std::vector<uint8_t>* out);
Result<DoneSummary> DecodeDone(const uint8_t* data, size_t len);

/// Error payload (FrameType::kError): u32 StatusCode, u32 length, message.
/// The code round-trips exactly, so a shed's kResourceExhausted (and a
/// deadline's kDeadlineExceeded) is distinguishable client-side. The
/// decoded remote status lands in *remote; the returned Status reports
/// whether the payload itself was well-formed (Result<Status> would be
/// ambiguous — both of its constructors take a Status).
void EncodeError(const Status& status, std::vector<uint8_t>* out);
Status DecodeError(const uint8_t* data, size_t len, Status* remote);

/// Builds the DoneSummary for a finished query.
DoneSummary SummaryOf(const std::vector<backend::ResultRow>& rows,
                      const core::QueryStats& stats);

}  // namespace chunkcache::server::wire

#endif  // CHUNKCACHE_SERVER_WIRE_H_
