#ifndef CHUNKCACHE_SERVER_FRAME_H_
#define CHUNKCACHE_SERVER_FRAME_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/status.h"

namespace chunkcache::server {

/// Binary framing of the serving protocol (DESIGN.md §15). Every message on
/// the wire is one frame: a fixed 32-byte little-endian header followed by
/// `payload_len` payload bytes, integrity-checked by a CRC32C trailer field
/// in the header. Frames are self-delimiting, so a stream parser never needs
/// lookahead beyond the declared length, and a declared length is validated
/// against a hard cap before any allocation — a hostile 4 GiB claim costs
/// nothing.
///
///   offset  size  field
///        0     4  magic 0x43484B43 ("CHKC")
///        4     1  version (kProtocolVersion)
///        5     1  frame type (FrameType)
///        6     2  flags (FrameFlags bit set)
///        8     4  tenant id
///       12     4  deadline_ms (query frames; 0 = no deadline)
///       16     8  request id (echoed verbatim on every response frame)
///       24     4  payload_len
///       28     4  CRC32C of the payload bytes
inline constexpr uint32_t kFrameMagic = 0x43484B43u;  // "CHKC"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 32;

enum class FrameType : uint8_t {
  kQuery = 1,         ///< client -> server: serialized StarJoinQuery.
  kResultBatch = 2,   ///< server -> client: one bounded batch of rows.
  kDone = 3,          ///< server -> client: end of a streamed result.
  kError = 4,         ///< server -> client: status code + message.
  kMetricsRequest = 5,  ///< client -> server: empty payload.
  kMetricsDump = 6,     ///< server -> client: registry JSON export.
  kPing = 7,
  kPong = 8,
};

enum FrameFlags : uint16_t {
  kFlagLast = 1u << 0,  ///< Final frame of this request's response stream.
  kFlagShed = 1u << 1,  ///< Error frame produced by admission shed, not
                        ///< execution: the query was never started and is
                        ///< safe to retry elsewhere.
};

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  uint16_t flags = 0;
  uint32_t tenant_id = 0;
  uint32_t deadline_ms = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// Little-endian scalar I/O shared by the frame and payload codecs.
inline void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline double GetF64(const uint8_t* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

/// Serializes one frame (header + payload, CRC computed here) onto `out`.
void EncodeFrame(const FrameHeader& header, const uint8_t* payload,
                 size_t payload_len, std::vector<uint8_t>* out);

/// Incremental frame parser over a byte stream. Append() buffers raw bytes;
/// Next() yields one complete frame, nullopt when more bytes are needed, or
/// an error Status on a malformed stream:
///   InvalidArgument   bad magic or unsupported version (stream is garbage
///                     or from a future protocol — unrecoverable, close);
///   ResourceExhausted declared payload_len exceeds max_payload (rejected
///                     before buffering the payload);
///   Corruption        payload CRC mismatch.
/// After any error the parser is poisoned: every later Next() returns the
/// same error, because frame boundaries can no longer be trusted.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload) : max_payload_(max_payload) {}

  void Append(const uint8_t* data, size_t len);

  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  Status poisoned_ = Status::OK();
};

}  // namespace chunkcache::server

#endif  // CHUNKCACHE_SERVER_FRAME_H_
