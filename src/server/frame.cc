#include "server/frame.h"

#include "common/crc32c.h"

namespace chunkcache::server {

void EncodeFrame(const FrameHeader& header, const uint8_t* payload,
                 size_t payload_len, std::vector<uint8_t>* out) {
  FrameHeader h = header;
  h.payload_len = static_cast<uint32_t>(payload_len);
  h.payload_crc = Crc32c(payload, payload_len);
  out->reserve(out->size() + kFrameHeaderBytes + payload_len);
  PutU32(out, kFrameMagic);
  out->push_back(h.version);
  out->push_back(static_cast<uint8_t>(h.type));
  PutU16(out, h.flags);
  PutU32(out, h.tenant_id);
  PutU32(out, h.deadline_ms);
  PutU64(out, h.request_id);
  PutU32(out, h.payload_len);
  PutU32(out, h.payload_crc);
  out->insert(out->end(), payload, payload + payload_len);
}

void FrameReader::Append(const uint8_t* data, size_t len) {
  // Compact the consumed prefix before growing: a long-lived connection
  // must not accumulate every byte it ever received.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (!poisoned_.ok()) return poisoned_;
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    return std::optional<Frame>(std::nullopt);
  }
  const uint8_t* p = buf_.data() + pos_;
  if (GetU32(p) != kFrameMagic) {
    poisoned_ = Status::InvalidArgument("frame: bad magic");
    return poisoned_;
  }
  FrameHeader h;
  h.version = p[4];
  if (h.version != kProtocolVersion) {
    poisoned_ = Status::InvalidArgument(
        "frame: unsupported protocol version " + std::to_string(h.version));
    return poisoned_;
  }
  h.type = static_cast<FrameType>(p[5]);
  h.flags = GetU16(p + 6);
  h.tenant_id = GetU32(p + 8);
  h.deadline_ms = GetU32(p + 12);
  h.request_id = GetU64(p + 16);
  h.payload_len = GetU32(p + 24);
  h.payload_crc = GetU32(p + 28);
  if (h.payload_len > max_payload_) {
    poisoned_ = Status::ResourceExhausted(
        "frame: declared payload " + std::to_string(h.payload_len) +
        " bytes exceeds limit " + std::to_string(max_payload_));
    return poisoned_;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + h.payload_len) {
    return std::optional<Frame>(std::nullopt);
  }
  Frame f;
  f.header = h;
  f.payload.assign(p + kFrameHeaderBytes,
                   p + kFrameHeaderBytes + h.payload_len);
  if (Crc32c(f.payload.data(), f.payload.size()) != h.payload_crc) {
    poisoned_ = Status::Corruption("frame: payload CRC mismatch");
    return poisoned_;
  }
  pos_ += kFrameHeaderBytes + h.payload_len;
  return std::optional<Frame>(std::move(f));
}

}  // namespace chunkcache::server
