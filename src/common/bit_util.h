#ifndef CHUNKCACHE_COMMON_BIT_UTIL_H_
#define CHUNKCACHE_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace chunkcache::bit_util {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr uint64_t WordsForBits(uint64_t bits) { return (bits + 63) / 64; }

/// Tests bit `i` of the word array `words`.
inline bool GetBit(const uint64_t* words, uint64_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

/// Sets bit `i` of `words`.
inline void SetBit(uint64_t* words, uint64_t i) {
  words[i >> 6] |= uint64_t{1} << (i & 63);
}

/// Clears bit `i` of `words`.
inline void ClearBit(uint64_t* words, uint64_t i) {
  words[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

/// Population count of one word.
inline int PopCount(uint64_t w) { return std::popcount(w); }

/// Rounds `v` up to the next multiple of `align` (align must be a power of
/// two).
constexpr uint64_t RoundUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace chunkcache::bit_util

#endif  // CHUNKCACHE_COMMON_BIT_UTIL_H_
