#ifndef CHUNKCACHE_COMMON_FAULT_INJECTOR_H_
#define CHUNKCACHE_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace chunkcache {

/// Every place the library can be made to fail on purpose. Sites are
/// compiled into the production code paths (see CHUNKCACHE_FAULT_POINT);
/// which ones actually fire is runtime configuration on FaultInjector.
enum class FaultSite : uint8_t {
  kDiskRead = 0,   ///< DiskManager::ReadPage -> IoError
  kDiskWrite,      ///< DiskManager::WritePage -> IoError
  kDiskAlloc,      ///< DiskManager::AllocatePage -> IoError
  kDiskCorrupt,    ///< Byte flip in a read page; CRC32C turns it into
                   ///< Status::Corruption instead of served bad bytes.
  kFactScan,       ///< ChunkedFile chunk-run scans -> IoError
  kAggScan,        ///< AggFile range scans -> IoError
  kScanAdmit,      ///< ScanScheduler::Compute admission -> ResourceExhausted
  kCacheInsert,    ///< ChunkCache::Insert silently dropped (admission loss)
  kWalAppend,      ///< CachePersistence WAL record append -> IoError
  kWalFsync,       ///< CachePersistence WAL fsync -> IoError
  kSnapshotWrite,  ///< Cache snapshot shadow-file write -> IoError
  kSnapshotRename, ///< Cache snapshot atomic rename -> IoError
  kRecoveryRead,   ///< Snapshot/WAL read during recovery -> IoError
};
inline constexpr uint32_t kNumFaultSites = 13;

/// Stable human-readable site name ("disk-read", "cache-insert", ...).
const char* FaultSiteName(FaultSite site);

/// Process-wide probabilistic fault injection, designed so the *disarmed*
/// hook is essentially free: CHUNKCACHE_FAULT_POINT is one relaxed atomic
/// load and a never-taken branch (bench_faults measures it at ~1 ns).
/// Compiling with -DCHUNKCACHE_NO_FAULT_POINTS removes the hooks entirely.
///
/// Each site is configured independently with
///   - `probability`: chance a checked operation faults,
///   - `max_faults`: budget of faults to inject (kUnlimited = no cap),
///   - `skip_ops`: operations let through before injection can start
/// so both randomized storms (probability) and deterministic "fail the
/// N-th op" scenarios (probability 1, skip N, budget 1) are expressible.
///
/// Thread safety: all methods are safe from any thread. Probability draws
/// use a per-thread generator derived from Seed(), so single-threaded
/// tests are exactly reproducible; multi-threaded storms are reproducible
/// up to thread interleaving.
class FaultInjector {
 public:
  static constexpr uint64_t kUnlimited = ~0ull;

  /// The process-wide injector every compiled-in fault point consults.
  static FaultInjector& Global();

  /// Arms `site`. `probability` is clamped to [0, 1]; `code` is the status
  /// the fault surfaces as (ignored for kDiskCorrupt / kCacheInsert, whose
  /// effect is not a returned status).
  void Arm(FaultSite site, double probability,
           StatusCode code = StatusCode::kIoError,
           uint64_t max_faults = kUnlimited, uint64_t skip_ops = 0);

  /// Storm helper: arms every site at `probability` with its natural code.
  void ArmAll(double probability, uint64_t max_faults = kUnlimited);

  void Disarm(FaultSite site);
  void DisarmAll();

  /// Reseeds the per-thread probability generators (takes effect on each
  /// thread's next draw, including threads that already drew).
  void Seed(uint64_t seed);

  /// Zeroes faults_injected / checks counters (arming state unchanged).
  void ResetCounters();

  /// Fast path, read by CHUNKCACHE_FAULT_POINT before anything else.
  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Draws at `site`: returns the configured error when the fault fires,
  /// OK otherwise. Call only when armed() (the macro does).
  Status Check(FaultSite site);

  /// Draw-only variant for sites whose effect is not a returned status
  /// (page corruption, dropped cache inserts).
  bool ShouldInject(FaultSite site);

  /// Flips one byte of `data` (deterministically placed per draw).
  void CorruptBuffer(void* data, size_t n);

  uint64_t faults_injected() const;
  uint64_t faults_injected(FaultSite site) const;
  /// Total draws at armed sites (disarmed hooks never count — counting
  /// would cost the fast path its "free when off" property).
  uint64_t checks() const;

 private:
  struct Site {
    std::atomic<uint64_t> prob_bits{0};   ///< P(fault) * 2^32 in [0, 2^32].
    std::atomic<uint64_t> remaining{0};   ///< Fault budget left.
    std::atomic<int64_t> skip{0};         ///< Ops to let through first.
    std::atomic<uint8_t> code{static_cast<uint8_t>(StatusCode::kIoError)};
    std::atomic<uint64_t> injected{0};
    std::atomic<uint64_t> checked{0};
  };

  uint32_t NextRand32();

  Site sites_[kNumFaultSites];
  std::atomic<uint32_t> armed_sites_{0};  ///< Bitmask over FaultSite.
  std::atomic<uint64_t> seed_{0x5EEDC0FFEE123457ull};
  std::atomic<uint64_t> epoch_{0};  ///< Bumped by Seed(); re-seeds threads.
};

/// Compiled-in injection point: returns the injected Status out of the
/// enclosing function (which must return Status or Result<T>) when the
/// site fires; ~1 ns and branch-predictable when the injector is disarmed.
#ifdef CHUNKCACHE_NO_FAULT_POINTS
#define CHUNKCACHE_FAULT_POINT(site) \
  do {                               \
  } while (0)
#else
#define CHUNKCACHE_FAULT_POINT(site)                             \
  do {                                                           \
    ::chunkcache::FaultInjector& _fi =                           \
        ::chunkcache::FaultInjector::Global();                   \
    if (_fi.armed()) {                                           \
      ::chunkcache::Status _fs = _fi.Check(site);                \
      if (!_fs.ok()) return _fs;                                 \
    }                                                            \
  } while (0)
#endif

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_FAULT_INJECTOR_H_
