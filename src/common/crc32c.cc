#include "common/crc32c.h"

#include <cstring>

namespace chunkcache {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[k] advances a byte through k additional zero bytes, letting the
/// loop fold 8 input bytes per iteration.
struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

uint32_t Crc32cSoftwareImpl(const void* data, size_t n, uint32_t crc) {
  static const Crc32cTables tables;
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tables.t[7][word & 0xFF] ^ tables.t[6][(word >> 8) & 0xFF] ^
          tables.t[5][(word >> 16) & 0xFF] ^ tables.t[4][(word >> 24) & 0xFF] ^
          tables.t[3][(word >> 32) & 0xFF] ^ tables.t[2][(word >> 40) & 0xFF] ^
          tables.t[1][(word >> 48) & 0xFF] ^ tables.t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t n,
                                                          uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c32 = ~crc;
  if (n >= 8) {
    // Align the head so the 8-byte loop runs on aligned loads; only worth
    // doing when an 8-byte loop will actually run.
    while ((reinterpret_cast<uintptr_t>(p) & 7) != 0) {
      c32 = __builtin_ia32_crc32qi(c32, *p++);
      --n;
    }
    uint64_t c = c32;
    while (n >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      c = __builtin_ia32_crc32di(c, word);
      p += 8;
      n -= 8;
    }
    c32 = static_cast<uint32_t>(c);
  }
  // Consume the tail in the widest steps available (4/2/1 bytes) instead
  // of a byte-at-a-time loop.
  if (n & 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    c32 = __builtin_ia32_crc32si(c32, v);
    p += 4;
  }
  if (n & 2) {
    uint16_t v;
    std::memcpy(&v, p, 2);
    c32 = __builtin_ia32_crc32hi(c32, v);
    p += 2;
  }
  if (n & 1) {
    c32 = __builtin_ia32_crc32qi(c32, *p);
  }
  return ~c32;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2") != 0; }

#else

uint32_t Crc32cHardware(const void* data, size_t n, uint32_t crc) {
  return Crc32cSoftwareImpl(data, n, crc);
}
bool HaveSse42() { return false; }

#endif

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const bool use_hw = HaveSse42();
  return use_hw ? Crc32cHardware(data, n, seed)
                : Crc32cSoftwareImpl(data, n, seed);
}

uint32_t Crc32cSoftware(const void* data, size_t n, uint32_t seed) {
  return Crc32cSoftwareImpl(data, n, seed);
}

}  // namespace chunkcache
