#ifndef CHUNKCACHE_COMMON_COST_MODEL_H_
#define CHUNKCACHE_COMMON_COST_MODEL_H_

#include <cstdint>

namespace chunkcache {

/// Converts physical work counters into modeled execution time.
///
/// The paper ran on a dual Pentium-90 against a raw disk device; absolute
/// times are irrelevant today, but the *ratios* between configurations are
/// driven by how many pages are read and how many tuples are processed.
/// Every experiment in bench/ therefore reports a modeled cost computed from
/// exact counters, alongside wall-clock time. The default constants
/// approximate a late-90s machine (10 ms per random page read, 1 us of CPU
/// per tuple touched) so numbers land in the same ballpark as the paper's
/// figures.
struct CostModel {
  double page_read_ms = 10.0;   ///< Cost of one physical page read.
  double page_write_ms = 10.0;  ///< Cost of one physical page write.
  double tuple_cpu_ms = 0.001;  ///< CPU cost of touching one tuple.

  /// Modeled milliseconds for the given work counters.
  double Cost(uint64_t pages_read, uint64_t pages_written,
              uint64_t tuples) const {
    return static_cast<double>(pages_read) * page_read_ms +
           static_cast<double>(pages_written) * page_write_ms +
           static_cast<double>(tuples) * tuple_cpu_ms;
  }
};

/// Work counters accumulated while executing one query (or one experiment).
/// Producers add to these; CostModel::Cost turns them into milliseconds.
struct WorkCounters {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t tuples_processed = 0;

  WorkCounters& operator+=(const WorkCounters& o) {
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    tuples_processed += o.tuples_processed;
    return *this;
  }

  friend WorkCounters operator-(WorkCounters a, const WorkCounters& b) {
    a.pages_read -= b.pages_read;
    a.pages_written -= b.pages_written;
    a.tuples_processed -= b.tuples_processed;
    return a;
  }
};

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_COST_MODEL_H_
