#ifndef CHUNKCACHE_COMMON_LOGGING_H_
#define CHUNKCACHE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Minimal invariant-checking macros. CHUNKCACHE_CHECK is always on;
/// CHUNKCACHE_DCHECK compiles away in NDEBUG builds. Failures abort: a
/// violated invariant inside the storage engine is never recoverable.

#define CHUNKCACHE_CHECK(cond)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CHUNKCACHE_CHECK_MSG(cond, msg)                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define CHUNKCACHE_DCHECK(cond) \
  do {                          \
  } while (0)
#else
#define CHUNKCACHE_DCHECK(cond) CHUNKCACHE_CHECK(cond)
#endif

#endif  // CHUNKCACHE_COMMON_LOGGING_H_
