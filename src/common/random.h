#ifndef CHUNKCACHE_COMMON_RANDOM_H_
#define CHUNKCACHE_COMMON_RANDOM_H_

#include <cstdint>

#include "common/logging.h"

namespace chunkcache {

/// Deterministic, fast pseudo-random generator (xoshiro256**). All data
/// generation and workload generation in this repository seeds one of these
/// explicitly so experiments are exactly reproducible run to run.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding, so nearby seeds give unrelated streams.
    uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n) {
    CHUNKCACHE_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation would be overkill;
    // modulo bias is negligible for the ranges used here (<< 2^32).
    return Next64() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    CHUNKCACHE_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_RANDOM_H_
