#ifndef CHUNKCACHE_COMMON_METRICS_H_
#define CHUNKCACHE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace chunkcache {

/// Naming convention (enforced only by review): lowercase dotted paths,
/// `<subsystem>.<noun>[_<unit>]` — e.g. "cache.lookups", "disk.read_ns",
/// "scheduler.scan_ns". The Prometheus exporter prefixes "chunkcache_" and
/// maps '.'/'-' to '_'.
namespace metrics_internal {

/// Stripes per hot metric. Threads are assigned stripes round-robin, so
/// concurrent recorders land on different cache lines; snapshots fold all
/// stripes. Power of two.
inline constexpr uint32_t kStripes = 16;

/// Round-robin per-thread stripe index (stable for a thread's lifetime).
uint32_t ThisThreadStripe();

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};

}  // namespace metrics_internal

/// Monotonically increasing event count. The hot path is one relaxed
/// fetch_add on a per-thread stripe — lock-free and contention-free; the
/// exact total is folded on Value()/snapshot. Pointers returned by the
/// registry are stable for the registry's lifetime, so callers cache them
/// at construction and never touch the registry lock again.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n) {
    stripes_[metrics_internal::ThisThreadStripe() &
             (metrics_internal::kStripes - 1)]
        .v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Folded total. Exact once recorders have quiesced; concurrent with
  /// recording it is a monotonic lower bound that includes every add that
  /// happened-before the call (each stripe is read atomically — no torn
  /// 32/32 reads, unlike the plain uint64 fields this class replaced).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::array<metrics_internal::PaddedU64, metrics_internal::kStripes> stripes_;
};

/// Point-in-time signed level (bytes in use, open batches, ...). Gauges are
/// set from slow paths (snapshots, admission decisions under a lock), so a
/// single atomic suffices.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if above the current value (high-water marks).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Fixed log-scale bucket layout shared by Histogram and its snapshots:
/// bucket 0 holds the value 0, bucket b (1..64) holds values v with
/// bit_width(v) == b, i.e. the half-open range [2^(b-1), 2^b). Log-scale
/// buckets bound every quantile estimate to within one power-of-two bucket
/// of the exact quantile while keeping the footprint fixed.
inline constexpr size_t kHistogramBuckets = 65;

inline size_t HistogramBucketOf(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));  // bit_width(0) == 0
}

/// Inclusive lower bound of bucket `b` (0, 1, 2, 4, 8, ...).
inline uint64_t HistogramBucketLower(size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

/// Inclusive upper bound of bucket `b` (0, 1, 3, 7, 15, ...).
inline uint64_t HistogramBucketUpper(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

/// Folded, immutable view of a histogram. Merging two snapshots is
/// element-wise and yields exactly the snapshot a single stream recording
/// both inputs would have produced (the property metrics_test checks).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when empty.
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  void Merge(const HistogramSnapshot& o);
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimate of the q-quantile (q in [0,1]): the upper bound of the bucket
  /// holding the rank, clamped to [min, max]. The exact quantile lies in
  /// the same bucket, so the estimate is never below it and never more than
  /// one bucket (2x) above it.
  double Quantile(double q) const;
};

/// Fixed-bucket log-scale histogram with the same striped lock-free hot
/// path as Counter: Record is three relaxed atomic ops (bucket, count sum)
/// plus two bounded CAS loops for min/max on the thread's own stripe.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(uint64_t v);
  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  /// Histograms carry 65 buckets per stripe, so they use fewer stripes
  /// than counters; 8 stripes * 68 words is ~4 KiB per histogram.
  static constexpr uint32_t kHistStripes = 8;

  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~uint64_t{0}};
    std::atomic<uint64_t> max{0};
  };

  std::string name_;
  std::array<Stripe, kHistStripes> stripes_;
};

/// Named registry of counters, gauges and histograms — the single home for
/// every statistic the middle tier exposes. Get* registers on first use and
/// returns a stable pointer (metrics are never removed); the mutex guards
/// only registration and snapshotting, never the recording hot path.
///
/// Scoping: components default to a private registry per instance so their
/// stats stay attributable; passing one shared registry to every component
/// of a deployment yields one process-wide export, Prometheus-style.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Folded point-in-time view of every registered metric, keyed by name.
  /// Each value is individually exact/atomic; the snapshot as a whole is
  /// assembled metric by metric (see DESIGN.md §10 on what that means for
  /// cross-metric invariants).
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    uint64_t counter(const std::string& name) const {
      auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    }
    int64_t gauge(const std::string& name) const {
      auto it = gauges.find(name);
      return it == gauges.end() ? 0 : it->second;
    }
  };
  Snapshot TakeSnapshot() const;

  /// Prometheus text exposition: `chunkcache_<name>` lines, histograms as
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
  std::string ExportPrometheus() const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p95, p99}}}.
  std::string ExportJson() const;

  /// Zeroes every registered metric (registration survives).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_METRICS_H_
