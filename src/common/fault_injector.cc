#include "common/fault_injector.h"

#include <cmath>
#include <string>

namespace chunkcache {

namespace {

/// Default status surfaced by each site when ArmAll is used; individual
/// Arm calls may override.
StatusCode NaturalCode(FaultSite site) {
  switch (site) {
    case FaultSite::kScanAdmit:
      return StatusCode::kResourceExhausted;
    case FaultSite::kDiskCorrupt:
      return StatusCode::kCorruption;  // nominal; effect is a byte flip
    default:
      return StatusCode::kIoError;
  }
}

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kDiskRead:
      return "disk-read";
    case FaultSite::kDiskWrite:
      return "disk-write";
    case FaultSite::kDiskAlloc:
      return "disk-alloc";
    case FaultSite::kDiskCorrupt:
      return "disk-corrupt";
    case FaultSite::kFactScan:
      return "fact-scan";
    case FaultSite::kAggScan:
      return "agg-scan";
    case FaultSite::kScanAdmit:
      return "scan-admit";
    case FaultSite::kCacheInsert:
      return "cache-insert";
    case FaultSite::kWalAppend:
      return "wal-append";
    case FaultSite::kWalFsync:
      return "wal-fsync";
    case FaultSite::kSnapshotWrite:
      return "snapshot-write";
    case FaultSite::kSnapshotRename:
      return "snapshot-rename";
    case FaultSite::kRecoveryRead:
      return "recovery-read";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(FaultSite site, double probability, StatusCode code,
                        uint64_t max_faults, uint64_t skip_ops) {
  if (!(probability >= 0.0)) probability = 0.0;  // also catches NaN
  if (probability > 1.0) probability = 1.0;
  Site& s = sites_[static_cast<size_t>(site)];
  s.prob_bits.store(static_cast<uint64_t>(std::ldexp(probability, 32)),
                    std::memory_order_relaxed);
  s.remaining.store(max_faults, std::memory_order_relaxed);
  s.skip.store(static_cast<int64_t>(skip_ops), std::memory_order_relaxed);
  s.code.store(static_cast<uint8_t>(code), std::memory_order_relaxed);
  armed_sites_.fetch_or(1u << static_cast<uint32_t>(site),
                        std::memory_order_release);
}

void FaultInjector::ArmAll(double probability, uint64_t max_faults) {
  for (uint32_t i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    Arm(site, probability, NaturalCode(site), max_faults);
  }
}

void FaultInjector::Disarm(FaultSite site) {
  armed_sites_.fetch_and(~(1u << static_cast<uint32_t>(site)),
                         std::memory_order_release);
  sites_[static_cast<size_t>(site)].prob_bits.store(0,
                                                    std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  armed_sites_.store(0, std::memory_order_release);
  for (Site& s : sites_) s.prob_bits.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
}

void FaultInjector::ResetCounters() {
  for (Site& s : sites_) {
    s.injected.store(0, std::memory_order_relaxed);
    s.checked.store(0, std::memory_order_relaxed);
  }
}

uint32_t FaultInjector::NextRand32() {
  // Per-thread xorshift128+, reseeded whenever Seed() bumps the epoch.
  // Thread ordinals make single-threaded runs exactly reproducible and
  // give each storm thread an independent stream.
  struct ThreadRng {
    uint64_t s0 = 0, s1 = 0;
    uint64_t epoch = ~0ull;
  };
  static std::atomic<uint64_t> ordinal_counter{0};
  thread_local ThreadRng rng;
  thread_local uint64_t ordinal = ordinal_counter.fetch_add(1);
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (rng.epoch != epoch) {
    uint64_t sm = seed_.load(std::memory_order_relaxed) ^
                  (ordinal * 0xA24BAED4963EE407ull);
    rng.s0 = SplitMix64(sm);
    rng.s1 = SplitMix64(sm);
    rng.epoch = epoch;
  }
  uint64_t x = rng.s0;
  const uint64_t y = rng.s1;
  rng.s0 = y;
  x ^= x << 23;
  rng.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
  return static_cast<uint32_t>((rng.s1 + y) >> 16);
}

bool FaultInjector::ShouldInject(FaultSite site) {
  const uint32_t bit = 1u << static_cast<uint32_t>(site);
  if ((armed_sites_.load(std::memory_order_acquire) & bit) == 0) return false;
  Site& s = sites_[static_cast<size_t>(site)];
  s.checked.fetch_add(1, std::memory_order_relaxed);
  if (s.skip.load(std::memory_order_relaxed) > 0) {
    // Benign race: concurrent ops may each consume a skip slot; the count
    // drains monotonically, which is all tests rely on.
    if (s.skip.fetch_sub(1, std::memory_order_relaxed) > 0) return false;
  }
  const uint64_t prob = s.prob_bits.load(std::memory_order_relaxed);
  if (prob < (1ull << 32) && static_cast<uint64_t>(NextRand32()) >= prob) {
    return false;
  }
  // Budget: CAS-decrement so at most `max_faults` faults fire.
  uint64_t rem = s.remaining.load(std::memory_order_relaxed);
  while (rem != kUnlimited) {
    if (rem == 0) return false;
    if (s.remaining.compare_exchange_weak(rem, rem - 1,
                                          std::memory_order_relaxed)) {
      break;
    }
  }
  s.injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::Check(FaultSite site) {
  if (!ShouldInject(site)) return Status::OK();
  const Site& s = sites_[static_cast<size_t>(site)];
  const StatusCode code =
      static_cast<StatusCode>(s.code.load(std::memory_order_relaxed));
  return Status(code,
                std::string("injected fault at ") + FaultSiteName(site));
}

void FaultInjector::CorruptBuffer(void* data, size_t n) {
  if (data == nullptr || n == 0) return;
  auto* bytes = static_cast<uint8_t*>(data);
  bytes[NextRand32() % n] ^= 0x40;
}

uint64_t FaultInjector::faults_injected() const {
  uint64_t total = 0;
  for (const Site& s : sites_) {
    total += s.injected.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FaultInjector::faults_injected(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].injected.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::checks() const {
  uint64_t total = 0;
  for (const Site& s : sites_) {
    total += s.checked.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace chunkcache
