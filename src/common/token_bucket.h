#ifndef CHUNKCACHE_COMMON_TOKEN_BUCKET_H_
#define CHUNKCACHE_COMMON_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>

namespace chunkcache {

/// Deterministic token bucket: `rate_per_sec` tokens accrue continuously up
/// to a cap of `burst`; TryAcquire succeeds while at least `cost` tokens are
/// banked. Time is an explicit nanosecond argument rather than an internal
/// clock read, so admission decisions are exactly reproducible in tests
/// (feed a synthetic clock) and the caller controls which clock the server
/// runs on (steady_clock — wall adjustments must not mint tokens).
///
/// Not thread-safe by itself; callers serialize access (the admission
/// controller holds its buckets under one mutex).
class TokenBucket {
 public:
  /// rate_per_sec <= 0 means unlimited: every TryAcquire succeeds.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_) {}

  bool TryAcquire(uint64_t now_ns, double cost = 1.0) {
    if (rate_ <= 0.0) return true;
    Refill(now_ns);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Banked tokens after refilling to `now_ns` (for tests and stats).
  double TokensAt(uint64_t now_ns) {
    if (rate_ <= 0.0) return burst_;
    Refill(now_ns);
    return tokens_;
  }

  double rate_per_sec() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(uint64_t now_ns) {
    // Out-of-order timestamps (two threads read the clock, then contend on
    // the admission mutex in the other order) must not mint tokens or move
    // time backwards.
    if (now_ns <= last_ns_) return;
    const double elapsed_s = static_cast<double>(now_ns - last_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ns_ = now_ns;
  }

  double rate_;
  double burst_;
  double tokens_;
  uint64_t last_ns_ = 0;
};

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_TOKEN_BUCKET_H_
