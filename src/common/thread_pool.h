#ifndef CHUNKCACHE_COMMON_THREAD_POOL_H_
#define CHUNKCACHE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chunkcache {

/// Counts outstanding tasks and lets one thread block until they finish.
/// The usual protocol: Add(n) before submitting n tasks, each task calls
/// Done() when it completes, the coordinator calls Wait(). Add may be
/// called again after Wait returns (the group is reusable).
class WaitGroup {
 public:
  void Add(uint64_t n = 1);
  void Done();
  void Wait();

  /// Outstanding count right now (racy by nature; for stats display only).
  uint64_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t count_ = 0;
};

/// Cumulative executor counters. `steal_queue_depth` is always zero — the
/// pool is deliberately work-stealing-free (one shared FIFO, no per-worker
/// deques) — and is reported so monitoring can assert that invariant.
struct ThreadPoolStats {
  uint64_t tasks_submitted = 0;
  uint64_t tasks_run = 0;
  uint64_t queue_peak = 0;  ///< High-water mark of the shared queue.
  uint64_t steal_queue_depth = 0;
};

/// Fixed-size thread-pool executor with a single shared FIFO queue — no
/// work stealing, no dynamic sizing, no external dependencies. Tasks are
/// plain closures; completion is coordinated through WaitGroup (the pool
/// itself never exposes futures). Submit is safe from any thread,
/// including pool workers.
///
/// The destructor drains the queue: every task submitted before
/// destruction runs to completion, then workers join. Tasks must therefore
/// never outlive the objects they capture; owners that hand `this` to
/// tasks must destroy the pool first (declare it last).
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

  uint32_t num_threads() const { return static_cast<uint32_t>(workers_.size()); }

  /// True when called from one of *any* ThreadPool's worker threads. Used
  /// to keep nested parallelism from deadlocking: a task running on the
  /// pool must not submit subtasks and block on them, so parallel
  /// fan-out helpers fall back to serial execution inside workers.
  static bool InWorkerThread();

  ThreadPoolStats stats() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  ThreadPoolStats stats_;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..n-1) across the pool, with the calling thread participating;
/// returns when every index has been processed. Indexes are claimed from a
/// shared cursor, so long and short items balance without stealing. When
/// `pool` is null, n < 2, or the caller is itself a pool worker (nested
/// fan-out would risk deadlock), runs serially on the calling thread.
void ParallelFor(ThreadPool* pool, uint64_t n,
                 const std::function<void(uint64_t)>& fn);

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_THREAD_POOL_H_
