#ifndef CHUNKCACHE_COMMON_RETRY_H_
#define CHUNKCACHE_COMMON_RETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace chunkcache {

/// Bounded-retry policy with exponential backoff and multiplicative
/// jitter. Attempt k (k = 0 for the first retry) sleeps
///   min(backoff_base_us * multiplier^k, backoff_max_us) * U(1-jitter, 1)
/// so concurrent retriers decorrelate instead of stampeding the backend.
struct RetryPolicy {
  int max_attempts = 3;            ///< Total tries, including the first.
  uint64_t backoff_base_us = 100;  ///< Sleep before the first retry.
  double backoff_multiplier = 2.0;
  uint64_t backoff_max_us = 5000;  ///< Cap on any single sleep.
  double jitter = 0.5;             ///< Fraction of the sleep randomized away.
};

/// Which failures are worth re-attempting. Deadline/cancellation are the
/// caller giving up — retrying those would fight the caller's intent —
/// and logic errors (InvalidArgument, Internal, ...) won't heal on retry.
inline bool IsRetryable(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

/// Absolute point in time a query must finish by. Default-constructed
/// deadlines are infinite, so "no deadline" needs no special-casing at
/// call sites. Uses steady_clock: wall-clock adjustments must not expire
/// in-flight queries.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : when_(Clock::time_point::max()) {}
  explicit Deadline(Clock::time_point when) : when_(when) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMs(uint64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline AfterUs(uint64_t us) {
    return Deadline(Clock::now() + std::chrono::microseconds(us));
  }

  bool infinite() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= when_; }
  Clock::time_point time_point() const { return when_; }

  /// Time left; zero when expired, Clock::duration::max() when infinite.
  Clock::duration remaining() const {
    if (infinite()) return Clock::duration::max();
    auto now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

 private:
  Clock::time_point when_;
};

/// Cooperative cancellation. A CancellationToken is a cheap view onto a
/// CancellationSource's flag; a default-constructed token can never be
/// cancelled, so "no cancellation" also needs no special-casing.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<std::atomic<bool>> flag_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }
  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-query execution control threaded through Execute, the miss
/// pipeline, and scan admission. Defaults mean "run forever, never
/// cancelled", so pre-existing call sites keep their behaviour.
struct ExecControl {
  Deadline deadline;
  CancellationToken cancel;

  /// Cancellation is checked first: an explicit cancel should win over a
  /// deadline that happens to expire at the same moment.
  Status Check() const {
    if (cancel.cancelled()) return Status::Cancelled("query cancelled");
    if (deadline.expired()) {
      return Status::DeadlineExceeded("query deadline expired");
    }
    return Status::OK();
  }
};

namespace retry_internal {
/// Per-thread jitter source; determinism is not required here (jitter
/// exists precisely to decorrelate), so seeding from the thread id is fine.
inline uint64_t NextJitterBits() {
  thread_local uint64_t state =
      0x9E3779B97F4A7C15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}
}  // namespace retry_internal

/// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
/// times, sleeping with jittered exponential backoff between attempts.
/// Never sleeps past the deadline, and re-checks `ctrl` before each
/// attempt so cancellation interrupts a retry loop promptly. Each retry
/// performed increments *retries_out (if non-null).
template <typename Fn>
auto RunWithRetry(const RetryPolicy& policy, const ExecControl& ctrl,
                  uint64_t* retries_out, Fn&& fn) -> decltype(fn()) {
  using R = decltype(fn());
  double backoff_us = static_cast<double>(policy.backoff_base_us);
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0;; ++attempt) {
    Status ctrl_status = ctrl.Check();
    if (!ctrl_status.ok()) return R(ctrl_status);
    R result = fn();
    Status status = [&result]() -> Status {
      if constexpr (std::is_same_v<R, Status>) {
        return result;
      } else {
        return result.status();
      }
    }();
    if constexpr (std::is_same_v<R, Status>) {
      if (status.ok()) return result;
    } else {
      if (result.ok()) return result;
    }
    if (attempt + 1 >= attempts || !IsRetryable(status)) return result;

    double sleep_us = backoff_us;
    if (sleep_us > static_cast<double>(policy.backoff_max_us)) {
      sleep_us = static_cast<double>(policy.backoff_max_us);
    }
    if (policy.jitter > 0.0) {
      const double u = static_cast<double>(retry_internal::NextJitterBits() >>
                                           11) /  // 53 random bits
                       9007199254740992.0;        // 2^53
      sleep_us *= 1.0 - policy.jitter * u;
    }
    auto sleep_for = std::chrono::microseconds(
        static_cast<uint64_t>(sleep_us < 0.0 ? 0.0 : sleep_us));
    auto left = ctrl.deadline.remaining();
    if (left <= std::chrono::steady_clock::duration::zero()) {
      return R(Status::DeadlineExceeded("query deadline expired"));
    }
    if (std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            sleep_for) > left &&
        !ctrl.deadline.infinite()) {
      sleep_for = std::chrono::duration_cast<std::chrono::microseconds>(left);
    }
    if (sleep_for.count() > 0) std::this_thread::sleep_for(sleep_for);
    backoff_us *= policy.backoff_multiplier;
    if (retries_out != nullptr) ++*retries_out;
  }
}

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_RETRY_H_
