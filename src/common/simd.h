#ifndef CHUNKCACHE_COMMON_SIMD_H_
#define CHUNKCACHE_COMMON_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

/// Runtime SIMD dispatch.
///
/// Kernels come in pairs: the scalar variant is the exact pre-SIMD code
/// path (the ablation baseline), the AVX2 variant must produce bit-identical
/// results. Dispatch happens once per *bulk call*, never per element: hot
/// paths either read a per-kernel function pointer (the word kernels below)
/// or branch on ActiveLevel() at the top of a batched loop.
///
/// The active level is resolved once at startup from CPUID, clamped by the
/// CHUNKCACHE_SIMD environment variable ("scalar" or "avx2") so tests and CI
/// can force the fallback path on AVX2 hardware. Tests may flip the level
/// in-process via ScopedLevel; production code never does.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CHUNKCACHE_SIMD_X86_64 1
#else
#define CHUNKCACHE_SIMD_X86_64 0
#endif

namespace chunkcache::simd {

enum class IsaLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// "scalar" / "avx2".
const char* IsaLevelName(IsaLevel level);

/// Best level this CPU supports (CPUID, memoized; ignores the override).
IsaLevel DetectedLevel();

/// The CHUNKCACHE_SIMD override as seen at startup, or "none".
const char* OverrideName();

/// Level kernels currently dispatch to: min(DetectedLevel, override),
/// unless a test re-pinned it via SetActiveLevel/ScopedLevel.
IsaLevel ActiveLevel();

/// Re-pins the active level (clamped to DetectedLevel()) and rebinds the
/// kernel table. For tests and benchmarks; not thread-safe against
/// concurrently running kernels, so only call from quiesced code.
void SetActiveLevel(IsaLevel level);

/// RAII pin for tests/benchmarks: forces `level` for the scope's lifetime.
class ScopedLevel {
 public:
  explicit ScopedLevel(IsaLevel level) : prev_(ActiveLevel()) {
    SetActiveLevel(level);
  }
  ~ScopedLevel() { SetActiveLevel(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  IsaLevel prev_;
};

// ---------------------------------------------------------------------------
// Dispatched word kernels (bitmap hot paths). Function pointers are resolved
// once at startup (and rebound by SetActiveLevel); callers pay one indirect
// call per bulk operation.
// ---------------------------------------------------------------------------

using AndWordsFn = void (*)(uint64_t* dst, const uint64_t* src, size_t n);
using OrWordsFn = void (*)(uint64_t* dst, const uint64_t* src, size_t n);
using PopcountWordsFn = uint64_t (*)(const uint64_t* w, size_t n);

struct WordKernels {
  std::atomic<AndWordsFn> and_words;
  std::atomic<OrWordsFn> or_words;
  std::atomic<PopcountWordsFn> popcount_words;
};

/// The live kernel table (stable address; pointers swap on SetActiveLevel).
WordKernels& Words();

/// dst[i] &= src[i] for i < n.
inline void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Words().and_words.load(std::memory_order_relaxed)(dst, src, n);
}

/// dst[i] |= src[i] for i < n.
inline void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Words().or_words.load(std::memory_order_relaxed)(dst, src, n);
}

/// Total set bits across w[0..n).
inline uint64_t PopcountWords(const uint64_t* w, size_t n) {
  return Words().popcount_words.load(std::memory_order_relaxed)(w, n);
}

}  // namespace chunkcache::simd

#endif  // CHUNKCACHE_COMMON_SIMD_H_
