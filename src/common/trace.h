#ifndef CHUNKCACHE_COMMON_TRACE_H_
#define CHUNKCACHE_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace chunkcache {

/// One node of a per-query span tree. Spans are stored flat in the order
/// they were opened (pre-order: a child is always opened after its parent),
/// with `parent` indexing into QueryTrace::spans; the root has
/// parent == kNoParentSpan. Start times are monotonic-clock nanoseconds
/// relative to the root span's start, so a trace is self-contained.
inline constexpr uint32_t kNoParentSpan = ~uint32_t{0};

struct TraceSpan {
  uint32_t parent = kNoParentSpan;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Tags in append order. Values are pre-rendered strings so a trace is
  /// cheap to export and bit-stable to compare (durations excluded).
  std::vector<std::pair<std::string, std::string>> tags;
};

/// A completed query's span tree. `id` is assigned by the recorder in
/// admission order (1-based, monotonically increasing).
struct QueryTrace {
  uint64_t id = 0;
  std::vector<TraceSpan> spans;
};

/// Bounded retention of completed traces: a mutex-guarded ring buffer
/// touched once per query (at Finish), never on the span hot path. When
/// full, the oldest trace is dropped and counted.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Admits `trace` (assigning its id). Drops the oldest when full.
  void Record(QueryTrace trace);

  /// The most recent min(n, retained) traces, oldest first.
  std::vector<QueryTrace> Latest(size_t n) const;

  /// The most recent min(n, retained) traces as JSON Lines — one
  /// self-contained JSON object per trace:
  ///   {"trace": id, "spans": [{"name": ..., "parent": -1|idx,
  ///    "start_ns": ..., "duration_ns": ..., "tags": {...}}, ...]}
  std::string ExportJsonl(size_t n) const;

  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;
  uint64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  std::deque<QueryTrace> ring_;
};

/// Builds one query's span tree on the caller's stack. Single-threaded by
/// design: every span the middle tier emits is opened and closed on the
/// query's own thread (background work is attributed via tags, not spans).
///
/// Disarmed (null recorder) every method is an immediate branch-and-return
/// — no clock reads, no allocation — so the hooks can stay compiled into
/// the hot path (bench_observability measures both modes).
class TraceBuilder {
 public:
  static constexpr uint32_t kNoSpan = ~uint32_t{0};

  /// `recorder == nullptr` disarms the builder.
  TraceBuilder(TraceRecorder* recorder, const char* root_name);

  /// Finishes (closing open spans) and records, unless Finish already ran.
  ~TraceBuilder();

  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;

  bool armed() const { return recorder_ != nullptr; }

  /// Root span index (kNoSpan when disarmed — valid to pass as `parent`).
  uint32_t root() const { return armed() ? 0 : kNoSpan; }

  /// Opens a child of `parent`; returns its index (kNoSpan when disarmed).
  uint32_t BeginSpan(const char* name, uint32_t parent);

  /// Closes `span` (no-op on kNoSpan). Spans still open at Finish are
  /// closed then — error paths may simply return.
  void EndSpan(uint32_t span);

  void Tag(uint32_t span, const char* key, std::string value);
  void Tag(uint32_t span, const char* key, uint64_t value);

  /// Closes every open span (root included) and hands the trace to the
  /// recorder. Idempotent; the destructor calls it as a safety net.
  void Finish();

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static constexpr uint64_t kOpen = ~uint64_t{0};

  TraceRecorder* recorder_;
  uint64_t t0_ = 0;
  QueryTrace trace_;
  bool finished_ = false;
};

/// RAII span: closes on scope exit. Safe to construct disarmed.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuilder* b, const char* name, uint32_t parent)
      : b_(b), span_(b->BeginSpan(name, parent)) {}
  ~ScopedSpan() { b_->EndSpan(span_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint32_t id() const { return span_; }

 private:
  TraceBuilder* b_;
  uint32_t span_;
};

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_TRACE_H_
