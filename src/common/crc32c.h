#ifndef CHUNKCACHE_COMMON_CRC32C_H_
#define CHUNKCACHE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace chunkcache {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `n` bytes of `data`, chained through `seed` (pass a previous return
/// value to continue a running checksum; 0 starts fresh).
///
/// Dispatches once at startup: the SSE4.2 crc32 instruction when the CPU
/// has it, otherwise a slicing-by-8 table implementation. Both produce the
/// standard CRC-32C, so checksums are portable across machines.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// The slicing-by-8 table implementation, exposed as the reference the
/// hardware path is tested against (all lengths x alignments must agree).
uint32_t Crc32cSoftware(const void* data, size_t n, uint32_t seed = 0);

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_CRC32C_H_
