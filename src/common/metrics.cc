#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace chunkcache {

namespace metrics_internal {

uint32_t ThisThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace metrics_internal

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

void HistogramSnapshot::Merge(const HistogramSnapshot& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (size_t b = 0; b < kHistogramBuckets; ++b) buckets[b] += o.buckets[b];
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile in the recorded population (nearest-rank on a
  // zero-based index, like std::nth_element on the sorted stream).
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(count - 1));
  uint64_t cum = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    cum += buckets[b];
    if (cum > rank) {
      const uint64_t upper = HistogramBucketUpper(b);
      return static_cast<double>(
          std::clamp<uint64_t>(upper, min, max));
    }
  }
  return static_cast<double>(max);  // unreachable when counts are consistent
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::Record(uint64_t v) {
  Stripe& s = stripes_[metrics_internal::ThisThreadStripe() &
                       (kHistStripes - 1)];
  s.buckets[HistogramBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  uint64_t min = ~uint64_t{0};
  for (const Stripe& s : stripes_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      const uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  out.min = out.count == 0 ? 0 : min;
  if (out.count == 0) out.max = 0;
  return out;
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "chunkcache_";
  for (char c : name) {
    out.push_back((c == '.' || c == '-') ? '_' : c);
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

std::string MetricsRegistry::ExportPrometheus() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s counter\n%s %" PRIu64 "\n", p.c_str(), p.c_str(),
            v);
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n%s %" PRId64 "\n", p.c_str(), p.c_str(),
            v);
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s histogram\n", p.c_str());
    // Cumulative buckets up to the last non-empty one, then +Inf.
    size_t last = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    uint64_t cum = 0;
    for (size_t b = 0; b <= last; ++b) {
      cum += h.buckets[b];
      AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", p.c_str(),
              HistogramBucketUpper(b), cum);
    }
    AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", p.c_str(), h.count);
    AppendF(&out, "%s_sum %" PRIu64 "\n", p.c_str(), h.sum);
    AppendF(&out, "%s_count %" PRIu64 "\n", p.c_str(), h.count);
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  const Snapshot snap = TakeSnapshot();
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    AppendF(&out, "%s\"%s\": %" PRIu64, first ? "" : ", ", name.c_str(), v);
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    AppendF(&out, "%s\"%s\": %" PRId64, first ? "" : ", ", name.c_str(), v);
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    AppendF(&out,
            "%s\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
            ", \"min\": %" PRIu64 ", \"max\": %" PRIu64
            ", \"mean\": %.3f, \"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f}",
            first ? "" : ", ", name.c_str(), h.count, h.sum, h.min, h.max,
            h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99));
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace chunkcache
