#include "common/simd.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#if CHUNKCACHE_SIMD_X86_64
#include <immintrin.h>
#endif

namespace chunkcache::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar word kernels — byte-for-byte the loops Bitmap used before dispatch
// existed; they stay the ablation baseline for CHUNKCACHE_SIMD=scalar.
// ---------------------------------------------------------------------------

void AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

uint64_t PopcountWordsScalar(const uint64_t* w, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(w[i]);
  return total;
}

#if CHUNKCACHE_SIMD_X86_64

__attribute__((target("avx2"))) void AndWordsAvx2(uint64_t* dst,
                                                  const uint64_t* src,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_and_si256(a1, b1));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void OrWordsAvx2(uint64_t* dst,
                                                 const uint64_t* src,
                                                 size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_or_si256(a1, b1));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

/// Nibble-LUT popcount (vpshufb) folded into 64-bit lanes via vpsadbw.
__attribute__((target("avx2"))) uint64_t PopcountWordsAvx2(const uint64_t* w,
                                                           size_t n) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += std::popcount(w[i]);
  return total;
}

#endif  // CHUNKCACHE_SIMD_X86_64

IsaLevel ParseOverride(const char* s, IsaLevel fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "scalar") == 0) return IsaLevel::kScalar;
  if (std::strcmp(s, "avx2") == 0) return IsaLevel::kAvx2;
  return fallback;  // unknown values keep the detected level
}

std::atomic<IsaLevel>& ActiveLevelCell() {
  static std::atomic<IsaLevel> level{[] {
    IsaLevel detected = DetectedLevel();
    IsaLevel wanted = ParseOverride(std::getenv("CHUNKCACHE_SIMD"), detected);
    return wanted <= detected ? wanted : detected;
  }()};
  return level;
}

void BindKernels(WordKernels& k, IsaLevel level) {
#if CHUNKCACHE_SIMD_X86_64
  if (level == IsaLevel::kAvx2) {
    k.and_words.store(&AndWordsAvx2, std::memory_order_relaxed);
    k.or_words.store(&OrWordsAvx2, std::memory_order_relaxed);
    k.popcount_words.store(&PopcountWordsAvx2, std::memory_order_relaxed);
    return;
  }
#else
  (void)level;
#endif
  k.and_words.store(&AndWordsScalar, std::memory_order_relaxed);
  k.or_words.store(&OrWordsScalar, std::memory_order_relaxed);
  k.popcount_words.store(&PopcountWordsScalar, std::memory_order_relaxed);
}

}  // namespace

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IsaLevel DetectedLevel() {
#if CHUNKCACHE_SIMD_X86_64
  // The kAvx2 tier bundles BMI2: the codec's varint parse uses PEXT.
  // Every CPU that ships AVX2 also ships BMI2 (both arrived with
  // Haswell/Excavator), so in practice the pair gates together; checking
  // both keeps the dispatch honest on hypothetical trimmed-down cores.
  static const IsaLevel detected = __builtin_cpu_supports("avx2") != 0 &&
                                           __builtin_cpu_supports("bmi2") != 0
                                       ? IsaLevel::kAvx2
                                       : IsaLevel::kScalar;
  return detected;
#else
  return IsaLevel::kScalar;
#endif
}

const char* OverrideName() {
  static const char* name = [] {
    const char* s = std::getenv("CHUNKCACHE_SIMD");
    if (s == nullptr) return "none";
    if (std::strcmp(s, "scalar") == 0) return "scalar";
    if (std::strcmp(s, "avx2") == 0) return "avx2";
    return "invalid";
  }();
  return name;
}

IsaLevel ActiveLevel() {
  return ActiveLevelCell().load(std::memory_order_relaxed);
}

WordKernels& Words() {
  // Atomics are not movable, so bind-in-place on first use.
  static WordKernels kernels;
  static const bool bound = [] {
    BindKernels(kernels, ActiveLevel());
    return true;
  }();
  (void)bound;
  return kernels;
}

void SetActiveLevel(IsaLevel level) {
  IsaLevel detected = DetectedLevel();
  if (level > detected) level = detected;
  ActiveLevelCell().store(level, std::memory_order_relaxed);
  BindKernels(Words(), level);
}

}  // namespace chunkcache::simd
