#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace chunkcache {

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void TraceRecorder::Record(QueryTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  trace.id = next_id_++;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(trace));
}

std::vector<QueryTrace> TraceRecorder::Latest(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = std::min(n, ring_.size());
  return std::vector<QueryTrace>(ring_.end() - static_cast<long>(take),
                                 ring_.end());
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string TraceRecorder::ExportJsonl(size_t n) const {
  std::string out;
  char buf[96];
  for (const QueryTrace& t : Latest(n)) {
    std::snprintf(buf, sizeof(buf), "{\"trace\": %" PRIu64 ", \"spans\": [",
                  t.id);
    out += buf;
    for (size_t i = 0; i < t.spans.size(); ++i) {
      const TraceSpan& s = t.spans[i];
      if (i != 0) out += ", ";
      out += "{\"name\": \"";
      AppendJsonEscaped(&out, s.name);
      std::snprintf(buf, sizeof(buf),
                    "\", \"parent\": %lld, \"start_ns\": %" PRIu64
                    ", \"duration_ns\": %" PRIu64 ", \"tags\": {",
                    s.parent == kNoParentSpan
                        ? -1ll
                        : static_cast<long long>(s.parent),
                    s.start_ns, s.duration_ns);
      out += buf;
      for (size_t k = 0; k < s.tags.size(); ++k) {
        if (k != 0) out += ", ";
        out += '"';
        AppendJsonEscaped(&out, s.tags[k].first);
        out += "\": \"";
        AppendJsonEscaped(&out, s.tags[k].second);
        out += '"';
      }
      out += "}}";
    }
    out += "]}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceBuilder
// ---------------------------------------------------------------------------

TraceBuilder::TraceBuilder(TraceRecorder* recorder, const char* root_name)
    : recorder_(recorder) {
  if (!armed()) return;
  t0_ = NowNs();
  TraceSpan root;
  root.parent = kNoParentSpan;
  root.name = root_name;
  root.start_ns = 0;
  root.duration_ns = kOpen;
  trace_.spans.push_back(std::move(root));
}

TraceBuilder::~TraceBuilder() { Finish(); }

uint32_t TraceBuilder::BeginSpan(const char* name, uint32_t parent) {
  if (!armed()) return kNoSpan;
  TraceSpan span;
  span.parent = parent == kNoSpan ? 0 : parent;
  span.name = name;
  span.start_ns = NowNs() - t0_;
  span.duration_ns = kOpen;
  trace_.spans.push_back(std::move(span));
  return static_cast<uint32_t>(trace_.spans.size() - 1);
}

void TraceBuilder::EndSpan(uint32_t span) {
  if (!armed() || span == kNoSpan) return;
  TraceSpan& s = trace_.spans[span];
  if (s.duration_ns == kOpen) s.duration_ns = NowNs() - t0_ - s.start_ns;
}

void TraceBuilder::Tag(uint32_t span, const char* key, std::string value) {
  if (!armed() || span == kNoSpan) return;
  trace_.spans[span].tags.emplace_back(key, std::move(value));
}

void TraceBuilder::Tag(uint32_t span, const char* key, uint64_t value) {
  if (!armed() || span == kNoSpan) return;
  trace_.spans[span].tags.emplace_back(key, std::to_string(value));
}

void TraceBuilder::Finish() {
  if (!armed() || finished_) return;
  finished_ = true;
  const uint64_t now = NowNs() - t0_;
  for (TraceSpan& s : trace_.spans) {
    if (s.duration_ns == kOpen) {
      s.duration_ns = now > s.start_ns ? now - s.start_ns : 0;
    }
  }
  recorder_->Record(std::move(trace_));
}

}  // namespace chunkcache
