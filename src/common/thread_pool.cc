#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace chunkcache {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

// ----------------------------------------------------------------------------
// WaitGroup
// ----------------------------------------------------------------------------

void WaitGroup::Add(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  CHUNKCACHE_CHECK(count_ > 0);
  if (--count_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

uint64_t WaitGroup::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

// ----------------------------------------------------------------------------
// ThreadPool
// ----------------------------------------------------------------------------

ThreadPool::ThreadPool(uint32_t num_threads) {
  CHUNKCACHE_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHUNKCACHE_CHECK(!shutdown_);
    queue_.push_back(std::move(fn));
    ++stats_.tasks_submitted;
    if (queue_.size() > stats_.queue_peak) stats_.queue_peak = queue_.size();
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain semantics: run everything submitted before shutdown.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.tasks_run;
    }
    task();
  }
}

// ----------------------------------------------------------------------------
// ParallelFor
// ----------------------------------------------------------------------------

void ParallelFor(ThreadPool* pool, uint64_t n,
                 const std::function<void(uint64_t)>& fn) {
  if (pool == nullptr || n < 2 || ThreadPool::InWorkerThread()) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared cursor: workers and the caller claim indexes until exhausted.
  auto cursor = std::make_shared<std::atomic<uint64_t>>(0);
  auto wg = std::make_shared<WaitGroup>();
  const uint64_t helpers =
      std::min<uint64_t>(pool->num_threads(), n > 1 ? n - 1 : 0);
  wg->Add(helpers);
  for (uint64_t h = 0; h < helpers; ++h) {
    pool->Submit([cursor, wg, &fn, n] {
      for (uint64_t i = cursor->fetch_add(1); i < n; i = cursor->fetch_add(1)) {
        fn(i);
      }
      wg->Done();
    });
  }
  for (uint64_t i = cursor->fetch_add(1); i < n; i = cursor->fetch_add(1)) {
    fn(i);
  }
  wg->Wait();
}

}  // namespace chunkcache
