#ifndef CHUNKCACHE_COMMON_INFLIGHT_TABLE_H_
#define CHUNKCACHE_COMMON_INFLIGHT_TABLE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/retry.h"
#include "common/status.h"

namespace chunkcache {

/// Singleflight table: at most one computation per key is in flight at a
/// time. The first caller to Acquire a key becomes its *owner* and must
/// eventually Publish a value or Fail with a status; every concurrent
/// Acquire of the same key joins as a *waiter* and blocks in Wait until
/// the owner resolves the slot. Publish and Fail both retire the table
/// entry, so a later Acquire after a failure starts a fresh computation
/// (waiters of the failed slot all observe the error — nobody silently
/// retries on their behalf).
///
/// Slots are shared_ptrs handed out to owner and waiters alike, so a slot
/// stays valid for late waiters even after it has been retired from the
/// map. Resolution is sticky: Wait on an already resolved slot returns
/// immediately.
///
/// Thread safety: all public methods are safe to call concurrently. The
/// table mutex is never held while blocking; waiters block only on their
/// slot's own condition variable.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class InflightTable {
 public:
  /// Shared state of one in-flight computation.
  class Slot {
   public:
    /// Blocks until the owner publishes or fails, then returns the value
    /// or the owner's error. Safe to call from many waiters.
    Result<Value> Wait() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return done_; });
      if (!status_.ok()) return status_;
      return value_;
    }

    /// Like Wait, but gives up at `deadline` with DeadlineExceeded. The
    /// slot itself is unaffected — the owner still resolves it for any
    /// remaining waiters, and a timed-out waiter may probe the cache or
    /// degrade instead of blocking on a wedged owner.
    Result<Value> WaitUntil(const Deadline& deadline) {
      std::unique_lock<std::mutex> lock(mu_);
      if (deadline.infinite()) {
        cv_.wait(lock, [&] { return done_; });
      } else if (!cv_.wait_until(lock, deadline.time_point(),
                                 [&] { return done_; })) {
        return Status::DeadlineExceeded("timed out waiting for owner");
      }
      if (!status_.ok()) return status_;
      return value_;
    }

   private:
    friend class InflightTable;
    void Resolve(Status status, Value value) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        status_ = std::move(status);
        value_ = std::move(value);
        done_ = true;
      }
      cv_.notify_all();
    }

    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    Status status_ = Status::OK();
    Value value_{};
  };
  using SlotPtr = std::shared_ptr<Slot>;

  /// Result of Acquire: the slot, and whether the caller owns it (and so
  /// must Publish or Fail it exactly once).
  struct Claim {
    SlotPtr slot;
    bool owner = false;
  };

  /// Claims `key`: inserts a fresh slot (owner = true) or joins the one
  /// already in flight (owner = false).
  Claim Acquire(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = slots_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Slot>();
      if (slots_.size() > peak_) peak_ = slots_.size();
    }
    return Claim{it->second, inserted};
  }

  /// True when a computation for `key` is currently in flight. Purely
  /// advisory (the answer can change immediately after); used to drop
  /// optional work like prefetch without blocking on it.
  bool Pending(const Key& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.find(key) != slots_.end();
  }

  /// Owner publishes the computed value: wakes every waiter with `value`
  /// and retires the entry.
  void Publish(const Key& key, const SlotPtr& slot, Value value) {
    Retire(key, slot);
    slot->Resolve(Status::OK(), std::move(value));
  }

  /// Owner reports failure: wakes every waiter with `status` and retires
  /// the entry, so the next Acquire of `key` recomputes from scratch.
  void Fail(const Key& key, const SlotPtr& slot, Status status) {
    Retire(key, slot);
    slot->Resolve(std::move(status), Value{});
  }

  /// Slots currently in flight.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

  /// High-water mark of concurrently in-flight slots.
  uint64_t peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  /// Erases `key` only if it still maps to `slot` — after a Fail the key
  /// may have been re-claimed by a fresh owner, whose entry must survive.
  void Retire(const Key& key, const SlotPtr& slot) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it != slots_.end() && it->second == slot) slots_.erase(it);
  }

  mutable std::mutex mu_;
  std::unordered_map<Key, SlotPtr, Hash> slots_;
  uint64_t peak_ = 0;
};

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_INFLIGHT_TABLE_H_
