#ifndef CHUNKCACHE_COMMON_STATUS_H_
#define CHUNKCACHE_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace chunkcache {

/// Error categories used across the library. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kCorruption,
  kIoError,
  kUnsupported,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a stable human-readable name for `code` ("Ok", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error carrier, modeled after absl::Status. Functions in
/// this library report failure through Status / Result<T> rather than
/// exceptions, so control flow stays explicit at call sites.
///
/// The OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "NotFound: chunk 17 absent" (or "Ok").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status (absl::StatusOr<T> shape).
/// Access to the value of a failed result aborts in debug builds via CHECK
/// inside value(); callers must test ok() first.
template <typename T>
class Result {
 public:
  /// Implicit from value so `return value;` works in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is engaged.
};

/// Propagates a non-OK Status out of the calling function.
#define CHUNKCACHE_RETURN_IF_ERROR(expr)          \
  do {                                            \
    ::chunkcache::Status _st = (expr);            \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value to `lhs` or
/// propagating the error. `lhs` must be a declaration, e.g.
///   CHUNKCACHE_ASSIGN_OR_RETURN(auto page, pool.Fetch(id));
#define CHUNKCACHE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()
#define CHUNKCACHE_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define CHUNKCACHE_ASSIGN_OR_RETURN_NAME(a, b) CHUNKCACHE_ASSIGN_OR_RETURN_CAT(a, b)
#define CHUNKCACHE_ASSIGN_OR_RETURN(lhs, expr) \
  CHUNKCACHE_ASSIGN_OR_RETURN_IMPL(            \
      CHUNKCACHE_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace chunkcache

#endif  // CHUNKCACHE_COMMON_STATUS_H_
