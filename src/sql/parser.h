#ifndef CHUNKCACHE_SQL_PARSER_H_
#define CHUNKCACHE_SQL_PARSER_H_

#include <string>
#include <vector>

#include "backend/multi_range_query.h"
#include "backend/star_join_query.h"
#include "common/status.h"
#include "schema/star_schema.h"

namespace chunkcache::sql {

/// Parses the paper's star-join SQL template (Section 5.2.1) against a
/// StarSchema and produces a normalized StarJoinQuery:
///
///   SELECT D0.L2, D2.L1, SUM(dollar_sales)
///   FROM Sales, D0, D2
///   WHERE D0.L2 BETWEEN 'D0.2.7' AND 'D0.2.33'
///     AND D2.L1 = 'D2.1.3'
///     AND D3.L2 >= 'D3.2.0' AND D3.L2 <= 'D3.2.24'
///   GROUP BY D0.L2, D2.L1
///
/// Rules (mirroring the paper's analysis):
///  - attributes are written `<dimension>.<level-name>`;
///  - values are quoted member names, resolved through the Domain Index;
///  - a predicate on a dimension's group-by level becomes the query's
///    selection range on that dimension;
///  - a predicate on any other level becomes a non-group-by predicate
///    (which restricts cache reuse to exact matches);
///  - grouped dimensions without predicates select their full level;
///  - every non-aggregate SELECT item must appear in GROUP BY, and the
///    aggregate must be SUM(<measure>) and/or COUNT(*).
///
/// Supported predicate forms: `=`, `BETWEEN x AND y`, `>=`, `<=`, `>`,
/// `<`, and `IN ('a','b',...)`; multiple predicates on one attribute are
/// intersected. IN-lists whose members do not form one contiguous run
/// yield a multi-range query (ParseMulti) — execute those with
/// core::ExecuteMultiRange.
class SqlParser {
 public:
  explicit SqlParser(const schema::StarSchema* schema) : schema_(schema) {}

  /// Parses `text` into a single-box StarJoinQuery; fails with Unsupported
  /// when the predicates select disjoint ranges (use ParseMulti then).
  Result<backend::StarJoinQuery> Parse(const std::string& text) const;

  /// Parses `text` into a MultiRangeQuery (single-box queries come back
  /// with one run per dimension).
  Result<backend::MultiRangeQuery> ParseMulti(const std::string& text) const;

 private:
  const schema::StarSchema* schema_;
};

/// Renders a StarJoinQuery back to SQL text (useful for logging and for
/// round-trip tests). Member names come from the Domain Index.
std::string ToSql(const schema::StarSchema& schema,
                  const backend::StarJoinQuery& query);

}  // namespace chunkcache::sql

#endif  // CHUNKCACHE_SQL_PARSER_H_
