#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <unordered_map>

namespace chunkcache::sql {

using backend::NonGroupByPredicate;
using backend::StarJoinQuery;
using schema::OrdinalRange;

namespace {

// ----------------------------------- Lexer ----------------------------------

enum class TokenType {
  kIdent,    // bare identifier
  kString,   // 'quoted member name'
  kSymbol,   // ( ) , . = < > <= >=
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // uppercased for idents? keep original; compare ci
  size_t pos;
};

bool IdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '\'') {
      const size_t start = ++i;
      while (i < text.size() && text[i] != '\'') ++i;
      if (i == text.size()) {
        return Status::InvalidArgument("SQL: unterminated string at offset " +
                                       std::to_string(start - 1));
      }
      tokens.push_back({TokenType::kString, text.substr(start, i - start),
                        start - 1});
      ++i;
      continue;
    }
    if (IdentChar(c)) {
      const size_t start = i;
      while (i < text.size() && IdentChar(text[i])) ++i;
      tokens.push_back({TokenType::kIdent, text.substr(start, i - start),
                        start});
      continue;
    }
    if (c == '<' || c == '>') {
      if (i + 1 < text.size() && text[i + 1] == '=') {
        tokens.push_back({TokenType::kSymbol, text.substr(i, 2), i});
        i += 2;
        continue;
      }
      tokens.push_back({TokenType::kSymbol, std::string(1, c), i});
      ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == '=' ||
        c == '*') {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), i});
      ++i;
      continue;
    }
    return Status::InvalidArgument("SQL: unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  tokens.push_back({TokenType::kEnd, "", text.size()});
  return tokens;
}

bool EqualsCi(const std::string& a, const char* b) {
  size_t n = 0;
  while (b[n] != '\0') ++n;
  if (a.size() != n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// ---------------------------------- Parser ----------------------------------

struct Attr {
  uint32_t dim;
  uint32_t level;
};

/// Accumulated constraint on one attribute: the intersection of the run
/// lists contributed by each predicate ( =, BETWEEN, comparisons, IN ).
struct RunConstraint {
  std::vector<OrdinalRange> runs;
  bool constrained = false;
};

class ParserImpl {
 public:
  ParserImpl(const schema::StarSchema* schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<backend::MultiRangeQuery> Run() {
    CHUNKCACHE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    CHUNKCACHE_RETURN_IF_ERROR(ParseSelectList());
    CHUNKCACHE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CHUNKCACHE_RETURN_IF_ERROR(ParseFromList());
    if (PeekKeyword("WHERE")) {
      Advance();
      CHUNKCACHE_RETURN_IF_ERROR(ParsePredicates());
    }
    CHUNKCACHE_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    CHUNKCACHE_RETURN_IF_ERROR(ExpectKeyword("BY"));
    CHUNKCACHE_RETURN_IF_ERROR(ParseGroupBy());
    if (Peek().type != TokenType::kEnd) {
      return Status::InvalidArgument("SQL: trailing input at offset " +
                                     std::to_string(Peek().pos));
    }
    return Bind();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdent && EqualsCi(Peek().text, kw);
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Status::InvalidArgument("SQL: expected '" + std::string(kw) +
                                     "' at offset " +
                                     std::to_string(Peek().pos));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (Peek().type != TokenType::kSymbol || Peek().text != sym) {
      return Status::InvalidArgument("SQL: expected '" + std::string(sym) +
                                     "' at offset " +
                                     std::to_string(Peek().pos));
    }
    Advance();
    return Status::OK();
  }

  /// Parses `<dim> . <level>` and binds it against the schema.
  Result<Attr> ParseAttr() {
    if (Peek().type != TokenType::kIdent) {
      return Status::InvalidArgument("SQL: expected attribute at offset " +
                                     std::to_string(Peek().pos));
    }
    const std::string dim_name = Advance().text;
    CHUNKCACHE_RETURN_IF_ERROR(ExpectSymbol("."));
    if (Peek().type != TokenType::kIdent) {
      return Status::InvalidArgument("SQL: expected level name at offset " +
                                     std::to_string(Peek().pos));
    }
    const std::string level_name = Advance().text;
    CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t dim,
                                schema_->DimensionIndex(dim_name));
    const auto& h = schema_->dimension(dim).hierarchy;
    for (uint32_t l = 1; l <= h.depth(); ++l) {
      if (EqualsCi(level_name, h.LevelName(l).c_str())) return Attr{dim, l};
    }
    return Status::NotFound("SQL: dimension '" + dim_name +
                            "' has no level '" + level_name + "'");
  }

  Status ParseSelectList() {
    while (true) {
      if (PeekKeyword("SUM") || PeekKeyword("MIN") || PeekKeyword("MAX") ||
          PeekKeyword("AVG") || PeekKeyword("COUNT")) {
        const bool is_count = PeekKeyword("COUNT");
        const std::string agg_name = Peek().text;
        Advance();
        CHUNKCACHE_RETURN_IF_ERROR(ExpectSymbol("("));
        if (is_count) {
          // COUNT(*) or COUNT(measure) — same value for a fact table.
          if (Peek().type == TokenType::kSymbol && Peek().text == "*") {
            Advance();
          } else if (Peek().type == TokenType::kIdent &&
                     Peek().text == schema_->measure_name()) {
            Advance();
          } else {
            return Status::InvalidArgument(
                "SQL: COUNT takes * or the measure");
          }
        } else {
          if (Peek().type != TokenType::kIdent ||
              Peek().text != schema_->measure_name()) {
            return Status::InvalidArgument(
                "SQL: " + agg_name + " argument must be the measure '" +
                schema_->measure_name() + "'");
          }
          Advance();
        }
        CHUNKCACHE_RETURN_IF_ERROR(ExpectSymbol(")"));
        has_aggregate_ = true;
      } else {
        CHUNKCACHE_ASSIGN_OR_RETURN(Attr attr, ParseAttr());
        select_attrs_.push_back(attr);
      }
      if (Peek().type == TokenType::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    if (!has_aggregate_) {
      return Status::InvalidArgument(
          "SQL: star-join template requires SUM(" + schema_->measure_name() +
          ") or COUNT(*) in the select list");
    }
    return Status::OK();
  }

  Status ParseFromList() {
    bool saw_fact = false;
    while (Peek().type == TokenType::kIdent) {
      const std::string name = Advance().text;
      if (name == schema_->fact_name()) {
        saw_fact = true;
      } else if (!schema_->DimensionIndex(name).ok()) {
        return Status::NotFound("SQL: unknown table '" + name + "'");
      }
      if (Peek().type == TokenType::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    if (!saw_fact) {
      return Status::InvalidArgument("SQL: FROM must include the fact table '" +
                                     schema_->fact_name() + "'");
    }
    return Status::OK();
  }

  Result<uint32_t> ResolveMember(const Attr& attr, const Token& tok) {
    if (tok.type != TokenType::kString) {
      return Status::InvalidArgument(
          "SQL: expected quoted member name at offset " +
          std::to_string(tok.pos));
    }
    return schema_->dimension(attr.dim).hierarchy.OrdinalOf(attr.level,
                                                            tok.text);
  }

  Status ParsePredicates() {
    while (true) {
      CHUNKCACHE_ASSIGN_OR_RETURN(Attr attr, ParseAttr());
      const uint32_t card =
          schema_->dimension(attr.dim).hierarchy.LevelCardinality(attr.level);
      const uint32_t key = attr.dim * 64 + attr.level;
      attrs_[key] = attr;
      std::vector<OrdinalRange> pred_runs;
      if (PeekKeyword("BETWEEN")) {
        Advance();
        CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t lo,
                                    ResolveMember(attr, Advance()));
        CHUNKCACHE_RETURN_IF_ERROR(ExpectKeyword("AND"));
        CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t hi,
                                    ResolveMember(attr, Advance()));
        if (lo > hi) {
          return Status::InvalidArgument(
              "SQL: BETWEEN bounds select an empty range");
        }
        pred_runs.push_back(OrdinalRange{lo, hi});
      } else if (PeekKeyword("IN")) {
        Advance();
        CHUNKCACHE_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<OrdinalRange> members;
        while (true) {
          CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t v,
                                      ResolveMember(attr, Advance()));
          members.push_back(OrdinalRange{v, v});
          if (Peek().type == TokenType::kSymbol && Peek().text == ",") {
            Advance();
            continue;
          }
          break;
        }
        CHUNKCACHE_RETURN_IF_ERROR(ExpectSymbol(")"));
        pred_runs = backend::NormalizeRuns(std::move(members));
      } else if (Peek().type == TokenType::kSymbol) {
        const std::string op = Advance().text;
        CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t v,
                                    ResolveMember(attr, Advance()));
        if (op == "=") {
          pred_runs.push_back(OrdinalRange{v, v});
        } else if (op == ">=") {
          pred_runs.push_back(OrdinalRange{v, card - 1});
        } else if (op == "<=") {
          pred_runs.push_back(OrdinalRange{0, v});
        } else if (op == ">") {
          if (v + 1 >= card) {
            return Status::InvalidArgument(
                "SQL: '> last-member' selects nothing");
          }
          pred_runs.push_back(OrdinalRange{v + 1, card - 1});
        } else if (op == "<") {
          if (v == 0) {
            return Status::InvalidArgument(
                "SQL: '< first-member' selects nothing");
          }
          pred_runs.push_back(OrdinalRange{0, v - 1});
        } else {
          return Status::InvalidArgument("SQL: unsupported operator '" + op +
                                         "'");
        }
      } else {
        return Status::InvalidArgument("SQL: expected operator at offset " +
                                       std::to_string(Peek().pos));
      }
      RunConstraint& constraint = constraints_[key];
      if (!constraint.constrained) {
        constraint.runs = std::move(pred_runs);
        constraint.constrained = true;
      } else {
        constraint.runs =
            backend::IntersectRuns(constraint.runs, pred_runs);
      }
      if (PeekKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseGroupBy() {
    while (true) {
      CHUNKCACHE_ASSIGN_OR_RETURN(Attr attr, ParseAttr());
      group_by_.push_back(attr);
      if (Peek().type == TokenType::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<backend::MultiRangeQuery> Bind() {
    backend::MultiRangeQuery q;
    q.group_by.num_dims = schema_->num_dims();
    for (const Attr& g : group_by_) {
      if (q.group_by.levels[g.dim] != 0 &&
          q.group_by.levels[g.dim] != g.level) {
        return Status::InvalidArgument(
            "SQL: dimension grouped at two levels");
      }
      q.group_by.levels[g.dim] = static_cast<uint8_t>(g.level);
    }
    // Every non-aggregate select item must be grouped.
    for (const Attr& s : select_attrs_) {
      if (q.group_by.levels[s.dim] != s.level) {
        return Status::InvalidArgument(
            "SQL: select item not in GROUP BY");
      }
    }
    // Default selections: the full level range as a single run.
    for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
      const auto& h = schema_->dimension(d).hierarchy;
      const uint32_t level = q.group_by.levels[d];
      q.runs[d] = {OrdinalRange{
          0, level == 0 ? 0 : h.LevelCardinality(level) - 1}};
    }
    // Distribute predicates: group-by level -> selection runs; otherwise
    // -> non-group-by predicate (which must stay a single range, matching
    // the paper's pre-aggregation filter model).
    for (const auto& [key, constraint] : constraints_) {
      const Attr attr = attrs_.at(key);
      if (constraint.runs.empty()) {
        return Status::InvalidArgument(
            "SQL: predicate selects an empty range");
      }
      if (attr.level == q.group_by.levels[attr.dim]) {
        q.runs[attr.dim] = constraint.runs;
      } else {
        if (constraint.runs.size() != 1) {
          return Status::Unsupported(
              "SQL: IN / disjoint ranges on a non-group-by attribute are "
              "not supported");
        }
        q.non_group_by.push_back(NonGroupByPredicate{attr.dim, attr.level,
                                                     constraint.runs[0]});
      }
    }
    // Canonical order for deterministic filter hashing and comparison.
    std::sort(q.non_group_by.begin(), q.non_group_by.end(),
              [](const NonGroupByPredicate& a, const NonGroupByPredicate& b) {
                return a.dim != b.dim ? a.dim < b.dim : a.level < b.level;
              });
    return q;
  }

  const schema::StarSchema* schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool has_aggregate_ = false;
  std::vector<Attr> select_attrs_;
  std::vector<Attr> group_by_;
  // dim*64+level -> accumulated run constraint.
  std::unordered_map<uint32_t, RunConstraint> constraints_;
  std::unordered_map<uint32_t, Attr> attrs_;
};

}  // namespace

Result<backend::MultiRangeQuery> SqlParser::ParseMulti(
    const std::string& text) const {
  CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  ParserImpl impl(schema_, std::move(tokens));
  return impl.Run();
}

Result<StarJoinQuery> SqlParser::Parse(const std::string& text) const {
  CHUNKCACHE_ASSIGN_OR_RETURN(backend::MultiRangeQuery q, ParseMulti(text));
  if (!q.IsSingleBox()) {
    return Status::Unsupported(
        "SQL: query selects disjoint ranges (IN-list spanning gaps); use "
        "ParseMulti + core::ExecuteMultiRange");
  }
  return q.AsSingleBox();
}

std::string ToSql(const schema::StarSchema& schema,
                  const StarJoinQuery& query) {
  std::string sel, where, group;
  for (uint32_t d = 0; d < schema.num_dims(); ++d) {
    const uint32_t level = query.group_by.levels[d];
    if (level == 0) continue;
    const auto& dim = schema.dimension(d);
    const std::string attr = dim.name + "." + dim.hierarchy.LevelName(level);
    if (!sel.empty()) sel += ", ";
    sel += attr;
    if (!group.empty()) group += ", ";
    group += attr;
    const auto& r = query.selection[d];
    if (r.begin != 0 || r.end + 1 != dim.hierarchy.LevelCardinality(level)) {
      if (!where.empty()) where += " AND ";
      where += attr + " BETWEEN '" + dim.hierarchy.MemberName(level, r.begin) +
               "' AND '" + dim.hierarchy.MemberName(level, r.end) + "'";
    }
  }
  for (const auto& p : query.non_group_by) {
    const auto& dim = schema.dimension(p.dim);
    const std::string attr = dim.name + "." + dim.hierarchy.LevelName(p.level);
    if (!where.empty()) where += " AND ";
    where += attr + " BETWEEN '" +
             dim.hierarchy.MemberName(p.level, p.range.begin) + "' AND '" +
             dim.hierarchy.MemberName(p.level, p.range.end) + "'";
  }
  std::string out = "SELECT ";
  if (!sel.empty()) out += sel + ", ";
  out += "SUM(" + schema.measure_name() + ") FROM " + schema.fact_name();
  for (uint32_t d = 0; d < schema.num_dims(); ++d) {
    if (query.group_by.levels[d] != 0) out += ", " + schema.dimension(d).name;
  }
  if (!where.empty()) out += " WHERE " + where;
  out += " GROUP BY " + (group.empty() ? sel : group);
  return out;
}

}  // namespace chunkcache::sql
