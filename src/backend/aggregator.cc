#include "backend/aggregator.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/simd.h"

#if CHUNKCACHE_SIMD_X86_64
#include <immintrin.h>
#endif

namespace chunkcache::backend {

using chunks::ChunkCoords;
using chunks::GroupBySpec;
using storage::AggColumns;
using storage::AggTuple;
using storage::Tuple;
using storage::TupleColumns;

namespace {

/// Reserving more buckets than this from a cell-box bound stops paying for
/// itself (the box bound is a ceiling, not an occupancy estimate; deep
/// fallback boxes are sparse by definition).
constexpr uint64_t kMaxReserveCells = 1ull << 18;

}  // namespace

AggKernelStats AggKernelCounters::Snapshot() const {
  AggKernelStats s;
  s.dense_kernels = dense_kernels.load(std::memory_order_relaxed);
  s.hash_kernels = hash_kernels.load(std::memory_order_relaxed);
  s.rows_folded_dense = rows_folded_dense.load(std::memory_order_relaxed);
  s.rows_folded_hash = rows_folded_hash.load(std::memory_order_relaxed);
  s.coalesced_reads = coalesced_reads.load(std::memory_order_relaxed);
  s.single_run_reads = single_run_reads.load(std::memory_order_relaxed);
  s.runs_merged = runs_merged.load(std::memory_order_relaxed);
  return s;
}

void AggKernelCounters::Reset() {
  dense_kernels.store(0, std::memory_order_relaxed);
  hash_kernels.store(0, std::memory_order_relaxed);
  rows_folded_dense.store(0, std::memory_order_relaxed);
  rows_folded_hash.store(0, std::memory_order_relaxed);
  coalesced_reads.store(0, std::memory_order_relaxed);
  single_run_reads.store(0, std::memory_order_relaxed);
  runs_merged.store(0, std::memory_order_relaxed);
}

// ------------------------------ HashAggregator ------------------------------

HashAggregator::HashAggregator(const chunks::ChunkingScheme* scheme,
                               GroupBySpec target, uint64_t reserve_cells)
    : scheme_(scheme), target_(target) {
  // Mixed-radix multipliers over target-level cardinalities.
  uint64_t mult = 1;
  for (uint32_t d = target_.num_dims; d-- > 0;) {
    radix_mult_[d] = mult;
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    mult *= h.LevelCardinality(target_.levels[d]);
  }
  CHUNKCACHE_CHECK_MSG(mult > 0, "group-by key space overflows 64 bits");
  if (reserve_cells > 0) {
    cells_.reserve(
        static_cast<size_t>(std::min(reserve_cells, kMaxReserveCells)));
  }
}

uint64_t HashAggregator::PackKey(const ChunkCoords& coords) const {
  uint64_t key = 0;
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    key += coords[d] * radix_mult_[d];
  }
  return key;
}

void HashAggregator::AddBase(const Tuple& t) {
  ChunkCoords coords{};
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] = h.AncestorAt(h.depth(), t.keys[d], target_.levels[d]);
  }
  AggTuple& cell = cells_[PackKey(coords)];
  if (cell.count == 0) cell.coords = coords;
  cell.FoldMeasure(t.measure);
  ++rows_consumed_;
}

void HashAggregator::AddAgg(const AggTuple& row, const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  ChunkCoords coords{};
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] =
        h.AncestorAt(src.levels[d], row.coords[d], target_.levels[d]);
  }
  AggTuple& cell = cells_[PackKey(coords)];
  if (cell.count == 0) cell.coords = coords;
  cell.FoldRow(row);
  ++rows_consumed_;
}

std::vector<AggTuple> HashAggregator::TakeRows() {
  std::vector<AggTuple> rows;
  rows.reserve(cells_.size());
  for (auto& [key, cell] : cells_) rows.push_back(cell);
  cells_.clear();
  rows_consumed_ = 0;
  return rows;
}

AggColumns HashAggregator::TakeColumns() {
  AggColumns cols(target_.num_dims);
  cols.Reserve(cells_.size());
  for (auto& [key, cell] : cells_) cols.PushRow(cell);
  cells_.clear();
  rows_consumed_ = 0;
  return cols;
}

// --------------------------- DenseChunkAggregator ---------------------------

DenseChunkAggregator::DenseChunkAggregator(
    const chunks::ChunkingScheme* scheme, GroupBySpec target,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& extent)
    : scheme_(scheme), target_(target) {
  uint64_t mult = 1;
  for (uint32_t d = target_.num_dims; d-- > 0;) {
    base_[d] = extent[d].begin;
    width_[d] = extent[d].size();
    mult_[d] = mult;
    mult *= width_[d];
  }
  num_cells_ = mult;
  CHUNKCACHE_CHECK_MSG(num_cells_ > 0, "dense kernel: empty cell box");
  // Sentinels make FoldMeasureAt branch-free on the occupancy check.
  cells_.assign(num_cells_,
                Cell{0.0, 0, std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()});
}

void DenseChunkAggregator::AddBase(const Tuple& t) {
  uint32_t coords[storage::kMaxDims];
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] = h.AncestorAt(h.depth(), t.keys[d], target_.levels[d]);
  }
  FoldMeasureAt(FoldOffset(coords), t.measure);
  ++rows_consumed_;
}

void DenseChunkAggregator::AddAgg(const AggTuple& row,
                                  const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  uint32_t coords[storage::kMaxDims];
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] =
        h.AncestorAt(src.levels[d], row.coords[d], target_.levels[d]);
  }
  const uint64_t off = FoldOffset(coords);
  CHUNKCACHE_DCHECK(off < num_cells_);
  Cell& c = cells_[off];
  c.sum += row.sum;
  c.count += row.count;
  if (row.min_v < c.min) c.min = row.min_v;
  if (row.max_v > c.max) c.max = row.max_v;
  ++rows_consumed_;
}

void DenseChunkAggregator::BuildBaseLut() {
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    const schema::OrdinalRange keys = h.BaseRangeOf(
        target_.levels[d],
        schema::OrdinalRange{base_[d], base_[d] + width_[d] - 1});
    lut_lo_[d] = keys.begin;
    std::vector<uint64_t>& lut = base_lut_[d];
    lut.resize(keys.size());
    if (target_.levels[d] == 0) {
      // ALL level: every key maps to the single cell at this dimension.
      std::fill(lut.begin(), lut.end(), 0);
      continue;
    }
    // Fill by target-level member: each member covers one contiguous run
    // of base keys (hierarchical clustering), so the build is one
    // BaseRange call per member plus sequential stores — not one rollup
    // lookup per base key.
    for (uint32_t m = base_[d]; m < base_[d] + width_[d]; ++m) {
      const schema::OrdinalRange run = h.BaseRange(target_.levels[d], m);
      const uint64_t contribution =
          static_cast<uint64_t>(m - base_[d]) * mult_[d];
      for (uint32_t k = run.begin; k <= run.end; ++k) {
        lut[k - keys.begin] = contribution;
      }
    }
  }
#if CHUNKCACHE_SIMD_X86_64
  // 32-bit LUT copies for the 8-wide gather kernel. Every contribution
  // is < num_cells_, so the narrowing is exact whenever the box fits.
  if (num_cells_ <= std::numeric_limits<uint32_t>::max()) {
    for (uint32_t d = 0; d < target_.num_dims; ++d) {
      base_lut32_[d].assign(base_lut_[d].begin(), base_lut_[d].end());
      // Affine detection: dimensions grouped at their leaf level map each
      // base key to its own cell (lut[rel] == rel * mult), and ALL-level
      // dimensions map every key to cell 0 — in both cases the table is
      // affine in the relative key and the AVX2 kernel can use a vector
      // multiply instead of a (slow) gather. Detected empirically so any
      // hierarchy whose table happens to be affine benefits.
      const std::vector<uint64_t>& lut = base_lut_[d];
      const uint64_t slope = lut.size() > 1 ? lut[1] - lut[0] : 0;
      bool affine = true;
      for (size_t rel = 0; rel < lut.size(); ++rel) {
        if (lut[rel] != lut[0] + rel * slope) {
          affine = false;
          break;
        }
      }
      lut_affine_[d] = affine;
      lut_slope32_[d] = static_cast<uint32_t>(slope);
      lut_icept32_[d] = static_cast<uint32_t>(lut[0]);
    }
  }
#endif
  lut_built_ = true;
}

void DenseChunkAggregator::FoldOffsetsU32(const uint32_t* offs,
                                          const double* measures, size_t n) {
#if CHUNKCACHE_SIMD_X86_64
  // The fold update as two 16-byte halves — [sum, count-bits] and
  // [min, max] — which halves the loads and stores per cell relative to
  // four scalar read-modify-writes. Plain SSE2, part of the x86-64
  // baseline: this is NOT dispatched code, it is the one fold both
  // dispatch levels run.
  //
  // Bit-exactness against the scalar FoldMeasureAt:
  //  - [sum, count]: ADDSD computes `c.sum + measure` with the cell sum
  //    as its first operand (the operand the IEEE add's NaN result
  //    propagates from, matching `c.sum += measure`), and the 64-bit
  //    integer add of [0, 1] touches only the count lane (+0 on the sum
  //    lane's bits is an integer no-op);
  //  - [min, max]: MINPD returns its *second* operand when either input
  //    is NaN or both are (signed) zeros, so lane 0's min(measure,
  //    c.min) equals the ternary `measure < c.min ? measure : c.min`
  //    for every input. Lane 1 computes max through min: max(a, b) ==
  //    -min(-a, -b) is exact under IEEE sign-bit flips, and the NaN /
  //    equal-zeros case again returns the flipped second operand, i.e.
  //    c.max — exactly `measure > c.max ? measure : c.max`.
  Cell* cells = cells_.data();
  const __m128d kFlipHi =
      _mm_castsi128_pd(_mm_set_epi64x(0x8000000000000000LL, 0));
  for (size_t j = 0; j < n; ++j) {
    CHUNKCACHE_DCHECK(offs[j] < num_cells_);
    double* cell = &cells[offs[j]].sum;
    const __m128d m = _mm_set_sd(measures[j]);    // [measure, 0]
    const __m128d sc = _mm_loadu_pd(cell);        // [sum, count-bits]
    const __m128i updated = _mm_add_epi64(
        _mm_castpd_si128(_mm_add_sd(sc, m)), _mm_set_epi64x(1, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(cell), updated);
    const __m128d mm = _mm_xor_pd(_mm_unpacklo_pd(m, m), kFlipHi);  // [m,-m]
    const __m128d mnmx = _mm_xor_pd(_mm_loadu_pd(cell + 2), kFlipHi);
    _mm_storeu_pd(cell + 2, _mm_xor_pd(_mm_min_pd(mm, mnmx), kFlipHi));
  }
#else
  for (size_t j = 0; j < n; ++j) {
    FoldMeasureAt(offs[j], measures[j]);
  }
#endif
}

#if CHUNKCACHE_SIMD_X86_64

namespace {

/// Pass 1 of the AVX2 fold kernel: computes the cell offsets for rows
/// [base, base + bn) into `out` and prefetches each row's target cell
/// (`cells` is the accumulator base, `cell_size` its stride). Affine
/// dimensions (leaf-level or ALL-level group-bys) contribute via an
/// 8-wide multiply — their per-row constant intercepts are pre-summed
/// into `icept_sum`; the rest gather their 32-bit LUT entries with
/// VPGATHERDD. The AllAffine specialization (the common leaf/base
/// group-by case, where every table is affine) compiles the per-dim
/// branch away entirely — the runtime `affine[d]` test, though
/// perfectly predicted, costs measurably inside an 8-row loop this
/// tight. A free function because lambdas do not inherit the enclosing
/// function's target("avx2") attribute.
template <uint32_t ND, bool AllAffine>
__attribute__((target("avx2"))) void GatherOffsetsAvx2(
    const uint32_t* const* keys, const uint32_t* const* luts,
    const uint32_t* los, const bool* affine, const uint32_t* slopes,
    uint32_t icept_sum, const char* cells, size_t cell_size, size_t base,
    size_t bn, uint32_t* out) {
  size_t i = 0;
  for (; i + 8 <= bn; i += 8) {
    __m256i off = _mm256_set1_epi32(static_cast<int>(icept_sum));
    for (uint32_t d = 0; d < ND; ++d) {
      const __m256i k = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys[d] + base + i));
      const __m256i rel =
          _mm256_sub_epi32(k, _mm256_set1_epi32(static_cast<int>(los[d])));
      const __m256i contrib =
          (AllAffine || affine[d])
              ? _mm256_mullo_epi32(
                    rel, _mm256_set1_epi32(static_cast<int>(slopes[d])))
              : _mm256_i32gather_epi32(
                    reinterpret_cast<const int*>(luts[d]), rel, 4);
      off = _mm256_add_epi32(off, contrib);
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(out + i), off);
    for (int r = 0; r < 8; ++r) {
      _mm_prefetch(cells + out[i + r] * cell_size, _MM_HINT_T0);
    }
  }
  for (; i < bn; ++i) {
    uint32_t off = 0;
    for (uint32_t d = 0; d < ND; ++d) {
      off += luts[d][keys[d][base + i] - los[d]];
    }
    out[i] = off;
    _mm_prefetch(cells + off * cell_size, _MM_HINT_T0);
  }
}

}  // namespace

template <uint32_t ND>
__attribute__((target("avx2"))) void DenseChunkAggregator::FoldBaseRowsAvx2(
    const uint32_t* const* keys, const uint32_t* const* luts,
    const uint32_t* los, const double* measures, size_t n) {
  // Blocked two-pass kernel. Per block, pass 1 computes every cell
  // offset with 8-wide VPGATHERDD gathers over the 32-bit LUTs (the
  // 64-bit gather variant covers only 4 rows per instruction and gather
  // throughput — not the fold — is what bounds this kernel) and issues a
  // prefetch for each target cell; pass 2 is the pure fold loop, freed
  // of all LUT indexing and running against cells the prefetches have
  // already pulled into L1. The block is sized so one block's cell lines
  // (<= 256 lines = 16 KiB) fit comfortably in L1 — prefetching a whole
  // multi-thousand-row batch up front would evict the early lines before
  // the fold reads them. Splitting the passes also keeps the serial
  // fold-dependency chain (rows hitting the same cell) from stalling the
  // offset arithmetic, which has no such dependency.
  //
  // 32-bit offsets are exact: the dispatcher only routes here when
  // num_cells_ fits in 32 bits, and each per-dimension contribution as
  // well as the final mixed-radix sum is < num_cells_.
  //
  // The two passes are software-pipelined one block apart: pass 1 of
  // block k+1 (gathers + prefetches) runs before pass 2 of block k, so
  // every prefetch gets a full block's worth of fold work (~256 rows)
  // to complete before its line is touched. Prefetching and folding the
  // same block back to back would leave the last rows' prefetches no
  // time to land.
  constexpr size_t kBlock = 256;
  alignas(32) uint32_t offs[2][kBlock];
  const char* cells = reinterpret_cast<const char*>(cells_.data());
  uint32_t icept_sum = 0;
  bool all_affine = true;
  for (uint32_t d = 0; d < ND; ++d) {
    if (lut_affine_[d]) icept_sum += lut_icept32_[d];
    all_affine = all_affine && lut_affine_[d];
  }
  auto* gather_offsets =
      all_affine ? &GatherOffsetsAvx2<ND, true> : &GatherOffsetsAvx2<ND, false>;
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  size_t prev_bn = 0;
  for (size_t k = 0; k < num_blocks; ++k) {
    const size_t base = k * kBlock;
    const size_t bn = n - base < kBlock ? n - base : kBlock;
    gather_offsets(keys, luts, los, lut_affine_.data(), lut_slope32_.data(),
                   icept_sum, cells, sizeof(Cell), base, bn, offs[k & 1]);
    // Folds stay in row order, so repeated hits on one cell accumulate
    // in the same sequence as the scalar kernel, and both kernels fold
    // through the one out-of-line FoldOffsetsU32 — bit-identity is
    // structural.
    if (k > 0) {
      FoldOffsetsU32(offs[(k - 1) & 1], measures + (k - 1) * kBlock, prev_bn);
    }
    prev_bn = bn;
  }
  if (num_blocks > 0) {
    FoldOffsetsU32(offs[(num_blocks - 1) & 1],
                   measures + (num_blocks - 1) * kBlock, prev_bn);
  }
}

#endif  // CHUNKCACHE_SIMD_X86_64

template <uint32_t ND>
void DenseChunkAggregator::FoldBaseRowsUnrolled(const uint32_t* const* keys,
                                                const uint64_t* const* luts,
                                                const uint32_t* los,
                                                const double* measures,
                                                size_t n) {
  if (num_cells_ <= std::numeric_limits<uint32_t>::max()) {
    // Same blocked two-pass shape as the AVX2 kernel, with scalar offset
    // arithmetic in pass 1 and the shared out-of-line fold in pass 2, so
    // both dispatch levels execute the very same fold machine code.
    constexpr size_t kBlock = 256;
    uint32_t offs[kBlock];
    for (size_t base = 0; base < n; base += kBlock) {
      const size_t bn = n - base < kBlock ? n - base : kBlock;
      for (size_t i = 0; i < bn; ++i) {
        uint64_t off = 0;
        for (uint32_t d = 0; d < ND; ++d) {
          off += luts[d][keys[d][base + i] - los[d]];
        }
        offs[i] = static_cast<uint32_t>(off);
      }
      FoldOffsetsU32(offs, measures + base, bn);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = 0;
    for (uint32_t d = 0; d < ND; ++d) {
      off += luts[d][keys[d][i] - los[d]];
    }
    FoldMeasureAt(off, measures[i]);
  }
}

void DenseChunkAggregator::AddBaseColumns(
    const TupleColumns& batch, const bool* has_filter,
    const schema::OrdinalRange* pre_filter) {
  const size_t n = batch.size();
  const uint32_t nd = target_.num_dims;
  if (!lut_built_) BuildBaseLut();
  if (has_filter == nullptr) {
    // Unfiltered fast path: the inner kernel is one table load per
    // dimension plus one indexed fold per row. Raw pointers hoisted so
    // the loop carries no vector indirection, and the common dimension
    // counts get fully unrolled offset computations.
    const uint32_t* keys[storage::kMaxDims];
    const uint64_t* luts[storage::kMaxDims];
    uint32_t los[storage::kMaxDims];
    for (uint32_t d = 0; d < nd; ++d) {
      keys[d] = batch.keys[d].data();
      luts[d] = base_lut_[d].data();
      los[d] = lut_lo_[d];
    }
    const double* measures = batch.measure.data();
#if CHUNKCACHE_SIMD_X86_64
    // One dispatch per bulk call; nd > 4 and boxes past 32-bit offsets
    // stay on the generic scalar loop.
    if (simd::ActiveLevel() == simd::IsaLevel::kAvx2 && nd <= 4 &&
        num_cells_ <= std::numeric_limits<uint32_t>::max()) {
      const uint32_t* luts32[storage::kMaxDims];
      for (uint32_t d = 0; d < nd; ++d) luts32[d] = base_lut32_[d].data();
      switch (nd) {
        case 1:
          FoldBaseRowsAvx2<1>(keys, luts32, los, measures, n);
          break;
        case 2:
          FoldBaseRowsAvx2<2>(keys, luts32, los, measures, n);
          break;
        case 3:
          FoldBaseRowsAvx2<3>(keys, luts32, los, measures, n);
          break;
        case 4:
          FoldBaseRowsAvx2<4>(keys, luts32, los, measures, n);
          break;
      }
      rows_consumed_ += n;
      return;
    }
#endif
    switch (nd) {
      case 1:
        FoldBaseRowsUnrolled<1>(keys, luts, los, measures, n);
        break;
      case 2:
        FoldBaseRowsUnrolled<2>(keys, luts, los, measures, n);
        break;
      case 3:
        FoldBaseRowsUnrolled<3>(keys, luts, los, measures, n);
        break;
      case 4:
        FoldBaseRowsUnrolled<4>(keys, luts, los, measures, n);
        break;
      default:
        for (size_t i = 0; i < n; ++i) {
          uint64_t off = 0;
          for (uint32_t d = 0; d < nd; ++d) {
            off += luts[d][keys[d][i] - los[d]];
          }
          FoldMeasureAt(off, measures[i]);
        }
        break;
    }
    rows_consumed_ += n;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = 0;
    bool pass = true;
    for (uint32_t d = 0; d < nd; ++d) {
      const uint32_t key = batch.keys[d][i];
      if (has_filter[d] && !pre_filter[d].Contains(key)) {
        pass = false;
        break;
      }
      off += base_lut_[d][key - lut_lo_[d]];
    }
    if (!pass) continue;
    FoldMeasureAt(off, batch.measure[i]);
    ++rows_consumed_;
  }
}

void DenseChunkAggregator::AddAggColumns(const AggColumns& batch,
                                         const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  const size_t n = batch.size();
  const uint32_t nd = target_.num_dims;
  const schema::Hierarchy* hier[storage::kMaxDims];
  for (uint32_t d = 0; d < nd; ++d) {
    hier[d] = &scheme_->schema().dimension(d).hierarchy;
  }
  const std::vector<double>& sums = batch.sums();
  const std::vector<uint64_t>& counts = batch.counts();
  const std::vector<double>& mins = batch.mins();
  const std::vector<double>& maxs = batch.maxs();
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = 0;
    for (uint32_t d = 0; d < nd; ++d) {
      const uint32_t c = hier[d]->AncestorAt(
          src.levels[d], batch.coords(d)[i], target_.levels[d]);
      off += static_cast<uint64_t>(c - base_[d]) * mult_[d];
    }
    CHUNKCACHE_DCHECK(off < num_cells_);
    Cell& c = cells_[off];
    c.sum += sums[i];
    c.count += counts[i];
    if (mins[i] < c.min) c.min = mins[i];
    if (maxs[i] > c.max) c.max = maxs[i];
    ++rows_consumed_;
  }
}

AggColumns DenseChunkAggregator::TakeColumns() {
  size_t occupied = 0;
  for (uint64_t off = 0; off < num_cells_; ++off) {
    if (cells_[off].count != 0) ++occupied;
  }
  AggColumns cols(target_.num_dims);
  cols.Reserve(occupied);
  // Walk offsets in order — that *is* row-major coordinate order — with an
  // odometer tracking the cell coordinates.
  uint32_t coords[storage::kMaxDims];
  for (uint32_t d = 0; d < target_.num_dims; ++d) coords[d] = base_[d];
  for (uint64_t off = 0; off < num_cells_; ++off) {
    const Cell& c = cells_[off];
    if (c.count != 0) {
      cols.PushCell(coords, c.sum, c.count, c.min, c.max);
    }
    for (uint32_t d = target_.num_dims; d-- > 0;) {
      if (++coords[d] < base_[d] + width_[d]) break;
      coords[d] = base_[d];
    }
  }
  cells_.clear();
  rows_consumed_ = 0;
  return cols;
}

// ----------------------------- ChunkAggregator ------------------------------

ChunkAggregator::ChunkAggregator(const chunks::ChunkingScheme* scheme,
                                 const GroupBySpec& target,
                                 uint64_t chunk_num,
                                 uint64_t dense_cell_limit,
                                 AggKernelCounters* counters)
    : scheme_(scheme), target_(target), counters_(counters) {
  const auto extent = scheme->ChunkExtent(target, chunk_num);
  // Saturating cell-box size: widths are per-dimension chunk-range sizes.
  uint64_t cells = 1;
  for (uint32_t d = 0; d < target.num_dims; ++d) {
    const uint64_t w = extent[d].size();
    if (cells > std::numeric_limits<uint64_t>::max() / w) {
      cells = std::numeric_limits<uint64_t>::max();
      break;
    }
    cells *= w;
  }
  if (cells <= dense_cell_limit) {
    dense_.emplace(scheme, target, extent);
    if (counters_ != nullptr) {
      counters_->dense_kernels.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    hash_.emplace(scheme, target, /*reserve_cells=*/cells);
    if (counters_ != nullptr) {
      counters_->hash_kernels.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ChunkAggregator::AddBase(const Tuple& t) {
  if (dense_) {
    dense_->AddBase(t);
  } else {
    hash_->AddBase(t);
  }
}

void ChunkAggregator::AddAgg(const AggTuple& row, const GroupBySpec& src) {
  if (dense_) {
    dense_->AddAgg(row, src);
  } else {
    hash_->AddAgg(row, src);
  }
}

void ChunkAggregator::AddBaseColumns(const TupleColumns& batch,
                                     const bool* has_filter,
                                     const schema::OrdinalRange* pre_filter) {
  if (dense_) {
    dense_->AddBaseColumns(batch, has_filter, pre_filter);
    return;
  }
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    bool pass = true;
    if (has_filter != nullptr) {
      for (uint32_t d = 0; d < target_.num_dims; ++d) {
        if (has_filter[d] && !pre_filter[d].Contains(batch.keys[d][i])) {
          pass = false;
          break;
        }
      }
    }
    if (pass) hash_->AddBase(batch.TupleAt(i));
  }
}

void ChunkAggregator::AddAggColumns(const AggColumns& batch,
                                    const GroupBySpec& src) {
  if (dense_) {
    dense_->AddAggColumns(batch, src);
    return;
  }
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) hash_->AddAgg(batch.RowAt(i), src);
}

AggColumns ChunkAggregator::TakeColumns() {
  const uint64_t folded = rows_consumed();
  if (dense_) {
    if (counters_ != nullptr) {
      counters_->rows_folded_dense.fetch_add(folded,
                                             std::memory_order_relaxed);
    }
    return dense_->TakeColumns();  // already row-major
  }
  if (counters_ != nullptr) {
    counters_->rows_folded_hash.fetch_add(folded, std::memory_order_relaxed);
  }
  AggColumns cols = hash_->TakeColumns();
  cols.SortRowMajor();
  return cols;
}

// -------------------------------- Row helpers -------------------------------

std::vector<AggTuple> FilterRows(
    std::vector<AggTuple> rows, uint32_t num_dims,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& selection) {
  auto out_of_range = [&](const AggTuple& r) {
    for (uint32_t d = 0; d < num_dims; ++d) {
      if (!selection[d].Contains(r.coords[d])) return true;
    }
    return false;
  };
  rows.erase(std::remove_if(rows.begin(), rows.end(), out_of_range),
             rows.end());
  return rows;
}

void SortRows(std::vector<AggTuple>* rows, uint32_t num_dims) {
  std::sort(rows->begin(), rows->end(),
            [num_dims](const AggTuple& a, const AggTuple& b) {
              for (uint32_t d = 0; d < num_dims; ++d) {
                if (a.coords[d] != b.coords[d]) {
                  return a.coords[d] < b.coords[d];
                }
              }
              return false;
            });
}

}  // namespace chunkcache::backend
