#include "backend/aggregator.h"

#include <algorithm>

#include "common/logging.h"

namespace chunkcache::backend {

using chunks::ChunkCoords;
using chunks::GroupBySpec;
using storage::AggTuple;
using storage::Tuple;

HashAggregator::HashAggregator(const chunks::ChunkingScheme* scheme,
                               GroupBySpec target)
    : scheme_(scheme), target_(target) {
  // Mixed-radix multipliers over target-level cardinalities.
  uint64_t mult = 1;
  for (uint32_t d = target_.num_dims; d-- > 0;) {
    radix_mult_[d] = mult;
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    mult *= h.LevelCardinality(target_.levels[d]);
  }
  CHUNKCACHE_CHECK_MSG(mult > 0, "group-by key space overflows 64 bits");
}

uint64_t HashAggregator::PackKey(const ChunkCoords& coords) const {
  uint64_t key = 0;
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    key += coords[d] * radix_mult_[d];
  }
  return key;
}

void HashAggregator::AddBase(const Tuple& t) {
  ChunkCoords coords{};
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] = h.AncestorAt(h.depth(), t.keys[d], target_.levels[d]);
  }
  AggTuple& cell = cells_[PackKey(coords)];
  if (cell.count == 0) cell.coords = coords;
  cell.FoldMeasure(t.measure);
  ++rows_consumed_;
}

void HashAggregator::AddAgg(const AggTuple& row, const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  ChunkCoords coords{};
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] =
        h.AncestorAt(src.levels[d], row.coords[d], target_.levels[d]);
  }
  AggTuple& cell = cells_[PackKey(coords)];
  if (cell.count == 0) cell.coords = coords;
  cell.FoldRow(row);
  ++rows_consumed_;
}

std::vector<AggTuple> HashAggregator::TakeRows() {
  std::vector<AggTuple> rows;
  rows.reserve(cells_.size());
  for (auto& [key, cell] : cells_) rows.push_back(cell);
  cells_.clear();
  rows_consumed_ = 0;
  return rows;
}

std::vector<AggTuple> FilterRows(
    std::vector<AggTuple> rows, uint32_t num_dims,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& selection) {
  auto out_of_range = [&](const AggTuple& r) {
    for (uint32_t d = 0; d < num_dims; ++d) {
      if (!selection[d].Contains(r.coords[d])) return true;
    }
    return false;
  };
  rows.erase(std::remove_if(rows.begin(), rows.end(), out_of_range),
             rows.end());
  return rows;
}

void SortRows(std::vector<AggTuple>* rows, uint32_t num_dims) {
  std::sort(rows->begin(), rows->end(),
            [num_dims](const AggTuple& a, const AggTuple& b) {
              for (uint32_t d = 0; d < num_dims; ++d) {
                if (a.coords[d] != b.coords[d]) {
                  return a.coords[d] < b.coords[d];
                }
              }
              return false;
            });
}

}  // namespace chunkcache::backend
