#include "backend/aggregator.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace chunkcache::backend {

using chunks::ChunkCoords;
using chunks::GroupBySpec;
using storage::AggColumns;
using storage::AggTuple;
using storage::Tuple;
using storage::TupleColumns;

namespace {

/// Reserving more buckets than this from a cell-box bound stops paying for
/// itself (the box bound is a ceiling, not an occupancy estimate; deep
/// fallback boxes are sparse by definition).
constexpr uint64_t kMaxReserveCells = 1ull << 18;

}  // namespace

AggKernelStats AggKernelCounters::Snapshot() const {
  AggKernelStats s;
  s.dense_kernels = dense_kernels.load(std::memory_order_relaxed);
  s.hash_kernels = hash_kernels.load(std::memory_order_relaxed);
  s.rows_folded_dense = rows_folded_dense.load(std::memory_order_relaxed);
  s.rows_folded_hash = rows_folded_hash.load(std::memory_order_relaxed);
  s.coalesced_reads = coalesced_reads.load(std::memory_order_relaxed);
  s.single_run_reads = single_run_reads.load(std::memory_order_relaxed);
  s.runs_merged = runs_merged.load(std::memory_order_relaxed);
  return s;
}

void AggKernelCounters::Reset() {
  dense_kernels.store(0, std::memory_order_relaxed);
  hash_kernels.store(0, std::memory_order_relaxed);
  rows_folded_dense.store(0, std::memory_order_relaxed);
  rows_folded_hash.store(0, std::memory_order_relaxed);
  coalesced_reads.store(0, std::memory_order_relaxed);
  single_run_reads.store(0, std::memory_order_relaxed);
  runs_merged.store(0, std::memory_order_relaxed);
}

// ------------------------------ HashAggregator ------------------------------

HashAggregator::HashAggregator(const chunks::ChunkingScheme* scheme,
                               GroupBySpec target, uint64_t reserve_cells)
    : scheme_(scheme), target_(target) {
  // Mixed-radix multipliers over target-level cardinalities.
  uint64_t mult = 1;
  for (uint32_t d = target_.num_dims; d-- > 0;) {
    radix_mult_[d] = mult;
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    mult *= h.LevelCardinality(target_.levels[d]);
  }
  CHUNKCACHE_CHECK_MSG(mult > 0, "group-by key space overflows 64 bits");
  if (reserve_cells > 0) {
    cells_.reserve(
        static_cast<size_t>(std::min(reserve_cells, kMaxReserveCells)));
  }
}

uint64_t HashAggregator::PackKey(const ChunkCoords& coords) const {
  uint64_t key = 0;
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    key += coords[d] * radix_mult_[d];
  }
  return key;
}

void HashAggregator::AddBase(const Tuple& t) {
  ChunkCoords coords{};
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] = h.AncestorAt(h.depth(), t.keys[d], target_.levels[d]);
  }
  AggTuple& cell = cells_[PackKey(coords)];
  if (cell.count == 0) cell.coords = coords;
  cell.FoldMeasure(t.measure);
  ++rows_consumed_;
}

void HashAggregator::AddAgg(const AggTuple& row, const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  ChunkCoords coords{};
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] =
        h.AncestorAt(src.levels[d], row.coords[d], target_.levels[d]);
  }
  AggTuple& cell = cells_[PackKey(coords)];
  if (cell.count == 0) cell.coords = coords;
  cell.FoldRow(row);
  ++rows_consumed_;
}

std::vector<AggTuple> HashAggregator::TakeRows() {
  std::vector<AggTuple> rows;
  rows.reserve(cells_.size());
  for (auto& [key, cell] : cells_) rows.push_back(cell);
  cells_.clear();
  rows_consumed_ = 0;
  return rows;
}

AggColumns HashAggregator::TakeColumns() {
  AggColumns cols(target_.num_dims);
  cols.Reserve(cells_.size());
  for (auto& [key, cell] : cells_) cols.PushRow(cell);
  cells_.clear();
  rows_consumed_ = 0;
  return cols;
}

// --------------------------- DenseChunkAggregator ---------------------------

DenseChunkAggregator::DenseChunkAggregator(
    const chunks::ChunkingScheme* scheme, GroupBySpec target,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& extent)
    : scheme_(scheme), target_(target) {
  uint64_t mult = 1;
  for (uint32_t d = target_.num_dims; d-- > 0;) {
    base_[d] = extent[d].begin;
    width_[d] = extent[d].size();
    mult_[d] = mult;
    mult *= width_[d];
  }
  num_cells_ = mult;
  CHUNKCACHE_CHECK_MSG(num_cells_ > 0, "dense kernel: empty cell box");
  // Sentinels make FoldMeasureAt branch-free on the occupancy check.
  cells_.assign(num_cells_,
                Cell{0.0, 0, std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()});
}

void DenseChunkAggregator::AddBase(const Tuple& t) {
  uint32_t coords[storage::kMaxDims];
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] = h.AncestorAt(h.depth(), t.keys[d], target_.levels[d]);
  }
  FoldMeasureAt(FoldOffset(coords), t.measure);
  ++rows_consumed_;
}

void DenseChunkAggregator::AddAgg(const AggTuple& row,
                                  const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  uint32_t coords[storage::kMaxDims];
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    coords[d] =
        h.AncestorAt(src.levels[d], row.coords[d], target_.levels[d]);
  }
  const uint64_t off = FoldOffset(coords);
  CHUNKCACHE_DCHECK(off < num_cells_);
  Cell& c = cells_[off];
  c.sum += row.sum;
  c.count += row.count;
  if (row.min_v < c.min) c.min = row.min_v;
  if (row.max_v > c.max) c.max = row.max_v;
  ++rows_consumed_;
}

void DenseChunkAggregator::BuildBaseLut() {
  for (uint32_t d = 0; d < target_.num_dims; ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    const schema::OrdinalRange keys = h.BaseRangeOf(
        target_.levels[d],
        schema::OrdinalRange{base_[d], base_[d] + width_[d] - 1});
    lut_lo_[d] = keys.begin;
    std::vector<uint64_t>& lut = base_lut_[d];
    lut.resize(keys.size());
    if (target_.levels[d] == 0) {
      // ALL level: every key maps to the single cell at this dimension.
      std::fill(lut.begin(), lut.end(), 0);
      continue;
    }
    // Fill by target-level member: each member covers one contiguous run
    // of base keys (hierarchical clustering), so the build is one
    // BaseRange call per member plus sequential stores — not one rollup
    // lookup per base key.
    for (uint32_t m = base_[d]; m < base_[d] + width_[d]; ++m) {
      const schema::OrdinalRange run = h.BaseRange(target_.levels[d], m);
      const uint64_t contribution =
          static_cast<uint64_t>(m - base_[d]) * mult_[d];
      for (uint32_t k = run.begin; k <= run.end; ++k) {
        lut[k - keys.begin] = contribution;
      }
    }
  }
  lut_built_ = true;
}

template <uint32_t ND>
void DenseChunkAggregator::FoldBaseRowsUnrolled(const uint32_t* const* keys,
                                                const uint64_t* const* luts,
                                                const uint32_t* los,
                                                const double* measures,
                                                size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = 0;
    for (uint32_t d = 0; d < ND; ++d) {
      off += luts[d][keys[d][i] - los[d]];
    }
    FoldMeasureAt(off, measures[i]);
  }
}

void DenseChunkAggregator::AddBaseColumns(
    const TupleColumns& batch, const bool* has_filter,
    const schema::OrdinalRange* pre_filter) {
  const size_t n = batch.size();
  const uint32_t nd = target_.num_dims;
  if (!lut_built_) BuildBaseLut();
  if (has_filter == nullptr) {
    // Unfiltered fast path: the inner kernel is one table load per
    // dimension plus one indexed fold per row. Raw pointers hoisted so
    // the loop carries no vector indirection, and the common dimension
    // counts get fully unrolled offset computations.
    const uint32_t* keys[storage::kMaxDims];
    const uint64_t* luts[storage::kMaxDims];
    uint32_t los[storage::kMaxDims];
    for (uint32_t d = 0; d < nd; ++d) {
      keys[d] = batch.keys[d].data();
      luts[d] = base_lut_[d].data();
      los[d] = lut_lo_[d];
    }
    const double* measures = batch.measure.data();
    switch (nd) {
      case 1:
        FoldBaseRowsUnrolled<1>(keys, luts, los, measures, n);
        break;
      case 2:
        FoldBaseRowsUnrolled<2>(keys, luts, los, measures, n);
        break;
      case 3:
        FoldBaseRowsUnrolled<3>(keys, luts, los, measures, n);
        break;
      case 4:
        FoldBaseRowsUnrolled<4>(keys, luts, los, measures, n);
        break;
      default:
        for (size_t i = 0; i < n; ++i) {
          uint64_t off = 0;
          for (uint32_t d = 0; d < nd; ++d) {
            off += luts[d][keys[d][i] - los[d]];
          }
          FoldMeasureAt(off, measures[i]);
        }
        break;
    }
    rows_consumed_ += n;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = 0;
    bool pass = true;
    for (uint32_t d = 0; d < nd; ++d) {
      const uint32_t key = batch.keys[d][i];
      if (has_filter[d] && !pre_filter[d].Contains(key)) {
        pass = false;
        break;
      }
      off += base_lut_[d][key - lut_lo_[d]];
    }
    if (!pass) continue;
    FoldMeasureAt(off, batch.measure[i]);
    ++rows_consumed_;
  }
}

void DenseChunkAggregator::AddAggColumns(const AggColumns& batch,
                                         const GroupBySpec& src) {
  CHUNKCACHE_DCHECK(target_.CoarserOrEqual(src));
  const size_t n = batch.size();
  const uint32_t nd = target_.num_dims;
  const schema::Hierarchy* hier[storage::kMaxDims];
  for (uint32_t d = 0; d < nd; ++d) {
    hier[d] = &scheme_->schema().dimension(d).hierarchy;
  }
  const std::vector<double>& sums = batch.sums();
  const std::vector<uint64_t>& counts = batch.counts();
  const std::vector<double>& mins = batch.mins();
  const std::vector<double>& maxs = batch.maxs();
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = 0;
    for (uint32_t d = 0; d < nd; ++d) {
      const uint32_t c = hier[d]->AncestorAt(
          src.levels[d], batch.coords(d)[i], target_.levels[d]);
      off += static_cast<uint64_t>(c - base_[d]) * mult_[d];
    }
    CHUNKCACHE_DCHECK(off < num_cells_);
    Cell& c = cells_[off];
    c.sum += sums[i];
    c.count += counts[i];
    if (mins[i] < c.min) c.min = mins[i];
    if (maxs[i] > c.max) c.max = maxs[i];
    ++rows_consumed_;
  }
}

AggColumns DenseChunkAggregator::TakeColumns() {
  size_t occupied = 0;
  for (uint64_t off = 0; off < num_cells_; ++off) {
    if (cells_[off].count != 0) ++occupied;
  }
  AggColumns cols(target_.num_dims);
  cols.Reserve(occupied);
  // Walk offsets in order — that *is* row-major coordinate order — with an
  // odometer tracking the cell coordinates.
  uint32_t coords[storage::kMaxDims];
  for (uint32_t d = 0; d < target_.num_dims; ++d) coords[d] = base_[d];
  for (uint64_t off = 0; off < num_cells_; ++off) {
    const Cell& c = cells_[off];
    if (c.count != 0) {
      cols.PushCell(coords, c.sum, c.count, c.min, c.max);
    }
    for (uint32_t d = target_.num_dims; d-- > 0;) {
      if (++coords[d] < base_[d] + width_[d]) break;
      coords[d] = base_[d];
    }
  }
  cells_.clear();
  rows_consumed_ = 0;
  return cols;
}

// ----------------------------- ChunkAggregator ------------------------------

ChunkAggregator::ChunkAggregator(const chunks::ChunkingScheme* scheme,
                                 const GroupBySpec& target,
                                 uint64_t chunk_num,
                                 uint64_t dense_cell_limit,
                                 AggKernelCounters* counters)
    : scheme_(scheme), target_(target), counters_(counters) {
  const auto extent = scheme->ChunkExtent(target, chunk_num);
  // Saturating cell-box size: widths are per-dimension chunk-range sizes.
  uint64_t cells = 1;
  for (uint32_t d = 0; d < target.num_dims; ++d) {
    const uint64_t w = extent[d].size();
    if (cells > std::numeric_limits<uint64_t>::max() / w) {
      cells = std::numeric_limits<uint64_t>::max();
      break;
    }
    cells *= w;
  }
  if (cells <= dense_cell_limit) {
    dense_.emplace(scheme, target, extent);
    if (counters_ != nullptr) {
      counters_->dense_kernels.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    hash_.emplace(scheme, target, /*reserve_cells=*/cells);
    if (counters_ != nullptr) {
      counters_->hash_kernels.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ChunkAggregator::AddBase(const Tuple& t) {
  if (dense_) {
    dense_->AddBase(t);
  } else {
    hash_->AddBase(t);
  }
}

void ChunkAggregator::AddAgg(const AggTuple& row, const GroupBySpec& src) {
  if (dense_) {
    dense_->AddAgg(row, src);
  } else {
    hash_->AddAgg(row, src);
  }
}

void ChunkAggregator::AddBaseColumns(const TupleColumns& batch,
                                     const bool* has_filter,
                                     const schema::OrdinalRange* pre_filter) {
  if (dense_) {
    dense_->AddBaseColumns(batch, has_filter, pre_filter);
    return;
  }
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    bool pass = true;
    if (has_filter != nullptr) {
      for (uint32_t d = 0; d < target_.num_dims; ++d) {
        if (has_filter[d] && !pre_filter[d].Contains(batch.keys[d][i])) {
          pass = false;
          break;
        }
      }
    }
    if (pass) hash_->AddBase(batch.TupleAt(i));
  }
}

void ChunkAggregator::AddAggColumns(const AggColumns& batch,
                                    const GroupBySpec& src) {
  if (dense_) {
    dense_->AddAggColumns(batch, src);
    return;
  }
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) hash_->AddAgg(batch.RowAt(i), src);
}

AggColumns ChunkAggregator::TakeColumns() {
  const uint64_t folded = rows_consumed();
  if (dense_) {
    if (counters_ != nullptr) {
      counters_->rows_folded_dense.fetch_add(folded,
                                             std::memory_order_relaxed);
    }
    return dense_->TakeColumns();  // already row-major
  }
  if (counters_ != nullptr) {
    counters_->rows_folded_hash.fetch_add(folded, std::memory_order_relaxed);
  }
  AggColumns cols = hash_->TakeColumns();
  cols.SortRowMajor();
  return cols;
}

// -------------------------------- Row helpers -------------------------------

std::vector<AggTuple> FilterRows(
    std::vector<AggTuple> rows, uint32_t num_dims,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& selection) {
  auto out_of_range = [&](const AggTuple& r) {
    for (uint32_t d = 0; d < num_dims; ++d) {
      if (!selection[d].Contains(r.coords[d])) return true;
    }
    return false;
  };
  rows.erase(std::remove_if(rows.begin(), rows.end(), out_of_range),
             rows.end());
  return rows;
}

void SortRows(std::vector<AggTuple>* rows, uint32_t num_dims) {
  std::sort(rows->begin(), rows->end(),
            [num_dims](const AggTuple& a, const AggTuple& b) {
              for (uint32_t d = 0; d < num_dims; ++d) {
                if (a.coords[d] != b.coords[d]) {
                  return a.coords[d] < b.coords[d];
                }
              }
              return false;
            });
}

}  // namespace chunkcache::backend
