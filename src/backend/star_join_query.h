#ifndef CHUNKCACHE_BACKEND_STAR_JOIN_QUERY_H_
#define CHUNKCACHE_BACKEND_STAR_JOIN_QUERY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chunks/group_by_spec.h"
#include "schema/hierarchy.h"
#include "storage/tuple.h"

namespace chunkcache::backend {

/// A selection on a dimension attribute that is *not* the query's group-by
/// level for that dimension (Section 5.2.1's "selection on non group-by
/// attributes"). Such predicates are factored in before aggregation, so
/// cached results are only reusable when they match exactly.
struct NonGroupByPredicate {
  uint32_t dim = 0;
  uint32_t level = 0;           ///< Hierarchy level the predicate names.
  schema::OrdinalRange range;   ///< Selected members at that level.

  friend bool operator==(const NonGroupByPredicate& a,
                         const NonGroupByPredicate& b) {
    return a.dim == b.dim && a.level == b.level && a.range == b.range;
  }
};

/// The paper's star-join query template (Section 5.2.1):
///
///   SELECT <group-by attrs>, SUM(measure)
///   FROM fact, dims
///   WHERE <range/point selections>
///   GROUP BY <group-by attrs>
///
/// normalized to ordinals: `group_by` gives the aggregation level per
/// dimension; `selection[d]` is the inclusive ordinal range selected on
/// dimension d *at that dimension's group-by level* ({0,0} when d is
/// aggregated away, i.e. level 0 selects the single ALL member); and
/// `non_group_by` lists predicates on other levels, which must match
/// exactly for cache reuse.
struct StarJoinQuery {
  chunks::GroupBySpec group_by;
  std::array<schema::OrdinalRange, storage::kMaxDims> selection{};
  std::vector<NonGroupByPredicate> non_group_by;

  /// True when the selection on every dimension covers the full level (no
  /// restriction).
  bool SelectsEverything(
      const std::array<uint32_t, storage::kMaxDims>& level_cards) const {
    for (uint32_t d = 0; d < group_by.num_dims; ++d) {
      if (selection[d].begin != 0 ||
          selection[d].end + 1 != level_cards[d]) {
        return false;
      }
    }
    return non_group_by.empty();
  }

  friend bool operator==(const StarJoinQuery& a, const StarJoinQuery& b) {
    if (!(a.group_by == b.group_by)) return false;
    for (uint32_t d = 0; d < a.group_by.num_dims; ++d) {
      if (!(a.selection[d] == b.selection[d])) return false;
    }
    return a.non_group_by == b.non_group_by;
  }

  /// Debug rendering: "gb=(2,0,1,1) sel=[3..7][0..0][1..4][0..9]".
  std::string ToString() const {
    std::string s = "gb=" + group_by.ToString() + " sel=";
    for (uint32_t d = 0; d < group_by.num_dims; ++d) {
      s += "[" + std::to_string(selection[d].begin) + ".." +
           std::to_string(selection[d].end) + "]";
    }
    return s;
  }
};

/// One result row of a star-join query (same shape as storage::AggTuple but
/// re-exported under the query vocabulary).
using ResultRow = storage::AggTuple;

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_STAR_JOIN_QUERY_H_
