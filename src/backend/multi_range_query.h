#ifndef CHUNKCACHE_BACKEND_MULTI_RANGE_QUERY_H_
#define CHUNKCACHE_BACKEND_MULTI_RANGE_QUERY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "backend/star_join_query.h"
#include "common/status.h"

namespace chunkcache::backend {

/// A star-join query whose selection on each group-by dimension is a
/// *union of disjoint ranges* (IN-lists, NOT BETWEEN holes, ...). The
/// paper restricts selections to single ranges (Section 5.2.2 "we will
/// assume that the selection predicates are range or point predicates");
/// this extension decomposes a multi-range query into the cartesian
/// product of per-dimension runs — each product cell is an ordinary
/// box-shaped StarJoinQuery the caching machinery already handles, and
/// the result cells of distinct boxes are disjoint, so results simply
/// concatenate.
struct MultiRangeQuery {
  chunks::GroupBySpec group_by;
  /// Disjoint, ascending runs per dimension ({{0,0}} for level-0 dims).
  std::array<std::vector<schema::OrdinalRange>, storage::kMaxDims> runs;
  std::vector<NonGroupByPredicate> non_group_by;

  /// Number of box queries the decomposition would produce.
  uint64_t NumBoxes() const {
    uint64_t n = 1;
    for (uint32_t d = 0; d < group_by.num_dims; ++d) {
      n *= runs[d].empty() ? 1 : runs[d].size();
    }
    return n;
  }

  /// True when every dimension has exactly one run (a plain box query).
  bool IsSingleBox() const { return NumBoxes() == 1; }

  /// The equivalent StarJoinQuery; only valid when IsSingleBox().
  StarJoinQuery AsSingleBox() const;
};

/// Normalizes arbitrary ordinal runs: sorts, merges overlapping and
/// adjacent ranges.
std::vector<schema::OrdinalRange> NormalizeRuns(
    std::vector<schema::OrdinalRange> runs);

/// Intersects two normalized run lists.
std::vector<schema::OrdinalRange> IntersectRuns(
    const std::vector<schema::OrdinalRange>& a,
    const std::vector<schema::OrdinalRange>& b);

/// Decomposes into the cartesian product of per-dimension runs. Fails
/// with ResourceExhausted when the product exceeds `max_boxes` (a
/// degenerate IN-list would otherwise explode).
Result<std::vector<StarJoinQuery>> DecomposeToBoxQueries(
    const MultiRangeQuery& query, uint64_t max_boxes = 4096);

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_MULTI_RANGE_QUERY_H_
