#ifndef CHUNKCACHE_BACKEND_AGG_FILE_H_
#define CHUNKCACHE_BACKEND_AGG_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/agg_columns.h"
#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/tuple.h"

namespace chunkcache::backend {

/// Page file for aggregate rows (AggTuple) stored **columnar within each
/// page**: a page holds `rows_per_page` slots laid out as one contiguous
/// block per column — `num_dims` uint32 coordinate blocks, then the SUM /
/// COUNT / MIN / MAX blocks (8 bytes per entry each). Row ids are dense
/// append-order indexes exactly as before (rid -> page, slot), so the
/// B-tree chunk runs over this file are unchanged; what changed is the
/// in-page layout, which lets ScanRangeColumns hand whole chunk runs to
/// the dense aggregation kernels as flat arrays via a handful of memcpys
/// instead of a per-row field-by-field decode.
///
/// Used to store precomputed aggregate tables in chunked form at the
/// backend (Section 3.1: "even statically precomputed aggregate tables can
/// be organized on a chunk basis").
///
/// A file may instead be created *compressed*: rows are buffered and
/// written as codec-encoded blocks of 4x the raw page row count (see
/// storage/BlockStore), so a chunk run touches several-fold fewer pages on
/// the miss path. Row ids stay dense append-order indexes in both modes —
/// the chunk B-tree over this file is unchanged.
class AggFile {
 public:
  static Result<AggFile> Create(storage::BufferPool* pool, uint32_t num_dims,
                                bool compressed = false);
  static Result<AggFile> Open(storage::BufferPool* pool, uint32_t file_id);

  AggFile(AggFile&&) = default;
  AggFile& operator=(AggFile&&) = default;

  Result<uint64_t> Append(const storage::AggTuple& row);

  /// Appends every row of `cols`; returns the rid of the first one.
  /// Column slices are copied block-wise into each touched page.
  Result<uint64_t> AppendColumns(const storage::AggColumns& cols);

  Status Get(uint64_t rid, storage::AggTuple* out);

  /// Visits rows with rid in [first, first+count); `fn` returning false
  /// stops early.
  Status ScanRange(uint64_t first, uint64_t count,
                   const std::function<bool(const storage::AggTuple&)>& fn);

  /// Bulk-decodes rows with rid in [first, first+count) into `*out`,
  /// *appending* to its columns (callers accumulate several coalesced
  /// chunk runs into one batch).
  Status ScanRangeColumns(uint64_t first, uint64_t count,
                          storage::AggColumns* out);

  Status Scan(const std::function<bool(const storage::AggTuple&)>& fn) {
    return ScanRange(0, num_rows_, fn);
  }

  uint64_t num_rows() const { return num_rows_; }
  uint32_t file_id() const { return file_id_; }
  uint32_t num_dims() const { return num_dims_; }
  uint32_t rows_per_page() const { return rows_per_page_; }
  bool compressed() const { return compressed_; }

  /// Data pages currently allocated (compressed mode: block pages).
  uint32_t num_data_pages() const;

  /// Persists the header (row count). In compressed mode this first
  /// flushes the buffered tail rows as a final (possibly short) block.
  Status SyncHeader();

 private:
  AggFile(storage::BufferPool* pool, uint32_t file_id, uint32_t num_dims)
      : pool_(pool),
        file_id_(file_id),
        num_dims_(num_dims),
        record_size_(num_dims * 4 + 32),
        rows_per_page_(storage::kPageSize / record_size_) {}

  /// Byte offset of slot `slot` of coordinate column `d` within a page.
  uint32_t CoordOffset(uint32_t d, uint32_t slot) const {
    return (d * rows_per_page_ + slot) * 4;
  }
  /// Byte offset of slot `slot` of measure column `m` (0=sum, 1=count,
  /// 2=min, 3=max) within a page.
  uint32_t MeasureOffset(uint32_t m, uint32_t slot) const {
    return num_dims_ * 4 * rows_per_page_ + (m * rows_per_page_ + slot) * 8;
  }

  /// Encodes and writes the pending row buffer as one block.
  Status FlushPending();

  /// Decodes block `idx` into `*out` (replacing its contents).
  Status DecodeBlock(size_t idx, storage::AggColumns* out);

  struct Header {
    uint64_t magic;
    uint32_t num_dims;
    uint32_t flags;  // bit 0: compressed block format
    uint64_t num_rows;
  };
  // "AGGFILE2": version 2 is the columnar in-page layout.
  static constexpr uint64_t kMagic = 0x41474746494C4532ULL;
  static constexpr uint32_t kFlagCompressed = 1u;

  storage::BufferPool* pool_;
  uint32_t file_id_;
  uint32_t num_dims_;
  uint32_t record_size_;
  uint32_t rows_per_page_;
  uint64_t num_rows_ = 0;

  // Compressed mode state (mirrors FactFile).
  bool compressed_ = false;
  uint32_t block_rows_ = 0;
  std::unique_ptr<storage::BlockStore> store_;
  storage::AggColumns pending_;
  uint64_t flushed_rows_ = 0;
};

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_AGG_FILE_H_
