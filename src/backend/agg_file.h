#ifndef CHUNKCACHE_BACKEND_AGG_FILE_H_
#define CHUNKCACHE_BACKEND_AGG_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/tuple.h"

namespace chunkcache::backend {

/// Fixed-length record file for aggregate rows (AggTuple): per record,
/// `num_dims` 32-bit coordinates, then SUM, COUNT, MIN, MAX (8 bytes
/// each). Same slot-free page layout as FactFile; used to store
/// precomputed aggregate tables in chunked form at the backend
/// (Section 3.1: "even statically precomputed aggregate tables can be
/// organized on a chunk basis").
class AggFile {
 public:
  static Result<AggFile> Create(storage::BufferPool* pool, uint32_t num_dims);
  static Result<AggFile> Open(storage::BufferPool* pool, uint32_t file_id);

  AggFile(AggFile&&) = default;
  AggFile& operator=(AggFile&&) = default;

  Result<uint64_t> Append(const storage::AggTuple& row);
  Status Get(uint64_t rid, storage::AggTuple* out);

  /// Visits rows with rid in [first, first+count); `fn` returning false
  /// stops early.
  Status ScanRange(uint64_t first, uint64_t count,
                   const std::function<bool(const storage::AggTuple&)>& fn);

  Status Scan(const std::function<bool(const storage::AggTuple&)>& fn) {
    return ScanRange(0, num_rows_, fn);
  }

  uint64_t num_rows() const { return num_rows_; }
  uint32_t file_id() const { return file_id_; }
  uint32_t num_dims() const { return num_dims_; }
  uint32_t rows_per_page() const { return rows_per_page_; }
  Status SyncHeader();

 private:
  AggFile(storage::BufferPool* pool, uint32_t file_id, uint32_t num_dims)
      : pool_(pool),
        file_id_(file_id),
        num_dims_(num_dims),
        record_size_(num_dims * 4 + 32),
        rows_per_page_(storage::kPageSize / record_size_) {}

  struct Header {
    uint64_t magic;
    uint32_t num_dims;
    uint32_t reserved;
    uint64_t num_rows;
  };
  static constexpr uint64_t kMagic = 0x41474746494C4531ULL;  // "AGGFILE1"

  storage::BufferPool* pool_;
  uint32_t file_id_;
  uint32_t num_dims_;
  uint32_t record_size_;
  uint32_t rows_per_page_;
  uint64_t num_rows_ = 0;
};

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_AGG_FILE_H_
