#include "backend/agg_file.h"

#include <algorithm>
#include <cstring>

#include "common/fault_injector.h"
#include "storage/codec.h"

namespace chunkcache::backend {

using storage::AggColumns;
using storage::AggTuple;
using storage::kPageSize;
using storage::PageGuard;
using storage::PageId;
namespace codec = storage::codec;

namespace {

/// Appends rows [from, from + n) of `src` to `*out` (same num_dims).
void AppendAggRange(const AggColumns& src, size_t from, size_t n,
                    AggColumns* out) {
  for (uint32_t d = 0; d < src.num_dims(); ++d) {
    auto* col = out->mutable_coords(d);
    col->insert(col->end(), src.coords(d).begin() + from,
                src.coords(d).begin() + from + n);
  }
  const auto extend = [&](auto* col, const auto& s) {
    col->insert(col->end(), s.begin() + from, s.begin() + from + n);
  };
  extend(out->mutable_sums(), src.sums());
  extend(out->mutable_counts(), src.counts());
  extend(out->mutable_mins(), src.mins());
  extend(out->mutable_maxs(), src.maxs());
}

}  // namespace

Result<AggFile> AggFile::Create(storage::BufferPool* pool, uint32_t num_dims,
                                bool compressed) {
  if (num_dims == 0 || num_dims > storage::kMaxDims) {
    return Status::InvalidArgument("AggFile: bad dimension count");
  }
  const uint32_t file_id = pool->disk()->CreateFile();
  AggFile f(pool, file_id, num_dims);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate(file_id));
  auto* h = guard.page()->As<Header>();
  h->magic = kMagic;
  h->num_dims = num_dims;
  h->flags = compressed ? kFlagCompressed : 0;
  h->num_rows = 0;
  guard.MarkDirty();
  if (compressed) {
    f.compressed_ = true;
    f.block_rows_ = 4 * f.rows_per_page_;
    f.store_ = std::make_unique<storage::BlockStore>(pool, file_id, 1);
    f.pending_ = AggColumns(num_dims);
    f.pending_.Reserve(f.block_rows_);
  }
  return f;
}

Result<AggFile> AggFile::Open(storage::BufferPool* pool, uint32_t file_id) {
  uint32_t num_dims;
  uint32_t flags;
  uint64_t num_rows;
  {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool->Fetch(PageId{file_id, 0}));
    const auto* h = guard.page()->As<Header>();
    if (h->magic != kMagic) return Status::Corruption("AggFile: bad magic");
    num_dims = h->num_dims;
    flags = h->flags;
    num_rows = h->num_rows;
  }
  AggFile f(pool, file_id, num_dims);
  f.num_rows_ = num_rows;
  if (flags & kFlagCompressed) {
    f.compressed_ = true;
    f.block_rows_ = 4 * f.rows_per_page_;
    f.store_ = std::make_unique<storage::BlockStore>(pool, file_id, 1);
    CHUNKCACHE_RETURN_IF_ERROR(f.store_->Rebuild(num_rows));
    f.flushed_rows_ = num_rows;
    f.pending_ = AggColumns(num_dims);
  }
  return f;
}

Status AggFile::FlushPending() {
  if (pending_.empty()) return Status::OK();
  std::vector<uint8_t> blob;
  codec::EncodeAggColumns(pending_, &blob);
  CHUNKCACHE_RETURN_IF_ERROR(
      store_->AppendBlock(static_cast<uint32_t>(pending_.size()), blob));
  flushed_rows_ += pending_.size();
  pending_.Clear();
  return Status::OK();
}

Status AggFile::DecodeBlock(size_t idx, AggColumns* out) {
  std::vector<uint8_t> blob;
  CHUNKCACHE_RETURN_IF_ERROR(store_->ReadBlock(idx, &blob));
  CHUNKCACHE_ASSIGN_OR_RETURN(
      *out, codec::DecodeAggColumns(blob.data(), blob.size()));
  if (out->size() != store_->blocks()[idx].rows ||
      out->num_dims() != num_dims_) {
    return Status::Corruption("AggFile: block shape mismatch");
  }
  return Status::OK();
}

Result<uint64_t> AggFile::Append(const AggTuple& row) {
  const uint64_t rid = num_rows_;
  if (compressed_) {
    pending_.PushRow(row);
    ++num_rows_;
    if (pending_.size() >= block_rows_) {
      CHUNKCACHE_RETURN_IF_ERROR(FlushPending());
    }
    return rid;
  }
  const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
  const uint32_t slot = static_cast<uint32_t>(rid % rows_per_page_);
  PageGuard guard;
  if (slot == 0) {
    CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Allocate(file_id_));
    if (guard.id().page_no != page_no) {
      return Status::Internal("AggFile: non-contiguous allocation");
    }
  } else {
    CHUNKCACHE_ASSIGN_OR_RETURN(guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
  }
  uint8_t* base = guard.page()->data.data();
  for (uint32_t d = 0; d < num_dims_; ++d) {
    std::memcpy(base + CoordOffset(d, slot), &row.coords[d], 4);
  }
  std::memcpy(base + MeasureOffset(0, slot), &row.sum, 8);
  std::memcpy(base + MeasureOffset(1, slot), &row.count, 8);
  std::memcpy(base + MeasureOffset(2, slot), &row.min_v, 8);
  std::memcpy(base + MeasureOffset(3, slot), &row.max_v, 8);
  guard.MarkDirty();
  ++num_rows_;
  return rid;
}

Result<uint64_t> AggFile::AppendColumns(const AggColumns& cols) {
  if (cols.num_dims() != num_dims_) {
    return Status::InvalidArgument("AggFile::AppendColumns: dims mismatch");
  }
  const uint64_t first_rid = num_rows_;
  const size_t n = cols.size();
  if (compressed_) {
    size_t from = 0;
    while (from < n) {
      const size_t take =
          std::min<size_t>(block_rows_ - pending_.size(), n - from);
      AppendAggRange(cols, from, take, &pending_);
      from += take;
      num_rows_ += take;
      if (pending_.size() >= block_rows_) {
        CHUNKCACHE_RETURN_IF_ERROR(FlushPending());
      }
    }
    return first_rid;
  }
  size_t done = 0;
  while (done < n) {
    const uint32_t page_no =
        1 + static_cast<uint32_t>(num_rows_ / rows_per_page_);
    const uint32_t slot = static_cast<uint32_t>(num_rows_ % rows_per_page_);
    const uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(rows_per_page_ - slot, n - done));
    PageGuard guard;
    if (slot == 0) {
      CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Allocate(file_id_));
      if (guard.id().page_no != page_no) {
        return Status::Internal("AggFile: non-contiguous allocation");
      }
    } else {
      CHUNKCACHE_ASSIGN_OR_RETURN(guard,
                                  pool_->Fetch(PageId{file_id_, page_no}));
    }
    uint8_t* base = guard.page()->data.data();
    for (uint32_t d = 0; d < num_dims_; ++d) {
      std::memcpy(base + CoordOffset(d, slot), cols.coords(d).data() + done,
                  take * 4ull);
    }
    std::memcpy(base + MeasureOffset(0, slot), cols.sums().data() + done,
                take * 8ull);
    std::memcpy(base + MeasureOffset(1, slot), cols.counts().data() + done,
                take * 8ull);
    std::memcpy(base + MeasureOffset(2, slot), cols.mins().data() + done,
                take * 8ull);
    std::memcpy(base + MeasureOffset(3, slot), cols.maxs().data() + done,
                take * 8ull);
    guard.MarkDirty();
    num_rows_ += take;
    done += take;
  }
  return first_rid;
}

Status AggFile::Get(uint64_t rid, AggTuple* out) {
  if (rid >= num_rows_) return Status::OutOfRange("AggFile::Get beyond EOF");
  if (compressed_) {
    if (rid >= flushed_rows_) {
      *out = pending_.RowAt(static_cast<size_t>(rid - flushed_rows_));
      return Status::OK();
    }
    AggColumns block;
    const size_t idx = store_->FindBlock(rid);
    CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
    *out = block.RowAt(
        static_cast<size_t>(rid - store_->blocks()[idx].first_row));
    return Status::OK();
  }
  const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
  const uint32_t slot = static_cast<uint32_t>(rid % rows_per_page_);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, page_no}));
  const uint8_t* base = guard.page()->data.data();
  *out = AggTuple{};
  for (uint32_t d = 0; d < num_dims_; ++d) {
    std::memcpy(&out->coords[d], base + CoordOffset(d, slot), 4);
  }
  std::memcpy(&out->sum, base + MeasureOffset(0, slot), 8);
  std::memcpy(&out->count, base + MeasureOffset(1, slot), 8);
  std::memcpy(&out->min_v, base + MeasureOffset(2, slot), 8);
  std::memcpy(&out->max_v, base + MeasureOffset(3, slot), 8);
  return Status::OK();
}

Status AggFile::ScanRange(
    uint64_t first, uint64_t count,
    const std::function<bool(const AggTuple&)>& fn) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kAggScan);
  if (first > num_rows_) {
    return Status::OutOfRange("AggFile::ScanRange beyond EOF");
  }
  const uint64_t end = std::min(first + count, num_rows_);
  if (compressed_) {
    uint64_t rid = first;
    AggColumns block;
    while (rid < end && rid < flushed_rows_) {
      const size_t idx = store_->FindBlock(rid);
      CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
      const storage::BlockStore::BlockRef& ref = store_->blocks()[idx];
      const uint64_t block_end = std::min(ref.first_row + ref.rows, end);
      for (; rid < block_end; ++rid) {
        if (!fn(block.RowAt(static_cast<size_t>(rid - ref.first_row)))) {
          return Status::OK();
        }
      }
    }
    for (; rid < end; ++rid) {
      if (!fn(pending_.RowAt(static_cast<size_t>(rid - flushed_rows_)))) {
        return Status::OK();
      }
    }
    return Status::OK();
  }
  AggTuple row;
  uint64_t rid = first;
  while (rid < end) {
    const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint8_t* base = guard.page()->data.data();
    const uint64_t page_first =
        static_cast<uint64_t>(page_no - 1) * rows_per_page_;
    const uint64_t page_end = std::min(page_first + rows_per_page_, end);
    for (; rid < page_end; ++rid) {
      const uint32_t slot = static_cast<uint32_t>(rid - page_first);
      row = AggTuple{};
      for (uint32_t d = 0; d < num_dims_; ++d) {
        std::memcpy(&row.coords[d], base + CoordOffset(d, slot), 4);
      }
      std::memcpy(&row.sum, base + MeasureOffset(0, slot), 8);
      std::memcpy(&row.count, base + MeasureOffset(1, slot), 8);
      std::memcpy(&row.min_v, base + MeasureOffset(2, slot), 8);
      std::memcpy(&row.max_v, base + MeasureOffset(3, slot), 8);
      if (!fn(row)) return Status::OK();
    }
  }
  return Status::OK();
}

Status AggFile::ScanRangeColumns(uint64_t first, uint64_t count,
                                 AggColumns* out) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kAggScan);
  if (first > num_rows_) {
    return Status::OutOfRange("AggFile::ScanRangeColumns beyond EOF");
  }
  const uint64_t end = std::min(first + count, num_rows_);
  if (first >= end) return Status::OK();
  if (out->num_dims() != num_dims_) {
    if (!out->empty()) {
      return Status::InvalidArgument(
          "AggFile::ScanRangeColumns: dims mismatch");
    }
    *out = AggColumns(num_dims_);
  }
  out->Reserve(out->size() + static_cast<size_t>(end - first));
  if (compressed_) {
    uint64_t rid = first;
    AggColumns block;
    while (rid < end && rid < flushed_rows_) {
      const size_t idx = store_->FindBlock(rid);
      CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
      const storage::BlockStore::BlockRef& ref = store_->blocks()[idx];
      const uint64_t block_end = std::min(ref.first_row + ref.rows, end);
      AppendAggRange(block, static_cast<size_t>(rid - ref.first_row),
                     static_cast<size_t>(block_end - rid), out);
      rid = block_end;
    }
    if (rid < end) {
      AppendAggRange(pending_, static_cast<size_t>(rid - flushed_rows_),
                     static_cast<size_t>(end - rid), out);
    }
    return Status::OK();
  }
  uint64_t rid = first;
  while (rid < end) {
    const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint8_t* base = guard.page()->data.data();
    const uint64_t page_first =
        static_cast<uint64_t>(page_no - 1) * rows_per_page_;
    const uint32_t slot = static_cast<uint32_t>(rid - page_first);
    const uint32_t take = static_cast<uint32_t>(
        std::min<uint64_t>(page_first + rows_per_page_, end) - rid);
    // Column blocks are contiguous in the page: one memcpy per column.
    for (uint32_t d = 0; d < num_dims_; ++d) {
      auto* col = out->mutable_coords(d);
      const size_t at = col->size();
      col->resize(at + take);
      std::memcpy(col->data() + at, base + CoordOffset(d, slot), take * 4ull);
    }
    const auto extend = [&](auto* col, uint32_t measure_idx) {
      const size_t at = col->size();
      col->resize(at + take);
      std::memcpy(col->data() + at, base + MeasureOffset(measure_idx, slot),
                  take * 8ull);
    };
    extend(out->mutable_sums(), 0);
    extend(out->mutable_counts(), 1);
    extend(out->mutable_mins(), 2);
    extend(out->mutable_maxs(), 3);
    rid += take;
  }
  return Status::OK();
}

uint32_t AggFile::num_data_pages() const {
  if (compressed_) return store_->num_pages();
  return num_rows_ == 0
             ? 0
             : static_cast<uint32_t>((num_rows_ + rows_per_page_ - 1) /
                                     rows_per_page_);
}

Status AggFile::SyncHeader() {
  if (compressed_) CHUNKCACHE_RETURN_IF_ERROR(FlushPending());
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, 0}));
  auto* h = guard.page()->As<Header>();
  h->num_rows = num_rows_;
  guard.MarkDirty();
  return Status::OK();
}

}  // namespace chunkcache::backend
