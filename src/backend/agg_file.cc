#include "backend/agg_file.h"

#include <algorithm>
#include <cstring>

namespace chunkcache::backend {

using storage::AggTuple;
using storage::kPageSize;
using storage::PageGuard;
using storage::PageId;

namespace {

void SerializeRow(const AggTuple& row, uint32_t num_dims, uint8_t* dst) {
  std::memcpy(dst, row.coords.data(), num_dims * 4);
  std::memcpy(dst + num_dims * 4, &row.sum, 8);
  std::memcpy(dst + num_dims * 4 + 8, &row.count, 8);
  std::memcpy(dst + num_dims * 4 + 16, &row.min_v, 8);
  std::memcpy(dst + num_dims * 4 + 24, &row.max_v, 8);
}

void DeserializeRow(const uint8_t* src, uint32_t num_dims, AggTuple* row) {
  std::memcpy(row->coords.data(), src, num_dims * 4);
  std::memcpy(&row->sum, src + num_dims * 4, 8);
  std::memcpy(&row->count, src + num_dims * 4 + 8, 8);
  std::memcpy(&row->min_v, src + num_dims * 4 + 16, 8);
  std::memcpy(&row->max_v, src + num_dims * 4 + 24, 8);
}

}  // namespace

Result<AggFile> AggFile::Create(storage::BufferPool* pool, uint32_t num_dims) {
  if (num_dims == 0 || num_dims > storage::kMaxDims) {
    return Status::InvalidArgument("AggFile: bad dimension count");
  }
  const uint32_t file_id = pool->disk()->CreateFile();
  AggFile f(pool, file_id, num_dims);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate(file_id));
  auto* h = guard.page()->As<Header>();
  h->magic = kMagic;
  h->num_dims = num_dims;
  h->num_rows = 0;
  guard.MarkDirty();
  return f;
}

Result<AggFile> AggFile::Open(storage::BufferPool* pool, uint32_t file_id) {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool->Fetch(PageId{file_id, 0}));
  const auto* h = guard.page()->As<Header>();
  if (h->magic != kMagic) return Status::Corruption("AggFile: bad magic");
  AggFile f(pool, file_id, h->num_dims);
  f.num_rows_ = h->num_rows;
  return f;
}

Result<uint64_t> AggFile::Append(const AggTuple& row) {
  const uint64_t rid = num_rows_;
  const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
  const uint32_t slot = static_cast<uint32_t>(rid % rows_per_page_);
  PageGuard guard;
  if (slot == 0) {
    CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Allocate(file_id_));
    if (guard.id().page_no != page_no) {
      return Status::Internal("AggFile: non-contiguous allocation");
    }
  } else {
    CHUNKCACHE_ASSIGN_OR_RETURN(guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
  }
  SerializeRow(row, num_dims_,
               guard.page()->data.data() + slot * record_size_);
  guard.MarkDirty();
  ++num_rows_;
  return rid;
}

Status AggFile::Get(uint64_t rid, AggTuple* out) {
  if (rid >= num_rows_) return Status::OutOfRange("AggFile::Get beyond EOF");
  const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
  const uint32_t slot = static_cast<uint32_t>(rid % rows_per_page_);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, page_no}));
  DeserializeRow(guard.page()->data.data() + slot * record_size_, num_dims_,
                 out);
  return Status::OK();
}

Status AggFile::ScanRange(
    uint64_t first, uint64_t count,
    const std::function<bool(const AggTuple&)>& fn) {
  if (first > num_rows_) {
    return Status::OutOfRange("AggFile::ScanRange beyond EOF");
  }
  const uint64_t end = std::min(first + count, num_rows_);
  AggTuple row;
  uint64_t rid = first;
  while (rid < end) {
    const uint32_t page_no = 1 + static_cast<uint32_t>(rid / rows_per_page_);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint64_t page_first =
        static_cast<uint64_t>(page_no - 1) * rows_per_page_;
    const uint64_t page_end = std::min(page_first + rows_per_page_, end);
    for (; rid < page_end; ++rid) {
      const uint32_t slot = static_cast<uint32_t>(rid - page_first);
      DeserializeRow(guard.page()->data.data() + slot * record_size_,
                     num_dims_, &row);
      if (!fn(row)) return Status::OK();
    }
  }
  return Status::OK();
}

Status AggFile::SyncHeader() {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, 0}));
  auto* h = guard.page()->As<Header>();
  h->num_rows = num_rows_;
  guard.MarkDirty();
  return Status::OK();
}

}  // namespace chunkcache::backend
