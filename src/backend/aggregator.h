#ifndef CHUNKCACHE_BACKEND_AGGREGATOR_H_
#define CHUNKCACHE_BACKEND_AGGREGATOR_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chunks/chunking_scheme.h"
#include "common/simd.h"
#include "common/status.h"
#include "storage/agg_columns.h"
#include "storage/tuple.h"

namespace chunkcache::backend {

/// Plain snapshot of the aggregation-kernel and run-I/O counters.
struct AggKernelStats {
  uint64_t dense_kernels = 0;      ///< Chunks aggregated by the dense kernel.
  uint64_t hash_kernels = 0;       ///< Chunks that fell back to hashing.
  uint64_t rows_folded_dense = 0;  ///< Rows folded by dense kernels.
  uint64_t rows_folded_hash = 0;   ///< Rows folded by the hash fallback.
  uint64_t coalesced_reads = 0;    ///< Merged multi-run sequential reads.
  uint64_t single_run_reads = 0;   ///< Runs read alone (no adjacent run).
  uint64_t runs_merged = 0;        ///< Source runs folded into merged reads.
};

/// Thread-safe counters behind AggKernelStats; chunk workers record into
/// these concurrently, so every field is a relaxed atomic.
struct AggKernelCounters {
  std::atomic<uint64_t> dense_kernels{0};
  std::atomic<uint64_t> hash_kernels{0};
  std::atomic<uint64_t> rows_folded_dense{0};
  std::atomic<uint64_t> rows_folded_hash{0};
  std::atomic<uint64_t> coalesced_reads{0};
  std::atomic<uint64_t> single_run_reads{0};
  std::atomic<uint64_t> runs_merged{0};

  AggKernelStats Snapshot() const;
  void Reset();
};

/// Hash aggregation of fact or aggregate rows up to a target group-by
/// level. Coordinates are packed into a mixed-radix 64-bit key over the
/// target level cardinalities, so grouping is one hash probe per row.
///
/// Rows can come from the base table (AddBase) or from an already
/// aggregated relation at a finer group-by (AddAgg) — the latter is what
/// the closure property and the in-cache aggregation extension rely on.
///
/// `reserve_cells` bounds the number of distinct cells the caller expects
/// (e.g. a chunk's cell-box size); the map reserves that capacity up front
/// so folding never rehashes mid-stream.
class HashAggregator {
 public:
  HashAggregator(const chunks::ChunkingScheme* scheme,
                 chunks::GroupBySpec target, uint64_t reserve_cells = 0);

  /// Folds one base tuple into its target-level cell.
  void AddBase(const storage::Tuple& t);

  /// Folds one aggregate row at group-by `src` (must be finer or equal to
  /// the target on every dimension).
  void AddAgg(const storage::AggTuple& row, const chunks::GroupBySpec& src);

  /// Number of rows folded so far (for work accounting).
  uint64_t rows_consumed() const { return rows_consumed_; }

  /// Extracts the aggregated cells (unordered). Resets the aggregator.
  std::vector<storage::AggTuple> TakeRows();

  /// Extracts the aggregated cells as columns (unordered). Resets the
  /// aggregator.
  storage::AggColumns TakeColumns();

 private:
  uint64_t PackKey(const chunks::ChunkCoords& coords) const;

  const chunks::ChunkingScheme* scheme_;
  chunks::GroupBySpec target_;
  std::array<uint64_t, storage::kMaxDims> radix_mult_{};
  std::unordered_map<uint64_t, storage::AggTuple> cells_;
  uint64_t rows_consumed_ = 0;
};

/// Dense-grid aggregation kernel for one chunk: the chunk spans a bounded
/// cell box (the product of its per-dimension chunk-range sizes), so each
/// cell maps to a mixed-radix offset into flat accumulator arrays and
/// folding a row is `acc[offset] += measure` — no hashing, no per-node
/// allocation, and extraction walks the arrays in row-major order, which
/// is already the canonical result order.
class DenseChunkAggregator {
 public:
  /// `extent[d]` is the ordinal range (at target's levels) the chunk spans
  /// on dimension d (ChunkingScheme::ChunkExtent).
  DenseChunkAggregator(
      const chunks::ChunkingScheme* scheme, chunks::GroupBySpec target,
      const std::array<schema::OrdinalRange, storage::kMaxDims>& extent);

  /// Number of cells in the chunk's box (accumulator array length).
  uint64_t num_cells() const { return num_cells_; }
  uint64_t rows_consumed() const { return rows_consumed_; }

  void AddBase(const storage::Tuple& t);
  void AddAgg(const storage::AggTuple& row, const chunks::GroupBySpec& src);

  /// Bulk kernels over columnar batches (one chunk run at a time).
  /// `pre_filter`/`has_filter` carry base-level non-group-by predicate
  /// ranges; pass nullptr when unfiltered.
  void AddBaseColumns(const storage::TupleColumns& batch,
                      const bool* has_filter,
                      const schema::OrdinalRange* pre_filter);
  void AddAggColumns(const storage::AggColumns& batch,
                     const chunks::GroupBySpec& src);

  /// Extracts non-empty cells in row-major coordinate order (already the
  /// canonical sorted order). Resets the accumulators.
  storage::AggColumns TakeColumns();

 private:
  /// Mixed-radix offset of the cell with target-level coordinate `c` on
  /// dimension d accumulated by the caller.
  inline uint64_t FoldOffset(const uint32_t* coords) const {
    uint64_t off = 0;
    for (uint32_t d = 0; d < target_.num_dims; ++d) {
      off += static_cast<uint64_t>(coords[d] - base_[d]) * mult_[d];
    }
    return off;
  }

  /// One accumulator cell, interleaved so a fold touches a single cache
  /// line instead of four parallel arrays. min/max start at +/-infinity
  /// sentinels, so the first fold needs no occupancy branch — min(inf, m)
  /// == m, matching AggTuple::FoldMeasure bit for bit. Empty cells are
  /// detected via count at extraction time, so the sentinels never escape.
  struct Cell {
    double sum;
    uint64_t count;
    double min;
    double max;
  };

  inline void FoldMeasureAt(uint64_t off, double measure) {
    CHUNKCACHE_DCHECK(off < num_cells_);
    Cell& c = cells_[off];
    c.sum += measure;
    c.count += 1;
    // Ternaries compile to branchless min/max — the comparisons are
    // data-dependent and would mispredict on random measures.
    c.min = measure < c.min ? measure : c.min;
    c.max = measure > c.max ? measure : c.max;
  }

  /// Builds per-dimension lookup tables mapping a base-level key (offset
  /// by the chunk's base-key range start) straight to its mixed-radix
  /// offset contribution `(ancestor - base) * mult`. Hoists the hierarchy
  /// rollup out of the bulk row loop: AddBaseColumns becomes one table
  /// load per dimension per row. Built lazily on the first bulk call so
  /// the row-at-a-time paths never pay for it.
  void BuildBaseLut();

  /// Folds one block of rows whose cell offsets are already computed.
  /// Deliberately noinline: this is the single machine-code copy of the
  /// fold update that every bulk kernel (scalar and AVX2 dispatch alike)
  /// runs, which is what makes "AVX2 == scalar bit for bit" structural.
  /// If each kernel inlined FoldMeasureAt separately, the compiler could
  /// commute `c.sum + measure` in one copy and not the other — a
  /// bit-visible difference when both operands are NaNs with different
  /// payloads (e.g. a +inf/-inf cell folding a quiet NaN measure), since
  /// the IEEE add returns its *first* NaN operand.
  __attribute__((noinline)) void FoldOffsetsU32(const uint32_t* offs,
                                                const double* measures,
                                                size_t n);

  /// Dimension-count-specialized unfiltered fold loop: with ND a compile
  /// time constant the offset computation fully unrolls and the lookup
  /// table pointers stay in registers. Boxes that fit 32-bit offsets run
  /// the same blocked two-pass shape as the AVX2 kernel (pass 2 =
  /// FoldOffsetsU32); larger boxes fold row-at-a-time with 64-bit
  /// offsets (those never dispatch to AVX2, so identity is trivial).
  template <uint32_t ND>
  void FoldBaseRowsUnrolled(const uint32_t* const* keys,
                            const uint64_t* const* luts, const uint32_t* los,
                            const double* measures, size_t n);

#if CHUNKCACHE_SIMD_X86_64
  /// AVX2 twin of FoldBaseRowsUnrolled, used when simd::ActiveLevel() is
  /// kAvx2 and the cell box fits 32-bit offsets: a blocked two-pass
  /// kernel that gathers the per-dimension 32-bit LUT contributions
  /// eight rows at a time (VPGATHERDD) and prefetches every target
  /// cell, software-pipelined one block ahead of the fold pass so the
  /// prefetches have time to land. The fold pass is the shared
  /// FoldOffsetsU32, so results are bit-identical to scalar dispatch
  /// (same per-row fold order, same fold machine code). Defined in
  /// aggregator.cc so scalar translation units never see AVX2 code.
  template <uint32_t ND>
  __attribute__((target("avx2"))) void FoldBaseRowsAvx2(
      const uint32_t* const* keys, const uint32_t* const* luts,
      const uint32_t* los, const double* measures, size_t n);
#endif

  const chunks::ChunkingScheme* scheme_;
  chunks::GroupBySpec target_;
  std::array<uint32_t, storage::kMaxDims> base_{};   ///< extent[d].begin
  std::array<uint32_t, storage::kMaxDims> width_{};  ///< extent[d].size()
  std::array<uint64_t, storage::kMaxDims> mult_{};   ///< row-major strides
  uint64_t num_cells_ = 0;
  uint64_t rows_consumed_ = 0;
  std::vector<Cell> cells_;
  /// base_lut_[d][key - lut_lo_[d]] == offset contribution of dimension d.
  std::array<std::vector<uint64_t>, storage::kMaxDims> base_lut_;
  /// 32-bit copy of base_lut_ for the 8-wide AVX2 gather kernel; only
  /// filled when num_cells_ fits in 32 bits (every contribution then
  /// does too).
  std::array<std::vector<uint32_t>, storage::kMaxDims> base_lut32_;
  /// Per-dimension affine-LUT summary (lut[rel] == icept + rel * slope),
  /// true for leaf-level and ALL-level group-by dimensions: the AVX2
  /// kernel replaces those dimensions' gathers with vector multiplies.
  std::array<bool, storage::kMaxDims> lut_affine_{};
  std::array<uint32_t, storage::kMaxDims> lut_slope32_{};
  std::array<uint32_t, storage::kMaxDims> lut_icept32_{};
  std::array<uint32_t, storage::kMaxDims> lut_lo_{};
  bool lut_built_ = false;
};

/// Per-chunk aggregation front end: picks the dense-grid kernel when the
/// chunk's cell box is within `dense_cell_limit` and falls back to
/// HashAggregator (with capacity reserved from the cell-box bound)
/// otherwise, so sparse or enormous boxes never materialize huge
/// accumulator arrays. Records kernel choice and rows folded into
/// `counters` when non-null. TakeColumns returns rows in canonical
/// row-major order in both modes.
class ChunkAggregator {
 public:
  ChunkAggregator(const chunks::ChunkingScheme* scheme,
                  const chunks::GroupBySpec& target, uint64_t chunk_num,
                  uint64_t dense_cell_limit,
                  AggKernelCounters* counters = nullptr);

  bool dense() const { return dense_.has_value(); }
  uint64_t rows_consumed() const {
    return dense_ ? dense_->rows_consumed() : hash_->rows_consumed();
  }

  void AddBase(const storage::Tuple& t);
  void AddAgg(const storage::AggTuple& row, const chunks::GroupBySpec& src);
  void AddBaseColumns(const storage::TupleColumns& batch,
                      const bool* has_filter,
                      const schema::OrdinalRange* pre_filter);
  void AddAggColumns(const storage::AggColumns& batch,
                     const chunks::GroupBySpec& src);

  storage::AggColumns TakeColumns();

 private:
  const chunks::ChunkingScheme* scheme_;
  chunks::GroupBySpec target_;
  AggKernelCounters* counters_;
  std::optional<DenseChunkAggregator> dense_;
  std::optional<HashAggregator> hash_;
};

/// Keeps only the rows whose coordinates fall inside `selection` on every
/// dimension — the post-aggregation boundary filter of Section 5.2.3 ("it
/// might be necessary to do some post-processing on these chunks, since
/// chunks will have extra tuples").
std::vector<storage::AggTuple> FilterRows(
    std::vector<storage::AggTuple> rows, uint32_t num_dims,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& selection);

/// Canonical ordering for result rows (row-major by coordinates), so tests
/// and baselines can compare result sets deterministically.
void SortRows(std::vector<storage::AggTuple>* rows, uint32_t num_dims);

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_AGGREGATOR_H_
