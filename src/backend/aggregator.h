#ifndef CHUNKCACHE_BACKEND_AGGREGATOR_H_
#define CHUNKCACHE_BACKEND_AGGREGATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chunks/chunking_scheme.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace chunkcache::backend {

/// Hash aggregation of fact or aggregate rows up to a target group-by
/// level. Coordinates are packed into a mixed-radix 64-bit key over the
/// target level cardinalities, so grouping is one hash probe per row.
///
/// Rows can come from the base table (AddBase) or from an already
/// aggregated relation at a finer group-by (AddAgg) — the latter is what
/// the closure property and the in-cache aggregation extension rely on.
class HashAggregator {
 public:
  HashAggregator(const chunks::ChunkingScheme* scheme,
                 chunks::GroupBySpec target);

  /// Folds one base tuple into its target-level cell.
  void AddBase(const storage::Tuple& t);

  /// Folds one aggregate row at group-by `src` (must be finer or equal to
  /// the target on every dimension).
  void AddAgg(const storage::AggTuple& row, const chunks::GroupBySpec& src);

  /// Number of rows folded so far (for work accounting).
  uint64_t rows_consumed() const { return rows_consumed_; }

  /// Extracts the aggregated cells (unordered). Resets the aggregator.
  std::vector<storage::AggTuple> TakeRows();

 private:
  uint64_t PackKey(const chunks::ChunkCoords& coords) const;

  const chunks::ChunkingScheme* scheme_;
  chunks::GroupBySpec target_;
  std::array<uint64_t, storage::kMaxDims> radix_mult_{};
  std::unordered_map<uint64_t, storage::AggTuple> cells_;
  uint64_t rows_consumed_ = 0;
};

/// Keeps only the rows whose coordinates fall inside `selection` on every
/// dimension — the post-aggregation boundary filter of Section 5.2.3 ("it
/// might be necessary to do some post-processing on these chunks, since
/// chunks will have extra tuples").
std::vector<storage::AggTuple> FilterRows(
    std::vector<storage::AggTuple> rows, uint32_t num_dims,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& selection);

/// Canonical ordering for result rows (row-major by coordinates), so tests
/// and baselines can compare result sets deterministically.
void SortRows(std::vector<storage::AggTuple>* rows, uint32_t num_dims);

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_AGGREGATOR_H_
