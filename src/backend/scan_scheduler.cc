#include "backend/scan_scheduler.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace chunkcache::backend {

ScanScheduler::ScanScheduler(BackendEngine* engine, ScanSchedulerOptions options,
                             MetricsRegistry* metrics)
    : engine_(engine), options_(options), metrics_(metrics) {
  CHUNKCACHE_CHECK(engine_ != nullptr);
  options_.max_outstanding_scans =
      std::max<uint32_t>(1, options_.max_outstanding_scans);
  options_.max_queue_depth = std::max<uint32_t>(1, options_.max_queue_depth);
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  requests_ = metrics_->GetCounter("scheduler.requests");
  merged_requests_ = metrics_->GetCounter("scheduler.merged_requests");
  batches_ = metrics_->GetCounter("scheduler.batches");
  completions_ = metrics_->GetCounter("scheduler.completions");
  deadline_sheds_ = metrics_->GetCounter("scheduler.deadline_sheds");
  request_errors_ = metrics_->GetCounter("scheduler.request_errors");
  queue_depth_hwm_ = metrics_->GetGauge("scheduler.queue_depth_hwm");
  outstanding_hwm_ = metrics_->GetGauge("scheduler.outstanding_hwm");
  scan_ns_ = metrics_->GetHistogram("scheduler.scan_ns");
}

std::shared_ptr<ScanScheduler::Batch> ScanScheduler::FindJoinableLocked(
    const chunks::GroupBySpec& target,
    const std::vector<NonGroupByPredicate>& preds) {
  for (const auto& b : open_) {
    if (!b->closed && b->target == target && b->preds == preds) return b;
  }
  return nullptr;
}

void ScanScheduler::DistributeLocked(Batch* batch,
                                     const std::vector<uint64_t>& union_nums,
                                     std::vector<ChunkData>* out,
                                     const WorkCounters& batch_work) {
  std::unordered_map<uint64_t, size_t> slot;
  slot.reserve(union_nums.size());
  for (size_t i = 0; i < union_nums.size(); ++i) slot[union_nums[i]] = i;

  // How many requests reference each chunk (with the coalescing layer in
  // front of the scheduler the sets are disjoint, but standalone callers
  // may overlap), and each request's exact tuple share — computed before
  // any ChunkData is moved out.
  std::unordered_map<uint64_t, uint32_t> refs;
  refs.reserve(union_nums.size());
  uint64_t total_rows = 0;
  for (const ChunkData& d : *out) total_rows += d.source_rows;
  std::vector<uint64_t> req_rows(batch->requests.size(), 0);
  for (size_t r = 0; r < batch->requests.size(); ++r) {
    for (uint64_t c : *batch->requests[r]->chunks) {
      ++refs[c];
      req_rows[r] += (*out)[slot.at(c)].source_rows;
    }
  }

  uint64_t pages_read_left = batch_work.pages_read;
  uint64_t pages_written_left = batch_work.pages_written;
  for (size_t r = 0; r < batch->requests.size(); ++r) {
    Request* req = batch->requests[r];
    req->result.reserve(req->chunks->size());
    for (uint64_t c : *req->chunks) {
      ChunkData& src = (*out)[slot.at(c)];
      if (--refs.at(c) == 0) {
        req->result.push_back(std::move(src));
      } else {
        ChunkData copy;
        copy.chunk_num = src.chunk_num;
        copy.source_rows = src.source_rows;
        copy.cols = src.cols;
        req->result.push_back(std::move(copy));
      }
    }
    req->work.tuples_processed = req_rows[r];
    // Physical pages were read once for the whole merged scan; charge each
    // requester its row-proportional share, remainder to the leader
    // (request 0) so the totals stay exact. A single-request batch gets
    // everything — identical to a direct engine call.
    uint64_t pr;
    uint64_t pw;
    if (total_rows == 0) {
      pr = r == 0 ? batch_work.pages_read : 0;
      pw = r == 0 ? batch_work.pages_written : 0;
    } else if (r + 1 == batch->requests.size()) {
      pr = pages_read_left;
      pw = pages_written_left;
    } else {
      pr = batch_work.pages_read * req_rows[r] / total_rows;
      pw = batch_work.pages_written * req_rows[r] / total_rows;
    }
    pr = std::min(pr, pages_read_left);
    pw = std::min(pw, pages_written_left);
    pages_read_left -= pr;
    pages_written_left -= pw;
    req->work.pages_read = pr;
    req->work.pages_written = pw;
  }
  // Any remainder (rounding) goes to the leader.
  batch->requests[0]->work.pages_read += pages_read_left;
  batch->requests[0]->work.pages_written += pages_written_left;
}

Result<std::vector<ChunkData>> ScanScheduler::Compute(
    const chunks::GroupBySpec& target,
    const std::vector<uint64_t>& chunk_nums,
    const std::vector<NonGroupByPredicate>& non_group_by, WorkCounters* work,
    ThreadPool* executor, const ExecControl* ctrl) {
  if (chunk_nums.empty()) return std::vector<ChunkData>{};
  CHUNKCACHE_CHECK(work != nullptr);
  CHUNKCACHE_FAULT_POINT(FaultSite::kScanAdmit);
  if (ctrl != nullptr) CHUNKCACHE_RETURN_IF_ERROR(ctrl->Check());
  const Deadline deadline = ctrl != nullptr ? ctrl->deadline : Deadline();
  // Timed wait honoring an infinite deadline; returns false on timeout.
  auto wait = [&](std::unique_lock<std::mutex>& lock, auto pred) {
    if (deadline.infinite()) {
      cv_.wait(lock, pred);
      return true;
    }
    return cv_.wait_until(lock, deadline.time_point(), pred);
  };

  Request req;
  req.chunks = &chunk_nums;
  std::shared_ptr<Batch> batch;
  std::vector<uint64_t> union_nums;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    requests_->Increment();
    batch = FindJoinableLocked(target, non_group_by);
    if (batch == nullptr) {
      // Back-pressure: creating a new batch needs room in the open queue.
      // A joinable batch may appear while we wait, so re-probe after.
      if (!wait(lock, [&] {
            return open_.size() < options_.max_queue_depth;
          })) {
        // Nothing joined yet — this request simply never got in the door.
        deadline_sheds_->Increment();
        return Status::DeadlineExceeded("scan admission queue full");
      }
      batch = FindJoinableLocked(target, non_group_by);
    }
    if (batch != nullptr) {
      batch->requests.push_back(&req);
      merged_requests_->Increment();
    } else {
      batch = std::make_shared<Batch>();
      batch->target = target;
      batch->preds = non_group_by;
      batch->requests.push_back(&req);
      open_.push_back(batch);
      queue_depth_hwm_->SetMax(static_cast<int64_t>(open_.size()));
      leader = true;

      // Admission: the batch stays open (joinable) until a scan slot
      // frees up — this is where a storm turns into batching.
      if (!wait(lock, [&] {
            return outstanding_ < options_.max_outstanding_scans;
          })) {
        // Leader timed out queued for a slot: shed the whole batch. The
        // followers joined *this* batch precisely to share its scan, so
        // they share its deadline fate; each can retry or degrade.
        batch->closed = true;
        batch->finished = true;
        batch->status = Status::DeadlineExceeded("scan slot wait timed out");
        open_.remove(batch);
        deadline_sheds_->Increment();
        lock.unlock();
        cv_.notify_all();
        return batch->status;
      }
      ++outstanding_;
      outstanding_hwm_->SetMax(static_cast<int64_t>(outstanding_));
      batch->closed = true;
      open_.remove(batch);
      batches_->Increment();
      // Union of every requester's chunks, deduped and ascending — the
      // order that maximizes run merging in the engine.
      for (const Request* r : batch->requests) {
        union_nums.insert(union_nums.end(), r->chunks->begin(),
                          r->chunks->end());
      }
      std::sort(union_nums.begin(), union_nums.end());
      union_nums.erase(std::unique(union_nums.begin(), union_nums.end()),
                       union_nums.end());
    }
  }

  if (leader) {
    // Wake queue-depth waiters (the batch left the open queue) before the
    // potentially long scan.
    cv_.notify_all();
    WorkCounters batch_work;
    const auto scan_t0 = std::chrono::steady_clock::now();
    auto out = engine_->ComputeChunks(batch->target, union_nums, batch->preds,
                                      &batch_work, executor);
    scan_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - scan_t0)
            .count()));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (out.ok()) {
        DistributeLocked(batch.get(), union_nums, &*out, batch_work);
      } else {
        batch->status = out.status();
      }
      batch->finished = true;
    }
    cv_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    if (!wait(lock, [&] { return batch->finished; })) {
      if (!batch->closed) {
        // Still open: withdraw this request before the leader snapshots
        // the batch (req lives on this stack frame).
        auto& reqs = batch->requests;
        reqs.erase(std::remove(reqs.begin(), reqs.end(), &req), reqs.end());
        deadline_sheds_->Increment();
        return Status::DeadlineExceeded("scan batch wait timed out");
      }
      // Closed: the merged scan is already running with this request
      // registered, so the pointer must stay valid — wait it out (bounded
      // by one engine call).
      cv_.wait(lock, [&] { return batch->finished; });
    }
  }

  // The single exit every batch participant funnels through: classify the
  // request's terminal outcome so requests == completions + sheds + errors.
  // (A shed leader and withdrawn/never-admitted requesters returned above,
  // counting their shed at the return site.)
  if (!batch->status.ok()) {
    if (batch->status.code() == StatusCode::kDeadlineExceeded) {
      deadline_sheds_->Increment();
    } else {
      request_errors_->Increment();
    }
    return batch->status;
  }
  completions_->Increment();
  *work += req.work;
  return std::move(req.result);
}

ScanSchedulerStats ScanScheduler::stats() const {
  ScanSchedulerStats s;
  s.requests = requests_->Value();
  s.merged_requests = merged_requests_->Value();
  s.batches = batches_->Value();
  s.completions = completions_->Value();
  s.deadline_sheds = deadline_sheds_->Value();
  s.request_errors = request_errors_->Value();
  s.queue_depth_hwm = static_cast<uint64_t>(queue_depth_hwm_->Value());
  s.outstanding_hwm = static_cast<uint64_t>(outstanding_hwm_->Value());
  std::lock_guard<std::mutex> lock(mu_);
  s.outstanding_scans = outstanding_;
  s.queue_depth = open_.size();
  return s;
}

void ScanScheduler::ResetStats() {
  requests_->Reset();
  merged_requests_->Reset();
  batches_->Reset();
  completions_->Reset();
  deadline_sheds_->Reset();
  request_errors_->Reset();
  queue_depth_hwm_->Reset();
  outstanding_hwm_->Reset();
  scan_ns_->Reset();
}

}  // namespace chunkcache::backend
