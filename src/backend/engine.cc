#include "backend/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"

namespace chunkcache::backend {

using chunks::ChunkBox;
using chunks::ChunkCoords;
using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggTuple;
using storage::RowId;
using storage::Tuple;

Status MaterializedAggregate::ScanChunk(
    uint64_t chunk_num, const std::function<bool(const AggTuple&)>& fn) {
  auto run = chunk_index_.Get(chunk_num);
  if (!run.ok()) {
    if (run.status().code() == StatusCode::kNotFound) return Status::OK();
    return run.status();
  }
  return file_.ScanRange(run->v1, run->v2, fn);
}

Result<std::vector<RowRun>> MaterializedAggregate::CoalescedRuns(
    const std::vector<uint64_t>& chunk_nums, uint64_t max_rows) {
  std::vector<RowRun> runs;
  runs.reserve(chunk_nums.size());
  for (uint64_t chunk_num : chunk_nums) {
    auto payload = chunk_index_.Get(chunk_num);
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kNotFound) continue;
      return payload.status();
    }
    runs.push_back(RowRun{payload->v1, payload->v2, 1});
  }
  return CoalesceRowRuns(std::move(runs), max_rows);
}

BackendEngine::BackendEngine(storage::BufferPool* pool, ChunkedFile* file,
                             const chunks::ChunkingScheme* scheme,
                             BackendOptions options)
    : pool_(pool), file_(file), scheme_(scheme), options_(options) {}

Status BackendEngine::BuildBitmapIndexes() {
  bitmap_indexes_.clear();
  for (uint32_t d = 0; d < scheme_->num_dims(); ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    CHUNKCACHE_ASSIGN_OR_RETURN(
        index::BitmapIndex idx,
        index::BitmapIndex::Build(pool_, &file_->fact_file(), d,
                                  h.LevelCardinality(h.depth())));
    bitmap_indexes_.push_back(std::move(idx));
  }
  return Status::OK();
}

Status BackendEngine::MaterializeAggregate(const GroupBySpec& spec) {
  if (!spec.CoarserOrEqual(scheme_->BaseSpec())) {
    return Status::InvalidArgument("MaterializeAggregate: invalid spec");
  }
  for (const auto& m : materialized_) {
    if (m.spec() == spec) {
      return Status::AlreadyExists("aggregate already materialized");
    }
  }
  // Aggregate the whole base table to `spec`.
  HashAggregator agg(scheme_, spec);
  CHUNKCACHE_RETURN_IF_ERROR(file_->Scan([&](RowId, const Tuple& t) {
    agg.AddBase(t);
    return true;
  }));
  std::vector<AggTuple> rows = agg.TakeRows();
  // Cluster rows by their chunk number in spec's grid.
  std::vector<std::pair<uint64_t, uint32_t>> order(rows.size());
  for (uint32_t i = 0; i < rows.size(); ++i) {
    ChunkCoords cell{};
    for (uint32_t d = 0; d < scheme_->num_dims(); ++d) {
      cell[d] = rows[i].coords[d];
    }
    order[i] = {scheme_->ChunkOfCell(spec, cell), i};
  }
  std::stable_sort(
      order.begin(), order.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  CHUNKCACHE_ASSIGN_OR_RETURN(
      AggFile file,
      AggFile::Create(pool_, scheme_->num_dims(), options_.compress_pages));
  std::vector<std::pair<uint64_t, index::BTreePayload>> runs;
  for (const auto& [chunk, idx] : order) {
    CHUNKCACHE_ASSIGN_OR_RETURN(uint64_t rid, file.Append(rows[idx]));
    if (runs.empty() || runs.back().first != chunk) {
      runs.push_back({chunk, index::BTreePayload{rid, 1}});
    } else {
      runs.back().second.v2++;
    }
  }
  CHUNKCACHE_RETURN_IF_ERROR(file.SyncHeader());
  CHUNKCACHE_ASSIGN_OR_RETURN(index::BTree tree, index::BTree::Create(pool_));
  CHUNKCACHE_RETURN_IF_ERROR(tree.BulkLoad(runs));
  materialized_.emplace_back(spec, std::move(file), std::move(tree));
  return Status::OK();
}

std::optional<size_t> BackendEngine::PickSource(
    const GroupBySpec& target) const {
  // Cheapest source = fewest expected rows scanned per target chunk.
  // Expected rows per chunk of source s ~= |s| / #chunks(target): each
  // target chunk pulls the same fraction of any eligible source.
  std::optional<size_t> best;
  double best_rows = static_cast<double>(file_->num_tuples());
  for (size_t i = 0; i < materialized_.size(); ++i) {
    const auto& m = materialized_[i];
    if (!target.CoarserOrEqual(m.spec())) continue;
    const double rows = static_cast<double>(m.num_rows());
    if (rows < best_rows) {
      best_rows = rows;
      best = i;
    }
  }
  return best;
}

Result<std::vector<ChunkData>> BackendEngine::ComputeChunks(
    const GroupBySpec& target, const std::vector<uint64_t>& chunk_nums,
    const std::vector<NonGroupByPredicate>& non_group_by,
    WorkCounters* work, ThreadPool* executor, const ExecControl* ctrl) {
  if (ctrl != nullptr) CHUNKCACHE_RETURN_IF_ERROR(ctrl->Check());
  const auto disk_before = pool_->disk()->stats();
  // Non-group-by predicates reference base-level detail, so they force
  // computation from the base table.
  std::optional<size_t> source =
      non_group_by.empty() ? PickSource(target) : std::nullopt;
  const GroupBySpec source_spec =
      source ? materialized_[*source].spec() : scheme_->BaseSpec();

  // Precompute base-level ranges of the non-group-by predicates.
  std::array<OrdinalRange, storage::kMaxDims> pre_filter{};
  std::array<bool, storage::kMaxDims> has_filter{};
  for (const auto& p : non_group_by) {
    const auto& h = scheme_->schema().dimension(p.dim).hierarchy;
    const OrdinalRange base = h.BaseRangeOf(p.level, p.range);
    if (has_filter[p.dim]) {
      // Intersect multiple predicates on the same dimension.
      pre_filter[p.dim].begin = std::max(pre_filter[p.dim].begin, base.begin);
      pre_filter[p.dim].end = std::min(pre_filter[p.dim].end, base.end);
    } else {
      pre_filter[p.dim] = base;
      has_filter[p.dim] = true;
    }
  }

  // Unclustered fallback: without a chunk index the backend must scan the
  // whole table once and route tuples to the requested chunks — the very
  // cost (proportional to the table, not the chunks) the chunked file
  // organization exists to avoid. Kept for the ablation benchmarks. Each
  // requested chunk still folds through its own per-chunk kernel (dense
  // when the cell box allows it).
  if (!file_->clustered()) {
    std::unordered_map<uint64_t, ChunkAggregator> per_chunk;
    for (uint64_t chunk_num : chunk_nums) {
      per_chunk.try_emplace(chunk_num, scheme_, target, chunk_num,
                            options_.dense_cell_limit, &kernel_counters_);
    }
    uint64_t visited = 0;
    CHUNKCACHE_RETURN_IF_ERROR(file_->Scan([&](RowId, const Tuple& t) {
      ++visited;
      for (uint32_t d = 0; d < target.num_dims; ++d) {
        if (has_filter[d] && !pre_filter[d].Contains(t.keys[d])) return true;
      }
      ChunkCoords coords{};
      for (uint32_t d = 0; d < target.num_dims; ++d) {
        const auto& h = scheme_->schema().dimension(d).hierarchy;
        coords[d] = h.AncestorAt(h.depth(), t.keys[d], target.levels[d]);
      }
      auto it = per_chunk.find(scheme_->ChunkOfCell(target, coords));
      if (it != per_chunk.end()) it->second.AddBase(t);
      return true;
    }));
    work->tuples_processed += visited;
    std::vector<ChunkData> out;
    out.reserve(chunk_nums.size());
    for (uint64_t chunk_num : chunk_nums) {
      ChunkData data;
      data.chunk_num = chunk_num;
      data.source_rows = per_chunk.at(chunk_num).rows_consumed();
      data.cols = per_chunk.at(chunk_num).TakeColumns();
      out.push_back(std::move(data));
    }
    const auto scan_after = pool_->disk()->stats();
    work->pages_read += scan_after.reads - disk_before.reads;
    work->pages_written += scan_after.writes - disk_before.writes;
    return out;
  }

  // Each requested chunk maps to a disjoint set of source chunks (the
  // closure property), so chunks are independent units of work: workers
  // scan their own source chunks into a private aggregator and the loop
  // below fans out across `executor` when one is supplied. Tuples counts
  // accumulate per worker and merge at the end; the result slot for index
  // i is fixed up front, so parallel output is bit-identical to serial.
  //
  // With `coalesce_io`, a worker first resolves its source chunks to runs
  // and merges the back-to-back ones into maximal sequential reads, then
  // bulk-decodes each read into a columnar batch for the chunk's kernel.
  // Runs are read in ascending row order, which in a clustered file equals
  // ascending source chunk number — the same fold order as the per-chunk
  // path, so results stay bit-identical either way.
  const bool* filt = non_group_by.empty() ? nullptr : has_filter.data();
  std::vector<ChunkData> out(chunk_nums.size());
  std::atomic<uint64_t> tuples_scanned{0};
  std::mutex error_mu;
  Status first_error = Status::OK();
  ParallelFor(executor, chunk_nums.size(), [&](uint64_t i) {
    const uint64_t chunk_num = chunk_nums[i];
    // Per-chunk control check: remaining chunks shed once the query's
    // deadline passes or it is cancelled, instead of scanning to the end.
    if (ctrl != nullptr) {
      Status ctrl_status = ctrl->Check();
      if (!ctrl_status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = std::move(ctrl_status);
        return;
      }
    }
    auto box_or = scheme_->SourceBox(target, chunk_num, source_spec);
    Status status = box_or.status();
    if (status.ok()) {
      ChunkAggregator agg(scheme_, target, chunk_num,
                          options_.dense_cell_limit, &kernel_counters_);
      if (options_.coalesce_io) {
        std::vector<uint64_t> src_chunks;
        box_or->ForEach(scheme_->GridFor(source_spec),
                        [&](uint64_t src_chunk, const ChunkCoords&) {
                          src_chunks.push_back(src_chunk);
                        });
        auto runs_or =
            source ? materialized_[*source].CoalescedRuns(
                         src_chunks, options_.max_merged_run_rows)
                   : file_->CoalescedRuns(src_chunks,
                                          options_.max_merged_run_rows);
        status = runs_or.status();
        if (status.ok()) {
          storage::AggColumns agg_batch(scheme_->num_dims());
          storage::TupleColumns base_batch;
          base_batch.num_dims = scheme_->num_dims();
          for (const RowRun& run : *runs_or) {
            if (run.chunks > 1) {
              kernel_counters_.coalesced_reads.fetch_add(
                  1, std::memory_order_relaxed);
              kernel_counters_.runs_merged.fetch_add(
                  run.chunks, std::memory_order_relaxed);
            } else {
              kernel_counters_.single_run_reads.fetch_add(
                  1, std::memory_order_relaxed);
            }
            if (source) {
              agg_batch.Clear();
              status = materialized_[*source].file().ScanRangeColumns(
                  run.first, run.count, &agg_batch);
              if (!status.ok()) break;
              agg.AddAggColumns(agg_batch, source_spec);
            } else {
              base_batch.Clear();
              status = file_->fact_file().ScanRangeColumns(
                  run.first, run.count, &base_batch);
              if (!status.ok()) break;
              agg.AddBaseColumns(base_batch, filt, pre_filter.data());
            }
          }
        }
      } else {
        box_or->ForEach(scheme_->GridFor(source_spec),
                        [&](uint64_t src_chunk, const ChunkCoords&) {
                          if (!status.ok()) return;
                          kernel_counters_.single_run_reads.fetch_add(
                              1, std::memory_order_relaxed);
                          if (source) {
                            status = materialized_[*source].ScanChunk(
                                src_chunk, [&](const AggTuple& row) {
                                  agg.AddAgg(row, source_spec);
                                  return true;
                                });
                          } else {
                            status = file_->ScanChunk(
                                src_chunk, [&](const Tuple& t) {
                                  for (uint32_t d = 0; d < target.num_dims;
                                       ++d) {
                                    if (has_filter[d] &&
                                        !pre_filter[d].Contains(t.keys[d])) {
                                      return true;  // filtered out
                                    }
                                  }
                                  agg.AddBase(t);
                                  return true;
                                });
                          }
                        });
      }
      if (status.ok()) {
        tuples_scanned.fetch_add(agg.rows_consumed(),
                                 std::memory_order_relaxed);
        ChunkData data;
        data.chunk_num = chunk_num;
        data.source_rows = agg.rows_consumed();
        data.cols = agg.TakeColumns();
        out[i] = std::move(data);
      }
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = status;
    }
  });
  CHUNKCACHE_RETURN_IF_ERROR(first_error);
  work->tuples_processed += tuples_scanned.load(std::memory_order_relaxed);
  const auto disk_after = pool_->disk()->stats();
  work->pages_read += disk_after.reads - disk_before.reads;
  work->pages_written += disk_after.writes - disk_before.writes;
  return out;
}

double BackendEngine::Selectivity(const StarJoinQuery& query) const {
  auto base_sel = BaseSelection(query);
  if (!base_sel) return 0.0;
  double fraction = 1.0;
  for (uint32_t d = 0; d < scheme_->num_dims(); ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    fraction *= static_cast<double>((*base_sel)[d].size()) /
                h.LevelCardinality(h.depth());
  }
  return fraction;
}

std::optional<std::array<OrdinalRange, storage::kMaxDims>>
BackendEngine::BaseSelection(const StarJoinQuery& query) const {
  std::array<OrdinalRange, storage::kMaxDims> base_sel{};
  for (uint32_t d = 0; d < scheme_->num_dims(); ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    base_sel[d] =
        h.BaseRangeOf(query.group_by.levels[d], query.selection[d]);
  }
  for (const auto& p : query.non_group_by) {
    const auto& h = scheme_->schema().dimension(p.dim).hierarchy;
    const OrdinalRange r = h.BaseRangeOf(p.level, p.range);
    base_sel[p.dim].begin = std::max(base_sel[p.dim].begin, r.begin);
    base_sel[p.dim].end = std::min(base_sel[p.dim].end, r.end);
    if (base_sel[p.dim].begin > base_sel[p.dim].end) return std::nullopt;
  }
  return base_sel;
}

Result<std::vector<ResultRow>> BackendEngine::ExecuteStarJoin(
    const StarJoinQuery& query, WorkCounters* work) {
  if (query.group_by.num_dims != scheme_->num_dims()) {
    return Status::InvalidArgument("query dimension count mismatch");
  }
  auto base_sel = BaseSelection(query);
  if (!base_sel) return std::vector<ResultRow>{};  // contradictory filters

  bool restricted = false;
  for (uint32_t d = 0; d < scheme_->num_dims(); ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    if ((*base_sel)[d].begin != 0 ||
        (*base_sel)[d].end + 1 != h.LevelCardinality(h.depth())) {
      restricted = true;
    }
  }
  if (restricted && has_bitmap_indexes() &&
      Selectivity(query) <= options_.bitmap_selectivity_threshold) {
    return BitmapAggregate(query, *base_sel, work);
  }
  return ScanAggregate(query, *base_sel, work);
}

Result<std::vector<ResultRow>> BackendEngine::ScanAggregate(
    const StarJoinQuery& query,
    const std::array<OrdinalRange, storage::kMaxDims>& base_sel,
    WorkCounters* work) {
  const auto disk_before = pool_->disk()->stats();
  HashAggregator agg(scheme_, query.group_by);
  uint64_t visited = 0;
  CHUNKCACHE_RETURN_IF_ERROR(file_->Scan([&](RowId, const Tuple& t) {
    ++visited;
    for (uint32_t d = 0; d < query.group_by.num_dims; ++d) {
      if (!base_sel[d].Contains(t.keys[d])) return true;
    }
    agg.AddBase(t);
    return true;
  }));
  work->tuples_processed += visited;
  std::vector<ResultRow> rows = agg.TakeRows();
  SortRows(&rows, query.group_by.num_dims);
  const auto disk_after = pool_->disk()->stats();
  work->pages_read += disk_after.reads - disk_before.reads;
  work->pages_written += disk_after.writes - disk_before.writes;
  return rows;
}

Result<std::vector<ResultRow>> BackendEngine::BitmapAggregate(
    const StarJoinQuery& query,
    const std::array<OrdinalRange, storage::kMaxDims>& base_sel,
    WorkCounters* work) {
  const auto disk_before = pool_->disk()->stats();
  index::Bitmap result;
  bool first = true;
  for (uint32_t d = 0; d < scheme_->num_dims(); ++d) {
    const auto& h = scheme_->schema().dimension(d).hierarchy;
    if (base_sel[d].begin == 0 &&
        base_sel[d].end + 1 == h.LevelCardinality(h.depth())) {
      continue;  // unrestricted dimension: skip its bitmaps entirely
    }
    index::Bitmap b;
    CHUNKCACHE_RETURN_IF_ERROR(bitmap_indexes_[d].EvaluateRange(
        base_sel[d].begin, base_sel[d].end, &b));
    if (first) {
      result = std::move(b);
      first = false;
    } else {
      result.And(b);
    }
  }
  CHUNKCACHE_DCHECK(!first);

  // Pull matching tuples (skipped-sequential: one pin per touched page).
  std::vector<RowId> rids = result.ToVector();
  std::vector<Tuple> tuples;
  CHUNKCACHE_RETURN_IF_ERROR(file_->fact_file().FetchRows(rids, &tuples));
  HashAggregator agg(scheme_, query.group_by);
  for (const Tuple& t : tuples) agg.AddBase(t);
  work->tuples_processed += tuples.size();
  std::vector<ResultRow> rows = agg.TakeRows();
  SortRows(&rows, query.group_by.num_dims);
  const auto disk_after = pool_->disk()->stats();
  work->pages_read += disk_after.reads - disk_before.reads;
  work->pages_written += disk_after.writes - disk_before.writes;
  return rows;
}

}  // namespace chunkcache::backend
