#ifndef CHUNKCACHE_BACKEND_MATERIALIZATION_ADVISOR_H_
#define CHUNKCACHE_BACKEND_MATERIALIZATION_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "chunks/chunking_scheme.h"
#include "common/status.h"

namespace chunkcache::backend {

/// Options for the greedy view-selection advisor.
struct AdvisorOptions {
  /// How many aggregate tables to pick (the paper's static-caching side:
  /// "a set of group-bys is chosen and the corresponding tables are
  /// materialized").
  uint32_t budget_views = 5;

  /// Views whose estimated row count exceeds this fraction of the base
  /// table are never picked (they would barely aggregate).
  double max_rows_fraction = 0.5;
};

/// One pick with its marginal benefit at selection time.
struct AdvisedView {
  chunks::GroupBySpec spec;
  uint64_t estimated_rows = 0;
  double benefit = 0;
};

/// Expected number of distinct cells (rows) of group-by `spec` when
/// `num_tuples` base tuples are thrown uniformly at its cell grid — the
/// balls-in-bins expectation C - C(1-1/C)^N (the same f(r,k) the paper
/// uses in Section 4.2).
uint64_t EstimateGroupByRows(const chunks::ChunkingScheme& scheme,
                             const chunks::GroupBySpec& spec,
                             uint64_t num_tuples);

/// Greedy selection of aggregate tables to precompute at the backend,
/// after Harinarayan/Rajaraman/Ullman [HRU96] — the algorithm the paper
/// cites for the static side of its taxonomy (Section 2.3) and whose
/// benefit notion its replacement policy borrows (Section 5.4). The
/// benefit of materializing view v given the already-chosen set S is the
/// total reduction, over every group-by w answerable from v, of the
/// cheapest source cost |u| (u in S + base, w computable from u).
///
/// Returns picks in selection order (monotonically non-increasing
/// benefit). The base group-by is never picked (it is always available).
std::vector<AdvisedView> SelectViewsToMaterialize(
    const chunks::ChunkingScheme& scheme, uint64_t num_tuples,
    const AdvisorOptions& options);

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_MATERIALIZATION_ADVISOR_H_
