#include "backend/multi_range_query.h"

#include <algorithm>

#include "common/logging.h"

namespace chunkcache::backend {

using schema::OrdinalRange;

StarJoinQuery MultiRangeQuery::AsSingleBox() const {
  CHUNKCACHE_DCHECK(IsSingleBox());
  StarJoinQuery q;
  q.group_by = group_by;
  q.non_group_by = non_group_by;
  for (uint32_t d = 0; d < group_by.num_dims; ++d) {
    q.selection[d] = runs[d].empty() ? OrdinalRange{0, 0} : runs[d][0];
  }
  return q;
}

std::vector<OrdinalRange> NormalizeRuns(std::vector<OrdinalRange> runs) {
  if (runs.empty()) return runs;
  std::sort(runs.begin(), runs.end(),
            [](const OrdinalRange& a, const OrdinalRange& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  std::vector<OrdinalRange> out;
  out.push_back(runs[0]);
  for (size_t i = 1; i < runs.size(); ++i) {
    OrdinalRange& last = out.back();
    if (runs[i].begin <= last.end + 1 && runs[i].begin >= last.begin) {
      last.end = std::max(last.end, runs[i].end);
    } else {
      out.push_back(runs[i]);
    }
  }
  return out;
}

std::vector<OrdinalRange> IntersectRuns(const std::vector<OrdinalRange>& a,
                                        const std::vector<OrdinalRange>& b) {
  std::vector<OrdinalRange> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t lo = std::max(a[i].begin, b[j].begin);
    const uint32_t hi = std::min(a[i].end, b[j].end);
    if (lo <= hi) out.push_back(OrdinalRange{lo, hi});
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

Result<std::vector<StarJoinQuery>> DecomposeToBoxQueries(
    const MultiRangeQuery& query, uint64_t max_boxes) {
  for (uint32_t d = 0; d < query.group_by.num_dims; ++d) {
    if (query.runs[d].empty()) {
      return Status::InvalidArgument(
          "DecomposeToBoxQueries: empty run list on dimension " +
          std::to_string(d));
    }
    for (size_t i = 1; i < query.runs[d].size(); ++i) {
      if (query.runs[d][i].begin <= query.runs[d][i - 1].end) {
        return Status::InvalidArgument(
            "DecomposeToBoxQueries: runs not disjoint/sorted");
      }
    }
  }
  const uint64_t n = query.NumBoxes();
  if (n > max_boxes) {
    return Status::ResourceExhausted(
        "DecomposeToBoxQueries: " + std::to_string(n) +
        " boxes exceed the cap of " + std::to_string(max_boxes));
  }
  std::vector<StarJoinQuery> out;
  out.reserve(n);
  std::array<size_t, storage::kMaxDims> idx{};
  while (true) {
    StarJoinQuery q;
    q.group_by = query.group_by;
    q.non_group_by = query.non_group_by;
    for (uint32_t d = 0; d < query.group_by.num_dims; ++d) {
      q.selection[d] = query.runs[d][idx[d]];
    }
    out.push_back(std::move(q));
    uint32_t d = query.group_by.num_dims;
    while (d-- > 0) {
      if (++idx[d] < query.runs[d].size()) break;
      idx[d] = 0;
      if (d == 0) return out;
    }
  }
}

}  // namespace chunkcache::backend
