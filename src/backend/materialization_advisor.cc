#include "backend/materialization_advisor.h"

#include <cmath>

namespace chunkcache::backend {

using chunks::ChunkingScheme;
using chunks::GroupBySpec;

uint64_t EstimateGroupByRows(const ChunkingScheme& scheme,
                             const GroupBySpec& spec, uint64_t num_tuples) {
  double cells = 1;
  for (uint32_t d = 0; d < scheme.num_dims(); ++d) {
    cells *= scheme.schema().dimension(d).hierarchy.LevelCardinality(
        spec.levels[d]);
  }
  // E[distinct] = C - C (1 - 1/C)^N; use the exp/log1p form to stay
  // accurate when C is large relative to N.
  const double n = static_cast<double>(num_tuples);
  const double expected =
      cells - cells * std::exp(n * std::log1p(-1.0 / cells));
  return static_cast<uint64_t>(std::llround(expected));
}

std::vector<AdvisedView> SelectViewsToMaterialize(
    const ChunkingScheme& scheme, uint64_t num_tuples,
    const AdvisorOptions& options) {
  const uint32_t n = scheme.NumGroupByIds();
  const GroupBySpec base = scheme.BaseSpec();
  const uint32_t base_id = scheme.GroupById(base);

  std::vector<GroupBySpec> specs(n);
  std::vector<uint64_t> rows(n);
  for (uint32_t id = 0; id < n; ++id) {
    specs[id] = scheme.SpecOfId(id);
    rows[id] = EstimateGroupByRows(scheme, specs[id], num_tuples);
  }
  // cheapest[w] = rows of the cheapest chosen source answering w.
  std::vector<uint64_t> cheapest(n, rows[base_id]);

  const uint64_t max_rows = static_cast<uint64_t>(
      options.max_rows_fraction * static_cast<double>(rows[base_id]));

  std::vector<AdvisedView> picks;
  std::vector<bool> chosen(n, false);
  chosen[base_id] = true;  // the base is always available, never a pick
  for (uint32_t round = 0; round < options.budget_views; ++round) {
    double best_benefit = 0;
    uint32_t best = n;
    for (uint32_t v = 0; v < n; ++v) {
      if (chosen[v] || rows[v] > max_rows) continue;
      double benefit = 0;
      for (uint32_t w = 0; w < n; ++w) {
        if (!specs[w].CoarserOrEqual(specs[v])) continue;
        if (cheapest[w] > rows[v]) {
          benefit += static_cast<double>(cheapest[w] - rows[v]);
        }
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best = v;
      }
    }
    if (best == n || best_benefit <= 0) break;
    chosen[best] = true;
    for (uint32_t w = 0; w < n; ++w) {
      if (specs[w].CoarserOrEqual(specs[best]) && cheapest[w] > rows[best]) {
        cheapest[w] = rows[best];
      }
    }
    picks.push_back(AdvisedView{specs[best], rows[best], best_benefit});
  }
  return picks;
}

}  // namespace chunkcache::backend
