#ifndef CHUNKCACHE_BACKEND_SCAN_SCHEDULER_H_
#define CHUNKCACHE_BACKEND_SCAN_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "backend/engine.h"
#include "backend/star_join_query.h"
#include "chunks/group_by_spec.h"
#include "common/cost_model.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace chunkcache::backend {

/// Tuning knobs for the shared-scan scheduler.
struct ScanSchedulerOptions {
  /// Concurrent ComputeChunks invocations the scheduler lets through.
  /// Further batches queue; their requesters keep joining the open batch,
  /// so a storm degrades to bigger batches instead of more disk traffic.
  uint32_t max_outstanding_scans = 2;

  /// Open batches (leaders waiting for a scan slot) allowed at once.
  /// Creating a new batch past this bound blocks until a leader drains —
  /// back-pressure, not rejection.
  uint32_t max_queue_depth = 16;
};

/// Scheduler counters. `outstanding_scans` and `queue_depth` are the
/// current values (for polling in tests); the rest are cumulative.
///
/// Every admitted request ends in exactly one of three terminal outcomes,
/// so once the scheduler quiesces
///   requests == completions + deadline_sheds + request_errors
/// holds exactly (stats_invariant_test checks it, faults included).
struct ScanSchedulerStats {
  uint64_t requests = 0;         ///< Compute calls routed through.
  uint64_t merged_requests = 0;  ///< Calls that joined an existing batch.
  uint64_t batches = 0;          ///< Backend scans actually issued.
  uint64_t completions = 0;      ///< Requests that returned chunk data.
  uint64_t deadline_sheds = 0;   ///< Requests given up at a deadline.
  uint64_t request_errors = 0;   ///< Requests failed by a batch error.
  uint64_t queue_depth_hwm = 0;
  uint64_t outstanding_hwm = 0;
  uint64_t outstanding_scans = 0;
  uint64_t queue_depth = 0;
};

/// Merges concurrent miss batches that target the same (group-by,
/// predicates) into one backend scan whose coalesced runs span every
/// requester's chunks, with bounded admission.
///
/// Protocol: the first requester of a (group-by, predicate) key opens a
/// *batch* and becomes its leader; while the leader waits for one of
/// `max_outstanding_scans` scan slots, concurrent same-key requesters join
/// the open batch. Once admitted, the leader closes the batch, unions the
/// chunk lists (deduped, ascending — maximizing run coalescing in the
/// engine), runs one ComputeChunks over the union, and distributes results
/// and work back to each requester. Followers block until their batch
/// finishes; a batch error propagates to every requester.
///
/// Work attribution: each requester is charged the source rows its own
/// chunks folded (exact — ChunkData::source_rows partitions the scan) and
/// a proportional share of the batch's physical pages; single-request
/// batches therefore see exactly the counters a direct engine call would
/// produce.
///
/// Deadlock safety: leaders block only on scan slots, which are held only
/// for the duration of an engine call that always completes (ParallelFor
/// keeps the calling thread participating); followers block only on their
/// leader. No thread waits while holding a slot it isn't using.
class ScanScheduler {
 public:
  /// Cumulative statistics live on `metrics` (under "scheduler." names);
  /// passing nullptr gives the scheduler a private registry.
  ScanScheduler(BackendEngine* engine, ScanSchedulerOptions options,
                MetricsRegistry* metrics = nullptr);

  ScanScheduler(const ScanScheduler&) = delete;
  ScanScheduler& operator=(const ScanScheduler&) = delete;

  /// Computes `chunk_nums` of `target` under `non_group_by`, possibly as
  /// part of a merged batch. Blocking. Element i of the result is
  /// chunk_nums[i], bit-identical to a direct ComputeChunks call. This
  /// request's work share is added to `*work`. `executor` is used only if
  /// this call ends up leading its batch.
  ///
  /// `ctrl` (optional) bounds *admission*: a request whose deadline expires
  /// while queued for a scan slot sheds instead of wedging — a timed-out
  /// leader fails its whole batch with DeadlineExceeded (every requester of
  /// that batch shares the leader's fate, as they share its scan), a
  /// timed-out follower of a still-open batch withdraws alone. Once a
  /// batch's scan is running the deadline is no longer consulted: a batch
  /// may merge requesters with different deadlines, so mid-scan
  /// cancellation on behalf of one of them would be wrong.
  Result<std::vector<ChunkData>> Compute(
      const chunks::GroupBySpec& target,
      const std::vector<uint64_t>& chunk_nums,
      const std::vector<NonGroupByPredicate>& non_group_by,
      WorkCounters* work, ThreadPool* executor = nullptr,
      const ExecControl* ctrl = nullptr);

  ScanSchedulerStats stats() const;
  void ResetStats();

  const ScanSchedulerOptions& options() const { return options_; }

 private:
  /// One requester's slice of a batch. Lives on the caller's stack — the
  /// caller blocks until its batch finishes, so the pointer stays valid.
  struct Request {
    const std::vector<uint64_t>* chunks = nullptr;
    std::vector<ChunkData> result;
    WorkCounters work;
  };

  struct Batch {
    chunks::GroupBySpec target;
    std::vector<NonGroupByPredicate> preds;
    std::vector<Request*> requests;
    bool closed = false;    ///< Leader admitted; no more joins.
    bool finished = false;  ///< Results/error distributed.
    Status status = Status::OK();
  };

  /// Caller holds mu_. Finds an open (joinable) batch for the key.
  std::shared_ptr<Batch> FindJoinableLocked(
      const chunks::GroupBySpec& target,
      const std::vector<NonGroupByPredicate>& preds);

  /// Caller holds mu_. Splits the batch's union results back into each
  /// request's result vector (moving on the last reference) and attributes
  /// the batch's work counters.
  static void DistributeLocked(Batch* batch,
                               const std::vector<uint64_t>& union_nums,
                               std::vector<ChunkData>* out,
                               const WorkCounters& batch_work);

  BackendEngine* engine_;
  ScanSchedulerOptions options_;

  // Registry-backed cumulative counters ("scheduler.*"); mu_ guards only
  // the batching state, never the statistics.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* merged_requests_ = nullptr;
  Counter* batches_ = nullptr;
  Counter* completions_ = nullptr;
  Counter* deadline_sheds_ = nullptr;
  Counter* request_errors_ = nullptr;
  Gauge* queue_depth_hwm_ = nullptr;
  Gauge* outstanding_hwm_ = nullptr;
  Histogram* scan_ns_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<std::shared_ptr<Batch>> open_;
  uint32_t outstanding_ = 0;
};

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_SCAN_SCHEDULER_H_
