#ifndef CHUNKCACHE_BACKEND_ENGINE_H_
#define CHUNKCACHE_BACKEND_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "backend/agg_file.h"
#include "backend/aggregator.h"
#include "backend/chunked_file.h"
#include "backend/star_join_query.h"
#include "chunks/chunking_scheme.h"
#include "common/cost_model.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/bitmap_index.h"

namespace chunkcache::backend {

/// One computed chunk returned by the backend to the middle tier. Rows are
/// columnar (see storage::AggColumns) and in canonical row-major order.
struct ChunkData {
  uint64_t chunk_num = 0;
  storage::AggColumns cols;

  /// Source rows folded to produce this chunk. Lets the shared-scan
  /// scheduler attribute one merged scan's work back to the individual
  /// requesters chunk by chunk.
  uint64_t source_rows = 0;

  /// In-memory footprint, charged against the cache budget. Uses
  /// capacity(), matching what the allocator actually holds.
  uint64_t ByteSize() const {
    return sizeof(ChunkData) - sizeof(storage::AggColumns) + cols.ByteSize();
  }
};

/// A precomputed aggregate table stored in chunked form (Section 3.1): the
/// group-by's rows clustered by their chunk number in that group-by's grid,
/// with a B-tree chunk index. The backend prefers computing chunks from the
/// most aggregated table that can still answer them.
class MaterializedAggregate {
 public:
  MaterializedAggregate(chunks::GroupBySpec spec, AggFile file,
                        index::BTree chunk_index)
      : spec_(spec),
        file_(std::move(file)),
        chunk_index_(std::move(chunk_index)) {}

  MaterializedAggregate(MaterializedAggregate&&) = default;
  MaterializedAggregate& operator=(MaterializedAggregate&&) = default;

  const chunks::GroupBySpec& spec() const { return spec_; }
  uint64_t num_rows() const { return file_.num_rows(); }

  /// Visits the rows of chunk `chunk_num` (empty chunk = zero visits).
  Status ScanChunk(uint64_t chunk_num,
                   const std::function<bool(const storage::AggTuple&)>& fn);

  /// Looks up the runs of every chunk in `chunk_nums` (empty chunks are
  /// skipped) and coalesces adjacent ones into maximal sequential reads of
  /// at most `max_rows` rows each (0 = unlimited).
  Result<std::vector<RowRun>> CoalescedRuns(
      const std::vector<uint64_t>& chunk_nums, uint64_t max_rows = 0);

  AggFile& file() { return file_; }

 private:
  chunks::GroupBySpec spec_;
  AggFile file_;
  index::BTree chunk_index_;
};

/// Tuning knobs for the backend.
struct BackendOptions {
  /// When a star join restricts the fact table to more than this fraction
  /// of base cells, the engine prefers a full scan over the bitmap path.
  double bitmap_selectivity_threshold = 0.25;

  /// Largest chunk cell box (product of per-dimension chunk-range sizes)
  /// the dense-grid aggregation kernel will materialize accumulator arrays
  /// for; bigger boxes fall back to hash aggregation. 1M cells = 32 MB of
  /// accumulators per in-flight chunk.
  uint64_t dense_cell_limit = 1ull << 20;

  /// Merge the runs of adjacent source chunks into single sequential reads
  /// when computing chunks from a clustered source. Off = one index probe
  /// and one run scan per source chunk (the pre-coalescing behavior, kept
  /// for ablation).
  bool coalesce_io = true;

  /// Largest merged read, in source rows (0 = unlimited). Each read is
  /// bulk-decoded into one columnar batch, so this bounds the batch's
  /// memory even when a shared scan unions the source runs of many
  /// requested chunks. Splits land on run boundaries, preserving fold
  /// order. 1M rows ~= 32 MB of fact columns per in-flight read.
  uint64_t max_merged_run_rows = 1ull << 20;

  /// Store materialized aggregate tables in the compressed block page
  /// format, so a chunk run on the miss path touches fewer pages (the
  /// CPU/IO trade bench_compression sweeps). Off = the raw columnar
  /// in-page layout, kept for ablation. Decoded results are bit-identical
  /// either way.
  bool compress_pages = false;
};

/// The relational backend ("PARADISE" stand-in): evaluates star-join
/// queries over the chunked fact file using bitmap indexes or scans, and —
/// the chunk-cache fast path — computes individual chunks at any
/// aggregation level from the base chunked file or from a chunked
/// materialized aggregate, touching only the source chunks the closure
/// mapping names.
class BackendEngine {
 public:
  BackendEngine(storage::BufferPool* pool, ChunkedFile* file,
                const chunks::ChunkingScheme* scheme,
                BackendOptions options = BackendOptions());

  BackendEngine(const BackendEngine&) = delete;
  BackendEngine& operator=(const BackendEngine&) = delete;

  /// Builds one bitmap index per dimension (base level). Required before
  /// ExecuteStarJoin can use the bitmap path.
  Status BuildBitmapIndexes();
  bool has_bitmap_indexes() const { return !bitmap_indexes_.empty(); }

  /// Precomputes and stores group-by `spec` as a chunked aggregate table.
  Status MaterializeAggregate(const chunks::GroupBySpec& spec);
  const std::vector<MaterializedAggregate>& materialized() const {
    return materialized_;
  }

  /// Computes the listed chunks of group-by `target` — the paper's
  /// "modified form of SQL" chunk request (Section 5.2.3). Chunks are
  /// computed from the cheapest eligible source (a materialized aggregate
  /// or the base chunked file). `non_group_by` predicates force computation
  /// from base. Work done (physical pages, tuples) is added to `*work`.
  ///
  /// When `executor` is non-null (and the file is clustered), the chunks
  /// fan out across the pool's workers: each requested chunk maps to a
  /// disjoint set of source chunks (the closure property), so workers scan
  /// independently into private aggregators, and per-worker counters are
  /// merged at the end. Output is deterministic — element i of the result
  /// is chunk_nums[i] with canonically sorted rows, identical to the
  /// serial path. Passing nullptr keeps the exact serial code path.
  ///
  /// `ctrl` (optional) is checked at entry and before each chunk's scan,
  /// so an expired deadline or a cancelled query sheds remaining work
  /// mid-computation instead of finishing a doomed scan.
  Result<std::vector<ChunkData>> ComputeChunks(
      const chunks::GroupBySpec& target,
      const std::vector<uint64_t>& chunk_nums,
      const std::vector<NonGroupByPredicate>& non_group_by,
      WorkCounters* work, ThreadPool* executor = nullptr,
      const ExecControl* ctrl = nullptr);

  /// Evaluates a full star-join query (the no-cache path and the
  /// query-cache miss path): bitmap selection when available and selective
  /// enough, otherwise a filtered full scan. Returns rows sorted
  /// canonically.
  Result<std::vector<ResultRow>> ExecuteStarJoin(const StarJoinQuery& query,
                                                 WorkCounters* work);

  /// Fraction of base cells the query's selection covers (product of
  /// per-dimension selectivities) — drives the bitmap-vs-scan choice and
  /// the experiments' cost normalization.
  double Selectivity(const StarJoinQuery& query) const;

  const chunks::ChunkingScheme& scheme() const { return *scheme_; }
  ChunkedFile& file() { return *file_; }
  storage::BufferPool& pool() { return *pool_; }
  const BackendOptions& options() const { return options_; }

  /// Aggregation-kernel and run-I/O counters (cumulative since start or
  /// the last ResetKernelStats). Thread-safe.
  AggKernelStats kernel_stats() const { return kernel_counters_.Snapshot(); }
  void ResetKernelStats() { kernel_counters_.Reset(); }

  /// Shared counter sink, for components (e.g. the in-cache roll-up path)
  /// that run kernels outside the engine.
  AggKernelCounters* kernel_counters() { return &kernel_counters_; }

 private:
  /// Base-level ordinal range selected on dimension d (selection mapped
  /// down plus any non-group-by predicate intersected), or nullopt when
  /// the ranges don't intersect (empty result).
  std::optional<std::array<schema::OrdinalRange, storage::kMaxDims>>
  BaseSelection(const StarJoinQuery& query) const;

  Result<std::vector<ResultRow>> ScanAggregate(
      const StarJoinQuery& query,
      const std::array<schema::OrdinalRange, storage::kMaxDims>& base_sel,
      WorkCounters* work);

  Result<std::vector<ResultRow>> BitmapAggregate(
      const StarJoinQuery& query,
      const std::array<schema::OrdinalRange, storage::kMaxDims>& base_sel,
      WorkCounters* work);

  /// Picks the cheapest source group-by for computing chunks of `target`:
  /// index into materialized_ or nullopt for the base file.
  std::optional<size_t> PickSource(const chunks::GroupBySpec& target) const;

  storage::BufferPool* pool_;
  ChunkedFile* file_;
  const chunks::ChunkingScheme* scheme_;
  BackendOptions options_;
  AggKernelCounters kernel_counters_;
  std::vector<index::BitmapIndex> bitmap_indexes_;
  std::vector<MaterializedAggregate> materialized_;
};

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_ENGINE_H_
