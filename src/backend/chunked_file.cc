#include "backend/chunked_file.h"

#include <algorithm>

#include "common/fault_injector.h"

namespace chunkcache::backend {

using storage::RowId;
using storage::Tuple;

std::vector<RowRun> CoalesceRowRuns(std::vector<RowRun> runs,
                                    uint64_t max_rows) {
  std::sort(runs.begin(), runs.end(), [](const RowRun& a, const RowRun& b) {
    return a.first < b.first;
  });
  std::vector<RowRun> merged;
  merged.reserve(runs.size());
  for (const RowRun& r : runs) {
    if (!merged.empty() &&
        merged.back().first + merged.back().count == r.first &&
        (max_rows == 0 || merged.back().count + r.count <= max_rows)) {
      merged.back().count += r.count;
      merged.back().chunks += r.chunks;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

Result<ChunkedFile> ChunkedFile::BulkLoad(storage::BufferPool* pool,
                                          const chunks::ChunkingScheme* scheme,
                                          std::vector<Tuple> tuples,
                                          bool clustered, bool compressed) {
  const chunks::GroupBySpec base = scheme->BaseSpec();
  // Pair each tuple with its base chunk number; cluster if requested.
  std::vector<std::pair<uint64_t, uint32_t>> order(tuples.size());
  for (uint32_t i = 0; i < tuples.size(); ++i) {
    chunks::ChunkCoords cell{};
    for (uint32_t d = 0; d < scheme->num_dims(); ++d) {
      cell[d] = tuples[i].keys[d];
    }
    order[i] = {scheme->ChunkOfCell(base, cell), i};
  }
  if (clustered) {
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  CHUNKCACHE_ASSIGN_OR_RETURN(
      storage::FactFile fact,
      storage::FactFile::Create(pool, scheme->schema().tuple_desc(),
                                compressed));
  // Append in (possibly clustered) order, recording chunk runs.
  std::vector<std::pair<uint64_t, index::BTreePayload>> runs;
  for (const auto& [chunk, idx] : order) {
    CHUNKCACHE_ASSIGN_OR_RETURN(RowId rid, fact.Append(tuples[idx]));
    if (clustered) {
      if (runs.empty() || runs.back().first != chunk) {
        runs.push_back({chunk, index::BTreePayload{rid, 1}});
      } else {
        runs.back().second.v2++;
      }
    }
  }
  CHUNKCACHE_RETURN_IF_ERROR(fact.SyncHeader());

  ChunkedFile file(std::move(fact), scheme, clustered);
  if (clustered) {
    CHUNKCACHE_ASSIGN_OR_RETURN(index::BTree tree, index::BTree::Create(pool));
    CHUNKCACHE_RETURN_IF_ERROR(tree.BulkLoad(runs));
    file.chunk_index_.emplace(std::move(tree));
  }
  return file;
}

Result<std::pair<RowId, uint64_t>> ChunkedFile::ChunkRun(uint64_t chunk_num) {
  if (!clustered_) {
    return Status::Unsupported("ChunkRun on an unclustered file");
  }
  auto payload = chunk_index_->Get(chunk_num);
  if (!payload.ok()) return payload.status();
  return std::make_pair(payload->v1, payload->v2);
}

Result<std::vector<RowRun>> ChunkedFile::CoalescedRuns(
    const std::vector<uint64_t>& chunk_nums, uint64_t max_rows) {
  if (!clustered_) {
    return Status::Unsupported("CoalescedRuns on an unclustered file");
  }
  CHUNKCACHE_FAULT_POINT(FaultSite::kFactScan);
  std::vector<RowRun> runs;
  runs.reserve(chunk_nums.size());
  for (uint64_t chunk_num : chunk_nums) {
    auto payload = chunk_index_->Get(chunk_num);
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kNotFound) continue;
      return payload.status();
    }
    runs.push_back(RowRun{payload->v1, payload->v2, 1});
  }
  return CoalesceRowRuns(std::move(runs), max_rows);
}

Status ChunkedFile::ScanChunk(
    uint64_t chunk_num, const std::function<bool(const Tuple&)>& fn) {
  if (!clustered_) {
    return Status::Unsupported("ScanChunk on an unclustered file");
  }
  CHUNKCACHE_FAULT_POINT(FaultSite::kFactScan);
  auto run = ChunkRun(chunk_num);
  if (!run.ok()) {
    // An empty chunk simply has no run; treat as zero tuples.
    if (run.status().code() == StatusCode::kNotFound) return Status::OK();
    return run.status();
  }
  return fact_.ScanRange(run->first, run->second,
                         [&fn](RowId, const Tuple& t) { return fn(t); });
}

}  // namespace chunkcache::backend
