#ifndef CHUNKCACHE_BACKEND_CHUNKED_FILE_H_
#define CHUNKCACHE_BACKEND_CHUNKED_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "chunks/chunking_scheme.h"
#include "common/status.h"
#include "index/btree.h"
#include "storage/buffer_pool.h"
#include "storage/fact_file.h"

namespace chunkcache::backend {

/// One sequential read covering the runs of one or more whole chunks.
/// In a clustered file the runs of chunk-number-adjacent chunks sit back to
/// back, so reading several source chunks often degenerates to a handful of
/// long sequential ranges instead of one index probe + seek per chunk.
struct RowRun {
  storage::RowId first = 0;
  uint64_t count = 0;
  uint32_t chunks = 0;  ///< how many chunk runs this read covers
};

/// Sorts `runs` by starting row and merges back-to-back neighbours
/// (next.first == cur.first + cur.count) into single reads. `max_rows`
/// caps one merged read's row count (0 = unlimited): readers materialize a
/// whole run as one columnar batch, so shared scans spanning many chunks
/// need the cap to bound per-read memory. A split lands on a run boundary,
/// so row order — and therefore fold order — is unchanged.
std::vector<RowRun> CoalesceRowRuns(std::vector<RowRun> runs,
                                    uint64_t max_rows = 0);

/// The paper's chunked file organization (Section 4): fact tuples stored as
/// ordinary fixed-length records but *clustered by base-level chunk number*,
/// with a B-tree chunk index mapping chunk number -> {first RowId, tuple
/// count}. It offers both interfaces the paper requires:
///  - relational: Scan() over all tuples, like any table;
///  - chunked: ScanChunk()/ChunkRun() giving direct access to one chunk in
///    time proportional to the chunk, not the table.
///
/// `clustered = false` produces the *randomly ordered* baseline file used by
/// the Figure 14 bitmap experiment: identical tuples and indexes, but load
/// order is kept, so a chunk's tuples are scattered (ScanChunk is then
/// unsupported).
class ChunkedFile {
 public:
  /// Bulk-loads `tuples` (consumed) into a new file inside `pool`'s disk.
  /// When `clustered`, tuples are sorted by base chunk number first and the
  /// chunk index is built. When `compressed`, the fact file uses the
  /// codec-encoded block page format (RowIds are unchanged; reads decode).
  static Result<ChunkedFile> BulkLoad(storage::BufferPool* pool,
                                      const chunks::ChunkingScheme* scheme,
                                      std::vector<storage::Tuple> tuples,
                                      bool clustered = true,
                                      bool compressed = false);

  ChunkedFile(ChunkedFile&&) = default;
  ChunkedFile& operator=(ChunkedFile&&) = default;

  /// Relational interface: full scan in storage order.
  Status Scan(const std::function<bool(storage::RowId,
                                       const storage::Tuple&)>& fn) {
    return fact_.Scan(fn);
  }

  /// {first RowId, count} of base chunk `chunk_num`'s run; NotFound when the
  /// chunk is empty (sparse cubes leave many chunks without tuples).
  Result<std::pair<storage::RowId, uint64_t>> ChunkRun(uint64_t chunk_num);

  /// Chunk interface: visits the tuples of base chunk `chunk_num`. A miss
  /// on an empty chunk is not an error (zero visits).
  Status ScanChunk(uint64_t chunk_num,
                   const std::function<bool(const storage::Tuple&)>& fn);

  /// Looks up the runs of every chunk in `chunk_nums` (empty chunks are
  /// skipped) and coalesces adjacent ones into maximal sequential reads of
  /// at most `max_rows` rows each (0 = unlimited).
  Result<std::vector<RowRun>> CoalescedRuns(
      const std::vector<uint64_t>& chunk_nums, uint64_t max_rows = 0);

  bool clustered() const { return clustered_; }
  uint64_t num_tuples() const { return fact_.num_tuples(); }
  storage::FactFile& fact_file() { return fact_; }
  index::BTree& chunk_index() { return *chunk_index_; }
  const chunks::ChunkingScheme& scheme() const { return *scheme_; }

  /// Number of non-empty base chunks (chunk-index entries).
  uint64_t num_nonempty_chunks() const {
    return chunk_index_ ? chunk_index_->size() : 0;
  }

 private:
  ChunkedFile(storage::FactFile fact, const chunks::ChunkingScheme* scheme,
              bool clustered)
      : fact_(std::move(fact)), scheme_(scheme), clustered_(clustered) {}

  storage::FactFile fact_;
  const chunks::ChunkingScheme* scheme_;
  bool clustered_;
  std::optional<index::BTree> chunk_index_;
};

}  // namespace chunkcache::backend

#endif  // CHUNKCACHE_BACKEND_CHUNKED_FILE_H_
