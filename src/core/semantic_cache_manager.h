#ifndef CHUNKCACHE_CORE_SEMANTIC_CACHE_MANAGER_H_
#define CHUNKCACHE_CORE_SEMANTIC_CACHE_MANAGER_H_

#include <string>
#include <vector>

#include "backend/engine.h"
#include "cache/semantic_cache.h"
#include "core/middle_tier.h"

namespace chunkcache::core {

struct SemanticManagerOptions {
  uint64_t cache_bytes = 30ull << 20;
  std::string policy = "benefit-clock";
  CostModel cost_model;
};

/// Middle tier implementing semantic-region caching (Dar et al. [DFJST96]),
/// the related-work approach the paper's chunks replace: query results are
/// cached as arbitrary boxes, a new query is intersected with *all* cached
/// regions of its group-by, and each leftover remainder box runs as its own
/// backend query and is cached as a new region. Functionally it reuses
/// overlap like chunks do, but pays per-region intersection costs and
/// fragments the space into irregular regions.
class SemanticCacheManager final : public MiddleTier {
 public:
  SemanticCacheManager(backend::BackendEngine* engine,
                       SemanticManagerOptions options);

  Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats) override;

  std::string name() const override { return "semantic-cache"; }

  cache::SemanticRegionCache& region_cache() { return cache_; }

 private:
  backend::BackendEngine* engine_;
  SemanticManagerOptions options_;
  cache::SemanticRegionCache cache_;
};

}  // namespace chunkcache::core

#endif  // CHUNKCACHE_CORE_SEMANTIC_CACHE_MANAGER_H_
