#ifndef CHUNKCACHE_CORE_QUERY_CACHE_MANAGER_H_
#define CHUNKCACHE_CORE_QUERY_CACHE_MANAGER_H_

#include <string>
#include <vector>

#include "backend/engine.h"
#include "cache/query_cache.h"
#include "core/middle_tier.h"

namespace chunkcache::core {

/// Configuration of the query-caching baseline.
struct QueryManagerOptions {
  uint64_t cache_bytes = 30ull << 20;
  std::string policy = "benefit-clock";
  CostModel cost_model;
};

/// The query-level caching baseline (Section 6.1.4): caches whole query
/// results and reuses one via containment; misses run a full star join at
/// the backend (bitmap index path). Costs are normalized identically to
/// the chunk manager so CSR values are directly comparable.
class QueryCacheManager final : public MiddleTier {
 public:
  QueryCacheManager(backend::BackendEngine* engine,
                    QueryManagerOptions options);

  Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats) override;

  std::string name() const override { return "query-cache"; }

  cache::QueryCache& query_cache() { return cache_; }

 private:
  backend::BackendEngine* engine_;
  QueryManagerOptions options_;
  cache::QueryCache cache_;
};

/// No middle-tier caching at all: every query runs at the backend. The
/// floor every caching scheme is measured against.
class NoCacheManager final : public MiddleTier {
 public:
  explicit NoCacheManager(backend::BackendEngine* engine,
                          CostModel cost_model = CostModel())
      : engine_(engine), cost_model_(cost_model) {}

  Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats) override;

  std::string name() const override { return "no-cache"; }

 private:
  backend::BackendEngine* engine_;
  CostModel cost_model_;
};

/// Shared cost normalization: the expected number of base tuples a cold
/// backend scans for `query` — the number of chunks the query needs times
/// the per-chunk benefit. Used as c_i by every manager.
double EstimateColdCost(const chunks::ChunkingScheme& scheme,
                        const backend::StarJoinQuery& query,
                        uint64_t* chunks_needed);

}  // namespace chunkcache::core

#endif  // CHUNKCACHE_CORE_QUERY_CACHE_MANAGER_H_
