#ifndef CHUNKCACHE_CORE_MULTI_RANGE_H_
#define CHUNKCACHE_CORE_MULTI_RANGE_H_

#include <vector>

#include "backend/multi_range_query.h"
#include "core/middle_tier.h"

namespace chunkcache::core {

/// Answers a multi-range (IN-list) query through any middle tier by
/// decomposing it into box queries, concatenating their disjoint results,
/// and summing their statistics. `stats` aggregates: cost estimates and
/// chunk counters add up; saved_fraction is the cost-weighted mean;
/// full_cache_hit holds iff every box was one.
Result<std::vector<backend::ResultRow>> ExecuteMultiRange(
    MiddleTier* tier, const backend::MultiRangeQuery& query,
    QueryStats* stats, uint64_t max_boxes = 4096);

}  // namespace chunkcache::core

#endif  // CHUNKCACHE_CORE_MULTI_RANGE_H_
