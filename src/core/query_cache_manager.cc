#include "core/query_cache_manager.h"

#include "backend/aggregator.h"
#include "common/logging.h"

namespace chunkcache::core {

using backend::ResultRow;
using backend::StarJoinQuery;
using chunks::ChunkCoords;

double EstimateColdCost(const chunks::ChunkingScheme& scheme,
                        const StarJoinQuery& query, uint64_t* chunks_needed) {
  const chunks::ChunkBox box =
      scheme.BoxForSelection(query.group_by, query.selection);
  const uint64_t needed = box.NumChunks();
  if (chunks_needed != nullptr) *chunks_needed = needed;
  return static_cast<double>(needed) * scheme.ChunkBenefit(query.group_by);
}

QueryCacheManager::QueryCacheManager(backend::BackendEngine* engine,
                                     QueryManagerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      cache_(options_.cache_bytes, cache::MakePolicy(options_.policy)) {}

Result<std::vector<ResultRow>> QueryCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  stats->cost_estimate = EstimateColdCost(engine_->scheme(), query,
                                          &stats->chunks_needed);

  const cache::CachedQuery* hit = cache_.FindContaining(query);
  if (hit != nullptr) {
    // Containment hit: the selection on group-by attributes is a
    // post-aggregation filter, so the contained query is just a slice.
    std::vector<ResultRow> rows = backend::FilterRows(
        hit->rows, query.group_by.num_dims, query.selection);
    backend::SortRows(&rows, query.group_by.num_dims);
    stats->full_cache_hit = true;
    stats->saved_fraction = 1.0;
    stats->chunks_from_cache = stats->chunks_needed;
    return rows;
  }

  CHUNKCACHE_ASSIGN_OR_RETURN(
      std::vector<ResultRow> rows,
      engine_->ExecuteStarJoin(query, &stats->backend_work));
  stats->modeled_ms = options_.cost_model.Cost(
      stats->backend_work.pages_read, stats->backend_work.pages_written,
      stats->backend_work.tuples_processed);
  stats->chunks_from_backend = stats->chunks_needed;

  cache::CachedQuery entry;
  entry.query = query;
  entry.benefit = stats->cost_estimate;
  entry.rows = rows;
  cache_.Insert(std::move(entry));
  return rows;
}

Result<std::vector<ResultRow>> NoCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  stats->cost_estimate = EstimateColdCost(engine_->scheme(), query,
                                          &stats->chunks_needed);
  CHUNKCACHE_ASSIGN_OR_RETURN(
      std::vector<ResultRow> rows,
      engine_->ExecuteStarJoin(query, &stats->backend_work));
  stats->modeled_ms = cost_model_.Cost(stats->backend_work.pages_read,
                                       stats->backend_work.pages_written,
                                       stats->backend_work.tuples_processed);
  stats->chunks_from_backend = stats->chunks_needed;
  return rows;
}

}  // namespace chunkcache::core
