#ifndef CHUNKCACHE_CORE_MIDDLE_TIER_H_
#define CHUNKCACHE_CORE_MIDDLE_TIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backend/star_join_query.h"
#include "common/cost_model.h"
#include "common/retry.h"
#include "common/status.h"

namespace chunkcache::core {

/// Per-query execution report, filled by every MiddleTier implementation.
struct QueryStats {
  /// Physical backend work this query triggered (pages, tuples).
  WorkCounters backend_work;

  /// Extra backend work done speculatively (drill-down prefetch); kept
  /// separate from backend_work so foreground latency stays comparable.
  WorkCounters prefetch_work;

  /// Modeled execution time of the backend work under the experiment's
  /// CostModel (the number the figures plot).
  double modeled_ms = 0;

  uint64_t chunks_needed = 0;
  uint64_t chunks_from_cache = 0;
  uint64_t chunks_from_aggregation = 0;  ///< In-cache aggregation extension.
  uint64_t chunks_from_backend = 0;
  uint64_t prefetched_chunks = 0;

  /// Missing chunks this query did not compute itself because another
  /// in-flight query was already computing them (miss coalescing): the
  /// query blocked on the owner's result instead of duplicating backend
  /// work. Counted toward saved_fraction, like cache hits.
  uint64_t coalesced_waits = 0;

  /// Backend compute attempts repeated under the retry policy after a
  /// retryable failure (I/O error, corruption, resource exhaustion).
  uint64_t retries = 0;

  /// Chunks the backend could not deliver (failure or deadline) that were
  /// assembled instead from cached finer-level chunks via the closure
  /// property — the degraded-mode answer. Coordinates, counts, and min/max
  /// are bit-identical to the healthy path; sums agree up to floating-point
  /// summation order (the roll-up associates additions differently).
  uint64_t degraded_answers = 0;

  /// Chunk computations or waits cut short by this query's deadline.
  uint64_t deadline_expired = 0;

  /// True when the query was answered without touching the backend.
  bool full_cache_hit = false;

  /// Normalized query cost c_i for the cost-saving-ratio metric: the
  /// expected number of base tuples the backend would scan to compute the
  /// query with a cold cache. Comparable across caching schemes.
  double cost_estimate = 0;

  /// Fraction of cost_estimate served from the cache (h_i/r_i generalized
  /// to partial chunk hits).
  double saved_fraction = 0;
};

/// Accumulates the paper's Cost Saving Ratio (Section 6.1.3, after
/// [SSV]-style profit metrics): CSR = sum(c_i * h_i) / sum(c_i * r_i),
/// generalized so a query answered partially from the cache contributes
/// its satisfied fraction.
class CsrAccumulator {
 public:
  void Record(const QueryStats& s) {
    total_ += s.cost_estimate;
    saved_ += s.cost_estimate * s.saved_fraction;
  }
  double Csr() const { return total_ == 0 ? 0 : saved_ / total_; }
  double total_cost() const { return total_; }
  void Reset() { total_ = saved_ = 0; }

 private:
  double total_ = 0;
  double saved_ = 0;
};

/// A middle tier answers star-join queries, possibly out of a cache. The
/// three implementations (chunk caching, query caching, no cache) share
/// this interface so experiments can swap them freely.
class MiddleTier {
 public:
  virtual ~MiddleTier() = default;

  /// Answers `query`, filling `*stats` (required). Rows come back sorted
  /// canonically and exactly filtered to the query's selection.
  virtual Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats) = 0;

  /// Execute with per-query control (deadline, cancellation). The serving
  /// layer maps a frame-header deadline onto `ctrl` and cancels in-flight
  /// work when the client's connection drops. The default implementation
  /// ignores `ctrl`, so tiers without deadline plumbing stay correct —
  /// they just cannot be cut short.
  virtual Result<std::vector<backend::ResultRow>> ExecuteWithControl(
      const backend::StarJoinQuery& query, QueryStats* stats,
      const ExecControl& ctrl) {
    (void)ctrl;
    return Execute(query, stats);
  }

  virtual std::string name() const = 0;
};

}  // namespace chunkcache::core

#endif  // CHUNKCACHE_CORE_MIDDLE_TIER_H_
