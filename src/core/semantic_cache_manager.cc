#include "core/semantic_cache_manager.h"

#include "backend/aggregator.h"
#include "common/logging.h"
#include "core/query_cache_manager.h"

namespace chunkcache::core {

using backend::ResultRow;
using backend::StarJoinQuery;
using cache::RegionBox;
using cache::SemanticRegion;
using storage::AggTuple;

SemanticCacheManager::SemanticCacheManager(backend::BackendEngine* engine,
                                           SemanticManagerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      cache_(options_.cache_bytes, cache::MakePolicy(options_.policy)) {}

Result<std::vector<ResultRow>> SemanticCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  stats->cost_estimate = EstimateColdCost(engine_->scheme(), query,
                                          &stats->chunks_needed);

  cache::SemanticRegionCache::Probe probe = cache_.Decompose(query);
  std::vector<AggTuple> rows;
  for (const auto& [region, box] : probe.covered) {
    for (const AggTuple& row : region->rows) {
      if (box.Contains(row)) rows.push_back(row);
    }
  }

  // Each remainder box runs as its own backend query and becomes a new
  // cached region (DFJST's remainder-query strategy).
  for (const RegionBox& box : probe.remainder) {
    StarJoinQuery sub = query;
    for (uint32_t d = 0; d < box.num_dims; ++d) {
      sub.selection[d] = box.ranges[d];
    }
    CHUNKCACHE_ASSIGN_OR_RETURN(
        std::vector<ResultRow> sub_rows,
        engine_->ExecuteStarJoin(sub, &stats->backend_work));
    rows.insert(rows.end(), sub_rows.begin(), sub_rows.end());
    SemanticRegion region;
    region.group_by = query.group_by;
    region.non_group_by = query.non_group_by;
    region.box = box;
    region.benefit = EstimateColdCost(engine_->scheme(), sub, nullptr);
    region.rows = std::move(sub_rows);
    cache_.Insert(std::move(region));
  }

  backend::SortRows(&rows, query.group_by.num_dims);
  stats->full_cache_hit = probe.remainder.empty();
  stats->saved_fraction = probe.covered_fraction;
  stats->modeled_ms = options_.cost_model.Cost(
      stats->backend_work.pages_read, stats->backend_work.pages_written,
      stats->backend_work.tuples_processed);
  return rows;
}

}  // namespace chunkcache::core
