#include "core/multi_range.h"

#include "backend/aggregator.h"
#include "common/logging.h"

namespace chunkcache::core {

using backend::ResultRow;

Result<std::vector<ResultRow>> ExecuteMultiRange(
    MiddleTier* tier, const backend::MultiRangeQuery& query,
    QueryStats* stats, uint64_t max_boxes) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  CHUNKCACHE_ASSIGN_OR_RETURN(
      std::vector<backend::StarJoinQuery> boxes,
      backend::DecomposeToBoxQueries(query, max_boxes));
  std::vector<ResultRow> rows;
  bool all_hit = true;
  double saved_weighted = 0;
  for (const backend::StarJoinQuery& box : boxes) {
    QueryStats s;
    CHUNKCACHE_ASSIGN_OR_RETURN(std::vector<ResultRow> part,
                                tier->Execute(box, &s));
    rows.insert(rows.end(), part.begin(), part.end());
    stats->backend_work += s.backend_work;
    stats->prefetch_work += s.prefetch_work;
    stats->modeled_ms += s.modeled_ms;
    stats->chunks_needed += s.chunks_needed;
    stats->chunks_from_cache += s.chunks_from_cache;
    stats->chunks_from_aggregation += s.chunks_from_aggregation;
    stats->chunks_from_backend += s.chunks_from_backend;
    stats->prefetched_chunks += s.prefetched_chunks;
    stats->cost_estimate += s.cost_estimate;
    saved_weighted += s.saved_fraction * s.cost_estimate;
    all_hit = all_hit && s.full_cache_hit;
  }
  stats->full_cache_hit = all_hit;
  stats->saved_fraction =
      stats->cost_estimate == 0 ? 0 : saved_weighted / stats->cost_estimate;
  // Boxes are disjoint, so cells never merge — one global sort suffices.
  backend::SortRows(&rows, query.group_by.num_dims);
  return rows;
}

}  // namespace chunkcache::core
