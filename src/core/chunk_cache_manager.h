#ifndef CHUNKCACHE_CORE_CHUNK_CACHE_MANAGER_H_
#define CHUNKCACHE_CORE_CHUNK_CACHE_MANAGER_H_

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/engine.h"
#include "backend/scan_scheduler.h"
#include "cache/chunk_cache.h"
#include "cache/decoded_cache.h"
#include "common/inflight_table.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/middle_tier.h"
#include "storage/cache_persist.h"
#include "storage/codec.h"

namespace chunkcache::core {

/// Configuration of the chunk-caching middle tier.
struct ChunkManagerOptions {
  uint64_t cache_bytes = 30ull << 20;   ///< Paper: 30 MB cache.
  /// Replacement policy: any cache::KnownPolicyNames() name (lru, clock,
  /// benefit-clock, arc, slru, 2q, lfu-aging, benefit-lfu-aging). Unknown
  /// names abort with a message listing the valid set.
  std::string policy = "benefit-clock";
  CostModel cost_model;

  /// Where the benefit fed to the replacement policy on insert comes from:
  ///  - "static":   the paper's |base| / #chunks heuristic
  ///                (ChunkingScheme::ChunkBenefit) — today's behavior.
  ///  - "measured": the EWMA of actual per-chunk scan+aggregate ns
  ///                observed for the chunk's group-by (each group-by has
  ///                one fixed chunk volume, so group-by id is exactly the
  ///                (group-by, chunk-volume) class), falling back to the
  ///                static value until the first measurement lands.
  /// Replacement only decides *which* chunks stay cached, never answers,
  /// so query results are bit-identical either way (bench-asserted).
  std::string benefit_source = "static";

  /// Ghost-cache shadow policies: for each name listed here the chunk
  /// cache runs an online simulator (keys + sizes only) against the real
  /// access stream and exports would-be-hit counters as
  /// "cache.ghost.<policy>.*". Empty = no shadow simulation (no overhead).
  std::vector<std::string> ghost_policies;

  /// Record the ghost event stream so a replay can validate the online
  /// standings (bench_replacement does); costs memory, off by default.
  bool ghost_record_trace = false;

  /// Worker threads for the parallel miss pipeline. With <= 1 the manager
  /// runs the exact serial paper path (no pool is created); with more, a
  /// fixed-size executor (a) fans missing-chunk computation across
  /// workers, (b) overlaps cache-hit assembly with backend work, and
  /// (c) makes drill-down prefetch asynchronous.
  uint32_t num_workers = 1;

  /// Shards of the chunk cache (rounded up to a power of two). 1 keeps
  /// the original single-map replacement semantics — what the serial
  /// reproductions use; concurrent deployments want >= 2x the client
  /// count so Lookup/Insert stay mostly uncontended.
  uint32_t cache_shards = 1;

  /// Paper §7 future work: answer a missing chunk by aggregating *finer*
  /// chunks already in the cache instead of going to the backend.
  bool enable_in_cache_aggregation = false;

  /// Paper §7 future work: after answering a query, prefetch the
  /// corresponding chunks one hierarchy level finer (anticipating drill
  /// down), up to prefetch_budget_chunks per query. With num_workers > 1
  /// the prefetch runs as a fire-and-forget background task (drain with
  /// DrainPrefetch); serially it runs inline as before.
  bool enable_drill_down_prefetch = false;
  uint32_t prefetch_budget_chunks = 32;

  /// Cross-query miss coalescing (singleflight + shared-scan batching):
  /// the first query to miss a (group-by, chunk, filter) computes it and
  /// publishes the result; concurrent missers wait instead of issuing
  /// duplicate backend work, and concurrent same-group-by miss batches
  /// merge into one scan. Off = every query computes its own misses
  /// independently, bit-identical to the pre-coalescing behavior (the
  /// ablation configuration).
  bool enable_miss_coalescing = true;

  /// Concurrent backend scans the shared-scan scheduler admits; 0 = auto
  /// (max(2, num_workers)). Only used when miss coalescing is on.
  uint32_t scan_max_outstanding = 0;

  /// Open miss batches queued for a scan slot before new batch creation
  /// back-pressures. Only used when miss coalescing is on.
  uint32_t scan_max_queue_depth = 16;

  /// Retry policy for backend chunk computation: a retryable failure
  /// (I/O error, corruption, resource exhaustion) re-attempts the compute
  /// with jittered exponential backoff instead of failing the query.
  RetryPolicy retry;

  /// Closure-property degraded answering: when the backend cannot deliver
  /// a missing chunk (all retries failed, or the deadline expired), try to
  /// assemble it by aggregating cached chunks of a strictly finer group-by
  /// instead of failing the query. The roll-up is the same deterministic
  /// path as enable_in_cache_aggregation (exact counts/min/max; sums agree
  /// with a direct scan up to floating-point summation order);
  /// QueryStats::degraded_answers records the provenance.
  bool enable_degraded_mode = true;

  /// Default per-query deadline in milliseconds (0 = none). Queries run
  /// through the Execute(query, stats) interface get this deadline; the
  /// Execute overload taking an ExecControl overrides it.
  uint64_t default_deadline_ms = 0;

  /// Compressed in-memory cache tier: admitted chunks are stored
  /// codec-encoded (the budget charges encoded bytes, so effective
  /// capacity rises at fixed cache_bytes) and hits decode on demand
  /// through a small decoded-LRU front. Entries whose encoding doesn't
  /// save bytes stay raw. Off == today's raw entries; query results are
  /// bit-identical either way (the codecs are lossless), which
  /// compression_test checks end to end.
  bool enable_compression = false;

  /// Budget of the decoded-LRU front (used only with enable_compression).
  /// Holds the most recently decoded chunks so back-to-back hits on the
  /// same chunk decode once. 0 disables the front (every hit decodes).
  uint64_t decoded_cache_bytes = 4ull << 20;

  /// Crash-safe persistent cache (DESIGN.md §14). When non-empty, the
  /// cache's contents and benefit metadata live in this directory as
  /// generation-numbered snapshots plus a CRC32C-framed WAL of
  /// admissions/evictions/benefit updates. Construction recovers: newest
  /// readable snapshot + WAL replay, torn tails truncated, corrupt
  /// entries quarantined (dropped + counted, never served), then traffic
  /// is served warm — bit-identical to a cold run, since cache warmth
  /// never changes answers. Empty = no persistence (today's behavior).
  std::string persist_dir;

  /// WAL records between automatic snapshots (0 = snapshot only on
  /// explicit PersistSnapshot() calls and at clean shutdown).
  uint64_t persist_snapshot_every = 4096;

  /// WAL records per fsync (1 = every record — full durability; 0 =
  /// never fsync; N amortizes, risking the last < N records on a crash).
  uint64_t persist_wal_fsync_every = 1;

  /// Write a final snapshot in the destructor so a clean shutdown
  /// restarts from a snapshot instead of a long WAL replay.
  bool persist_snapshot_on_shutdown = true;

  /// Per-query trace spans retained in a ring buffer (0 = tracing off).
  /// When off, every trace hook in Execute is a disarmed branch-and-return
  /// (bench_observability measures both modes).
  uint32_t trace_capacity = 0;

  /// Registry all middle-tier statistics are homed on — the cache's,
  /// the scheduler's and the manager's own. nullptr (the default) gives
  /// the manager a private registry so concurrently-running tiers stay
  /// attributable; pass one shared registry for a process-wide export.
  MetricsRegistry* metrics = nullptr;
};

/// The paper's middle tier (Sections 3 and 5): decomposes each query into
/// the chunks it needs, answers what it can from the chunk cache, asks the
/// backend to compute only the missing chunks, post-filters boundary
/// extras, and admits the fresh chunks into the cache under the
/// benefit-weighted replacement policy.
///
/// Thread safety: Execute may be called concurrently from many client
/// threads once num_workers/cache_shards are configured — the chunk cache
/// is sharded, lookups return pinned handles, and the backend's chunk
/// computation only touches thread-safe storage layers. Each caller passes
/// its own QueryStats.
class ChunkCacheManager final : public MiddleTier {
 public:
  ChunkCacheManager(backend::BackendEngine* engine,
                    ChunkManagerOptions options);
  ~ChunkCacheManager() override;

  Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats) override;

  /// Execute with explicit per-query control: deadline and cancellation
  /// are honored at claim time, in backend computation (entry + per
  /// chunk), at scan-scheduler admission, and while waiting on chunks
  /// owned by other queries. An expired/cancelled query fails fast with
  /// DeadlineExceeded/Cancelled without claiming in-flight slots — or
  /// degrades to closure-property answering when enabled and possible.
  Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats,
      const ExecControl& ctrl);

  /// MiddleTier control hook: forwards to the ExecControl overload, so the
  /// serving layer's deadline/cancellation reach the full PR 4 plumbing
  /// (claim time, backend computation, scan admission, coalesced waits).
  Result<std::vector<backend::ResultRow>> ExecuteWithControl(
      const backend::StarJoinQuery& query, QueryStats* stats,
      const ExecControl& ctrl) override {
    return Execute(query, stats, ctrl);
  }

  std::string name() const override { return "chunk-cache"; }

  cache::ChunkCache& chunk_cache() { return cache_; }
  const ChunkManagerOptions& options() const { return options_; }

  /// Executor driving the parallel pipeline; null in serial configuration.
  ThreadPool* executor() { return pool_.get(); }

  /// Blocks until every fire-and-forget prefetch task issued so far has
  /// completed (the drain point for asynchronous drill-down prefetch).
  void DrainPrefetch();

  /// Cache stats plus executor counters (tasks submitted/run, queue peak,
  /// steal-queue depth — zero by construction), the async-prefetch count,
  /// and the miss-coalescing counters; what `examples/shell.cpp`'s `stats`
  /// command prints. Every cumulative value is served from the metrics
  /// registry (the single store); natively-atomic subsystem counters
  /// (executor, kernels, fault injector, disk) are folded into registry
  /// gauges here so the registry export and this struct always agree.
  cache::ChunkCacheStats StatsSnapshot() const;

  /// The registry every middle-tier statistic lives on (the one passed in
  /// options, or the manager's own private one).
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Trace ring; null when options.trace_capacity == 0.
  TraceRecorder* trace_recorder() { return trace_.get(); }

  /// Shared-scan scheduler; null when miss coalescing is disabled.
  backend::ScanScheduler* scan_scheduler() { return scheduler_.get(); }

  /// Writes a cache snapshot generation now (rotate WAL, shadow file,
  /// atomic rename, GC). No-op without persist_dir. Exposed so operators
  /// (shell) and tests can force a generation boundary.
  Status PersistSnapshot();

  /// Persistence subsystem; null when persist_dir is empty.
  storage::CachePersistence* persistence() { return persist_.get(); }

  /// What recovery found at construction (entry payloads excluded — they
  /// went into the cache). All-zero without persist_dir.
  const storage::RecoveryStats& recovery_stats() const {
    return recovery_info_;
  }

  /// Signature of a query's non-group-by predicate list; part of every
  /// cached chunk's identity (0 = no predicates). Exposed for tests.
  static uint64_t FilterHash(
      const std::vector<backend::NonGroupByPredicate>& preds);

 private:
  /// Drill-down prefetch target and the missing child chunks to fetch.
  struct PrefetchPlan {
    chunks::GroupBySpec drill;
    uint32_t drill_id = 0;
    double benefit = 0;
    std::vector<uint64_t> to_fetch;
  };

  /// Tries to build the missing chunk by aggregating finer chunks already
  /// in the cache; returns the columnar rows (canonical order) or nullopt.
  /// The roll-up runs through the same per-chunk kernel dispatch as the
  /// backend (dense grid when the chunk's cell box allows), recorded in
  /// the engine's kernel counters.
  std::optional<storage::AggColumns> TryInCacheAggregation(
      const chunks::GroupBySpec& target, uint64_t chunk_num,
      uint64_t filter_hash);

  /// Computes the drill-down spec (every grouped dimension one level
  /// finer, capped at base) and the missing child chunks of `chunk_nums`;
  /// nullopt when already at base or nothing is missing.
  Result<std::optional<PrefetchPlan>> PlanDrillDown(
      const backend::StarJoinQuery& query,
      const std::vector<uint64_t>& chunk_nums, uint64_t filter_hash);

  /// Singleflight table over the cache's own key triple.
  using Inflight =
      InflightTable<cache::ChunkKey, cache::ChunkHandle, cache::ChunkKeyHash>;

  /// The execution pipeline proper, instrumented with `trace` spans. The
  /// public Execute wraps it with the per-query bookkeeping: latency
  /// histogram, registry counter flush, root-span tags and trace Finish.
  Result<std::vector<backend::ResultRow>> ExecuteTraced(
      const backend::StarJoinQuery& query, QueryStats* stats,
      const ExecControl& ctrl, TraceBuilder* trace);

  /// Encodes `entry->cols` into `entry->encoded` when compression is on
  /// and the encoding actually saves bytes (otherwise the entry stays raw
  /// and compression_skipped counts it). On success the decoded columns
  /// move into the decoded-LRU front, so the query that computed the chunk
  /// — and its coalesced waiters — read them back without a decode.
  void MaybeCompressEntry(cache::CachedChunk* entry);

  /// The columns of a cache hit: raw entries alias the handle's own cols
  /// (no copy, the handle keeps them alive); compressed entries come from
  /// the decoded-LRU front or a fresh timed decode.
  std::shared_ptr<const storage::AggColumns> ResolveCols(
      const cache::ChunkHandle& h);

  /// Runs `plan`'s fetches (dropping chunks another query is already
  /// computing, claiming the rest through the in-flight table), admits and
  /// publishes each computed chunk, and returns how many were fetched.
  /// Shared by the inline and the fire-and-forget prefetch paths.
  Result<uint64_t> RunPrefetch(
      const PrefetchPlan& plan,
      const std::vector<backend::NonGroupByPredicate>& preds,
      uint64_t filter_hash, WorkCounters* work);

  /// Feeds one backend recompute observation (`total_ns` spent producing
  /// `chunks` chunks of `gb_id`) into the "benefit.recompute_ns" histogram
  /// and, in measured mode, the per-group-by EWMA.
  void RecordRecompute(uint32_t gb_id, uint64_t total_ns, size_t chunks);

  /// The benefit an insert of a `gb_id` chunk should carry: the static
  /// heuristic value, or (benefit_source = "measured") the EWMA of
  /// measured per-chunk recompute ns once a sample exists.
  double InsertBenefit(uint32_t gb_id, double static_benefit) const;

  /// Cache entry -> durable form: compressed entries persist their codec
  /// blob verbatim; raw entries encode here (the blob self-checksums).
  storage::PersistedChunk ToPersisted(const cache::CachedChunk& entry) const;

  /// Recovery half of the warm-restart path: opens the persistence
  /// subsystem, re-admits every recovered entry through the normal Insert
  /// path (decode-verifying each blob; failures are quarantined), restores
  /// the benefit EWMA table, and only then installs the WAL event sink so
  /// recovered state isn't re-logged.
  void RecoverPersistedCache();

  /// Auto-snapshot trigger, called by the event sink after each logged
  /// event; snapshots inline (try-lock, so concurrent triggers skip) once
  /// persist_snapshot_every records accumulate.
  void MaybeAutoSnapshot();

  /// Shared body of PersistSnapshot / MaybeAutoSnapshot: gathers entries
  /// via ForEachEntry (one shard lock at a time) and the EWMA table under
  /// benefit_mu_, both inside the persistence rotate-then-gather protocol.
  Status SnapshotNow(bool only_if_idle);

  backend::BackendEngine* engine_;
  ChunkManagerOptions options_;
  // Declared before cache_: the cache (and scheduler) home their
  // statistics on this registry.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  cache::ChunkCache cache_;
  // Decoded-LRU front of the compressed tier; null unless
  // enable_compression && decoded_cache_bytes > 0.
  std::unique_ptr<cache::DecodedCache> decoded_;
  Inflight inflight_;
  std::unique_ptr<backend::ScanScheduler> scheduler_;
  std::unique_ptr<TraceRecorder> trace_;

  // Registry-backed cumulative counters; pointers cached at construction.
  // Chunk-provenance counters ("chunks.*") are flushed only for queries
  // that succeed, so chunks.requested == sum of the provenance counters
  // holds exactly (stats_invariant_test); robustness counters flush on
  // every path out.
  Counter* queries_ = nullptr;            // query.executions
  Counter* query_errors_ = nullptr;       // query.errors
  Counter* chunks_requested_ = nullptr;   // chunks.requested
  Counter* from_cache_ = nullptr;         // chunks.from_cache
  Counter* from_aggregation_ = nullptr;   // chunks.from_aggregation
  Counter* from_backend_ = nullptr;       // chunks.from_backend
  Counter* coalesced_waits_ = nullptr;    // chunks.coalesced_waits
  Counter* degraded_answers_ = nullptr;   // chunks.degraded_answers
  Counter* retries_ = nullptr;            // backend.retries
  Counter* deadline_expired_ = nullptr;   // query.deadline_expired
  Counter* async_prefetched_ = nullptr;   // prefetch.async_chunks
  Counter* prefetch_dropped_ = nullptr;   // prefetch.dropped_inflight
  Histogram* query_latency_ns_ = nullptr;  // query.latency_ns

  // Compressed-tier counters (all zero with compression off).
  Counter* compressed_chunks_ = nullptr;    // cache.compressed_chunks
  Counter* compression_skipped_ = nullptr;  // cache.compression_skipped
  Counter* codec_raw_bytes_ = nullptr;      // cache.codec_raw_bytes
  Counter* codec_encoded_bytes_ = nullptr;  // cache.codec_encoded_bytes
  Counter* decode_calls_ = nullptr;         // cache.decode_calls
  // Per-codec column traffic: cache.codec.<name>.{raw,encoded}_bytes and
  // .columns, indexed by storage::codec::ColumnCodec.
  std::array<Counter*, storage::codec::kNumCodecs> codec_col_raw_{};
  std::array<Counter*, storage::codec::kNumCodecs> codec_col_encoded_{};
  std::array<Counter*, storage::codec::kNumCodecs> codec_col_columns_{};
  Histogram* encode_ns_ = nullptr;  // codec.encode_ns
  Histogram* decode_ns_ = nullptr;  // codec.decode_ns

  // Measured cost-of-recompute benefit source (benefit_source option).
  // One EWMA of per-chunk scan+aggregate ns per group-by id; group-by id
  // doubles as the (group-by, chunk-volume) class since each group-by's
  // grid fixes its chunk volume.
  bool measured_benefit_ = false;
  Histogram* recompute_ns_ = nullptr;  // benefit.recompute_ns
  mutable std::mutex benefit_mu_;
  std::vector<double> benefit_ewma_;
  std::vector<uint8_t> benefit_seen_;

  // Crash-safe persistence (persist_dir option). The sink is detached from
  // the cache before persist_ is destroyed (see the destructor), so no
  // event can reach a dead WAL writer.
  class PersistSink;
  std::unique_ptr<storage::CachePersistence> persist_;
  std::unique_ptr<PersistSink> persist_sink_;
  storage::RecoveryStats recovery_info_;

  WaitGroup prefetch_wg_;
  // Declared last: destroyed first, so in-flight tasks that capture `this`
  // finish while cache_ and engine_ are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace chunkcache::core

#endif  // CHUNKCACHE_CORE_CHUNK_CACHE_MANAGER_H_
