#ifndef CHUNKCACHE_CORE_CHUNK_CACHE_MANAGER_H_
#define CHUNKCACHE_CORE_CHUNK_CACHE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "backend/engine.h"
#include "cache/chunk_cache.h"
#include "core/middle_tier.h"

namespace chunkcache::core {

/// Configuration of the chunk-caching middle tier.
struct ChunkManagerOptions {
  uint64_t cache_bytes = 30ull << 20;   ///< Paper: 30 MB cache.
  std::string policy = "benefit-clock";  ///< lru | clock | benefit-clock.
  CostModel cost_model;

  /// Paper §7 future work: answer a missing chunk by aggregating *finer*
  /// chunks already in the cache instead of going to the backend.
  bool enable_in_cache_aggregation = false;

  /// Paper §7 future work: after answering a query, prefetch the
  /// corresponding chunks one hierarchy level finer (anticipating drill
  /// down), up to prefetch_budget_chunks per query.
  bool enable_drill_down_prefetch = false;
  uint32_t prefetch_budget_chunks = 32;
};

/// The paper's middle tier (Sections 3 and 5): decomposes each query into
/// the chunks it needs, answers what it can from the chunk cache, asks the
/// backend to compute only the missing chunks, post-filters boundary
/// extras, and admits the fresh chunks into the cache under the
/// benefit-weighted replacement policy.
class ChunkCacheManager final : public MiddleTier {
 public:
  ChunkCacheManager(backend::BackendEngine* engine,
                    ChunkManagerOptions options);

  Result<std::vector<backend::ResultRow>> Execute(
      const backend::StarJoinQuery& query, QueryStats* stats) override;

  std::string name() const override { return "chunk-cache"; }

  cache::ChunkCache& chunk_cache() { return cache_; }
  const ChunkManagerOptions& options() const { return options_; }

  /// Signature of a query's non-group-by predicate list; part of every
  /// cached chunk's identity (0 = no predicates). Exposed for tests.
  static uint64_t FilterHash(
      const std::vector<backend::NonGroupByPredicate>& preds);

 private:
  /// Tries to build the missing chunk by aggregating finer chunks already
  /// in the cache; returns the rows or nullopt.
  std::optional<std::vector<storage::AggTuple>> TryInCacheAggregation(
      const chunks::GroupBySpec& target, uint64_t chunk_num,
      uint64_t filter_hash);

  /// Computes the drill-down spec (every grouped dimension one level
  /// finer, capped at base), and prefetches the missing child chunks of
  /// `chunk_nums`.
  Status PrefetchDrillDown(const backend::StarJoinQuery& query,
                           const std::vector<uint64_t>& chunk_nums,
                           uint64_t filter_hash, QueryStats* stats);

  backend::BackendEngine* engine_;
  ChunkManagerOptions options_;
  cache::ChunkCache cache_;
};

}  // namespace chunkcache::core

#endif  // CHUNKCACHE_CORE_CHUNK_CACHE_MANAGER_H_
