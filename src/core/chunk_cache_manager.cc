#include "core/chunk_cache_manager.h"

#include <algorithm>

#include "backend/aggregator.h"
#include "common/logging.h"

namespace chunkcache::core {

using backend::ChunkData;
using backend::NonGroupByPredicate;
using backend::ResultRow;
using backend::StarJoinQuery;
using chunks::ChunkBox;
using chunks::ChunkCoords;
using chunks::GroupBySpec;
using storage::AggTuple;

ChunkCacheManager::ChunkCacheManager(backend::BackendEngine* engine,
                                     ChunkManagerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      cache_(options_.cache_bytes, options_.policy,
             std::max<uint32_t>(1, options_.cache_shards)) {
  if (options_.num_workers > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  }
}

ChunkCacheManager::~ChunkCacheManager() { DrainPrefetch(); }

void ChunkCacheManager::DrainPrefetch() { prefetch_wg_.Wait(); }

cache::ChunkCacheStats ChunkCacheManager::StatsSnapshot() const {
  cache::ChunkCacheStats s = cache_.stats();
  if (pool_ != nullptr) {
    const ThreadPoolStats es = pool_->stats();
    s.exec_tasks_submitted = es.tasks_submitted;
    s.exec_tasks_run = es.tasks_run;
    s.exec_queue_peak = es.queue_peak;
    s.exec_steal_queue_depth = es.steal_queue_depth;
  }
  s.async_prefetched_chunks =
      async_prefetched_.load(std::memory_order_relaxed);
  const backend::AggKernelStats ks = engine_->kernel_stats();
  s.dense_kernels = ks.dense_kernels;
  s.hash_kernels = ks.hash_kernels;
  s.rows_folded_dense = ks.rows_folded_dense;
  s.rows_folded_hash = ks.rows_folded_hash;
  s.coalesced_reads = ks.coalesced_reads;
  s.single_run_reads = ks.single_run_reads;
  s.runs_merged = ks.runs_merged;
  return s;
}

uint64_t ChunkCacheManager::FilterHash(
    const std::vector<NonGroupByPredicate>& preds) {
  if (preds.empty()) return 0;
  // Order-insensitive: combine per-predicate hashes commutatively.
  uint64_t acc = 0;
  for (const auto& p : preds) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : {static_cast<uint64_t>(p.dim),
                       static_cast<uint64_t>(p.level),
                       static_cast<uint64_t>(p.range.begin),
                       static_cast<uint64_t>(p.range.end)}) {
      h = (h ^ v) * 0x100000001b3ULL;
    }
    acc += h;  // commutative combine
  }
  return acc == 0 ? 1 : acc;  // reserve 0 for "no predicates"
}

Result<std::vector<ResultRow>> ChunkCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  const uint32_t gb_id = scheme.GroupById(query.group_by);
  const uint64_t filter_hash = FilterHash(query.non_group_by);
  const double benefit = scheme.ChunkBenefit(query.group_by);

  // 1. Query analysis: chunk numbers needed (Section 5.2.2).
  const ChunkBox box = scheme.BoxForSelection(query.group_by, query.selection);
  const chunks::ChunkGrid& grid = scheme.GridFor(query.group_by);
  std::vector<uint64_t> needed;
  needed.reserve(box.NumChunks());
  box.ForEach(grid, [&](uint64_t num, const ChunkCoords&) {
    needed.push_back(num);
  });
  stats->chunks_needed = needed.size();
  stats->cost_estimate = static_cast<double>(needed.size()) * benefit;

  // 2. Query splitting: CNumsPresent / CNumsMissing (Section 5.2.3). Hits
  // come back as pinned handles, so concurrent inserts or evictions by
  // other clients cannot invalidate them before assembly.
  std::vector<AggTuple> rows;
  std::vector<cache::ChunkHandle> cached;
  std::vector<uint64_t> missing;
  for (uint64_t num : needed) {
    cache::ChunkHandle hit = cache_.Lookup(gb_id, num, filter_hash);
    if (hit != nullptr) {
      cached.push_back(std::move(hit));
      ++stats->chunks_from_cache;
    } else {
      missing.push_back(num);
    }
  }

  // 3. Optional middle-tier aggregation of finer cached chunks (paper §7).
  if (options_.enable_in_cache_aggregation && !missing.empty()) {
    std::vector<uint64_t> still_missing;
    for (uint64_t num : missing) {
      auto aggregated =
          TryInCacheAggregation(query.group_by, num, filter_hash);
      if (aggregated) {
        aggregated->AppendToRows(&rows);
        ++stats->chunks_from_aggregation;
        // Admit the derived chunk so the next query gets a direct hit.
        cache::CachedChunk entry;
        entry.group_by_id = gb_id;
        entry.chunk_num = num;
        entry.filter_hash = filter_hash;
        entry.benefit = benefit;
        entry.cols = std::move(*aggregated);
        cache_.Insert(std::move(entry));
      } else {
        still_missing.push_back(num);
      }
    }
    missing = std::move(still_missing);
  }

  // 4. Compute the remaining misses at the backend and admit them,
  // overlapping cache-hit assembly with the backend work: a pool task
  // copies the pinned hit rows while this thread drives ComputeChunks
  // (which itself fans out across the same pool). Worker tasks never
  // block on other tasks, so the overlap cannot deadlock.
  std::vector<AggTuple> hit_rows;
  const auto assemble_hits = [&] {
    size_t total = 0;
    for (const auto& h : cached) total += h->cols.size();
    hit_rows.reserve(total);
    for (const auto& h : cached) h->cols.AppendToRows(&hit_rows);
  };
  Result<std::vector<ChunkData>> computed = std::vector<ChunkData>{};
  const bool overlap = pool_ != nullptr && !missing.empty() &&
                       !cached.empty() && !ThreadPool::InWorkerThread();
  if (overlap) {
    WaitGroup wg;
    wg.Add(1);
    pool_->Submit([&] {
      assemble_hits();
      wg.Done();
    });
    computed = engine_->ComputeChunks(query.group_by, missing,
                                      query.non_group_by,
                                      &stats->backend_work, pool_.get());
    wg.Wait();
  } else {
    assemble_hits();
    if (!missing.empty()) {
      computed = engine_->ComputeChunks(query.group_by, missing,
                                        query.non_group_by,
                                        &stats->backend_work, pool_.get());
    }
  }
  CHUNKCACHE_RETURN_IF_ERROR(computed.status());
  rows.insert(rows.end(), std::make_move_iterator(hit_rows.begin()),
              std::make_move_iterator(hit_rows.end()));
  stats->chunks_from_backend = computed->size();
  for (ChunkData& data : *computed) {
    data.cols.AppendToRows(&rows);
    cache::CachedChunk entry;
    entry.group_by_id = gb_id;
    entry.chunk_num = data.chunk_num;
    entry.filter_hash = filter_hash;
    entry.benefit = benefit;
    entry.cols = std::move(data.cols);
    cache_.Insert(std::move(entry));
  }

  // 5. Post-processing: trim boundary extras, canonical order.
  rows = backend::FilterRows(std::move(rows), query.group_by.num_dims,
                             query.selection);
  backend::SortRows(&rows, query.group_by.num_dims);

  stats->full_cache_hit = missing.empty() && stats->chunks_from_backend == 0;
  stats->saved_fraction =
      stats->chunks_needed == 0
          ? 0.0
          : static_cast<double>(stats->chunks_from_cache +
                                stats->chunks_from_aggregation) /
                static_cast<double>(stats->chunks_needed);
  stats->modeled_ms = options_.cost_model.Cost(
      stats->backend_work.pages_read, stats->backend_work.pages_written,
      stats->backend_work.tuples_processed);

  // 6. Optional drill-down prefetch (paper §7). With an executor, fire and
  // forget: the task computes and admits the child chunks in the
  // background and is only observable through DrainPrefetch and the
  // async_prefetched_chunks counter. Serially, run inline and charge
  // stats->prefetch_work as before.
  if (options_.enable_drill_down_prefetch) {
    CHUNKCACHE_ASSIGN_OR_RETURN(std::optional<PrefetchPlan> plan,
                                PlanDrillDown(query, needed, filter_hash));
    if (plan) {
      if (pool_ != nullptr && !ThreadPool::InWorkerThread()) {
        prefetch_wg_.Add(1);
        pool_->Submit([this, plan = std::move(*plan),
                       preds = query.non_group_by, filter_hash] {
          WorkCounters work;
          // Serial inside the worker (nested fan-out would tie up the
          // pool); errors are dropped — prefetch is best-effort.
          auto fetched = engine_->ComputeChunks(plan.drill, plan.to_fetch,
                                                preds, &work);
          if (fetched.ok()) {
            for (ChunkData& data : *fetched) {
              cache::CachedChunk entry;
              entry.group_by_id = plan.drill_id;
              entry.chunk_num = data.chunk_num;
              entry.filter_hash = filter_hash;
              entry.benefit = plan.benefit;
              entry.cols = std::move(data.cols);
              cache_.Insert(std::move(entry));
              async_prefetched_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          prefetch_wg_.Done();
        });
      } else {
        CHUNKCACHE_RETURN_IF_ERROR(
            PrefetchInline(*plan, query.non_group_by, filter_hash, stats));
      }
    }
  }
  return rows;
}

std::optional<storage::AggColumns> ChunkCacheManager::TryInCacheAggregation(
    const GroupBySpec& target, uint64_t chunk_num, uint64_t filter_hash) {
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  // Candidate source group-bys: any strictly finer group-by that has
  // cached chunks at all. The per-group-by counters make the scan cheap.
  for (uint32_t id = 0; id < scheme.NumGroupByIds(); ++id) {
    if (cache_.CountForGroupBy(id) == 0) continue;
    const GroupBySpec src = scheme.SpecOfId(id);
    if (src == target || !target.CoarserOrEqual(src)) continue;
    auto box = scheme.SourceBox(target, chunk_num, src);
    if (!box.ok()) continue;
    // Pin every source chunk up front; a missing one (or one evicted by a
    // concurrent client since the counter was read) aborts this source.
    std::vector<cache::ChunkHandle> sources;
    bool all_present = true;
    const chunks::ChunkGrid& src_grid = scheme.GridFor(src);
    box->ForEach(src_grid, [&](uint64_t src_num, const ChunkCoords&) {
      if (!all_present) return;
      cache::ChunkHandle h = cache_.Lookup(id, src_num, filter_hash);
      if (h == nullptr) {
        all_present = false;
        return;
      }
      sources.push_back(std::move(h));
    });
    if (!all_present) continue;
    // Aggregate the pinned chunks through the per-chunk kernel dispatch
    // (dense grid when the target chunk's cell box is small enough).
    backend::ChunkAggregator agg(&scheme, target, chunk_num,
                                 engine_->options().dense_cell_limit,
                                 engine_->kernel_counters());
    for (const cache::ChunkHandle& chunk : sources) {
      agg.AddAggColumns(chunk->cols, src);
    }
    return agg.TakeColumns();  // already canonical order
  }
  return std::nullopt;
}

Result<std::optional<ChunkCacheManager::PrefetchPlan>>
ChunkCacheManager::PlanDrillDown(const StarJoinQuery& query,
                                 const std::vector<uint64_t>& chunk_nums,
                                 uint64_t filter_hash) {
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  // Drill-down target: every grouped dimension one level finer.
  PrefetchPlan plan;
  plan.drill = query.group_by;
  bool changed = false;
  for (uint32_t d = 0; d < plan.drill.num_dims; ++d) {
    const auto& h = scheme.schema().dimension(d).hierarchy;
    if (plan.drill.levels[d] < h.depth()) {
      plan.drill.levels[d]++;
      changed = true;
    }
  }
  if (!changed) return std::optional<PrefetchPlan>();  // at base everywhere
  plan.drill_id = scheme.GroupById(plan.drill);
  plan.benefit = scheme.ChunkBenefit(plan.drill);
  const chunks::ChunkGrid& drill_grid = scheme.GridFor(plan.drill);

  for (uint64_t num : chunk_nums) {
    if (plan.to_fetch.size() >= options_.prefetch_budget_chunks) break;
    auto box = scheme.SourceBox(query.group_by, num, plan.drill);
    if (!box.ok()) return box.status();
    box->ForEach(drill_grid, [&](uint64_t child, const ChunkCoords&) {
      if (plan.to_fetch.size() >= options_.prefetch_budget_chunks) return;
      if (!cache_.Contains(plan.drill_id, child, filter_hash)) {
        plan.to_fetch.push_back(child);
      }
    });
  }
  if (plan.to_fetch.empty()) return std::optional<PrefetchPlan>();
  return std::optional<PrefetchPlan>(std::move(plan));
}

Status ChunkCacheManager::PrefetchInline(
    const PrefetchPlan& plan, const std::vector<NonGroupByPredicate>& preds,
    uint64_t filter_hash, QueryStats* stats) {
  CHUNKCACHE_ASSIGN_OR_RETURN(
      std::vector<ChunkData> computed,
      engine_->ComputeChunks(plan.drill, plan.to_fetch, preds,
                             &stats->prefetch_work));
  for (ChunkData& data : computed) {
    cache::CachedChunk entry;
    entry.group_by_id = plan.drill_id;
    entry.chunk_num = data.chunk_num;
    entry.filter_hash = filter_hash;
    entry.benefit = plan.benefit;
    entry.cols = std::move(data.cols);
    cache_.Insert(std::move(entry));
    ++stats->prefetched_chunks;
  }
  return Status::OK();
}

}  // namespace chunkcache::core
