#include "core/chunk_cache_manager.h"

#include <algorithm>

#include "backend/aggregator.h"
#include "common/logging.h"

namespace chunkcache::core {

using backend::ChunkData;
using backend::NonGroupByPredicate;
using backend::ResultRow;
using backend::StarJoinQuery;
using chunks::ChunkBox;
using chunks::ChunkCoords;
using chunks::GroupBySpec;
using storage::AggTuple;

ChunkCacheManager::ChunkCacheManager(backend::BackendEngine* engine,
                                     ChunkManagerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      cache_(options_.cache_bytes, cache::MakePolicy(options_.policy)) {}

uint64_t ChunkCacheManager::FilterHash(
    const std::vector<NonGroupByPredicate>& preds) {
  if (preds.empty()) return 0;
  // Order-insensitive: combine per-predicate hashes commutatively.
  uint64_t acc = 0;
  for (const auto& p : preds) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : {static_cast<uint64_t>(p.dim),
                       static_cast<uint64_t>(p.level),
                       static_cast<uint64_t>(p.range.begin),
                       static_cast<uint64_t>(p.range.end)}) {
      h = (h ^ v) * 0x100000001b3ULL;
    }
    acc += h;  // commutative combine
  }
  return acc == 0 ? 1 : acc;  // reserve 0 for "no predicates"
}

Result<std::vector<ResultRow>> ChunkCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  const uint32_t gb_id = scheme.GroupById(query.group_by);
  const uint64_t filter_hash = FilterHash(query.non_group_by);
  const double benefit = scheme.ChunkBenefit(query.group_by);

  // 1. Query analysis: chunk numbers needed (Section 5.2.2).
  const ChunkBox box = scheme.BoxForSelection(query.group_by, query.selection);
  const chunks::ChunkGrid& grid = scheme.GridFor(query.group_by);
  std::vector<uint64_t> needed;
  needed.reserve(box.NumChunks());
  box.ForEach(grid, [&](uint64_t num, const ChunkCoords&) {
    needed.push_back(num);
  });
  stats->chunks_needed = needed.size();
  stats->cost_estimate = static_cast<double>(needed.size()) * benefit;

  // 2. Query splitting: CNumsPresent / CNumsMissing (Section 5.2.3).
  std::vector<AggTuple> rows;
  std::vector<uint64_t> missing;
  for (uint64_t num : needed) {
    const cache::CachedChunk* hit = cache_.Lookup(gb_id, num, filter_hash);
    if (hit != nullptr) {
      rows.insert(rows.end(), hit->rows.begin(), hit->rows.end());
      ++stats->chunks_from_cache;
    } else {
      missing.push_back(num);
    }
  }

  // 3. Optional middle-tier aggregation of finer cached chunks (paper §7).
  if (options_.enable_in_cache_aggregation && !missing.empty()) {
    std::vector<uint64_t> still_missing;
    for (uint64_t num : missing) {
      auto aggregated =
          TryInCacheAggregation(query.group_by, num, filter_hash);
      if (aggregated) {
        rows.insert(rows.end(), aggregated->begin(), aggregated->end());
        ++stats->chunks_from_aggregation;
        // Admit the derived chunk so the next query gets a direct hit.
        cache::CachedChunk entry;
        entry.group_by_id = gb_id;
        entry.chunk_num = num;
        entry.filter_hash = filter_hash;
        entry.benefit = benefit;
        entry.rows = std::move(*aggregated);
        cache_.Insert(std::move(entry));
      } else {
        still_missing.push_back(num);
      }
    }
    missing = std::move(still_missing);
  }

  // 4. Compute the remaining misses at the backend and admit them.
  if (!missing.empty()) {
    CHUNKCACHE_ASSIGN_OR_RETURN(
        std::vector<ChunkData> computed,
        engine_->ComputeChunks(query.group_by, missing, query.non_group_by,
                               &stats->backend_work));
    stats->chunks_from_backend = computed.size();
    for (ChunkData& data : computed) {
      rows.insert(rows.end(), data.rows.begin(), data.rows.end());
      cache::CachedChunk entry;
      entry.group_by_id = gb_id;
      entry.chunk_num = data.chunk_num;
      entry.filter_hash = filter_hash;
      entry.benefit = benefit;
      entry.rows = std::move(data.rows);
      cache_.Insert(std::move(entry));
    }
  }

  // 5. Post-processing: trim boundary extras, canonical order.
  rows = backend::FilterRows(std::move(rows), query.group_by.num_dims,
                             query.selection);
  backend::SortRows(&rows, query.group_by.num_dims);

  stats->full_cache_hit = missing.empty() && stats->chunks_from_backend == 0;
  stats->saved_fraction =
      stats->chunks_needed == 0
          ? 0.0
          : static_cast<double>(stats->chunks_from_cache +
                                stats->chunks_from_aggregation) /
                static_cast<double>(stats->chunks_needed);
  stats->modeled_ms = options_.cost_model.Cost(
      stats->backend_work.pages_read, stats->backend_work.pages_written,
      stats->backend_work.tuples_processed);

  // 6. Optional drill-down prefetch (paper §7), charged separately.
  if (options_.enable_drill_down_prefetch) {
    CHUNKCACHE_RETURN_IF_ERROR(
        PrefetchDrillDown(query, needed, filter_hash, stats));
  }
  return rows;
}

std::optional<std::vector<AggTuple>> ChunkCacheManager::TryInCacheAggregation(
    const GroupBySpec& target, uint64_t chunk_num, uint64_t filter_hash) {
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  // Candidate source group-bys: any strictly finer group-by that has
  // cached chunks at all. The per-group-by counters make the scan cheap.
  for (uint32_t id = 0; id < scheme.NumGroupByIds(); ++id) {
    if (cache_.CountForGroupBy(id) == 0) continue;
    const GroupBySpec src = scheme.SpecOfId(id);
    if (src == target || !target.CoarserOrEqual(src)) continue;
    auto box = scheme.SourceBox(target, chunk_num, src);
    if (!box.ok()) continue;
    // All source chunks must be cached under the same filter.
    bool all_present = true;
    const chunks::ChunkGrid& src_grid = scheme.GridFor(src);
    box->ForEach(src_grid, [&](uint64_t src_num, const ChunkCoords&) {
      if (!cache_.Contains(id, src_num, filter_hash)) all_present = false;
    });
    if (!all_present) continue;
    // Aggregate them.
    backend::HashAggregator agg(&scheme, target);
    box->ForEach(src_grid, [&](uint64_t src_num, const ChunkCoords&) {
      const cache::CachedChunk* chunk =
          cache_.Lookup(id, src_num, filter_hash);
      CHUNKCACHE_DCHECK(chunk != nullptr);
      for (const AggTuple& row : chunk->rows) agg.AddAgg(row, src);
    });
    std::vector<AggTuple> rows = agg.TakeRows();
    backend::SortRows(&rows, target.num_dims);
    return rows;
  }
  return std::nullopt;
}

Status ChunkCacheManager::PrefetchDrillDown(
    const StarJoinQuery& query, const std::vector<uint64_t>& chunk_nums,
    uint64_t filter_hash, QueryStats* stats) {
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  // Drill-down target: every grouped dimension one level finer.
  GroupBySpec drill = query.group_by;
  bool changed = false;
  for (uint32_t d = 0; d < drill.num_dims; ++d) {
    const auto& h = scheme.schema().dimension(d).hierarchy;
    if (drill.levels[d] < h.depth()) {
      drill.levels[d]++;
      changed = true;
    }
  }
  if (!changed) return Status::OK();  // already at base everywhere
  const uint32_t drill_id = scheme.GroupById(drill);
  const double drill_benefit = scheme.ChunkBenefit(drill);
  const chunks::ChunkGrid& drill_grid = scheme.GridFor(drill);

  std::vector<uint64_t> to_fetch;
  for (uint64_t num : chunk_nums) {
    if (to_fetch.size() >= options_.prefetch_budget_chunks) break;
    auto box = scheme.SourceBox(query.group_by, num, drill);
    if (!box.ok()) return box.status();
    box->ForEach(drill_grid, [&](uint64_t child, const ChunkCoords&) {
      if (to_fetch.size() >= options_.prefetch_budget_chunks) return;
      if (!cache_.Contains(drill_id, child, filter_hash)) {
        to_fetch.push_back(child);
      }
    });
  }
  if (to_fetch.empty()) return Status::OK();
  CHUNKCACHE_ASSIGN_OR_RETURN(
      std::vector<ChunkData> computed,
      engine_->ComputeChunks(drill, to_fetch, query.non_group_by,
                             &stats->prefetch_work));
  for (ChunkData& data : computed) {
    cache::CachedChunk entry;
    entry.group_by_id = drill_id;
    entry.chunk_num = data.chunk_num;
    entry.filter_hash = filter_hash;
    entry.benefit = drill_benefit;
    entry.rows = std::move(data.rows);
    cache_.Insert(std::move(entry));
    ++stats->prefetched_chunks;
  }
  return Status::OK();
}

}  // namespace chunkcache::core
