#include "core/chunk_cache_manager.h"

#include <algorithm>
#include <chrono>

#include "backend/aggregator.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/simd.h"

namespace chunkcache::core {

using backend::ChunkData;
using backend::NonGroupByPredicate;
using backend::ResultRow;
using backend::StarJoinQuery;
using cache::ChunkKey;
using chunks::ChunkBox;
using chunks::ChunkCoords;
using chunks::GroupBySpec;
using storage::AggTuple;

/// WAL event sink: translates cache admissions/evictions into persistence
/// records. The cache invokes it outside every shard lock (CacheEventSink
/// contract), so WAL appends — and the occasional inline auto-snapshot —
/// never extend shard hold times.
class ChunkCacheManager::PersistSink final : public cache::CacheEventSink {
 public:
  explicit PersistSink(ChunkCacheManager* mgr) : mgr_(mgr) {}

  void OnAdmit(
      const std::shared_ptr<const cache::CachedChunk>& entry) override {
    mgr_->persist_->LogAdmit(mgr_->ToPersisted(*entry));
    mgr_->MaybeAutoSnapshot();
  }

  void OnEvict(const cache::ChunkKey& key) override {
    mgr_->persist_->LogEvict(key.group_by_id, key.chunk_num,
                             key.filter_hash);
    mgr_->MaybeAutoSnapshot();
  }

 private:
  ChunkCacheManager* mgr_;
};

ChunkCacheManager::ChunkCacheManager(backend::BackendEngine* engine,
                                     ChunkManagerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      owned_metrics_(options_.metrics == nullptr
                         ? std::make_unique<MetricsRegistry>()
                         : nullptr),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : owned_metrics_.get()),
      cache_(options_.cache_bytes, options_.policy,
             std::max<uint32_t>(1, options_.cache_shards), metrics_) {
  if (options_.num_workers > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  }
  if (options_.enable_miss_coalescing) {
    backend::ScanSchedulerOptions sopts;
    sopts.max_outstanding_scans =
        options_.scan_max_outstanding != 0
            ? options_.scan_max_outstanding
            : std::max<uint32_t>(2, options_.num_workers);
    sopts.max_queue_depth = options_.scan_max_queue_depth;
    scheduler_ =
        std::make_unique<backend::ScanScheduler>(engine_, sopts, metrics_);
  }
  if (options_.trace_capacity > 0) {
    trace_ = std::make_unique<TraceRecorder>(options_.trace_capacity);
  }
  if (options_.enable_compression && options_.decoded_cache_bytes > 0) {
    decoded_ = std::make_unique<cache::DecodedCache>(
        options_.decoded_cache_bytes, metrics_);
  }
  CHUNKCACHE_CHECK_MSG(options_.benefit_source == "static" ||
                           options_.benefit_source == "measured",
                       "benefit_source must be \"static\" or \"measured\"");
  measured_benefit_ = options_.benefit_source == "measured";
  benefit_ewma_.assign(engine_->scheme().NumGroupByIds(), 0.0);
  benefit_seen_.assign(engine_->scheme().NumGroupByIds(), 0);
  if (!options_.ghost_policies.empty()) {
    cache_.EnableGhostPolicies(options_.ghost_policies,
                               options_.ghost_record_trace);
  }
  queries_ = metrics_->GetCounter("query.executions");
  query_errors_ = metrics_->GetCounter("query.errors");
  chunks_requested_ = metrics_->GetCounter("chunks.requested");
  from_cache_ = metrics_->GetCounter("chunks.from_cache");
  from_aggregation_ = metrics_->GetCounter("chunks.from_aggregation");
  from_backend_ = metrics_->GetCounter("chunks.from_backend");
  coalesced_waits_ = metrics_->GetCounter("chunks.coalesced_waits");
  degraded_answers_ = metrics_->GetCounter("chunks.degraded_answers");
  retries_ = metrics_->GetCounter("backend.retries");
  deadline_expired_ = metrics_->GetCounter("query.deadline_expired");
  async_prefetched_ = metrics_->GetCounter("prefetch.async_chunks");
  prefetch_dropped_ = metrics_->GetCounter("prefetch.dropped_inflight");
  query_latency_ns_ = metrics_->GetHistogram("query.latency_ns");
  compressed_chunks_ = metrics_->GetCounter("cache.compressed_chunks");
  compression_skipped_ = metrics_->GetCounter("cache.compression_skipped");
  codec_raw_bytes_ = metrics_->GetCounter("cache.codec_raw_bytes");
  codec_encoded_bytes_ = metrics_->GetCounter("cache.codec_encoded_bytes");
  decode_calls_ = metrics_->GetCounter("cache.decode_calls");
  recompute_ns_ = metrics_->GetHistogram("benefit.recompute_ns");
  for (size_t c = 0; c < storage::codec::kNumCodecs; ++c) {
    const std::string base =
        std::string("cache.codec.") +
        storage::codec::CodecName(static_cast<storage::codec::ColumnCodec>(c));
    codec_col_raw_[c] = metrics_->GetCounter(base + ".raw_bytes");
    codec_col_encoded_[c] = metrics_->GetCounter(base + ".encoded_bytes");
    codec_col_columns_[c] = metrics_->GetCounter(base + ".columns");
  }
  encode_ns_ = metrics_->GetHistogram("codec.encode_ns");
  decode_ns_ = metrics_->GetHistogram("codec.decode_ns");
  // The buffer pool times its physical I/O into this registry
  // ("disk.read_ns"/"disk.write_ns"). Latest-binding-wins; the destructor
  // unbinds only its own binding, so stacked tiers sharing one engine
  // behave sanely.
  engine_->pool().BindMetrics(metrics_);
  RecoverPersistedCache();
}

ChunkCacheManager::~ChunkCacheManager() {
  DrainPrefetch();
  if (persist_ != nullptr) {
    // Detach the sink first so no straggler event reaches a dying WAL
    // writer, then leave a final snapshot (skipped after SimulateCrash —
    // a killed process writes nothing on the way down).
    cache_.SetEventSink(nullptr);
    if (options_.persist_snapshot_on_shutdown && !persist_->crashed()) {
      (void)SnapshotNow(/*only_if_idle=*/false);
    }
    persist_.reset();
  }
  engine_->pool().UnbindMetrics(metrics_);
}

void ChunkCacheManager::RecoverPersistedCache() {
  if (options_.persist_dir.empty()) return;
  storage::PersistOptions popts;
  popts.dir = options_.persist_dir;
  popts.wal_fsync_every = options_.persist_wal_fsync_every;
  auto opened = storage::CachePersistence::Open(std::move(popts), metrics_);
  CHUNKCACHE_CHECK_MSG(opened.ok(), "persist_dir is unusable");
  persist_ = std::move(*opened);
  storage::RecoveryStats rec = persist_->TakeRecovery();
  // Re-admit every recovered entry through the normal Insert path so the
  // byte budget, replacement policy and shard accounting all see it. Each
  // blob is decode-verified (its CRC32C trailer) before anything can be
  // served from it; a failed decode quarantines the entry — dropped and
  // counted, recomputed on first use — never a construction failure.
  for (storage::PersistedChunk& pc : rec.entries) {
    auto decoded =
        storage::codec::DecodeAggColumns(pc.blob.data(), pc.blob.size());
    if (!decoded.ok()) {
      persist_->CountQuarantined();
      rec.quarantined++;
      continue;
    }
    auto entry = std::make_shared<cache::CachedChunk>();
    entry->group_by_id = pc.group_by_id;
    entry->chunk_num = pc.chunk_num;
    entry->filter_hash = pc.filter_hash;
    entry->benefit = pc.benefit;
    if (options_.enable_compression && pc.blob.size() < pc.raw_bytes) {
      // Compressed tier: keep the codec blob verbatim (same bytes PR 6
      // admitted), charging encoded size as usual.
      entry->encoded_rows = static_cast<uint32_t>(decoded->size());
      entry->raw_bytes = pc.raw_bytes;
      entry->cols = storage::AggColumns(decoded->num_dims());
      entry->encoded = std::move(pc.blob);
    } else {
      entry->cols = std::move(*decoded);
    }
    cache_.Insert(std::move(entry));
  }
  rec.entries.clear();
  {
    std::lock_guard<std::mutex> lock(benefit_mu_);
    for (const auto& [gb, v] : rec.benefit_ewma) {
      if (gb < benefit_ewma_.size()) {
        benefit_ewma_[gb] = v;
        benefit_seen_[gb] = 1;
      }
    }
  }
  recovery_info_ = std::move(rec);
  // Only now start logging: the recovered admissions above are already
  // durable, re-logging them would just bloat the fresh WAL generation.
  persist_sink_ = std::make_unique<PersistSink>(this);
  cache_.SetEventSink(persist_sink_.get());
}

storage::PersistedChunk ChunkCacheManager::ToPersisted(
    const cache::CachedChunk& entry) const {
  storage::PersistedChunk out;
  out.group_by_id = entry.group_by_id;
  out.chunk_num = entry.chunk_num;
  out.filter_hash = entry.filter_hash;
  out.benefit = entry.benefit;
  out.rows = static_cast<uint32_t>(entry.rows());
  if (entry.compressed()) {
    out.blob = entry.encoded;
    out.raw_bytes = entry.raw_bytes;
  } else {
    out.raw_bytes = storage::codec::RawPayloadBytes(entry.cols);
    storage::codec::EncodeAggColumns(entry.cols, &out.blob);
  }
  return out;
}

Status ChunkCacheManager::PersistSnapshot() {
  return SnapshotNow(/*only_if_idle=*/false);
}

void ChunkCacheManager::MaybeAutoSnapshot() {
  if (persist_ == nullptr || options_.persist_snapshot_every == 0) return;
  if (persist_->wal_records_since_snapshot() <
      options_.persist_snapshot_every) {
    return;
  }
  (void)SnapshotNow(/*only_if_idle=*/true);
}

Status ChunkCacheManager::SnapshotNow(bool only_if_idle) {
  if (persist_ == nullptr) return Status::OK();
  return persist_->WriteSnapshot(
      [this](std::vector<storage::PersistedChunk>* out) {
        cache_.ForEachEntry([this, out](const cache::ChunkHandle& h) {
          out->push_back(ToPersisted(*h));
        });
      },
      [this](std::vector<std::pair<uint32_t, double>>* out) {
        std::lock_guard<std::mutex> lock(benefit_mu_);
        for (uint32_t gb = 0; gb < benefit_ewma_.size(); ++gb) {
          if (benefit_seen_[gb] != 0) {
            out->emplace_back(gb, benefit_ewma_[gb]);
          }
        }
      },
      only_if_idle);
}

void ChunkCacheManager::DrainPrefetch() { prefetch_wg_.Wait(); }

cache::ChunkCacheStats ChunkCacheManager::StatsSnapshot() const {
  // Fold natively-atomic subsystem stores (executor, kernels, in-flight
  // table, fault injector, disk CRC) into registry gauges, then build the
  // whole struct from one registry snapshot — a single source of truth for
  // `.stats`, `.metrics` and this accessor.
  if (pool_ != nullptr) {
    const ThreadPoolStats es = pool_->stats();
    metrics_->GetGauge("exec.tasks_submitted")
        ->Set(static_cast<int64_t>(es.tasks_submitted));
    metrics_->GetGauge("exec.tasks_run")
        ->Set(static_cast<int64_t>(es.tasks_run));
    metrics_->GetGauge("exec.queue_peak")
        ->Set(static_cast<int64_t>(es.queue_peak));
    metrics_->GetGauge("exec.steal_queue_depth")
        ->Set(static_cast<int64_t>(es.steal_queue_depth));
  }
  const backend::AggKernelStats ks = engine_->kernel_stats();
  metrics_->GetGauge("kernels.dense")
      ->Set(static_cast<int64_t>(ks.dense_kernels));
  metrics_->GetGauge("kernels.hash")
      ->Set(static_cast<int64_t>(ks.hash_kernels));
  metrics_->GetGauge("kernels.rows_folded_dense")
      ->Set(static_cast<int64_t>(ks.rows_folded_dense));
  metrics_->GetGauge("kernels.rows_folded_hash")
      ->Set(static_cast<int64_t>(ks.rows_folded_hash));
  metrics_->GetGauge("kernels.coalesced_reads")
      ->Set(static_cast<int64_t>(ks.coalesced_reads));
  metrics_->GetGauge("kernels.single_run_reads")
      ->Set(static_cast<int64_t>(ks.single_run_reads));
  metrics_->GetGauge("kernels.runs_merged")
      ->Set(static_cast<int64_t>(ks.runs_merged));
  metrics_->GetGauge("inflight.peak")
      ->Set(static_cast<int64_t>(inflight_.peak()));
  // Decoded-LRU stats need no folding here: DecodedCache homes its own
  // hit/eviction counters and byte gauge on this registry directly.
  metrics_->GetGauge("faults.injected")
      ->Set(static_cast<int64_t>(FaultInjector::Global().faults_injected()));
  metrics_->GetGauge("disk.checksum_failures")
      ->Set(static_cast<int64_t>(
          engine_->pool().disk()->stats().checksum_failures));
  metrics_->GetGauge("disk.write_errors")
      ->Set(static_cast<int64_t>(
          engine_->pool().disk()->stats().write_errors));
  if (persist_ != nullptr) {
    metrics_->GetGauge("persist.recovery_ns")
        ->Set(static_cast<int64_t>(recovery_info_.recovery_ns));
  }
  // Active SIMD dispatch level (0 = scalar, 1 = avx2), so exported metrics
  // record which kernel family produced this process's numbers.
  metrics_->GetGauge("simd.level")
      ->Set(static_cast<int64_t>(simd::ActiveLevel()));

  cache::ChunkCacheStats s = cache_.stats();  // registry-backed already
  const MetricsRegistry::Snapshot snap = metrics_->TakeSnapshot();
  s.exec_tasks_submitted =
      static_cast<uint64_t>(snap.gauge("exec.tasks_submitted"));
  s.exec_tasks_run = static_cast<uint64_t>(snap.gauge("exec.tasks_run"));
  s.exec_queue_peak = static_cast<uint64_t>(snap.gauge("exec.queue_peak"));
  s.exec_steal_queue_depth =
      static_cast<uint64_t>(snap.gauge("exec.steal_queue_depth"));
  s.async_prefetched_chunks = snap.counter("prefetch.async_chunks");
  s.dense_kernels = static_cast<uint64_t>(snap.gauge("kernels.dense"));
  s.hash_kernels = static_cast<uint64_t>(snap.gauge("kernels.hash"));
  s.rows_folded_dense =
      static_cast<uint64_t>(snap.gauge("kernels.rows_folded_dense"));
  s.rows_folded_hash =
      static_cast<uint64_t>(snap.gauge("kernels.rows_folded_hash"));
  s.coalesced_reads =
      static_cast<uint64_t>(snap.gauge("kernels.coalesced_reads"));
  s.single_run_reads =
      static_cast<uint64_t>(snap.gauge("kernels.single_run_reads"));
  s.runs_merged = static_cast<uint64_t>(snap.gauge("kernels.runs_merged"));
  s.coalesced_waits = snap.counter("chunks.coalesced_waits");
  s.prefetch_dropped_inflight = snap.counter("prefetch.dropped_inflight");
  s.dedup_saved_chunks = s.coalesced_waits + s.prefetch_dropped_inflight;
  s.inflight_peak = static_cast<uint64_t>(snap.gauge("inflight.peak"));
  s.shared_scan_batches = snap.counter("scheduler.batches");
  s.shared_scan_requests = snap.counter("scheduler.requests");
  s.scan_queue_depth_hwm =
      static_cast<uint64_t>(snap.gauge("scheduler.queue_depth_hwm"));
  s.scan_deadline_sheds = snap.counter("scheduler.deadline_sheds");
  s.faults_injected = static_cast<uint64_t>(snap.gauge("faults.injected"));
  s.retries = snap.counter("backend.retries");
  s.degraded_answers = snap.counter("chunks.degraded_answers");
  s.deadline_expired = snap.counter("query.deadline_expired");
  s.checksum_failures =
      static_cast<uint64_t>(snap.gauge("disk.checksum_failures"));
  s.compressed_chunks = snap.counter("cache.compressed_chunks");
  s.compression_skipped = snap.counter("cache.compression_skipped");
  s.codec_raw_bytes = snap.counter("cache.codec_raw_bytes");
  s.codec_encoded_bytes = snap.counter("cache.codec_encoded_bytes");
  s.decode_calls = snap.counter("cache.decode_calls");
  s.decoded_lru_hits = snap.counter("cache.decoded_lru_hits");
  s.decoded_lru_evictions = snap.counter("cache.decoded_lru_evictions");
  s.simd_level = static_cast<uint64_t>(snap.gauge("simd.level"));
  s.persist_wal_records = snap.counter("persist.wal_records");
  s.persist_wal_bytes = snap.counter("persist.wal_bytes");
  s.persist_wal_errors = snap.counter("persist.wal_errors");
  s.persist_snapshots = snap.counter("persist.snapshots");
  s.persist_snapshot_bytes = snap.counter("persist.snapshot_bytes");
  s.persist_snapshot_errors = snap.counter("persist.snapshot_errors");
  s.persist_recovered_entries = snap.counter("persist.recovered_entries");
  s.persist_replayed_records = snap.counter("persist.replayed_records");
  s.persist_truncated_bytes = snap.counter("persist.truncated_bytes");
  s.persist_quarantined = snap.counter("persist.quarantined");
  s.persist_recovery_ns =
      static_cast<uint64_t>(snap.gauge("persist.recovery_ns"));
  s.disk_write_errors = static_cast<uint64_t>(snap.gauge("disk.write_errors"));
  return s;
}

void ChunkCacheManager::MaybeCompressEntry(cache::CachedChunk* entry) {
  namespace codec = storage::codec;
  if (!options_.enable_compression || entry->cols.empty()) return;
  const uint64_t raw = codec::RawPayloadBytes(entry->cols);
  std::vector<uint8_t> blob;
  codec::CodecStats cs;
  const auto t0 = std::chrono::steady_clock::now();
  codec::EncodeAggColumns(entry->cols, &blob, &cs);
  encode_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  codec_raw_bytes_->Add(raw);
  codec_encoded_bytes_->Add(blob.size());
  for (size_t c = 0; c < codec::kNumCodecs; ++c) {
    if (cs.columns[c] == 0) continue;
    codec_col_raw_[c]->Add(cs.raw_bytes[c]);
    codec_col_encoded_[c]->Add(cs.encoded_bytes[c]);
    codec_col_columns_[c]->Add(cs.columns[c]);
  }
  if (blob.size() >= raw) {
    // Encoding lost (already-random data): keep the raw columns, a decode
    // per hit would buy nothing.
    compression_skipped_->Increment();
    return;
  }
  blob.shrink_to_fit();
  const ChunkKey key{entry->group_by_id, entry->chunk_num,
                     entry->filter_hash};
  const uint32_t num_dims = entry->cols.num_dims();
  entry->encoded_rows = static_cast<uint32_t>(entry->cols.size());
  entry->raw_bytes = raw;
  entry->encoded = std::move(blob);
  if (decoded_ != nullptr) {
    // Seed the decoded front with the columns we already have: the query
    // that computed this chunk (and its coalesced waiters) re-reads them
    // without paying the first decode.
    auto dec =
        std::make_shared<storage::AggColumns>(std::move(entry->cols));
    decoded_->Put(key, std::move(dec));
  }
  entry->cols = storage::AggColumns(num_dims);  // release the raw columns
  compressed_chunks_->Increment();
}

std::shared_ptr<const storage::AggColumns> ChunkCacheManager::ResolveCols(
    const cache::ChunkHandle& h) {
  if (!h->compressed()) {
    // Aliasing share: the pinned handle keeps the columns alive, no copy.
    return std::shared_ptr<const storage::AggColumns>(h, &h->cols);
  }
  const ChunkKey key{h->group_by_id, h->chunk_num, h->filter_hash};
  if (decoded_ != nullptr) {
    if (auto hit = decoded_->Get(key)) return hit;  // counted by the cache
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto res =
      storage::codec::DecodeAggColumns(h->encoded.data(), h->encoded.size());
  decode_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  decode_calls_->Increment();
  // The blob was encoded by this process and CRC-validated on decode; a
  // failure here means in-memory corruption, not recoverable input.
  CHUNKCACHE_CHECK(res.ok());
  auto dec = std::make_shared<storage::AggColumns>(std::move(*res));
  if (decoded_ != nullptr) decoded_->Put(key, dec);
  return dec;
}

uint64_t ChunkCacheManager::FilterHash(
    const std::vector<NonGroupByPredicate>& preds) {
  if (preds.empty()) return 0;
  // Order-insensitive: combine per-predicate hashes commutatively.
  uint64_t acc = 0;
  for (const auto& p : preds) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : {static_cast<uint64_t>(p.dim),
                       static_cast<uint64_t>(p.level),
                       static_cast<uint64_t>(p.range.begin),
                       static_cast<uint64_t>(p.range.end)}) {
      h = (h ^ v) * 0x100000001b3ULL;
    }
    acc += h;  // commutative combine
  }
  return acc == 0 ? 1 : acc;  // reserve 0 for "no predicates"
}

Result<std::vector<ResultRow>> ChunkCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats) {
  ExecControl ctrl;
  if (options_.default_deadline_ms != 0) {
    ctrl.deadline = Deadline::AfterMs(options_.default_deadline_ms);
  }
  return Execute(query, stats, ctrl);
}

Result<std::vector<ResultRow>> ChunkCacheManager::Execute(
    const StarJoinQuery& query, QueryStats* stats, const ExecControl& ctrl) {
  CHUNKCACHE_CHECK(stats != nullptr);
  *stats = QueryStats();
  TraceBuilder trace(trace_.get(), "execute");
  const auto t0 = std::chrono::steady_clock::now();
  Result<std::vector<ResultRow>> out =
      ExecuteTraced(query, stats, ctrl, &trace);
  query_latency_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  queries_->Increment();
  // Robustness counters flush on every path out; chunk-provenance counters
  // only for successful queries, so chunks.requested always equals the sum
  // of the provenance counters once the tier quiesces.
  if (stats->retries != 0) retries_->Add(stats->retries);
  if (stats->deadline_expired != 0) {
    deadline_expired_->Add(stats->deadline_expired);
  }
  if (out.ok()) {
    chunks_requested_->Add(stats->chunks_needed);
    if (stats->chunks_from_cache != 0) {
      from_cache_->Add(stats->chunks_from_cache);
    }
    if (stats->chunks_from_aggregation != 0) {
      from_aggregation_->Add(stats->chunks_from_aggregation);
    }
    if (stats->chunks_from_backend != 0) {
      from_backend_->Add(stats->chunks_from_backend);
    }
    if (stats->coalesced_waits != 0) {
      coalesced_waits_->Add(stats->coalesced_waits);
    }
    if (stats->degraded_answers != 0) {
      degraded_answers_->Add(stats->degraded_answers);
    }
  } else {
    query_errors_->Increment();
  }
  if (trace.armed()) {
    const uint32_t root = trace.root();
    trace.Tag(root, "group_by", query.group_by.ToString());
    trace.Tag(root, "chunks_needed", stats->chunks_needed);
    trace.Tag(root, "status",
              out.ok() ? std::string("Ok")
                       : std::string(StatusCodeName(out.status().code())));
    if (stats->coalesced_waits != 0) {
      trace.Tag(root, "coalesced_waits", stats->coalesced_waits);
    }
    if (stats->degraded_answers != 0) {
      trace.Tag(root, "degraded_chunks", stats->degraded_answers);
    }
    trace.Finish();
  }
  return out;
}

Result<std::vector<ResultRow>> ChunkCacheManager::ExecuteTraced(
    const StarJoinQuery& query, QueryStats* stats, const ExecControl& ctrl,
    TraceBuilder* trace) {
  // Fail fast before claiming any in-flight slot: an already expired or
  // cancelled query must not become an owner other queries wait on.
  CHUNKCACHE_RETURN_IF_ERROR(ctrl.Check());
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  const uint32_t gb_id = scheme.GroupById(query.group_by);
  const uint64_t filter_hash = FilterHash(query.non_group_by);
  // Benefit carried by this query's inserts: the static |base|/#chunks
  // heuristic, or the measured recompute EWMA (benefit_source option).
  const double benefit =
      InsertBenefit(gb_id, scheme.ChunkBenefit(query.group_by));
  const bool coalesce = options_.enable_miss_coalescing;

  // 1. Query analysis: chunk numbers needed (Section 5.2.2).
  const uint32_t decompose_span = trace->BeginSpan("decompose", trace->root());
  const ChunkBox box = scheme.BoxForSelection(query.group_by, query.selection);
  const chunks::ChunkGrid& grid = scheme.GridFor(query.group_by);
  std::vector<uint64_t> needed;
  needed.reserve(box.NumChunks());
  box.ForEach(grid, [&](uint64_t num, const ChunkCoords&) {
    needed.push_back(num);
  });
  stats->chunks_needed = needed.size();
  stats->cost_estimate = static_cast<double>(needed.size()) * benefit;
  trace->Tag(decompose_span, "chunks", static_cast<uint64_t>(needed.size()));
  trace->EndSpan(decompose_span);

  // 2. Query splitting: CNumsPresent / CNumsMissing (Section 5.2.3). Hits
  // come back as pinned handles, so concurrent inserts or evictions by
  // other clients cannot invalidate them before assembly. With miss
  // coalescing, each miss is then claimed through the in-flight table:
  // this query either *owns* the chunk (it computes and publishes it) or
  // *waits* on whichever in-flight query already owns it.
  struct Miss {
    uint64_t chunk_num = 0;
    Inflight::SlotPtr slot;  // null when coalescing is off
  };
  const uint32_t probe_span = trace->BeginSpan("cache_probe", trace->root());
  std::vector<AggTuple> rows;
  std::vector<cache::ChunkHandle> cached;
  std::vector<Miss> owned;
  std::vector<Miss> waits;
  for (uint64_t num : needed) {
    cache::ChunkHandle hit = cache_.Lookup(gb_id, num, filter_hash);
    if (hit != nullptr) {
      cached.push_back(std::move(hit));
      ++stats->chunks_from_cache;
      continue;
    }
    if (!coalesce) {
      owned.push_back(Miss{num, nullptr});
      continue;
    }
    const ChunkKey key{gb_id, num, filter_hash};
    Inflight::Claim claim = inflight_.Acquire(key);
    if (!claim.owner) {
      waits.push_back(Miss{num, std::move(claim.slot)});
      continue;
    }
    // The previous owner may have published (insert + retire) between our
    // lookup miss and the claim; re-probe so an already cached chunk is
    // never recomputed. Contains first — the common no-race case stays a
    // statistics-free probe.
    cache::ChunkHandle raced;
    if (cache_.Contains(gb_id, num, filter_hash)) {
      raced = cache_.Lookup(gb_id, num, filter_hash);
    }
    if (raced != nullptr) {
      inflight_.Publish(key, claim.slot, raced);
      cached.push_back(std::move(raced));
      ++stats->chunks_from_cache;
    } else {
      owned.push_back(Miss{num, std::move(claim.slot)});
    }
  }
  trace->Tag(probe_span, "hits", stats->chunks_from_cache);
  trace->Tag(probe_span, "owned", static_cast<uint64_t>(owned.size()));
  trace->Tag(probe_span, "waits", static_cast<uint64_t>(waits.size()));
  trace->EndSpan(probe_span);

  // Every owned slot must be resolved exactly once on every path out of
  // this function; on error the slots fail, waking waiters with the error
  // and retiring the entries so a retry recomputes.
  auto fail_unresolved = [&](const Status& s) {
    for (Miss& om : owned) {
      if (om.slot != nullptr) {
        inflight_.Fail(ChunkKey{gb_id, om.chunk_num, filter_hash}, om.slot,
                       s);
        om.slot = nullptr;
      }
    }
  };

  // 3. Optional middle-tier aggregation of finer cached chunks (paper §7).
  // Runs only for chunks this query owns, so it can never duplicate a
  // computation already in flight elsewhere.
  if (options_.enable_in_cache_aggregation && !owned.empty()) {
    ScopedSpan agg_span(trace, "aggregate_in_cache", trace->root());
    std::vector<Miss> still_owned;
    for (Miss& om : owned) {
      auto aggregated =
          TryInCacheAggregation(query.group_by, om.chunk_num, filter_hash);
      if (aggregated) {
        auto entry = std::make_shared<cache::CachedChunk>();
        entry->group_by_id = gb_id;
        entry->chunk_num = om.chunk_num;
        entry->filter_hash = filter_hash;
        entry->benefit = benefit;
        entry->cols = std::move(*aggregated);
        entry->cols.AppendToRows(&rows);
        MaybeCompressEntry(entry.get());
        ++stats->chunks_from_aggregation;
        // Admit the derived chunk so the next query gets a direct hit;
        // publish the same allocation to any waiters.
        cache::ChunkHandle handle = entry;
        cache_.Insert(std::move(entry));
        if (om.slot != nullptr) {
          inflight_.Publish(ChunkKey{gb_id, om.chunk_num, filter_hash},
                            om.slot, std::move(handle));
        }
      } else {
        still_owned.push_back(std::move(om));
      }
    }
    owned = std::move(still_owned);
    trace->Tag(agg_span.id(), "chunks", stats->chunks_from_aggregation);
  }

  // 4. Compute the owned misses — through the shared-scan scheduler when
  // coalescing is on, so concurrent same-group-by miss batches merge into
  // one scan — overlapping cache-hit assembly with the backend work: a
  // pool task copies the pinned hit rows while this thread drives the
  // computation (which itself fans out across the same pool). Worker
  // tasks never block on other tasks, so the overlap cannot deadlock.
  std::vector<uint64_t> owned_nums;
  owned_nums.reserve(owned.size());
  for (const Miss& om : owned) owned_nums.push_back(om.chunk_num);

  // A full cache hit has no miss pipeline — and no span for it.
  const uint32_t miss_span =
      owned_nums.empty() ? TraceBuilder::kNoSpan
                         : trace->BeginSpan("miss_pipeline", trace->root());
  trace->Tag(miss_span, "chunks", static_cast<uint64_t>(owned_nums.size()));

  std::vector<AggTuple> hit_rows;
  const auto assemble_hits = [&] {
    size_t total = 0;
    for (const auto& h : cached) total += h->rows();
    hit_rows.reserve(total);
    for (const auto& h : cached) ResolveCols(h)->AppendToRows(&hit_rows);
  };
  const auto compute_once = [&]() -> Result<std::vector<ChunkData>> {
    if (scheduler_ != nullptr) {
      return scheduler_->Compute(query.group_by, owned_nums,
                                 query.non_group_by, &stats->backend_work,
                                 pool_.get(), &ctrl);
    }
    return engine_->ComputeChunks(query.group_by, owned_nums,
                                  query.non_group_by, &stats->backend_work,
                                  pool_.get(), &ctrl);
  };
  // Bounded retries with backoff: transient backend faults (injected or
  // real) re-attempt instead of failing the query and its waiters. Runs on
  // the calling thread in both branches below, so the span is safe.
  const auto compute_owned = [&]() -> Result<std::vector<ChunkData>> {
    ScopedSpan scan_span(trace, "scan_aggregate", miss_span);
    const auto rt0 = std::chrono::steady_clock::now();
    auto res =
        RunWithRetry(options_.retry, ctrl, &stats->retries, compute_once);
    if (res.ok() && !res->empty()) {
      // The whole retry loop is the honest cost of getting these chunks
      // back — that is exactly what a future eviction would re-pay.
      RecordRecompute(
          gb_id,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - rt0)
                  .count()),
          res->size());
    }
    return res;
  };
  Result<std::vector<ChunkData>> computed = std::vector<ChunkData>{};
  const bool overlap = pool_ != nullptr && !owned_nums.empty() &&
                       !cached.empty() && !ThreadPool::InWorkerThread();
  if (overlap) {
    WaitGroup wg;
    wg.Add(1);
    pool_->Submit([&] {
      assemble_hits();
      wg.Done();
    });
    computed = compute_owned();
    wg.Wait();
  } else {
    // Hit assembly on the query thread gets a decode span (compression
    // only; never in the overlap branch, where it runs on a pool worker —
    // spans stay on the query's own thread by design).
    const uint32_t decode_span =
        options_.enable_compression && !cached.empty()
            ? trace->BeginSpan("decode", trace->root())
            : TraceBuilder::kNoSpan;
    assemble_hits();
    if (decode_span != TraceBuilder::kNoSpan) {
      trace->Tag(decode_span, "chunks", static_cast<uint64_t>(cached.size()));
      trace->EndSpan(decode_span);
    }
    if (!owned_nums.empty()) computed = compute_owned();
  }
  bool answered_degraded = false;
  if (!computed.ok()) {
    if (computed.status().code() == StatusCode::kDeadlineExceeded) {
      stats->deadline_expired += owned.size();
    }
    // Degraded-mode answering (closure property): every chunk the backend
    // failed to deliver may still be assembled from cached chunks of a
    // strictly finer group-by. All-or-nothing — a partial assembly would
    // leave some owned slots unresolved with nothing to publish.
    std::vector<ChunkData> assembled;
    if (options_.enable_degraded_mode) {
      ScopedSpan degraded_span(trace, "degraded_rollup", miss_span);
      assembled.reserve(owned.size());
      for (const Miss& om : owned) {
        auto cols =
            TryInCacheAggregation(query.group_by, om.chunk_num, filter_hash);
        if (!cols) break;
        ChunkData data;
        data.chunk_num = om.chunk_num;
        data.cols = std::move(*cols);
        assembled.push_back(std::move(data));
      }
      trace->Tag(degraded_span.id(), "chunks",
                 static_cast<uint64_t>(assembled.size()));
    }
    if (assembled.size() == owned.size()) {
      stats->degraded_answers += owned.size();
      answered_degraded = true;
      computed = std::move(assembled);
    } else {
      fail_unresolved(computed.status());
      return computed.status();
    }
  }
  if (!answered_degraded) stats->chunks_from_backend = computed->size();
  const uint32_t encode_span =
      options_.enable_compression && !computed->empty()
          ? trace->BeginSpan("encode", miss_span)
          : TraceBuilder::kNoSpan;
  for (size_t i = 0; i < computed->size(); ++i) {
    ChunkData& data = (*computed)[i];
    auto entry = std::make_shared<cache::CachedChunk>();
    entry->group_by_id = gb_id;
    entry->chunk_num = data.chunk_num;
    entry->filter_hash = filter_hash;
    entry->benefit = benefit;
    entry->cols = std::move(data.cols);
    entry->cols.AppendToRows(&rows);
    MaybeCompressEntry(entry.get());
    cache::ChunkHandle handle = entry;
    cache_.Insert(std::move(entry));
    // Insert before Publish: a claimant that re-probes after the entry
    // retires must find the chunk in the cache.
    if (owned[i].slot != nullptr) {
      inflight_.Publish(ChunkKey{gb_id, data.chunk_num, filter_hash},
                        owned[i].slot, std::move(handle));
      owned[i].slot = nullptr;
    }
  }
  if (encode_span != TraceBuilder::kNoSpan) {
    trace->Tag(encode_span, "chunks", static_cast<uint64_t>(computed->size()));
    trace->EndSpan(encode_span);
  }
  if (miss_span != TraceBuilder::kNoSpan) {
    trace->Tag(miss_span, "provenance",
               answered_degraded ? "degraded" : "backend");
    if (stats->retries != 0) trace->Tag(miss_span, "retries", stats->retries);
    trace->EndSpan(miss_span);
  }
  rows.insert(rows.end(), std::make_move_iterator(hit_rows.begin()),
              std::make_move_iterator(hit_rows.end()));

  // 4b. Collect the chunks other in-flight queries computed for us. Every
  // chunk this query owned is already published, so blocking here cannot
  // deadlock even when two queries wait on each other's chunks. A wait
  // that fails — owner error, or this query's own deadline — falls back:
  // first re-probe the cache (a racing retry of the owner may have
  // published), then closure-property assembly, then give up.
  const uint32_t wait_span =
      waits.empty() ? TraceBuilder::kNoSpan
                    : trace->BeginSpan("wait_coalesced", trace->root());
  trace->Tag(wait_span, "chunks", static_cast<uint64_t>(waits.size()));
  for (const Miss& wm : waits) {
    Result<cache::ChunkHandle> res = wm.slot->WaitUntil(ctrl.deadline);
    if (res.ok()) {
      ResolveCols(*res)->AppendToRows(&rows);
      ++stats->coalesced_waits;
      continue;
    }
    if (res.status().code() == StatusCode::kDeadlineExceeded) {
      ++stats->deadline_expired;
    }
    cache::ChunkHandle raced = cache_.Lookup(gb_id, wm.chunk_num, filter_hash);
    if (raced != nullptr) {
      ResolveCols(raced)->AppendToRows(&rows);
      ++stats->chunks_from_cache;
      continue;
    }
    if (options_.enable_degraded_mode) {
      auto cols =
          TryInCacheAggregation(query.group_by, wm.chunk_num, filter_hash);
      if (cols) {
        // Not the owner of this key, so no slot to publish — just admit
        // the assembled chunk for future queries and use its rows.
        auto entry = std::make_shared<cache::CachedChunk>();
        entry->group_by_id = gb_id;
        entry->chunk_num = wm.chunk_num;
        entry->filter_hash = filter_hash;
        entry->benefit = benefit;
        entry->cols = std::move(*cols);
        entry->cols.AppendToRows(&rows);
        MaybeCompressEntry(entry.get());
        ++stats->degraded_answers;
        cache_.Insert(std::move(entry));
        continue;
      }
    }
    return res.status();
  }
  trace->EndSpan(wait_span);

  // 5. Post-processing: trim boundary extras, canonical order.
  const uint32_t rollup_span = trace->BeginSpan("rollup", trace->root());
  rows = backend::FilterRows(std::move(rows), query.group_by.num_dims,
                             query.selection);
  backend::SortRows(&rows, query.group_by.num_dims);
  trace->Tag(rollup_span, "rows", static_cast<uint64_t>(rows.size()));
  trace->EndSpan(rollup_span);

  stats->full_cache_hit = owned_nums.empty() && waits.empty() &&
                          stats->chunks_from_backend == 0;
  // Degraded answers count as saved: they were served entirely from
  // cached (finer) content, the backend contributed nothing.
  stats->saved_fraction =
      stats->chunks_needed == 0
          ? 0.0
          : static_cast<double>(stats->chunks_from_cache +
                                stats->chunks_from_aggregation +
                                stats->coalesced_waits +
                                stats->degraded_answers) /
                static_cast<double>(stats->chunks_needed);
  stats->modeled_ms = options_.cost_model.Cost(
      stats->backend_work.pages_read, stats->backend_work.pages_written,
      stats->backend_work.tuples_processed);

  // 6. Optional drill-down prefetch (paper §7). With an executor, fire and
  // forget: the task computes and admits the child chunks in the
  // background and is only observable through DrainPrefetch and the
  // async_prefetched_chunks counter. Serially, run inline and charge
  // stats->prefetch_work as before. Either way the fetches go through the
  // in-flight table, so background work never duplicates foreground work.
  if (options_.enable_drill_down_prefetch) {
    ScopedSpan prefetch_span(trace, "prefetch", trace->root());
    CHUNKCACHE_ASSIGN_OR_RETURN(std::optional<PrefetchPlan> plan,
                                PlanDrillDown(query, needed, filter_hash));
    if (plan) {
      if (pool_ != nullptr && !ThreadPool::InWorkerThread()) {
        // Fire-and-forget: only the plan is attributed to this query's
        // trace; the fetch itself runs on the pool (spans stay on the
        // query's own thread by design).
        trace->Tag(prefetch_span.id(), "mode", "async");
        trace->Tag(prefetch_span.id(), "planned",
                   static_cast<uint64_t>(plan->to_fetch.size()));
        prefetch_wg_.Add(1);
        pool_->Submit([this, plan = std::move(*plan),
                       preds = query.non_group_by, filter_hash] {
          // Errors are dropped — prefetch is best-effort (RunPrefetch has
          // already failed the owned slots by the time it reports).
          WorkCounters work;
          auto fetched = RunPrefetch(plan, preds, filter_hash, &work);
          if (fetched.ok()) async_prefetched_->Add(*fetched);
          prefetch_wg_.Done();
        });
      } else {
        trace->Tag(prefetch_span.id(), "mode", "inline");
        CHUNKCACHE_ASSIGN_OR_RETURN(
            uint64_t fetched,
            RunPrefetch(*plan, query.non_group_by, filter_hash,
                        &stats->prefetch_work));
        stats->prefetched_chunks += fetched;
        trace->Tag(prefetch_span.id(), "chunks", fetched);
      }
    }
  }
  return rows;
}

std::optional<storage::AggColumns> ChunkCacheManager::TryInCacheAggregation(
    const GroupBySpec& target, uint64_t chunk_num, uint64_t filter_hash) {
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  // Candidate source group-bys: any strictly finer group-by that has
  // cached chunks at all. The per-group-by counters make the scan cheap.
  for (uint32_t id = 0; id < scheme.NumGroupByIds(); ++id) {
    if (cache_.CountForGroupBy(id) == 0) continue;
    const GroupBySpec src = scheme.SpecOfId(id);
    if (src == target || !target.CoarserOrEqual(src)) continue;
    auto box = scheme.SourceBox(target, chunk_num, src);
    if (!box.ok()) continue;
    // Pin every source chunk up front; a missing one (or one evicted by a
    // concurrent client since the counter was read) aborts this source.
    std::vector<cache::ChunkHandle> sources;
    bool all_present = true;
    const chunks::ChunkGrid& src_grid = scheme.GridFor(src);
    box->ForEach(src_grid, [&](uint64_t src_num, const ChunkCoords&) {
      if (!all_present) return;
      cache::ChunkHandle h = cache_.Lookup(id, src_num, filter_hash);
      if (h == nullptr) {
        all_present = false;
        return;
      }
      sources.push_back(std::move(h));
    });
    if (!all_present) continue;
    // Aggregate the pinned chunks through the per-chunk kernel dispatch
    // (dense grid when the target chunk's cell box is small enough).
    backend::ChunkAggregator agg(&scheme, target, chunk_num,
                                 engine_->options().dense_cell_limit,
                                 engine_->kernel_counters());
    for (const cache::ChunkHandle& chunk : sources) {
      agg.AddAggColumns(*ResolveCols(chunk), src);
    }
    return agg.TakeColumns();  // already canonical order
  }
  return std::nullopt;
}

Result<std::optional<ChunkCacheManager::PrefetchPlan>>
ChunkCacheManager::PlanDrillDown(const StarJoinQuery& query,
                                 const std::vector<uint64_t>& chunk_nums,
                                 uint64_t filter_hash) {
  const chunks::ChunkingScheme& scheme = engine_->scheme();
  // Drill-down target: every grouped dimension one level finer.
  PrefetchPlan plan;
  plan.drill = query.group_by;
  bool changed = false;
  for (uint32_t d = 0; d < plan.drill.num_dims; ++d) {
    const auto& h = scheme.schema().dimension(d).hierarchy;
    if (plan.drill.levels[d] < h.depth()) {
      plan.drill.levels[d]++;
      changed = true;
    }
  }
  if (!changed) return std::optional<PrefetchPlan>();  // at base everywhere
  plan.drill_id = scheme.GroupById(plan.drill);
  plan.benefit = scheme.ChunkBenefit(plan.drill);
  const chunks::ChunkGrid& drill_grid = scheme.GridFor(plan.drill);

  for (uint64_t num : chunk_nums) {
    if (plan.to_fetch.size() >= options_.prefetch_budget_chunks) break;
    auto box = scheme.SourceBox(query.group_by, num, plan.drill);
    if (!box.ok()) return box.status();
    box->ForEach(drill_grid, [&](uint64_t child, const ChunkCoords&) {
      if (plan.to_fetch.size() >= options_.prefetch_budget_chunks) return;
      if (cache_.Contains(plan.drill_id, child, filter_hash)) return;
      // A chunk some in-flight query is already computing would be a
      // duplicate by the time we fetched it — drop it now.
      if (options_.enable_miss_coalescing &&
          inflight_.Pending(ChunkKey{plan.drill_id, child, filter_hash})) {
        prefetch_dropped_->Increment();
        return;
      }
      plan.to_fetch.push_back(child);
    });
  }
  if (plan.to_fetch.empty()) return std::optional<PrefetchPlan>();
  return std::optional<PrefetchPlan>(std::move(plan));
}

void ChunkCacheManager::RecordRecompute(uint32_t gb_id, uint64_t total_ns,
                                        size_t chunks) {
  if (chunks == 0) return;
  const uint64_t per_chunk_ns = total_ns / chunks;
  recompute_ns_->Record(per_chunk_ns);
  if (!measured_benefit_) return;
  constexpr double kAlpha = 0.25;  // EWMA smoothing
  double updated;
  {
    std::lock_guard<std::mutex> lock(benefit_mu_);
    if (gb_id >= benefit_ewma_.size()) return;
    const double sample = static_cast<double>(per_chunk_ns);
    if (benefit_seen_[gb_id] == 0) {
      benefit_ewma_[gb_id] = sample;
      benefit_seen_[gb_id] = 1;
    } else {
      benefit_ewma_[gb_id] += kAlpha * (sample - benefit_ewma_[gb_id]);
    }
    updated = benefit_ewma_[gb_id];
  }
  // WAL the cost model too (outside benefit_mu_): a warm restart resumes
  // with the learned recompute costs instead of relearning from scratch.
  if (persist_ != nullptr) {
    persist_->LogBenefit(gb_id, updated);
    MaybeAutoSnapshot();
  }
}

double ChunkCacheManager::InsertBenefit(uint32_t gb_id,
                                        double static_benefit) const {
  if (!measured_benefit_) return static_benefit;
  std::lock_guard<std::mutex> lock(benefit_mu_);
  if (gb_id < benefit_ewma_.size() && benefit_seen_[gb_id] != 0) {
    return benefit_ewma_[gb_id];
  }
  // No measurement yet for this class — fall back to the heuristic so the
  // very first inserts still carry a sane relative weight.
  return static_benefit;
}

Result<uint64_t> ChunkCacheManager::RunPrefetch(
    const PrefetchPlan& plan, const std::vector<NonGroupByPredicate>& preds,
    uint64_t filter_hash, WorkCounters* work) {
  const bool coalesce = options_.enable_miss_coalescing;
  // Claim each chunk; whatever is already owned elsewhere is dropped —
  // prefetch is best-effort, so it never blocks on foreground work.
  std::vector<uint64_t> to_fetch;
  std::vector<Inflight::SlotPtr> slots;
  to_fetch.reserve(plan.to_fetch.size());
  slots.reserve(plan.to_fetch.size());
  for (uint64_t num : plan.to_fetch) {
    if (!coalesce) {
      to_fetch.push_back(num);
      slots.push_back(nullptr);
      continue;
    }
    const ChunkKey key{plan.drill_id, num, filter_hash};
    Inflight::Claim claim = inflight_.Acquire(key);
    if (!claim.owner) {
      prefetch_dropped_->Increment();
      continue;
    }
    // Published-and-retired since the plan was made? Hand waiters the
    // cached handle instead of recomputing.
    if (cache_.Contains(plan.drill_id, num, filter_hash)) {
      cache::ChunkHandle hit = cache_.Lookup(plan.drill_id, num, filter_hash);
      if (hit != nullptr) {
        inflight_.Publish(key, claim.slot, std::move(hit));
        prefetch_dropped_->Increment();
        continue;
      }
    }
    to_fetch.push_back(num);
    slots.push_back(std::move(claim.slot));
  }
  if (to_fetch.empty()) return 0;

  auto fail_all = [&](const Status& s) {
    for (size_t i = 0; i < to_fetch.size(); ++i) {
      if (slots[i] != nullptr) {
        inflight_.Fail(ChunkKey{plan.drill_id, to_fetch[i], filter_hash},
                       slots[i], s);
      }
    }
  };
  // Serial inside the worker (nested fan-out would tie up the pool).
  const auto rt0 = std::chrono::steady_clock::now();
  auto computed = engine_->ComputeChunks(plan.drill, to_fetch, preds, work);
  if (!computed.ok()) {
    fail_all(computed.status());
    return computed.status();
  }
  if (!computed->empty()) {
    RecordRecompute(plan.drill_id,
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - rt0)
                            .count()),
                    computed->size());
  }
  const double insert_benefit = InsertBenefit(plan.drill_id, plan.benefit);
  for (size_t i = 0; i < computed->size(); ++i) {
    ChunkData& data = (*computed)[i];
    auto entry = std::make_shared<cache::CachedChunk>();
    entry->group_by_id = plan.drill_id;
    entry->chunk_num = data.chunk_num;
    entry->filter_hash = filter_hash;
    entry->benefit = insert_benefit;
    entry->cols = std::move(data.cols);
    MaybeCompressEntry(entry.get());
    cache::ChunkHandle handle = entry;
    cache_.Insert(std::move(entry));
    if (slots[i] != nullptr) {
      inflight_.Publish(ChunkKey{plan.drill_id, data.chunk_num, filter_hash},
                        slots[i], std::move(handle));
    }
  }
  return computed->size();
}

}  // namespace chunkcache::core
