#include "index/btree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace chunkcache::index {

using storage::Page;
using storage::PageGuard;

// ---------------------------------------------------------------------------
// Node accessors.
//
// Layout within a 4 KiB page:
//   [0,16)  NodeHeader
//   leaf:     keys[kLeafCapacity] at 16, payloads[kLeafCapacity] after keys
//   internal: keys[kInternalCapacity] at 16, children[kInternalCapacity+1]
//             after keys
//
// Routing convention (upper_bound): in an internal node, children[j] covers
// keys k with keys[j-1] <= k < keys[j] (keys[-1] = -inf, keys[count] = +inf).
// ---------------------------------------------------------------------------

BTree::NodeHeader* BTree::Header(Page* p) { return p->As<NodeHeader>(); }
uint64_t* BTree::Keys(Page* p) { return p->As<uint64_t>(kHeaderSize); }
BTreePayload* BTree::Payloads(Page* p) {
  return p->As<BTreePayload>(kHeaderSize + kLeafCapacity * 8);
}
uint32_t* BTree::Children(Page* p) {
  return p->As<uint32_t>(kHeaderSize + kInternalCapacity * 8);
}

namespace {

uint32_t MinLeafKeys() { return 2; }
uint32_t MinInternalKeys() { return 2; }

}  // namespace

// Fill-factor note: we rebalance below a small constant rather than
// capacity/2. The chunk index is bulk-loaded and rarely shrinks, so
// aggressive merging buys nothing; the invariant checker enforces the
// weaker bound.

Result<BTree> BTree::Create(storage::BufferPool* pool) {
  const uint32_t file_id = pool->disk()->CreateFile();
  BTree t(pool, file_id);
  // Page 0: meta.
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard meta, pool->Allocate(file_id));
  // Page 1: empty leaf root.
  CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t root, t.NewNode(/*leaf=*/true));
  t.root_page_ = root;
  t.height_ = 1;
  auto* m = meta.page()->As<MetaPage>();
  m->magic = kMagic;
  m->root_page = t.root_page_;
  m->height = t.height_;
  m->size = 0;
  meta.MarkDirty();
  return t;
}

Result<BTree> BTree::Open(storage::BufferPool* pool, uint32_t file_id) {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard meta,
                              pool->Fetch(storage::PageId{file_id, 0}));
  const auto* m = meta.page()->As<MetaPage>();
  if (m->magic != kMagic) return Status::Corruption("BTree: bad magic");
  BTree t(pool, file_id);
  t.root_page_ = m->root_page;
  t.height_ = m->height;
  t.size_ = m->size;
  return t;
}

Status BTree::SyncMeta() {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(Pid(0)));
  auto* m = meta.page()->As<MetaPage>();
  m->root_page = root_page_;
  m->height = height_;
  m->size = size_;
  meta.MarkDirty();
  return Status::OK();
}

Result<uint32_t> BTree::NewNode(bool leaf) {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Allocate(file_id_));
  auto* h = Header(guard.page());
  h->is_leaf = leaf ? 1 : 0;
  h->count = 0;
  h->right_sibling = 0;
  guard.MarkDirty();
  return guard.id().page_no;
}

Status BTree::Insert(uint64_t key, BTreePayload value) {
  return InsertInternal(key, value, /*allow_replace=*/false);
}

Status BTree::Upsert(uint64_t key, BTreePayload value) {
  return InsertInternal(key, value, /*allow_replace=*/true);
}

// Preemptive-split insert: any full node on the root-to-leaf path is split
// before we descend into it, so an insertion into the leaf always has room
// and never needs to backtrack.
Status BTree::InsertInternal(uint64_t key, BTreePayload value,
                             bool allow_replace) {
  // Split a full root first (the only place the tree grows in height).
  {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard root, pool_->Fetch(Pid(root_page_)));
    auto* h = Header(root.page());
    const uint32_t cap = h->is_leaf ? kLeafCapacity : kInternalCapacity;
    if (h->count == cap) {
      CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t new_root_no,
                                  NewNode(/*leaf=*/false));
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard new_root,
                                  pool_->Fetch(Pid(new_root_no)));
      Header(new_root.page())->count = 0;
      Children(new_root.page())[0] = root_page_;
      new_root.MarkDirty();
      root.Release();
      const uint32_t old_root = root_page_;
      root_page_ = new_root_no;
      ++height_;
      CHUNKCACHE_RETURN_IF_ERROR(SplitChild(new_root_no, 0, old_root));
    }
  }

  uint32_t cur = root_page_;
  while (true) {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(cur)));
    auto* h = Header(node.page());
    uint64_t* keys = Keys(node.page());
    if (h->is_leaf) {
      uint64_t* end = keys + h->count;
      uint64_t* it = std::lower_bound(keys, end, key);
      const uint32_t pos = static_cast<uint32_t>(it - keys);
      if (it != end && *it == key) {
        if (!allow_replace) {
          return Status::AlreadyExists("BTree: duplicate key " +
                                       std::to_string(key));
        }
        Payloads(node.page())[pos] = value;
        node.MarkDirty();
        return Status::OK();
      }
      CHUNKCACHE_DCHECK(h->count < kLeafCapacity);
      BTreePayload* pays = Payloads(node.page());
      std::memmove(keys + pos + 1, keys + pos, (h->count - pos) * 8);
      std::memmove(pays + pos + 1, pays + pos,
                   (h->count - pos) * sizeof(BTreePayload));
      keys[pos] = key;
      pays[pos] = value;
      ++h->count;
      node.MarkDirty();
      ++size_;
      return Status::OK();
    }
    // Internal: choose branch, pre-splitting a full child.
    uint32_t idx = static_cast<uint32_t>(
        std::upper_bound(keys, keys + h->count, key) - keys);
    uint32_t child = Children(node.page())[idx];
    {
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard cg, pool_->Fetch(Pid(child)));
      auto* ch = Header(cg.page());
      const uint32_t cap = ch->is_leaf ? kLeafCapacity : kInternalCapacity;
      if (ch->count == cap) {
        cg.Release();
        node.Release();
        CHUNKCACHE_RETURN_IF_ERROR(SplitChild(cur, idx, child));
        continue;  // re-fetch `cur` and re-route around the new separator
      }
    }
    cur = child;
  }
}

// Splits the full node `child_no` (= Children(parent)[idx]); the parent must
// have room for one more separator.
Status BTree::SplitChild(uint32_t parent_no, uint32_t idx, uint32_t child_no) {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard parent, pool_->Fetch(Pid(parent_no)));
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard child, pool_->Fetch(Pid(child_no)));
  auto* ph = Header(parent.page());
  auto* ch = Header(child.page());
  CHUNKCACHE_DCHECK(ph->is_leaf == 0);
  CHUNKCACHE_DCHECK(ph->count < kInternalCapacity);

  CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t right_no, NewNode(ch->is_leaf != 0));
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard right, pool_->Fetch(Pid(right_no)));
  auto* rh = Header(right.page());

  uint64_t separator;
  if (ch->is_leaf) {
    const uint32_t mid = ch->count / 2;
    const uint32_t right_count = ch->count - mid;
    std::memcpy(Keys(right.page()), Keys(child.page()) + mid, right_count * 8);
    std::memcpy(Payloads(right.page()), Payloads(child.page()) + mid,
                right_count * sizeof(BTreePayload));
    rh->count = right_count;
    ch->count = mid;
    rh->right_sibling = ch->right_sibling;
    ch->right_sibling = right_no;
    separator = Keys(right.page())[0];
  } else {
    const uint32_t mid = ch->count / 2;
    separator = Keys(child.page())[mid];
    const uint32_t right_count = ch->count - mid - 1;
    std::memcpy(Keys(right.page()), Keys(child.page()) + mid + 1,
                right_count * 8);
    std::memcpy(Children(right.page()), Children(child.page()) + mid + 1,
                (right_count + 1) * 4);
    rh->count = right_count;
    ch->count = mid;
  }

  // Insert separator into the parent at idx.
  uint64_t* pkeys = Keys(parent.page());
  uint32_t* pchildren = Children(parent.page());
  std::memmove(pkeys + idx + 1, pkeys + idx, (ph->count - idx) * 8);
  std::memmove(pchildren + idx + 2, pchildren + idx + 1,
               (ph->count - idx) * 4);
  pkeys[idx] = separator;
  pchildren[idx + 1] = right_no;
  ++ph->count;

  parent.MarkDirty();
  child.MarkDirty();
  right.MarkDirty();
  return Status::OK();
}

Result<BTreePayload> BTree::Get(uint64_t key) {
  uint32_t cur = root_page_;
  for (uint32_t level = 0;; ++level) {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(cur)));
    auto* h = Header(node.page());
    uint64_t* keys = Keys(node.page());
    if (h->is_leaf) {
      uint64_t* end = keys + h->count;
      uint64_t* it = std::lower_bound(keys, end, key);
      if (it == end || *it != key) {
        return Status::NotFound("BTree: key " + std::to_string(key));
      }
      return Payloads(node.page())[it - keys];
    }
    const uint32_t idx = static_cast<uint32_t>(
        std::upper_bound(keys, keys + h->count, key) - keys);
    cur = Children(node.page())[idx];
    if (level > height_) return Status::Corruption("BTree: cycle in descent");
  }
}

Status BTree::FindLeaf(uint64_t key, std::vector<uint32_t>* path,
                       std::vector<uint32_t>* child_idx) {
  path->clear();
  child_idx->clear();
  uint32_t cur = root_page_;
  while (true) {
    path->push_back(cur);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(cur)));
    auto* h = Header(node.page());
    if (h->is_leaf) return Status::OK();
    uint64_t* keys = Keys(node.page());
    const uint32_t idx = static_cast<uint32_t>(
        std::upper_bound(keys, keys + h->count, key) - keys);
    child_idx->push_back(idx);
    cur = Children(node.page())[idx];
  }
}

Status BTree::Delete(uint64_t key) {
  std::vector<uint32_t> path, child_idx;
  CHUNKCACHE_RETURN_IF_ERROR(FindLeaf(key, &path, &child_idx));
  {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard leaf,
                                pool_->Fetch(Pid(path.back())));
    auto* h = Header(leaf.page());
    uint64_t* keys = Keys(leaf.page());
    uint64_t* end = keys + h->count;
    uint64_t* it = std::lower_bound(keys, end, key);
    if (it == end || *it != key) {
      return Status::NotFound("BTree: key " + std::to_string(key));
    }
    const uint32_t pos = static_cast<uint32_t>(it - keys);
    BTreePayload* pays = Payloads(leaf.page());
    std::memmove(keys + pos, keys + pos + 1, (h->count - pos - 1) * 8);
    std::memmove(pays + pos, pays + pos + 1,
                 (h->count - pos - 1) * sizeof(BTreePayload));
    --h->count;
    leaf.MarkDirty();
    --size_;
  }
  return RebalanceUp(path, child_idx);
}

// Walks from the leaf toward the root repairing underfull nodes by borrowing
// from or merging with an adjacent sibling.
Status BTree::RebalanceUp(std::vector<uint32_t>& path,
                          std::vector<uint32_t>& child_idx) {
  for (size_t depth = path.size() - 1; depth > 0; --depth) {
    const uint32_t node_no = path[depth];
    const uint32_t parent_no = path[depth - 1];
    const uint32_t i = child_idx[depth - 1];

    bool underfull, is_leaf;
    {
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(node_no)));
      auto* h = Header(node.page());
      is_leaf = h->is_leaf != 0;
      underfull =
          h->count < (is_leaf ? MinLeafKeys() : MinInternalKeys());
    }
    if (!underfull) break;

    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard parent, pool_->Fetch(Pid(parent_no)));
    auto* ph = Header(parent.page());
    uint64_t* pkeys = Keys(parent.page());
    uint32_t* pchildren = Children(parent.page());

    // Try to borrow from the left sibling, then the right.
    if (i > 0) {
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard left,
                                  pool_->Fetch(Pid(pchildren[i - 1])));
      auto* lh = Header(left.page());
      const uint32_t min =
          is_leaf ? MinLeafKeys() : MinInternalKeys();
      if (lh->count > min) {
        CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node,
                                    pool_->Fetch(Pid(node_no)));
        auto* h = Header(node.page());
        uint64_t* nkeys = Keys(node.page());
        uint64_t* lkeys = Keys(left.page());
        if (is_leaf) {
          BTreePayload* npays = Payloads(node.page());
          BTreePayload* lpays = Payloads(left.page());
          std::memmove(nkeys + 1, nkeys, h->count * 8);
          std::memmove(npays + 1, npays, h->count * sizeof(BTreePayload));
          nkeys[0] = lkeys[lh->count - 1];
          npays[0] = lpays[lh->count - 1];
          ++h->count;
          --lh->count;
          pkeys[i - 1] = nkeys[0];
        } else {
          uint32_t* nchildren = Children(node.page());
          uint32_t* lchildren = Children(left.page());
          std::memmove(nkeys + 1, nkeys, h->count * 8);
          std::memmove(nchildren + 1, nchildren, (h->count + 1) * 4);
          nkeys[0] = pkeys[i - 1];
          nchildren[0] = lchildren[lh->count];
          pkeys[i - 1] = lkeys[lh->count - 1];
          ++h->count;
          --lh->count;
        }
        node.MarkDirty();
        left.MarkDirty();
        parent.MarkDirty();
        return Status::OK();
      }
    }
    if (i < ph->count) {
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard right,
                                  pool_->Fetch(Pid(pchildren[i + 1])));
      auto* rh = Header(right.page());
      const uint32_t min =
          is_leaf ? MinLeafKeys() : MinInternalKeys();
      if (rh->count > min) {
        CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node,
                                    pool_->Fetch(Pid(node_no)));
        auto* h = Header(node.page());
        uint64_t* nkeys = Keys(node.page());
        uint64_t* rkeys = Keys(right.page());
        if (is_leaf) {
          BTreePayload* npays = Payloads(node.page());
          BTreePayload* rpays = Payloads(right.page());
          nkeys[h->count] = rkeys[0];
          npays[h->count] = rpays[0];
          ++h->count;
          std::memmove(rkeys, rkeys + 1, (rh->count - 1) * 8);
          std::memmove(rpays, rpays + 1,
                       (rh->count - 1) * sizeof(BTreePayload));
          --rh->count;
          pkeys[i] = rkeys[0];
        } else {
          uint32_t* nchildren = Children(node.page());
          uint32_t* rchildren = Children(right.page());
          nkeys[h->count] = pkeys[i];
          nchildren[h->count + 1] = rchildren[0];
          pkeys[i] = rkeys[0];
          ++h->count;
          std::memmove(rkeys, rkeys + 1, (rh->count - 1) * 8);
          std::memmove(rchildren, rchildren + 1, rh->count * 4);
          --rh->count;
        }
        node.MarkDirty();
        right.MarkDirty();
        parent.MarkDirty();
        return Status::OK();
      }
    }

    // Merge: fold children[li+1] into children[li], where li keeps the pair
    // adjacent to `i`.
    const uint32_t li = (i > 0) ? i - 1 : i;
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard left,
                                pool_->Fetch(Pid(pchildren[li])));
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard right,
                                pool_->Fetch(Pid(pchildren[li + 1])));
    auto* lh = Header(left.page());
    auto* rh = Header(right.page());
    uint64_t* lkeys = Keys(left.page());
    uint64_t* rkeys = Keys(right.page());
    if (is_leaf) {
      std::memcpy(lkeys + lh->count, rkeys, rh->count * 8);
      std::memcpy(Payloads(left.page()) + lh->count, Payloads(right.page()),
                  rh->count * sizeof(BTreePayload));
      lh->count += rh->count;
      lh->right_sibling = rh->right_sibling;
    } else {
      lkeys[lh->count] = pkeys[li];
      std::memcpy(lkeys + lh->count + 1, rkeys, rh->count * 8);
      std::memcpy(Children(left.page()) + lh->count + 1,
                  Children(right.page()), (rh->count + 1) * 4);
      lh->count += 1 + rh->count;
    }
    // Remove separator li and child li+1 from the parent. (The orphaned
    // right page is leaked on disk; this index never shrinks its file. A
    // free list is deliberate future work — see DESIGN.md.)
    std::memmove(pkeys + li, pkeys + li + 1, (ph->count - li - 1) * 8);
    std::memmove(pchildren + li + 1, pchildren + li + 2,
                 (ph->count - li - 1) * 4);
    --ph->count;
    left.MarkDirty();
    right.MarkDirty();
    parent.MarkDirty();
    // Parent may now be underfull; continue the sweep at depth-1.
  }

  // Shrink the root if it became an empty internal node.
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard root, pool_->Fetch(Pid(root_page_)));
  auto* h = Header(root.page());
  if (!h->is_leaf && h->count == 0) {
    root_page_ = Children(root.page())[0];
    --height_;
  }
  return Status::OK();
}

Status BTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const BTreePayload&)>& fn) {
  if (lo > hi) return Status::OK();
  std::vector<uint32_t> path, child_idx;
  CHUNKCACHE_RETURN_IF_ERROR(FindLeaf(lo, &path, &child_idx));
  uint32_t cur = path.back();
  while (cur != 0) {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(cur)));
    auto* h = Header(node.page());
    uint64_t* keys = Keys(node.page());
    BTreePayload* pays = Payloads(node.page());
    const uint32_t start = static_cast<uint32_t>(
        std::lower_bound(keys, keys + h->count, lo) - keys);
    for (uint32_t j = start; j < h->count; ++j) {
      if (keys[j] > hi) return Status::OK();
      if (!fn(keys[j], pays[j])) return Status::OK();
    }
    cur = h->right_sibling;
  }
  return Status::OK();
}

Status BTree::BulkLoad(
    const std::vector<std::pair<uint64_t, BTreePayload>>& sorted) {
  if (size_ != 0) return Status::InvalidArgument("BulkLoad: tree not empty");
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1].first >= sorted[i].first) {
      return Status::InvalidArgument("BulkLoad: input not strictly sorted");
    }
  }
  if (sorted.empty()) return Status::OK();

  // Build the leaf level; remember (first key, page) of every node.
  std::vector<std::pair<uint64_t, uint32_t>> level;
  {
    size_t pos = 0;
    uint32_t prev_leaf = 0;
    while (pos < sorted.size()) {
      const uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(kLeafCapacity, sorted.size() - pos));
      CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t leaf_no, NewNode(/*leaf=*/true));
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard leaf, pool_->Fetch(Pid(leaf_no)));
      auto* h = Header(leaf.page());
      uint64_t* keys = Keys(leaf.page());
      BTreePayload* pays = Payloads(leaf.page());
      for (uint32_t j = 0; j < take; ++j) {
        keys[j] = sorted[pos + j].first;
        pays[j] = sorted[pos + j].second;
      }
      h->count = take;
      leaf.MarkDirty();
      if (prev_leaf != 0) {
        CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard prev,
                                    pool_->Fetch(Pid(prev_leaf)));
        Header(prev.page())->right_sibling = leaf_no;
        prev.MarkDirty();
      }
      level.emplace_back(sorted[pos].first, leaf_no);
      prev_leaf = leaf_no;
      pos += take;
    }
  }
  uint32_t levels = 1;

  // Build internal levels until one node remains. Separator for child j
  // (j >= 1) is that child's smallest key, matching the routing convention.
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, uint32_t>> next;
    size_t pos = 0;
    while (pos < level.size()) {
      const uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(kInternalCapacity + 1, level.size() - pos));
      CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t node_no, NewNode(/*leaf=*/false));
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(node_no)));
      auto* h = Header(node.page());
      uint64_t* keys = Keys(node.page());
      uint32_t* children = Children(node.page());
      for (uint32_t j = 0; j < take; ++j) {
        children[j] = level[pos + j].second;
        if (j > 0) keys[j - 1] = level[pos + j].first;
      }
      h->count = take - 1;
      node.MarkDirty();
      next.emplace_back(level[pos].first, node_no);
      pos += take;
    }
    level = std::move(next);
    ++levels;
  }

  root_page_ = level[0].second;
  height_ = levels;
  size_ = sorted.size();
  return SyncMeta();
}

Status BTree::CheckInvariants() {
  struct StackEntry {
    uint32_t page;
    uint64_t lo;
    bool has_lo;
    uint64_t hi;
    bool has_hi;
    uint32_t depth;
  };
  std::vector<StackEntry> stack{{root_page_, 0, false, 0, false, 0}};
  uint64_t seen = 0;
  uint32_t leaf_depth = 0;
  bool leaf_depth_set = false;
  while (!stack.empty()) {
    StackEntry e = stack.back();
    stack.pop_back();
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard node, pool_->Fetch(Pid(e.page)));
    auto* h = Header(node.page());
    uint64_t* keys = Keys(node.page());
    for (uint32_t j = 1; j < h->count; ++j) {
      if (keys[j - 1] >= keys[j]) {
        return Status::Corruption("BTree: keys out of order");
      }
    }
    if (h->count > 0) {
      if (e.has_lo && keys[0] < e.lo) {
        return Status::Corruption("BTree: key below subtree bound");
      }
      if (e.has_hi && keys[h->count - 1] >= e.hi) {
        return Status::Corruption("BTree: key above subtree bound");
      }
    }
    const bool is_root = e.page == root_page_;
    if (h->is_leaf) {
      if (!is_root && h->count < MinLeafKeys()) {
        return Status::Corruption("BTree: underfull leaf");
      }
      if (leaf_depth_set && e.depth != leaf_depth) {
        return Status::Corruption("BTree: leaves at different depths");
      }
      leaf_depth = e.depth;
      leaf_depth_set = true;
      seen += h->count;
    } else {
      if (!is_root && h->count < MinInternalKeys()) {
        return Status::Corruption("BTree: underfull internal node");
      }
      if (is_root && h->count == 0) {
        return Status::Corruption("BTree: empty internal root");
      }
      uint32_t* children = Children(node.page());
      for (uint32_t j = 0; j <= h->count; ++j) {
        StackEntry c;
        c.page = children[j];
        c.depth = e.depth + 1;
        c.has_lo = j > 0 || e.has_lo;
        c.lo = j > 0 ? keys[j - 1] : e.lo;
        c.has_hi = j < h->count || e.has_hi;
        c.hi = j < h->count ? keys[j] : e.hi;
        stack.push_back(c);
      }
    }
  }
  if (seen != size_) {
    return Status::Corruption("BTree: size mismatch: counted " +
                              std::to_string(seen) + " expected " +
                              std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace chunkcache::index
