#include "index/bitmap_index.h"

#include <cstring>

namespace chunkcache::index {

using storage::kPageSize;
using storage::PageGuard;
using storage::PageId;

Result<BitmapIndex> BitmapIndex::Build(storage::BufferPool* pool,
                                       storage::FactFile* fact, uint32_t dim,
                                       uint32_t num_values) {
  if (dim >= fact->desc().num_dims) {
    return Status::InvalidArgument("BitmapIndex: dimension out of range");
  }
  if (num_values == 0) {
    return Status::InvalidArgument("BitmapIndex: zero values");
  }
  const uint64_t num_rows = fact->num_tuples();
  const uint64_t bytes_per_bitmap = bit_util::WordsForBits(num_rows) * 8;
  const uint32_t pages_per_bitmap = static_cast<uint32_t>(
      (bytes_per_bitmap + kPageSize - 1) / kPageSize);

  // Accumulate all bitmaps in memory during the build scan, then write them
  // out. (num_values * num_rows bits; a few MB at the paper's scale.)
  std::vector<Bitmap> bitmaps(num_values);
  for (auto& b : bitmaps) b = Bitmap(num_rows);
  Status scan_status = Status::OK();
  CHUNKCACHE_RETURN_IF_ERROR(fact->Scan(
      [&](storage::RowId rid, const storage::Tuple& t) {
        const uint32_t v = t.keys[dim];
        if (v >= num_values) {
          scan_status = Status::Corruption(
              "BitmapIndex: ordinal beyond declared domain");
          return false;
        }
        bitmaps[v].Set(rid);
        return true;
      }));
  CHUNKCACHE_RETURN_IF_ERROR(scan_status);

  const uint32_t file_id = pool->disk()->CreateFile();
  BitmapIndex idx(pool, file_id, dim);
  idx.num_values_ = num_values;
  idx.pages_per_bitmap_ = pages_per_bitmap;
  idx.num_rows_ = num_rows;

  {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate(file_id));
    auto* h = guard.page()->As<Header>();
    h->magic = kMagic;
    h->num_values = num_values;
    h->pages_per_bitmap = pages_per_bitmap;
    h->num_rows = num_rows;
    guard.MarkDirty();
  }
  for (uint32_t v = 0; v < num_values; ++v) {
    const uint8_t* src =
        reinterpret_cast<const uint8_t*>(bitmaps[v].words());
    uint64_t remaining = bytes_per_bitmap;
    for (uint32_t p = 0; p < pages_per_bitmap; ++p) {
      CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate(file_id));
      const uint64_t take = remaining < kPageSize ? remaining : kPageSize;
      std::memcpy(guard.page()->data.data(), src, take);
      src += take;
      remaining -= take;
      guard.MarkDirty();
    }
  }
  return idx;
}

Result<BitmapIndex> BitmapIndex::Open(storage::BufferPool* pool,
                                      uint32_t file_id, uint32_t dim) {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool->Fetch(PageId{file_id, 0}));
  const auto* h = guard.page()->As<Header>();
  if (h->magic != kMagic) return Status::Corruption("BitmapIndex: bad magic");
  BitmapIndex idx(pool, file_id, dim);
  idx.num_values_ = h->num_values;
  idx.pages_per_bitmap_ = h->pages_per_bitmap;
  idx.num_rows_ = h->num_rows;
  return idx;
}

Status BitmapIndex::ReadBitmap(uint32_t value, Bitmap* out) {
  if (value >= num_values_) {
    return Status::OutOfRange("BitmapIndex: value out of range");
  }
  *out = Bitmap(num_rows_);
  uint8_t* dst = reinterpret_cast<uint8_t*>(out->words());
  uint64_t remaining = out->num_words() * 8;
  const uint32_t first_page = 1 + value * pages_per_bitmap_;
  for (uint32_t p = 0; p < pages_per_bitmap_; ++p) {
    CHUNKCACHE_ASSIGN_OR_RETURN(
        PageGuard guard, pool_->Fetch(PageId{file_id_, first_page + p}));
    const uint64_t take = remaining < kPageSize ? remaining : kPageSize;
    std::memcpy(dst, guard.page()->data.data(), take);
    dst += take;
    remaining -= take;
  }
  return Status::OK();
}

Status BitmapIndex::EvaluateRange(uint32_t lo, uint32_t hi, Bitmap* out) {
  if (lo > hi || hi >= num_values_) {
    return Status::OutOfRange("BitmapIndex: bad range");
  }
  CHUNKCACHE_RETURN_IF_ERROR(ReadBitmap(lo, out));
  Bitmap tmp;
  for (uint32_t v = lo + 1; v <= hi; ++v) {
    CHUNKCACHE_RETURN_IF_ERROR(ReadBitmap(v, &tmp));
    out->Or(tmp);
  }
  return Status::OK();
}

}  // namespace chunkcache::index
