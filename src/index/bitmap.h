#ifndef CHUNKCACHE_INDEX_BITMAP_H_
#define CHUNKCACHE_INDEX_BITMAP_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/simd.h"

namespace chunkcache::index {

/// In-memory bitset over row ids, the working representation for bitmap
/// query evaluation (result of reading one or more stored bitmaps and
/// combining them with AND/OR).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t num_bits)
      : num_bits_(num_bits), words_(bit_util::WordsForBits(num_bits), 0) {}

  uint64_t num_bits() const { return num_bits_; }

  void Set(uint64_t i) {
    CHUNKCACHE_DCHECK(i < num_bits_);
    bit_util::SetBit(words_.data(), i);
  }
  void Clear(uint64_t i) {
    CHUNKCACHE_DCHECK(i < num_bits_);
    bit_util::ClearBit(words_.data(), i);
  }
  bool Get(uint64_t i) const {
    CHUNKCACHE_DCHECK(i < num_bits_);
    return bit_util::GetBit(words_.data(), i);
  }

  /// Sets every bit (then clears the tail padding).
  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }

  /// this &= other. Sizes must match.
  void And(const Bitmap& other) {
    CHUNKCACHE_DCHECK(num_bits_ == other.num_bits_);
    simd::AndWords(words_.data(), other.words_.data(), words_.size());
  }

  /// this |= other. Sizes must match.
  void Or(const Bitmap& other) {
    CHUNKCACHE_DCHECK(num_bits_ == other.num_bits_);
    simd::OrWords(words_.data(), other.words_.data(), words_.size());
  }

  /// this = ~this (respecting num_bits).
  void Not() {
    for (auto& w : words_) w = ~w;
    TrimTail();
  }

  /// Number of set bits.
  uint64_t CountSet() const {
    return simd::PopcountWords(words_.data(), words_.size());
  }

  /// Calls `fn(i)` for each set bit in ascending order. Templated over the
  /// callback so the call inlines (a std::function here allocated and
  /// blocked inlining in the selection hot path); skips all-zero 4-word
  /// blocks, the common case in sparse selection bitmaps.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    const uint64_t* w = words_.data();
    const size_t nw = words_.size();
    size_t wi = 0;
    while (wi + 4 <= nw) {
      if ((w[wi] | w[wi + 1] | w[wi + 2] | w[wi + 3]) == 0) {
        wi += 4;
        continue;
      }
      for (size_t j = wi; j < wi + 4; ++j) ForEachInWord(w[j], j, fn);
      wi += 4;
    }
    for (; wi < nw; ++wi) ForEachInWord(w[wi], wi, fn);
  }

  /// Set bits as a sorted vector (row ids).
  std::vector<uint64_t> ToVector() const {
    std::vector<uint64_t> out;
    out.reserve(CountSet());
    ForEachSet([&out](uint64_t i) { out.push_back(i); });
    return out;
  }

  /// Raw word access for (de)serialization.
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

 private:
  template <typename Fn>
  static void ForEachInWord(uint64_t word, size_t wi, Fn&& fn) {
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(static_cast<uint64_t>(wi) * 64 + bit);
      word &= word - 1;
    }
  }

  void TrimTail() {
    const uint64_t tail = num_bits_ % 64;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  uint64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace chunkcache::index

#endif  // CHUNKCACHE_INDEX_BITMAP_H_
