#ifndef CHUNKCACHE_INDEX_BITMAP_INDEX_H_
#define CHUNKCACHE_INDEX_BITMAP_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/bitmap.h"
#include "storage/buffer_pool.h"
#include "storage/fact_file.h"

namespace chunkcache::index {

/// Disk-resident value-list bitmap index on one fact-table dimension: one
/// bitmap over all fact rows per distinct *base-level ordinal* of that
/// dimension. This is the index the paper's backend uses for star-join
/// selections; reading bitmaps goes through the buffer pool, so index I/O is
/// part of every measured cost.
///
/// File layout: page 0 header, then bitmaps back to back, each padded to a
/// whole number of pages so one value's bitmap occupies a contiguous run.
class BitmapIndex {
 public:
  /// Builds an index over `fact` for dimension column `dim`, whose ordinals
  /// are dense in [0, num_values). Scans the fact file once.
  static Result<BitmapIndex> Build(storage::BufferPool* pool,
                                   storage::FactFile* fact, uint32_t dim,
                                   uint32_t num_values);

  /// Opens an existing index by file id.
  static Result<BitmapIndex> Open(storage::BufferPool* pool, uint32_t file_id,
                                  uint32_t dim);

  BitmapIndex(BitmapIndex&&) = default;
  BitmapIndex& operator=(BitmapIndex&&) = default;

  /// Reads the bitmap of one value into `*out` (sized to the row count).
  Status ReadBitmap(uint32_t value, Bitmap* out);

  /// ORs the bitmaps of every value in [lo, hi] into `*out` — the paper's
  /// range-predicate evaluation. `*out` is overwritten.
  Status EvaluateRange(uint32_t lo, uint32_t hi, Bitmap* out);

  uint32_t dim() const { return dim_; }
  uint32_t num_values() const { return num_values_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t file_id() const { return file_id_; }
  uint32_t pages_per_bitmap() const { return pages_per_bitmap_; }

 private:
  BitmapIndex(storage::BufferPool* pool, uint32_t file_id, uint32_t dim)
      : pool_(pool), file_id_(file_id), dim_(dim) {}

  struct Header {
    uint64_t magic;
    uint32_t num_values;
    uint32_t pages_per_bitmap;
    uint64_t num_rows;
  };
  static constexpr uint64_t kMagic = 0x4249544D41504958ULL;  // "BITMAPIX"

  storage::BufferPool* pool_;
  uint32_t file_id_;
  uint32_t dim_;
  uint32_t num_values_ = 0;
  uint32_t pages_per_bitmap_ = 0;
  uint64_t num_rows_ = 0;
};

}  // namespace chunkcache::index

#endif  // CHUNKCACHE_INDEX_BITMAP_INDEX_H_
