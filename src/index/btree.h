#ifndef CHUNKCACHE_INDEX_BTREE_H_
#define CHUNKCACHE_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace chunkcache::index {

/// Fixed 16-byte B+Tree payload. The chunked file stores
/// {first RowId, tuple count} of each chunk's run; other users are free to
/// reinterpret the two words.
struct BTreePayload {
  uint64_t v1 = 0;
  uint64_t v2 = 0;

  friend bool operator==(const BTreePayload& a, const BTreePayload& b) {
    return a.v1 == b.v1 && a.v2 == b.v2;
  }
};

/// Disk-resident B+Tree mapping uint64 keys to BTreePayload, layered on the
/// buffer pool. This is the *chunk index* of the chunked file organization
/// (Section 5.3 of the paper: "The BTree holds one entry for each chunk and
/// points to the start of the chunk in the fact file"), and is also usable
/// as a general key index.
///
/// Supports point insert/get/delete (with node merging), inclusive range
/// scans via leaf chaining, and bottom-up bulk load from sorted input.
/// Keys are unique. Not thread-safe.
class BTree {
 public:
  /// Creates a new empty tree in a fresh DiskManager file.
  static Result<BTree> Create(storage::BufferPool* pool);

  /// Opens an existing tree by DiskManager file id.
  static Result<BTree> Open(storage::BufferPool* pool, uint32_t file_id);

  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  /// Inserts `key`; fails with AlreadyExists on duplicates.
  Status Insert(uint64_t key, BTreePayload value);

  /// Inserts or overwrites `key`.
  Status Upsert(uint64_t key, BTreePayload value);

  /// Point lookup; NotFound if absent.
  Result<BTreePayload> Get(uint64_t key);

  /// Removes `key`; NotFound if absent. Underfull nodes are repaired by
  /// borrowing from or merging with a sibling.
  Status Delete(uint64_t key);

  /// Visits entries with lo <= key <= hi in key order. `fn` returning false
  /// stops the scan.
  Status ScanRange(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, const BTreePayload&)>& fn);

  /// Builds the tree bottom-up from strictly-ascending (key, payload)
  /// pairs. The tree must be empty.
  Status BulkLoad(const std::vector<std::pair<uint64_t, BTreePayload>>& sorted);

  /// Number of entries.
  uint64_t size() const { return size_; }

  /// Height of the tree (1 = root is a leaf).
  uint32_t height() const { return height_; }

  uint32_t file_id() const { return file_id_; }

  /// Persists the meta page (root pointer, size). Call after bulk changes.
  Status SyncMeta();

  /// Verifies structural invariants (ordering, fill factors, leaf chain);
  /// used by tests. O(n).
  Status CheckInvariants();

 private:
  BTree(storage::BufferPool* pool, uint32_t file_id)
      : pool_(pool), file_id_(file_id) {}

  // --- node layout ---------------------------------------------------------
  // Page 0 of the file is the meta page; nodes start at page 1.
  struct MetaPage {
    uint64_t magic;
    uint32_t root_page;
    uint32_t height;
    uint64_t size;
  };
  struct NodeHeader {
    uint8_t is_leaf;
    uint8_t pad[3];
    uint32_t count;        // number of keys
    uint32_t right_sibling;  // leaf chain; 0 = none
    uint32_t pad2;
  };
  static constexpr uint64_t kMagic = 0x4254524545763031ULL;  // "BTREEv01"
  static constexpr uint32_t kHeaderSize = 16;
  // Leaf entry: 8B key + 16B payload.
  static constexpr uint32_t kLeafCapacity =
      (storage::kPageSize - kHeaderSize) / 24;
  // Internal node with n keys has n+1 children: n*8 + (n+1)*4 bytes.
  static constexpr uint32_t kInternalCapacity =
      (storage::kPageSize - kHeaderSize - 4) / 12;

  // Typed views over a node page.
  static NodeHeader* Header(storage::Page* p);
  static uint64_t* Keys(storage::Page* p);
  static BTreePayload* Payloads(storage::Page* p);  // leaves only
  static uint32_t* Children(storage::Page* p);      // internals only

  Result<uint32_t> NewNode(bool leaf);
  storage::PageId Pid(uint32_t page_no) const { return {file_id_, page_no}; }

  /// Descends from the root to the leaf that should hold `key`, recording
  /// the path (page numbers) and the child index taken at each internal
  /// node.
  Status FindLeaf(uint64_t key, std::vector<uint32_t>* path,
                  std::vector<uint32_t>* child_idx);

  Status InsertInternal(uint64_t key, BTreePayload value, bool allow_replace);

  /// Splits the full node `child_no` (child `idx` of `parent_no`); the
  /// parent must have room for the promoted separator.
  Status SplitChild(uint32_t parent_no, uint32_t idx, uint32_t child_no);

  /// Repairs underfull nodes from the leaf at the end of `path` upward.
  Status RebalanceUp(std::vector<uint32_t>& path,
                     std::vector<uint32_t>& child_idx);

  storage::BufferPool* pool_;
  uint32_t file_id_;
  uint32_t root_page_ = 0;
  uint32_t height_ = 0;
  uint64_t size_ = 0;
};

}  // namespace chunkcache::index

#endif  // CHUNKCACHE_INDEX_BTREE_H_
