#ifndef CHUNKCACHE_CACHE_CHUNK_CACHE_H_
#define CHUNKCACHE_CACHE_CHUNK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/ghost_cache.h"
#include "cache/replacement.h"
#include "chunks/group_by_spec.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/agg_columns.h"
#include "storage/tuple.h"

namespace chunkcache::cache {

/// One cached chunk: the aggregate rows of chunk `chunk_num` of group-by
/// `group_by_id`, computed under the non-group-by filter identified by
/// `filter_hash` (0 = unfiltered). Different filters produce different data
/// for the same chunk coordinates, so the filter is part of the identity
/// (Section 5.2.1 condition 3: non-group-by selections must match exactly).
struct CachedChunk {
  uint32_t group_by_id = 0;
  uint64_t chunk_num = 0;
  uint64_t filter_hash = 0;
  double benefit = 0;
  /// Columnar rows in canonical row-major order. Only the group-by's
  /// active dimensions have coordinate columns, so the cache no longer
  /// charges for kMaxDims padding per row. Empty when the entry is held
  /// in encoded form instead.
  storage::AggColumns cols;

  /// Codec-encoded payload (storage/codec blob) when the manager's
  /// compressed in-memory tier holds this entry; empty otherwise. Exactly
  /// one of `cols` / `encoded` is populated for a non-empty chunk. Hits
  /// decode on demand (ChunkCacheManager::ResolveCols), so the budget
  /// charges encoded bytes and effective capacity rises.
  std::vector<uint8_t> encoded;
  /// Raw (decoded) payload bytes of `encoded`, for ratio accounting.
  uint64_t raw_bytes = 0;
  /// Rows in the payload regardless of representation.
  uint32_t encoded_rows = 0;

  bool compressed() const { return !encoded.empty(); }
  size_t rows() const { return compressed() ? encoded_rows : cols.size(); }

  /// Heap footprint charged against the cache budget. Charges column
  /// capacity(), not size(): the allocator really holds capacity() slots,
  /// and budgeting by size() would let slack capacity silently exceed the
  /// configured cache size. A compressed entry charges its encoded bytes.
  uint64_t ByteSize() const {
    return sizeof(CachedChunk) - sizeof(storage::AggColumns) +
           cols.ByteSize() + encoded.capacity();
  }
};

/// An owning, pinned reference to a cached chunk. The referenced data stays
/// valid for the handle's lifetime even if the entry is concurrently
/// evicted or replaced — eviction only drops the cache's own reference.
/// Null on a miss.
using ChunkHandle = std::shared_ptr<const CachedChunk>;

/// The cache's key triple, public so the miss-coalescing layer can key its
/// in-flight table on exactly the identity the cache uses.
struct ChunkKey {
  uint32_t group_by_id = 0;
  uint64_t chunk_num = 0;
  uint64_t filter_hash = 0;
  friend bool operator==(const ChunkKey& a, const ChunkKey& b) {
    return a.group_by_id == b.group_by_id && a.chunk_num == b.chunk_num &&
           a.filter_hash == b.filter_hash;
  }
};

struct ChunkKeyHash {
  // Full-avalanche finalizer (murmur3 fmix64): consecutive chunk numbers
  // — the common access pattern, since query boxes enumerate chunks in
  // row-major order — must spread across shards, so every input bit has
  // to reach the low bits used by ShardFor.
  size_t operator()(const ChunkKey& k) const {
    uint64_t x = k.chunk_num * 0x9E3779B97F4A7C15ULL;
    x ^= (static_cast<uint64_t>(k.group_by_id) << 32) ^ k.filter_hash;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

/// Per-shard counters, reported inside ChunkCacheStats so callers can see
/// hash skew and per-shard hit rates.
struct ChunkShardStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t chunks = 0;
  uint64_t bytes_used = 0;
};

struct ChunkCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  ///< Entries larger than their shard's budget.

  /// Nanoseconds threads spent blocked on shard mutexes (contended
  /// acquisitions only); the "mostly uncontended" claim is checkable.
  uint64_t contention_ns = 0;

  /// Per-shard breakdown (empty until stats() fills it).
  std::vector<ChunkShardStats> shards;

  // Executor counters, filled by ChunkCacheManager::StatsSnapshot when a
  // worker pool is attached; zero otherwise. steal_queue_depth is always
  // zero by construction (the executor is work-stealing-free).
  uint64_t exec_tasks_submitted = 0;
  uint64_t exec_tasks_run = 0;
  uint64_t exec_queue_peak = 0;
  uint64_t exec_steal_queue_depth = 0;
  uint64_t async_prefetched_chunks = 0;

  // Aggregation-kernel and run-I/O counters, filled by
  // ChunkCacheManager::StatsSnapshot from the backend engine; zero when
  // read straight off a ChunkCache.
  uint64_t dense_kernels = 0;
  uint64_t hash_kernels = 0;
  uint64_t rows_folded_dense = 0;
  uint64_t rows_folded_hash = 0;
  uint64_t coalesced_reads = 0;
  uint64_t single_run_reads = 0;
  uint64_t runs_merged = 0;

  // Miss-coalescing counters, filled by ChunkCacheManager::StatsSnapshot
  // from the in-flight table and the shared-scan scheduler; zero when read
  // straight off a ChunkCache.
  uint64_t coalesced_waits = 0;       ///< Misses that waited on an owner.
  uint64_t dedup_saved_chunks = 0;    ///< Computations avoided (waits+drops).
  uint64_t prefetch_dropped_inflight = 0;  ///< Prefetch chunks already pending.
  uint64_t inflight_peak = 0;         ///< In-flight table high-water mark.
  uint64_t shared_scan_batches = 0;   ///< Backend scans issued by the scheduler.
  uint64_t shared_scan_requests = 0;  ///< Miss batches routed through it.
  uint64_t scan_queue_depth_hwm = 0;  ///< Open-batch queue high-water mark.

  // Robustness counters, filled by ChunkCacheManager::StatsSnapshot from
  // the fault injector, retry plumbing, disk manager and scheduler; zero
  // when read straight off a ChunkCache.
  uint64_t faults_injected = 0;    ///< Faults fired by the global injector.
  uint64_t retries = 0;            ///< Backend compute attempts repeated.
  uint64_t degraded_answers = 0;   ///< Chunks answered via closure fallback.
  uint64_t deadline_expired = 0;   ///< Chunk waits/computes cut by deadline.
  uint64_t checksum_failures = 0;  ///< Page CRC mismatches caught on read.
  uint64_t scan_deadline_sheds = 0;  ///< Scheduler admissions given up.

  // Compressed-tier counters, filled by ChunkCacheManager::StatsSnapshot
  // when enable_compression is on; zero otherwise.
  uint64_t compressed_chunks = 0;   ///< Entries admitted in encoded form.
  uint64_t compression_skipped = 0;  ///< Entries where encoding didn't pay.
  uint64_t codec_raw_bytes = 0;      ///< Raw payload bytes before encoding.
  uint64_t codec_encoded_bytes = 0;  ///< Encoded payload bytes produced.
  uint64_t decode_calls = 0;         ///< Hits that had to decode.
  uint64_t decoded_lru_hits = 0;     ///< Hits served by the decoded front.
  uint64_t decoded_lru_evictions = 0;

  /// Active SIMD dispatch level (simd::IsaLevel: 0 = scalar, 1 = avx2),
  /// filled by ChunkCacheManager::StatsSnapshot.
  uint64_t simd_level = 0;

  // Persistence counters, filled by ChunkCacheManager::StatsSnapshot when
  // persist_dir is configured; zero otherwise. (DESIGN.md §14.)
  uint64_t persist_wal_records = 0;    ///< WAL records appended.
  uint64_t persist_wal_bytes = 0;      ///< WAL bytes appended.
  uint64_t persist_wal_errors = 0;     ///< Failed appends/fsyncs (dropped).
  uint64_t persist_snapshots = 0;      ///< Snapshot generations completed.
  uint64_t persist_snapshot_bytes = 0;
  uint64_t persist_snapshot_errors = 0;
  uint64_t persist_recovered_entries = 0;  ///< Entries served warm at boot.
  uint64_t persist_replayed_records = 0;   ///< WAL records replayed at boot.
  uint64_t persist_truncated_bytes = 0;    ///< Torn-tail bytes dropped.
  uint64_t persist_quarantined = 0;        ///< Corrupt entries dropped.
  uint64_t persist_recovery_ns = 0;        ///< Wall time of last recovery.
  uint64_t disk_write_errors = 0;  ///< DiskManager short writes / fsyncs.
};

/// Observer of cache admission state changes, used by the persistence WAL.
/// Both callbacks run OUTSIDE every shard lock (same discipline as the
/// ghost-cache feed), so implementations may block on I/O or call back
/// into the cache without holding up other shards. Because they run after
/// the lock is dropped, callbacks from concurrent inserts may interleave
/// in an order different from the cache mutations; consumers must treat
/// the stream as idempotent hints (the WAL replay does).
class CacheEventSink {
 public:
  virtual ~CacheEventSink() = default;
  /// `entry` was admitted (fresh insert or same-key replacement). The
  /// shared_ptr pins the payload for the duration of the call.
  virtual void OnAdmit(const std::shared_ptr<const CachedChunk>& entry) = 0;
  /// The entry keyed `key` left the cache (eviction, replacement, Clear).
  virtual void OnEvict(const ChunkKey& key) = 0;
};

/// The middle-tier chunk cache: a byte-budgeted map from
/// (group-by, chunk number, filter) to aggregate rows, with a pluggable
/// replacement policy. This is the paper's core data structure.
///
/// Thread safety: the cache is split into `num_shards` (a power of two)
/// independent shards, each with its own mutex, replacement-policy
/// instance, byte budget (capacity / num_shards) and statistics; entries
/// map to shards by the same hash that keys the tables, so concurrent
/// Lookup/Insert/Contains from many clients are mostly uncontended. With
/// one shard the behavior (eviction order included) is identical to the
/// original single-map cache, which is what the serial paper reproductions
/// use.
class ChunkCache {
 public:
  /// Single-shard cache using the given policy instance (the serial
  /// configuration; exact legacy semantics). All statistics live on
  /// `metrics` (under "cache." names); passing nullptr gives the cache a
  /// private registry so its stats stay attributable.
  ChunkCache(uint64_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy,
             MetricsRegistry* metrics = nullptr);

  /// Sharded cache: `num_shards` is rounded up to a power of two, and each
  /// shard gets its own `MakePolicy(policy)` instance and an equal slice
  /// of `capacity_bytes`.
  ChunkCache(uint64_t capacity_bytes, const std::string& policy,
             uint32_t num_shards, MetricsRegistry* metrics = nullptr);

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Returns a pinned handle to the cached chunk, or null on a miss. A hit
  /// refreshes the entry's replacement state. The handle (and the rows it
  /// points at) stays valid for its whole lifetime regardless of later
  /// Insert/Clear calls.
  ChunkHandle Lookup(uint32_t group_by_id, uint64_t chunk_num,
                     uint64_t filter_hash);

  /// Probes without touching replacement state or hit statistics (used by
  /// planners to inspect cache contents).
  bool Contains(uint32_t group_by_id, uint64_t chunk_num,
                uint64_t filter_hash) const;

  /// Inserts `chunk`, evicting per policy until it fits its shard. A chunk
  /// larger than the shard budget is rejected (counted in stats).
  /// Re-inserting an existing key replaces the old rows.
  void Insert(CachedChunk chunk);

  /// Shared-ownership insert: stores `chunk` without copying its rows, so
  /// the miss-coalescing layer can hand the very same allocation to the
  /// cache and to every waiter's ChunkHandle. Same admission/eviction
  /// semantics as the by-value overload.
  void Insert(std::shared_ptr<CachedChunk> chunk);

  /// Drops everything.
  void Clear();

  uint64_t bytes_used() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_chunks() const;
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  std::string policy_name() const;

  /// Merged snapshot of all shard counters (per-shard breakdown included).
  /// Counter totals come from atomic registry folds, so concurrent readers
  /// never see torn 32/32 values (the old plain-uint64 fields could tear
  /// when read off-shard); map sizes/bytes are read under the shard locks.
  ChunkCacheStats stats() const;
  void ResetStats();

  /// The registry backing every "cache.*" statistic — the one passed at
  /// construction, or the cache's own private one.
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Number of cached chunks belonging to `group_by_id` (any filter) —
  /// lets the in-cache aggregation extension find promising source
  /// group-bys cheaply.
  uint64_t CountForGroupBy(uint32_t group_by_id) const;

  /// Attaches a ghost-cache shadow simulation: every subsequent lookup hit
  /// and insert is also fed (key hash + bytes + benefit only) to one
  /// simulator per named policy, each budgeted at this cache's full
  /// capacity, so alternative policies are scored online against the real
  /// access stream. Standings export to the registry as
  /// "cache.ghost.<policy>.*". Call during setup, before concurrent use;
  /// calling again replaces the simulators.
  void EnableGhostPolicies(const std::vector<std::string>& policies,
                           bool record_trace = false);

  /// The attached shadow simulation, or nullptr when disabled.
  GhostCacheSet* ghosts() const {
    return ghosts_live_.load(std::memory_order_acquire);
  }

  /// Attaches (or with nullptr detaches) an admission/eviction observer.
  /// Call during setup or shutdown, not concurrently with traffic: events
  /// already past their shard unlock may still be delivered to the old
  /// sink for a moment.
  void SetEventSink(CacheEventSink* sink) {
    sink_live_.store(sink, std::memory_order_release);
  }

  /// Visits a point-in-time copy of every cached entry, shard by shard.
  /// At most one shard lock is held at a time, and `fn` always runs with
  /// no lock held (on pinned handle copies), so snapshotting a large cache
  /// never stalls more than one shard's traffic and `fn` may freely call
  /// back into the cache. Entries inserted or evicted concurrently may or
  /// may not be visited — the usual point-in-time iteration contract.
  void ForEachEntry(const std::function<void(const ChunkHandle&)>& fn) const;

 private:
  using Key = ChunkKey;
  using KeyHash = ChunkKeyHash;

  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<ReplacementPolicy> policy;
    uint64_t capacity_bytes = 0;
    uint64_t next_handle = 1;
    std::unordered_map<Key, uint64_t, KeyHash> by_key;  // key -> handle
    std::unordered_map<uint64_t, std::shared_ptr<CachedChunk>> by_handle;
    std::unordered_map<uint32_t, uint64_t> per_group_by;  // gb -> count
    uint64_t bytes_used = 0;
    // Registry-backed counters ("cache.shard<i>.*"), cached at
    // construction so the hot path never touches the registry lock.
    Counter* lookups = nullptr;
    Counter* hits = nullptr;
  };

  /// Shard selection reuses KeyHash (well mixed; libstdc++'s table uses
  /// prime bucket counts, so masking low bits here doesn't correlate with
  /// in-shard bucketing).
  Shard& ShardFor(const Key& k) const {
    return *shards_[KeyHash{}(k) & (shards_.size() - 1)];
  }

  /// Locks a shard, recording contended-acquisition wait time into the
  /// "cache.lock_wait_ns" histogram.
  std::unique_lock<std::mutex> LockShard(const Shard& s) const;

  /// Removes `handle` from `s`. Caller holds s.mu.
  void EraseLocked(Shard& s, uint64_t handle);

  /// Registers cache-level metrics and per-shard counters on metrics_.
  /// Called once from each constructor after shards_ is populated.
  void WireMetrics();

  uint64_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::unique_ptr<GhostCacheSet> ghosts_;
  // Published with release so hot-path readers can load without a lock.
  std::atomic<GhostCacheSet*> ghosts_live_{nullptr};
  // Not owned; published the same way as the ghost feed.
  std::atomic<CacheEventSink*> sink_live_{nullptr};

  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when none was passed
  MetricsRegistry* metrics_ = nullptr;
  Counter* insertions_ = nullptr;
  Counter* evictions_ = nullptr;
  Counter* rejected_ = nullptr;
  Histogram* lock_wait_ns_ = nullptr;
};

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_CHUNK_CACHE_H_
