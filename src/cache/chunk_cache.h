#ifndef CHUNKCACHE_CACHE_CHUNK_CACHE_H_
#define CHUNKCACHE_CACHE_CHUNK_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/replacement.h"
#include "chunks/group_by_spec.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace chunkcache::cache {

/// One cached chunk: the aggregate rows of chunk `chunk_num` of group-by
/// `group_by_id`, computed under the non-group-by filter identified by
/// `filter_hash` (0 = unfiltered). Different filters produce different data
/// for the same chunk coordinates, so the filter is part of the identity
/// (Section 5.2.1 condition 3: non-group-by selections must match exactly).
struct CachedChunk {
  uint32_t group_by_id = 0;
  uint64_t chunk_num = 0;
  uint64_t filter_hash = 0;
  double benefit = 0;
  std::vector<storage::AggTuple> rows;

  uint64_t ByteSize() const {
    return sizeof(CachedChunk) + rows.size() * sizeof(storage::AggTuple);
  }
};

struct ChunkCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  ///< Entries larger than the whole cache.
};

/// The middle-tier chunk cache: a byte-budgeted map from
/// (group-by, chunk number, filter) to aggregate rows, with a pluggable
/// replacement policy. This is the paper's core data structure.
class ChunkCache {
 public:
  ChunkCache(uint64_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy);

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Returns the cached chunk, or nullptr on a miss. A hit refreshes the
  /// entry's replacement state. The pointer stays valid until the next
  /// Insert/Clear.
  const CachedChunk* Lookup(uint32_t group_by_id, uint64_t chunk_num,
                            uint64_t filter_hash);

  /// Probes without touching replacement state or hit statistics (used by
  /// planners to inspect cache contents).
  bool Contains(uint32_t group_by_id, uint64_t chunk_num,
                uint64_t filter_hash) const;

  /// Inserts `chunk`, evicting per policy until it fits. A chunk larger
  /// than the entire cache is rejected (counted in stats). Re-inserting an
  /// existing key replaces the old rows.
  void Insert(CachedChunk chunk);

  /// Drops everything.
  void Clear();

  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_chunks() const { return by_key_.size(); }
  const ChunkCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ChunkCacheStats(); }
  const ReplacementPolicy& policy() const { return *policy_; }

  /// Number of cached chunks belonging to `group_by_id` (any filter) —
  /// lets the in-cache aggregation extension find promising source
  /// group-bys cheaply.
  uint64_t CountForGroupBy(uint32_t group_by_id) const;

 private:
  struct Key {
    uint32_t group_by_id;
    uint64_t chunk_num;
    uint64_t filter_hash;
    friend bool operator==(const Key& a, const Key& b) {
      return a.group_by_id == b.group_by_id && a.chunk_num == b.chunk_num &&
             a.filter_hash == b.filter_hash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = k.chunk_num * 0x9E3779B97F4A7C15ULL;
      x ^= (static_cast<uint64_t>(k.group_by_id) << 32) ^ k.filter_hash;
      x *= 0xC2B2AE3D27D4EB4FULL;
      return static_cast<size_t>(x ^ (x >> 29));
    }
  };

  void Erase(uint64_t handle);

  uint64_t capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  uint64_t next_handle_ = 1;
  std::unordered_map<Key, uint64_t, KeyHash> by_key_;        // key -> handle
  std::unordered_map<uint64_t, CachedChunk> by_handle_;      // handle -> data
  std::unordered_map<uint32_t, uint64_t> per_group_by_;      // gb -> count
  uint64_t bytes_used_ = 0;
  ChunkCacheStats stats_;
};

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_CHUNK_CACHE_H_
