#include "cache/ghost_cache.h"

#include "common/logging.h"
#include "common/metrics.h"

namespace chunkcache::cache {

// -------------------------------- GhostCacheSim ------------------------------

GhostCacheSim::GhostCacheSim(const std::string& policy_name,
                             uint64_t capacity_bytes)
    : policy_name_(policy_name),
      capacity_bytes_(capacity_bytes),
      policy_(MakePolicyOrDie(policy_name)) {}

bool GhostCacheSim::Access(uint64_t key_id, uint64_t bytes, double benefit) {
  auto it = entries_.find(key_id);
  if (it != entries_.end()) {
    ++hits_;
    policy_->OnAccess(key_id);
    return true;
  }
  ++misses_;
  if (bytes > capacity_bytes_) return false;  // real cache rejects these
  while (bytes_used_ + bytes > capacity_bytes_) {
    auto victim = policy_->PickVictim(benefit);
    if (!victim) break;
    auto vit = entries_.find(*victim);
    CHUNKCACHE_DCHECK(vit != entries_.end());
    bytes_used_ -= vit->second;
    entries_.erase(vit);
    policy_->OnErase(*victim);
    ++evictions_;
  }
  // Mirror ChunkCache: if eviction could not make room, the entry is
  // rejected (counted as a miss, nothing admitted).
  if (bytes_used_ + bytes > capacity_bytes_) return false;
  policy_->OnInsertKeyed(/*handle=*/key_id, key_id, benefit);
  entries_[key_id] = bytes;
  bytes_used_ += bytes;
  return false;
}

// -------------------------------- GhostCacheSet ------------------------------

GhostCacheSet::GhostCacheSet(const std::vector<std::string>& policies,
                             uint64_t capacity_bytes, MetricsRegistry* metrics,
                             bool record_trace, size_t trace_cap)
    : capacity_bytes_(capacity_bytes),
      record_trace_(record_trace),
      trace_cap_(trace_cap) {
  sims_.reserve(policies.size());
  counters_.reserve(policies.size());
  for (const auto& name : policies) {
    sims_.push_back(std::make_unique<GhostCacheSim>(name, capacity_bytes));
    PolicyCounters pc;
    if (metrics != nullptr) {
      pc.hits = metrics->GetCounter("cache.ghost." + name + ".hits");
      pc.misses = metrics->GetCounter("cache.ghost." + name + ".misses");
      pc.evictions = metrics->GetCounter("cache.ghost." + name + ".evictions");
    }
    counters_.push_back(pc);
  }
  exported_evictions_.assign(sims_.size(), 0);
}

GhostCacheSet::~GhostCacheSet() = default;

void GhostCacheSet::Access(uint64_t key_id, uint64_t bytes, double benefit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record_trace_) {
    if (trace_.size() < trace_cap_) {
      trace_.push_back(GhostEvent{key_id, bytes, benefit});
    } else {
      trace_truncated_ = true;
    }
  }
  for (size_t i = 0; i < sims_.size(); ++i) {
    const bool hit = sims_[i]->Access(key_id, bytes, benefit);
    const PolicyCounters& pc = counters_[i];
    if (pc.hits == nullptr) continue;
    if (hit) {
      pc.hits->Increment();
    } else {
      pc.misses->Increment();
    }
  }
  for (size_t i = 0; i < sims_.size(); ++i) {
    const PolicyCounters& pc = counters_[i];
    if (pc.evictions == nullptr) continue;
    const uint64_t want = sims_[i]->evictions();
    if (want > exported_evictions_[i]) {
      pc.evictions->Add(want - exported_evictions_[i]);
      exported_evictions_[i] = want;
    }
  }
}

std::vector<GhostStanding> GhostCacheSet::Standings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GhostStanding> out;
  out.reserve(sims_.size());
  for (const auto& sim : sims_) {
    GhostStanding s;
    s.policy = sim->policy_name();
    s.hits = sim->hits();
    s.misses = sim->misses();
    s.evictions = sim->evictions();
    s.bytes_used = sim->bytes_used();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<GhostEvent> GhostCacheSet::Trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

bool GhostCacheSet::trace_truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_truncated_;
}

}  // namespace chunkcache::cache
