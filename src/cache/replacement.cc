#include "cache/replacement.h"

#include "common/logging.h"

namespace chunkcache::cache {

// ----------------------------------- LRU ------------------------------------

void LruPolicy::OnInsert(uint64_t handle, double /*benefit*/) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  order_.push_front(handle);
  map_[handle] = order_.begin();
}

void LruPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  order_.erase(it->second);
  map_.erase(it);
}

std::optional<uint64_t> LruPolicy::PickVictim(double /*incoming_benefit*/) {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

// --------------------------------- ClockBase --------------------------------

void ClockBase::OnInsert(uint64_t handle, double benefit) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  Slot slot;
  slot.handle = handle;
  slot.weight = benefit;
  slot.alive = true;
  map_[handle] = ring_.size();
  ring_.push_back(slot);
  if (dead_ > map_.size()) Compact();
}

void ClockBase::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  ring_[it->second].alive = false;
  ++dead_;
  map_.erase(it);
  if (dead_ > map_.size() + 16) Compact();
}

void ClockBase::Compact() {
  std::vector<Slot> fresh;
  fresh.reserve(map_.size());
  // Keep ring order starting at the arm so sweep fairness is preserved.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Slot& s = ring_[(arm_ + i) % ring_.size()];
    if (s.alive) fresh.push_back(s);
  }
  ring_ = std::move(fresh);
  for (size_t i = 0; i < ring_.size(); ++i) map_[ring_[i].handle] = i;
  arm_ = 0;
  dead_ = 0;
}

std::optional<size_t> ClockBase::Advance() {
  if (map_.empty()) return std::nullopt;
  while (true) {
    if (arm_ >= ring_.size()) arm_ = 0;
    if (ring_[arm_].alive) {
      const size_t idx = arm_;
      arm_ = (arm_ + 1) % (ring_.empty() ? 1 : ring_.size());
      return idx;
    }
    ++arm_;
  }
}

// ----------------------------------- CLOCK ----------------------------------

void ClockPolicy::OnInsert(uint64_t handle, double /*benefit*/) {
  ClockBase::OnInsert(handle, /*benefit=*/1.0);  // reference bit set
}

void ClockPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  ring_[it->second].weight = 1.0;
}

std::optional<uint64_t> ClockPolicy::PickVictim(double /*incoming*/) {
  // Classic second chance: clear reference bits until an unreferenced
  // entry comes under the arm.
  for (size_t steps = 0; steps < 2 * ring_.size() + 1; ++steps) {
    auto idx = Advance();
    if (!idx) return std::nullopt;
    Slot& s = ring_[*idx];
    if (s.weight > 0) {
      s.weight = 0;
    } else {
      return s.handle;
    }
  }
  return std::nullopt;  // unreachable with live entries
}

// ------------------------------- Benefit CLOCK -------------------------------

void BenefitClockPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  // "The weight is reset to its initial benefit value whenever the chunk is
  // reaccessed."
  ring_[it->second].weight = benefit_[handle];
}

std::optional<uint64_t> BenefitClockPolicy::PickVictim(
    double incoming_benefit) {
  if (map_.empty()) return std::nullopt;
  if (incoming_benefit <= 0) incoming_benefit = 1.0;
  // Sweep, decrementing weights by the incoming chunk's benefit; an entry
  // whose weight was already exhausted is the victim. The sweep is bounded:
  // if no weight drains within a few cycles (a stream of tiny chunks
  // hitting a cache of expensive ones), evict the minimum-weight entry seen
  // rather than spinning.
  const size_t max_steps = 4 * ring_.size() + 4;
  std::optional<uint64_t> min_handle;
  double min_weight = 0;
  for (size_t steps = 0; steps < max_steps; ++steps) {
    auto idx = Advance();
    if (!idx) return std::nullopt;
    Slot& s = ring_[*idx];
    if (s.weight <= 0) return s.handle;
    if (!min_handle || s.weight < min_weight) {
      min_handle = s.handle;
      min_weight = s.weight;
    }
    s.weight -= incoming_benefit;
  }
  return min_handle;
}

// ---------------------------------- Factory ---------------------------------

std::unique_ptr<ReplacementPolicy> MakePolicy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "clock") return std::make_unique<ClockPolicy>();
  if (name == "benefit-clock") return std::make_unique<BenefitClockPolicy>();
  return nullptr;
}

}  // namespace chunkcache::cache
