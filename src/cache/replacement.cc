#include "cache/replacement.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace chunkcache::cache {

// ----------------------------------- LRU ------------------------------------

void LruPolicy::OnInsert(uint64_t handle, double /*benefit*/) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  order_.push_front(handle);
  map_[handle] = order_.begin();
}

void LruPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  order_.erase(it->second);
  map_.erase(it);
}

std::optional<uint64_t> LruPolicy::PickVictim(double /*incoming_benefit*/) {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

// --------------------------------- ClockBase --------------------------------

void ClockBase::OnInsert(uint64_t handle, double benefit) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  Slot slot;
  slot.handle = handle;
  slot.weight = benefit;
  slot.alive = true;
  if (arm_ == 0 || arm_ >= ring_.size()) {
    // Arm at ring start (or unnormalized past the end): appending puts the
    // new slot at the end of the current sweep, i.e. just behind the arm.
    map_[handle] = ring_.size();
    ring_.push_back(slot);
  } else {
    // Insert just behind the arm so the new entry is always examined last
    // in the current sweep. A plain push_back would place it mid-sweep
    // (between the arm's wrap point and the arm), making eviction order
    // depend on where the arm happened to sit — and on whether Compact()
    // had reset it — when the insert landed.
    ring_.insert(ring_.begin() + static_cast<ptrdiff_t>(arm_), slot);
    for (auto& [h, idx] : map_) {
      if (idx >= arm_) ++idx;
    }
    map_[handle] = arm_;
    ++arm_;
  }
  if (dead_ > map_.size()) Compact();
}

void ClockBase::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  ring_[it->second].alive = false;
  ++dead_;
  map_.erase(it);
  if (dead_ > map_.size() + 16) Compact();
}

void ClockBase::Compact() {
  std::vector<Slot> fresh;
  fresh.reserve(map_.size());
  // Rebuild starting at the arm: the circular sweep order is preserved
  // exactly (slot k of the new ring is the k-th live slot the arm would
  // have visited), so compaction can never change which entry a future
  // sweep reaches first.
  if (!ring_.empty()) {
    const size_t start = arm_ % ring_.size();
    for (size_t i = 0; i < ring_.size(); ++i) {
      const Slot& s = ring_[(start + i) % ring_.size()];
      if (s.alive) fresh.push_back(s);
    }
  }
  ring_ = std::move(fresh);
  for (size_t i = 0; i < ring_.size(); ++i) map_[ring_[i].handle] = i;
  arm_ = 0;
  dead_ = 0;
}

std::optional<size_t> ClockBase::Advance() {
  if (map_.empty()) return std::nullopt;
  while (true) {
    if (arm_ >= ring_.size()) arm_ = 0;
    if (ring_[arm_].alive) {
      const size_t idx = arm_;
      arm_ = (arm_ + 1) % (ring_.empty() ? 1 : ring_.size());
      return idx;
    }
    ++arm_;
  }
}

// ----------------------------------- CLOCK ----------------------------------

void ClockPolicy::OnInsert(uint64_t handle, double /*benefit*/) {
  ClockBase::OnInsert(handle, /*benefit=*/1.0);  // reference bit set
}

void ClockPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  ring_[it->second].weight = 1.0;
}

std::optional<uint64_t> ClockPolicy::PickVictim(double /*incoming*/) {
  // Classic second chance: clear reference bits until an unreferenced
  // entry comes under the arm. Bounded by live entries so the bound (never
  // reached in practice) is compaction-invariant.
  for (size_t steps = 0; steps < 2 * map_.size() + 1; ++steps) {
    auto idx = Advance();
    if (!idx) return std::nullopt;
    Slot& s = ring_[*idx];
    if (s.weight > 0) {
      s.weight = 0;
    } else {
      return s.handle;
    }
  }
  return std::nullopt;  // unreachable with live entries
}

// ------------------------------- Benefit CLOCK -------------------------------

void BenefitClockPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  // "The weight is reset to its initial benefit value whenever the chunk is
  // reaccessed."
  ring_[it->second].weight = benefit_[handle];
}

std::optional<uint64_t> BenefitClockPolicy::PickVictim(
    double incoming_benefit) {
  if (map_.empty()) return std::nullopt;
  if (incoming_benefit <= 0) incoming_benefit = 1.0;
  // Sweep, decrementing weights by the incoming chunk's benefit; an entry
  // whose weight was already exhausted is the victim. The sweep is bounded:
  // if no weight drains within a few cycles (a stream of tiny chunks
  // hitting a cache of expensive ones), evict the minimum-weight entry seen
  // rather than spinning. The bound counts live entries (Advance() skips
  // dead slots), so it is invariant under ring compaction — the forced-
  // compaction determinism test relies on that.
  const size_t max_steps = 4 * map_.size() + 4;
  std::optional<uint64_t> min_handle;
  double min_weight = 0;
  for (size_t steps = 0; steps < max_steps; ++steps) {
    auto idx = Advance();
    if (!idx) return std::nullopt;
    Slot& s = ring_[*idx];
    if (s.weight <= 0) return s.handle;
    if (!min_handle || s.weight < min_weight) {
      min_handle = s.handle;
      min_weight = s.weight;
    }
    s.weight -= incoming_benefit;
  }
  return min_handle;
}

// ------------------------------------ ARC -----------------------------------

void ArcPolicy::OnInsertKeyed(uint64_t handle, uint64_t key_id,
                              double /*benefit*/) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  auto git = ghosts_.find(key_id);
  if (git != ghosts_.end()) {
    // Ghost hit: the key was evicted recently, so the eviction was a
    // mistake of the current recency/frequency split — adapt p toward the
    // list that remembered it, and admit straight into T2.
    const double b1 = static_cast<double>(b1_.size());
    const double b2 = static_cast<double>(b2_.size());
    if (git->second.first == kT1) {  // remembered by B1 (recency ghost)
      p_ = std::min(static_cast<double>(c_),
                    p_ + std::max(1.0, b2 / std::max(1.0, b1)));
    } else {  // remembered by B2 (frequency ghost)
      p_ = std::max(0.0, p_ - std::max(1.0, b1 / std::max(1.0, b2)));
    }
    EraseGhost(key_id);
    t2_.push_front(handle);
    map_[handle] = Pos{kT2, t2_.begin(), key_id};
  } else {
    t1_.push_front(handle);
    map_[handle] = Pos{kT1, t1_.begin(), key_id};
  }
  c_ = std::max(c_, map_.size());
  TrimGhosts();
}

void ArcPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  Pos& pos = it->second;
  if (pos.where == kT1) {
    t1_.erase(pos.it);
    t2_.push_front(handle);
    pos.where = kT2;
    pos.it = t2_.begin();
  } else {
    t2_.splice(t2_.begin(), t2_, pos.it);
  }
}

void ArcPolicy::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  const Pos pos = it->second;
  if (pos.where == kT1) {
    t1_.erase(pos.it);
  } else {
    t2_.erase(pos.it);
  }
  map_.erase(it);
  // Every departure leaves a ghost so a prompt re-fetch is recognized.
  EraseGhost(pos.key_id);
  if (pos.where == kT1) {
    b1_.push_front(pos.key_id);
    ghosts_[pos.key_id] = {kT1, b1_.begin()};
  } else {
    b2_.push_front(pos.key_id);
    ghosts_[pos.key_id] = {kT2, b2_.begin()};
  }
  TrimGhosts();
}

std::optional<uint64_t> ArcPolicy::PickVictim(double /*incoming_benefit*/) {
  if (map_.empty()) return std::nullopt;
  const size_t target = std::max<size_t>(1, static_cast<size_t>(p_));
  if (!t1_.empty() && (t1_.size() > target || t2_.empty())) {
    return t1_.back();
  }
  if (!t2_.empty()) return t2_.back();
  return t1_.back();
}

void ArcPolicy::TrimGhosts() {
  while (b1_.size() > c_) {
    ghosts_.erase(b1_.back());
    b1_.pop_back();
  }
  while (b2_.size() > c_) {
    ghosts_.erase(b2_.back());
    b2_.pop_back();
  }
}

void ArcPolicy::EraseGhost(uint64_t key_id) {
  auto it = ghosts_.find(key_id);
  if (it == ghosts_.end()) return;
  if (it->second.first == kT1) {
    b1_.erase(it->second.second);
  } else {
    b2_.erase(it->second.second);
  }
  ghosts_.erase(it);
}

// -------------------------------- LFU + aging -------------------------------

double LfuAgingPolicy::Effective(const Entry& e) const {
  const uint64_t delta = epoch_ - e.epoch;
  const double freq = delta > 64 ? 0.0 : std::ldexp(e.freq, -static_cast<int>(delta));
  return weight_by_benefit_ ? freq * e.benefit : freq;
}

void LfuAgingPolicy::Tick() {
  ++ops_;
  if (ops_ % age_period_ == 0) ++epoch_;
}

void LfuAgingPolicy::OnInsert(uint64_t handle, double benefit) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  Tick();
  Entry e;
  e.freq = 1.0;
  e.epoch = epoch_;
  e.benefit = benefit > 0 ? benefit : 1.0;
  e.seq = seq_++;
  map_[handle] = e;
}

void LfuAgingPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  Tick();
  Entry& e = it->second;
  // Rebase the lazily-aged count to the current epoch, then bump it.
  const uint64_t delta = epoch_ - e.epoch;
  e.freq = (delta > 64 ? 0.0 : std::ldexp(e.freq, -static_cast<int>(delta))) + 1.0;
  e.epoch = epoch_;
}

void LfuAgingPolicy::OnErase(uint64_t handle) { map_.erase(handle); }

std::optional<uint64_t> LfuAgingPolicy::PickVictim(double /*incoming*/) {
  if (map_.empty()) return std::nullopt;
  // O(n) min scan; ties break on the oldest insertion sequence so the
  // victim is independent of hash-map iteration order.
  const Entry* best = nullptr;
  uint64_t best_handle = 0;
  double best_score = 0;
  for (const auto& [handle, e] : map_) {
    const double score = Effective(e);
    if (!best || score < best_score ||
        (score == best_score && e.seq < best->seq)) {
      best = &e;
      best_handle = handle;
      best_score = score;
    }
  }
  return best_handle;
}

// ----------------------------------- SLRU -----------------------------------

void SlruPolicy::OnInsert(uint64_t handle, double /*benefit*/) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  prob_.push_front(handle);
  map_[handle] = Pos{false, prob_.begin()};
}

void SlruPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  Pos& pos = it->second;
  if (pos.prot) {
    prot_.splice(prot_.begin(), prot_, pos.it);
  } else {
    prob_.erase(pos.it);
    prot_.push_front(handle);
    pos.prot = true;
    pos.it = prot_.begin();
    EnforceProtectedCap();
  }
}

void SlruPolicy::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  if (it->second.prot) {
    prot_.erase(it->second.it);
  } else {
    prob_.erase(it->second.it);
  }
  map_.erase(it);
  EnforceProtectedCap();
}

std::optional<uint64_t> SlruPolicy::PickVictim(double /*incoming*/) {
  if (!prob_.empty()) return prob_.back();
  if (!prot_.empty()) return prot_.back();
  return std::nullopt;
}

void SlruPolicy::EnforceProtectedCap() {
  const size_t cap = std::max<size_t>(1, (4 * map_.size()) / 5);
  while (prot_.size() > cap) {
    const uint64_t demoted = prot_.back();
    prot_.pop_back();
    prob_.push_front(demoted);
    auto it = map_.find(demoted);
    CHUNKCACHE_DCHECK(it != map_.end());
    it->second.prot = false;
    it->second.it = prob_.begin();
  }
}

// ------------------------------------ 2Q ------------------------------------

void TwoQPolicy::OnInsertKeyed(uint64_t handle, uint64_t key_id,
                               double /*benefit*/) {
  CHUNKCACHE_DCHECK(map_.find(handle) == map_.end());
  auto git = ghosts_.find(key_id);
  if (git != ghosts_.end()) {
    // A1out ghost hit: the key came back after leaving the FIFO, so it is
    // genuinely re-referenced — admit straight into the real LRU (Am).
    a1out_.erase(git->second);
    ghosts_.erase(git);
    am_.push_front(handle);
    map_[handle] = Pos{kAm, am_.begin(), key_id};
  } else {
    a1in_.push_front(handle);
    map_[handle] = Pos{kA1in, a1in_.begin(), key_id};
  }
  c_ = std::max(c_, map_.size());
  TrimGhosts();
}

void TwoQPolicy::OnAccess(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  // A1in hits deliberately do nothing: a burst of accesses during one scan
  // must not promote a one-shot entry.
  if (it->second.where == kAm) {
    am_.splice(am_.begin(), am_, it->second.it);
  }
}

void TwoQPolicy::OnErase(uint64_t handle) {
  auto it = map_.find(handle);
  if (it == map_.end()) return;
  const Pos pos = it->second;
  map_.erase(it);
  if (pos.where == kA1in) {
    a1in_.erase(pos.it);
    // Only A1in departures are ghosted (classic 2Q): a second miss on the
    // key within the A1out window proves re-reference.
    auto git = ghosts_.find(pos.key_id);
    if (git != ghosts_.end()) a1out_.erase(git->second);
    a1out_.push_front(pos.key_id);
    ghosts_[pos.key_id] = a1out_.begin();
    TrimGhosts();
  } else {
    am_.erase(pos.it);
  }
}

std::optional<uint64_t> TwoQPolicy::PickVictim(double /*incoming*/) {
  if (map_.empty()) return std::nullopt;
  if (a1in_.empty()) return am_.back();
  if (am_.empty()) return a1in_.back();
  const size_t kin = std::max<size_t>(1, c_ / 4);
  if (a1in_.size() > kin) return a1in_.back();
  return am_.back();
}

void TwoQPolicy::TrimGhosts() {
  while (a1out_.size() > c_) {
    ghosts_.erase(a1out_.back());
    a1out_.pop_back();
  }
}

// ---------------------------------- Factory ---------------------------------

const std::vector<std::string>& KnownPolicyNames() {
  static const std::vector<std::string> kNames = {
      "lru",  "clock",     "benefit-clock",     "arc",
      "slru", "2q",        "lfu-aging",         "benefit-lfu-aging",
  };
  return kNames;
}

std::unique_ptr<ReplacementPolicy> MakePolicy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "clock") return std::make_unique<ClockPolicy>();
  if (name == "benefit-clock") return std::make_unique<BenefitClockPolicy>();
  if (name == "arc") return std::make_unique<ArcPolicy>();
  if (name == "slru") return std::make_unique<SlruPolicy>();
  if (name == "2q") return std::make_unique<TwoQPolicy>();
  if (name == "lfu-aging") {
    return std::make_unique<LfuAgingPolicy>(/*weight_by_benefit=*/false);
  }
  if (name == "benefit-lfu-aging") {
    return std::make_unique<LfuAgingPolicy>(/*weight_by_benefit=*/true);
  }
  return nullptr;
}

std::unique_ptr<ReplacementPolicy> MakePolicyOrDie(const std::string& name) {
  auto policy = MakePolicy(name);
  if (!policy) {
    std::string known;
    for (const auto& n : KnownPolicyNames()) {
      known += known.empty() ? n : (", " + n);
    }
    std::fprintf(stderr,
                 "unknown replacement policy \"%s\"; valid policies: %s\n",
                 name.c_str(), known.c_str());
    std::abort();
  }
  return policy;
}

}  // namespace chunkcache::cache
