#ifndef CHUNKCACHE_CACHE_QUERY_CACHE_H_
#define CHUNKCACHE_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/star_join_query.h"
#include "cache/replacement.h"
#include "storage/tuple.h"

namespace chunkcache::cache {

/// One cached query result (the query-level caching baseline): the full
/// result rows of `query`, reusable for any new query it *contains*.
struct CachedQuery {
  backend::StarJoinQuery query;
  double benefit = 0;
  std::vector<storage::AggTuple> rows;

  uint64_t ByteSize() const {
    return sizeof(CachedQuery) + rows.size() * sizeof(storage::AggTuple);
  }
};

struct QueryCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;
  uint64_t containment_checks = 0;  ///< Candidate queries examined.
};

/// Query-level result cache with containment-based reuse — the baseline the
/// paper compares against. A new query can be answered from a cached one
/// only when (Section 5.2.1):
///   1. the aggregation levels match exactly,
///   2. the non-group-by selections match exactly, and
///   3. the new query's group-by selection is contained in the cached one.
/// Containment testing scans all cached queries of the same group-by (the
/// linear cost the paper criticizes); replacement is benefit-weighted like
/// the chunk cache's.
class QueryCache {
 public:
  QueryCache(uint64_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Finds a cached query containing `q`; refreshes its replacement state
  /// on a hit. Pointer valid until the next Insert/Clear.
  const CachedQuery* FindContaining(const backend::StarJoinQuery& q);

  /// Inserts a full query result, evicting per policy until it fits.
  /// Identical queries replace their previous entry; overlapping but
  /// different queries are stored redundantly (that is the baseline's
  /// documented weakness).
  void Insert(CachedQuery entry);

  void Clear();

  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_queries() const { return by_handle_.size(); }
  const QueryCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = QueryCacheStats(); }

 private:
  void Erase(uint64_t handle);

  uint64_t capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  uint64_t next_handle_ = 1;
  std::unordered_map<uint64_t, CachedQuery> by_handle_;
  // group-by id is not interned here (the cache is schema-agnostic), so we
  // bucket candidates by a hash of the group-by levels.
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_group_by_;
  uint64_t bytes_used_ = 0;
  QueryCacheStats stats_;
};

/// True if `outer` contains `inner` per the three reuse conditions.
bool QueryContains(const backend::StarJoinQuery& outer,
                   const backend::StarJoinQuery& inner);

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_QUERY_CACHE_H_
