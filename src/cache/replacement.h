#ifndef CHUNKCACHE_CACHE_REPLACEMENT_H_
#define CHUNKCACHE_CACHE_REPLACEMENT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace chunkcache::cache {

/// Victim-selection policy for a cache of variable-benefit entries. The
/// cache identifies entries by opaque handles; the policy tracks access
/// recency and/or benefit weights and nominates eviction victims.
///
/// Implementations provided:
///  - LruPolicy:          exact LRU (list-based).
///  - ClockPolicy:        CLOCK, the LRU approximation the paper uses.
///  - BenefitClockPolicy: the paper's benefit-weighted CLOCK (Section 5.4).
///  - ArcPolicy:          ARC [Megiddo & Modha FAST'03] — two live lists
///    (recency T1, frequency T2) plus two ghost lists (B1, B2) of recently
///    evicted keys; ghost hits adapt the recency/frequency split online.
///  - LfuAgingPolicy:     LFU with periodic exponential aging (frequency
///    halves every epoch), optionally weighting scores by entry benefit.
///  - SlruPolicy:         segmented LRU — probationary + protected
///    segments; only a re-accessed entry earns protection.
///  - TwoQPolicy:         2Q [Johnson & Shasha VLDB'94] — A1in FIFO for
///    first-timers, Am LRU for proven-hot entries, A1out ghost keys.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Registers a new entry with the given benefit.
  virtual void OnInsert(uint64_t handle, double benefit) = 0;

  /// Keyed insert: `key_id` is a stable identity that survives
  /// re-insertion of the same cache key under a fresh handle (the chunk
  /// cache mints a new handle per insert). Policies with ghost lists
  /// (ARC, 2Q) override this so an entry evicted and re-fetched is
  /// recognized; the default forwards to OnInsert.
  virtual void OnInsertKeyed(uint64_t handle, uint64_t key_id,
                             double benefit) {
    (void)key_id;
    OnInsert(handle, benefit);
  }

  /// Notes a cache hit on `handle`.
  virtual void OnAccess(uint64_t handle) = 0;

  /// Removes `handle` from the policy's books (entry evicted or dropped).
  virtual void OnErase(uint64_t handle) = 0;

  /// Nominates an eviction victim to make room for an incoming entry of
  /// benefit `incoming_benefit`. Returns nullopt only when empty.
  virtual std::optional<uint64_t> PickVictim(double incoming_benefit) = 0;

  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
};

/// Exact LRU via an intrusive list.
class LruPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnAccess(uint64_t handle) override;
  void OnErase(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "lru"; }
  size_t size() const override { return map_.size(); }

 private:
  std::list<uint64_t> order_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

/// Shared machinery for the two CLOCK variants: a ring of slots with a
/// sweeping arm; erased entries leave tombstones that are compacted when
/// they outnumber live entries.
///
/// Determinism: a new entry always enters the ring *just behind* the arm,
/// so it is examined last in the current sweep — regardless of where the
/// arm sits or whether tombstone compaction has renumbered the ring.
/// Compact() rebuilds the ring starting at the arm, which preserves the
/// circular sweep order exactly; eviction order is therefore identical
/// with and without compaction (regression-tested).
class ClockBase : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnErase(uint64_t handle) override;
  size_t size() const override { return map_.size(); }

  /// Forces tombstone compaction now. Exposed so tests can assert that
  /// compaction never changes the eviction order; harmless otherwise.
  void ForceCompact() { Compact(); }

 protected:
  struct Slot {
    uint64_t handle = 0;
    double weight = 0;  // reference bit (0/1) for plain CLOCK
    bool alive = false;
  };

  void Compact();
  /// Advances the arm to the next live slot; returns its index or nullopt
  /// when the ring has no live slots.
  std::optional<size_t> Advance();

  std::vector<Slot> ring_;
  std::unordered_map<uint64_t, size_t> map_;  // handle -> ring index
  size_t arm_ = 0;
  size_t dead_ = 0;
};

/// Plain CLOCK (second chance): weight is a 0/1 reference bit.
class ClockPolicy final : public ClockBase {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnAccess(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "clock"; }
};

/// The paper's benefit-weighted CLOCK (Section 5.4).
class BenefitClockPolicy final : public ClockBase {
 public:
  void OnAccess(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "benefit-clock"; }

 private:
  // Remembers each entry's initial benefit so re-access can reset weight.
  std::unordered_map<uint64_t, double> benefit_;

 public:
  void OnInsert(uint64_t handle, double benefit) override {
    ClockBase::OnInsert(handle, benefit);
    benefit_[handle] = benefit;
  }
  void OnErase(uint64_t handle) override {
    ClockBase::OnErase(handle);
    benefit_.erase(handle);
  }
};

/// ARC: live T1 (seen once) / T2 (seen twice+) lists plus ghost B1/B2 key
/// lists. A miss whose key sits in a ghost list re-enters as frequent (T2)
/// and moves the adaptive target p toward the list that ghost-hit: B1 hits
/// grow the recency share, B2 hits grow the frequency share. The policy
/// does not know the cache's byte budget, so its notion of capacity c is
/// the live-entry high-water mark; each ghost list is bounded by c.
class ArcPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override {
    OnInsertKeyed(handle, handle, benefit);
  }
  void OnInsertKeyed(uint64_t handle, uint64_t key_id,
                     double benefit) override;
  void OnAccess(uint64_t handle) override;
  void OnErase(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "arc"; }
  size_t size() const override { return map_.size(); }

  double target_p() const { return p_; }
  size_t ghost_size() const { return ghosts_.size(); }

 private:
  enum Where : uint8_t { kT1, kT2 };
  struct Pos {
    Where where;
    std::list<uint64_t>::iterator it;
    uint64_t key_id;
  };
  void TrimGhosts();
  void EraseGhost(uint64_t key_id);

  std::list<uint64_t> t1_, t2_;  // handles; front = MRU
  std::list<uint64_t> b1_, b2_;  // ghost key ids; front = MRU
  std::unordered_map<uint64_t, Pos> map_;  // live handles
  // ghost key -> (which B list (kT1 => B1), iterator)
  std::unordered_map<uint64_t, std::pair<Where, std::list<uint64_t>::iterator>>
      ghosts_;
  double p_ = 0;   // target size of T1 (recency share)
  size_t c_ = 1;   // live-entry high-water mark (capacity estimate)
};

/// LFU with periodic exponential aging: an entry's frequency halves every
/// `age_period` policy events, so stale popularity decays instead of
/// pinning dead entries forever (the classic LFU failure mode). Aging is
/// lazy — each entry stores the epoch of its last touch and its count is
/// scaled by 2^-(age) on read. With `weight_by_benefit`, the eviction
/// score is frequency x benefit, so cheap-to-recompute entries go first
/// among equally popular ones. Victim selection scans live entries
/// (O(n)); ties break on insertion sequence, so the choice is fully
/// deterministic for a given operation trace.
class LfuAgingPolicy final : public ReplacementPolicy {
 public:
  explicit LfuAgingPolicy(bool weight_by_benefit, uint32_t age_period = 512)
      : weight_by_benefit_(weight_by_benefit), age_period_(age_period) {}

  void OnInsert(uint64_t handle, double benefit) override;
  void OnAccess(uint64_t handle) override;
  void OnErase(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override {
    return weight_by_benefit_ ? "benefit-lfu-aging" : "lfu-aging";
  }
  size_t size() const override { return map_.size(); }

 private:
  struct Entry {
    double freq = 0;      // count as of `epoch`
    uint64_t epoch = 0;   // last touch epoch
    double benefit = 1;
    uint64_t seq = 0;     // insertion sequence, deterministic tie-break
  };
  double Effective(const Entry& e) const;
  void Tick();

  const bool weight_by_benefit_;
  const uint32_t age_period_;
  std::unordered_map<uint64_t, Entry> map_;
  uint64_t epoch_ = 0;
  uint64_t ops_ = 0;
  uint64_t seq_ = 0;
};

/// Segmented LRU: new entries enter a probationary segment; a hit promotes
/// to the protected segment (capped at ~4/5 of live entries, overflow
/// demotes the protected LRU back to probationary MRU). Victims come from
/// the probationary tail, so scan floods never displace proven-hot
/// entries.
class SlruPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnAccess(uint64_t handle) override;
  void OnErase(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "slru"; }
  size_t size() const override { return map_.size(); }

 private:
  struct Pos {
    bool prot;
    std::list<uint64_t>::iterator it;
  };
  void EnforceProtectedCap();

  std::list<uint64_t> prob_, prot_;  // front = MRU
  std::unordered_map<uint64_t, Pos> map_;
};

/// 2Q: first-time entries queue in A1in (FIFO — hits there do NOT refresh,
/// filtering one-shot scans); an entry whose key ghost-hits A1out re-enters
/// the real LRU Am. Victims drain A1in while it exceeds ~1/4 of live
/// entries, else the Am tail.
class TwoQPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override {
    OnInsertKeyed(handle, handle, benefit);
  }
  void OnInsertKeyed(uint64_t handle, uint64_t key_id,
                     double benefit) override;
  void OnAccess(uint64_t handle) override;
  void OnErase(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "2q"; }
  size_t size() const override { return map_.size(); }

  size_t ghost_size() const { return ghosts_.size(); }

 private:
  enum Where : uint8_t { kA1in, kAm };
  struct Pos {
    Where where;
    std::list<uint64_t>::iterator it;
    uint64_t key_id;
  };
  void TrimGhosts();

  std::list<uint64_t> a1in_;  // handles; front = newest (FIFO)
  std::list<uint64_t> am_;    // handles; front = MRU
  std::list<uint64_t> a1out_; // ghost key ids; front = newest
  std::unordered_map<uint64_t, Pos> map_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> ghosts_;
  size_t c_ = 1;  // live-entry high-water mark
};

/// All policy names MakePolicy accepts, in canonical order. The benefit-*
/// variants fold entry benefit into victim selection; the rest are
/// benefit-blind.
const std::vector<std::string>& KnownPolicyNames();

/// Factory by name for experiment knobs. Returns nullptr for unknown
/// names; callers that cannot proceed without a policy should use
/// MakePolicyOrDie for a message listing the valid names.
std::unique_ptr<ReplacementPolicy> MakePolicy(const std::string& name);

/// MakePolicy, but aborts with a clear message naming every valid policy
/// when `name` is unknown — never silently substitutes a default.
std::unique_ptr<ReplacementPolicy> MakePolicyOrDie(const std::string& name);

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_REPLACEMENT_H_
