#ifndef CHUNKCACHE_CACHE_REPLACEMENT_H_
#define CHUNKCACHE_CACHE_REPLACEMENT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace chunkcache::cache {

/// Victim-selection policy for a cache of variable-benefit entries. The
/// cache identifies entries by opaque handles; the policy tracks access
/// recency and/or benefit weights and nominates eviction victims.
///
/// Implementations provided (Section 5.4 of the paper):
///  - LruPolicy:          exact LRU (list-based).
///  - ClockPolicy:        CLOCK, the LRU approximation the paper uses.
///  - BenefitClockPolicy: CLOCK combined with chunk benefit — an entry's
///    weight starts at its benefit, the sweeping arm reduces it by the
///    *incoming* entry's benefit, and an entry whose weight has reached
///    zero is replaceable; re-access resets the weight.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Registers a new entry with the given benefit.
  virtual void OnInsert(uint64_t handle, double benefit) = 0;

  /// Notes a cache hit on `handle`.
  virtual void OnAccess(uint64_t handle) = 0;

  /// Removes `handle` from the policy's books (entry evicted or dropped).
  virtual void OnErase(uint64_t handle) = 0;

  /// Nominates an eviction victim to make room for an incoming entry of
  /// benefit `incoming_benefit`. Returns nullopt only when empty.
  virtual std::optional<uint64_t> PickVictim(double incoming_benefit) = 0;

  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
};

/// Exact LRU via an intrusive list.
class LruPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnAccess(uint64_t handle) override;
  void OnErase(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "lru"; }
  size_t size() const override { return map_.size(); }

 private:
  std::list<uint64_t> order_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

/// Shared machinery for the two CLOCK variants: a ring of slots with a
/// sweeping arm; erased entries leave tombstones that are compacted when
/// they outnumber live entries.
class ClockBase : public ReplacementPolicy {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnErase(uint64_t handle) override;
  size_t size() const override { return map_.size(); }

 protected:
  struct Slot {
    uint64_t handle = 0;
    double weight = 0;  // reference bit (0/1) for plain CLOCK
    bool alive = false;
  };

  void Compact();
  /// Advances the arm to the next live slot; returns its index or nullopt
  /// when the ring has no live slots.
  std::optional<size_t> Advance();

  std::vector<Slot> ring_;
  std::unordered_map<uint64_t, size_t> map_;  // handle -> ring index
  size_t arm_ = 0;
  size_t dead_ = 0;
};

/// Plain CLOCK (second chance): weight is a 0/1 reference bit.
class ClockPolicy final : public ClockBase {
 public:
  void OnInsert(uint64_t handle, double benefit) override;
  void OnAccess(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "clock"; }
};

/// The paper's benefit-weighted CLOCK (Section 5.4).
class BenefitClockPolicy final : public ClockBase {
 public:
  void OnAccess(uint64_t handle) override;
  std::optional<uint64_t> PickVictim(double incoming_benefit) override;
  std::string name() const override { return "benefit-clock"; }

 private:
  // Remembers each entry's initial benefit so re-access can reset weight.
  std::unordered_map<uint64_t, double> benefit_;

 public:
  void OnInsert(uint64_t handle, double benefit) override {
    ClockBase::OnInsert(handle, benefit);
    benefit_[handle] = benefit;
  }
  void OnErase(uint64_t handle) override {
    ClockBase::OnErase(handle);
    benefit_.erase(handle);
  }
};

/// Factory by name ("lru", "clock", "benefit-clock") for experiment knobs.
std::unique_ptr<ReplacementPolicy> MakePolicy(const std::string& name);

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_REPLACEMENT_H_
