#include "cache/decoded_cache.h"

namespace chunkcache::cache {

DecodedCache::DecodedCache(uint64_t capacity_bytes, MetricsRegistry* metrics)
    : capacity_bytes_(capacity_bytes) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->GetCounter("cache.decoded_lru_hits");
  evictions_ = metrics->GetCounter("cache.decoded_lru_evictions");
  bytes_gauge_ = metrics->GetGauge("cache.decoded_lru_bytes");
}

std::shared_ptr<const storage::AggColumns> DecodedCache::Get(
    const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void DecodedCache::Put(const ChunkKey& key,
                       std::shared_ptr<const storage::AggColumns> cols) {
  if (cols == nullptr) return;
  const uint64_t bytes = cols->ByteSize();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_used_ -= it->second->second->ByteSize();
    it->second->second = std::move(cols);
    bytes_used_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    if (bytes > capacity_bytes_) return;  // would evict everything for one
    lru_.emplace_front(key, std::move(cols));
    index_[key] = lru_.begin();
    bytes_used_ += bytes;
  }
  EvictOverBudgetLocked();
  bytes_gauge_->Set(static_cast<int64_t>(bytes_used_));
}

void DecodedCache::Erase(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_used_ -= it->second->second->ByteSize();
  lru_.erase(it->second);
  index_.erase(it);
  bytes_gauge_->Set(static_cast<int64_t>(bytes_used_));
}

void DecodedCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_used_ = 0;
  bytes_gauge_->Set(0);
}

void DecodedCache::EvictOverBudgetLocked() {
  while (bytes_used_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_used_ -= victim.second->ByteSize();
    index_.erase(victim.first);
    lru_.pop_back();
    evictions_->Increment();
  }
}

uint64_t DecodedCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

size_t DecodedCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace chunkcache::cache
