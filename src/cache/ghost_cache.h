#ifndef CHUNKCACHE_CACHE_GHOST_CACHE_H_
#define CHUNKCACHE_CACHE_GHOST_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/replacement.h"

namespace chunkcache {
class Counter;
class MetricsRegistry;
}  // namespace chunkcache

namespace chunkcache::cache {

/// One policy-event record from the real cache's access stream: key
/// identity, payload size, and insert benefit — no payloads. A recorded
/// trace replayed through a fresh GhostCacheSim must reproduce the online
/// counters exactly (the bench asserts this).
struct GhostEvent {
  uint64_t key_id = 0;
  uint64_t bytes = 0;
  double benefit = 0;
};

/// Per-policy scoreboard row.
struct GhostStanding {
  std::string policy;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
};

/// Simulates one replacement policy against a stream of (key, bytes,
/// benefit) references under a byte budget, holding keys + sizes only.
/// Mirrors ChunkCache's insert semantics: an entry larger than the whole
/// budget is rejected; otherwise victims are evicted until the entry fits,
/// and the entry is rejected if the policy runs out of victims before it
/// does (exactly the real cache's admission loop). The key id doubles
/// as the policy handle, so keyed policies (ARC, 2Q) recognize re-fetched
/// keys exactly as they would with a stable key hash.
///
/// Not thread-safe; GhostCacheSet serializes access.
class GhostCacheSim {
 public:
  GhostCacheSim(const std::string& policy_name, uint64_t capacity_bytes);

  /// Feeds one reference. Returns true on a would-be hit.
  bool Access(uint64_t key_id, uint64_t bytes, double benefit);

  const std::string& policy_name() const { return policy_name_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t bytes_used() const { return bytes_used_; }
  size_t size() const { return entries_.size(); }

 private:
  const std::string policy_name_;
  const uint64_t capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unordered_map<uint64_t, uint64_t> entries_;  // key_id -> bytes
  uint64_t bytes_used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Online shadow simulation of K alternative replacement policies against
/// the real cache's access stream. The real cache calls Access() once per
/// policy event (lookup hit or insert); every simulator sees the same
/// stream, so one run scores every policy at once. Would-be hit/miss/
/// eviction counts are exported to the metrics registry as
/// "cache.ghost.<policy>.hits" / ".misses" / ".evictions".
///
/// With record_trace, the set also keeps the event stream (capped) so a
/// dedicated replay can verify the online standings event-for-event.
class GhostCacheSet {
 public:
  /// `policies` must all be valid MakePolicy names (checked fatally).
  /// `metrics` may be null (counters skipped, standings still tracked).
  GhostCacheSet(const std::vector<std::string>& policies,
                uint64_t capacity_bytes, MetricsRegistry* metrics,
                bool record_trace = false, size_t trace_cap = 1u << 22);
  ~GhostCacheSet();

  GhostCacheSet(const GhostCacheSet&) = delete;
  GhostCacheSet& operator=(const GhostCacheSet&) = delete;

  /// Feeds one reference from the real access stream to every simulator.
  void Access(uint64_t key_id, uint64_t bytes, double benefit);

  std::vector<GhostStanding> Standings() const;

  /// Copy of the recorded event stream (empty unless record_trace). If the
  /// cap was hit, trace_truncated() is true and replay validation is off.
  std::vector<GhostEvent> Trace() const;
  bool trace_truncated() const;

  size_t num_policies() const { return sims_.size(); }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct PolicyCounters {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* evictions = nullptr;
  };

  const uint64_t capacity_bytes_;
  const bool record_trace_;
  const size_t trace_cap_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<GhostCacheSim>> sims_;
  std::vector<PolicyCounters> counters_;
  std::vector<uint64_t> exported_evictions_;  // last value pushed to registry
  std::vector<GhostEvent> trace_;
  bool trace_truncated_ = false;
};

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_GHOST_CACHE_H_
