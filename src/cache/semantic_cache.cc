#include "cache/semantic_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace chunkcache::cache {

using schema::OrdinalRange;

std::optional<RegionBox> IntersectBoxes(const RegionBox& a,
                                        const RegionBox& b) {
  CHUNKCACHE_DCHECK(a.num_dims == b.num_dims);
  RegionBox out;
  out.num_dims = a.num_dims;
  for (uint32_t d = 0; d < a.num_dims; ++d) {
    const uint32_t lo = std::max(a.ranges[d].begin, b.ranges[d].begin);
    const uint32_t hi = std::min(a.ranges[d].end, b.ranges[d].end);
    if (lo > hi) return std::nullopt;
    out.ranges[d] = OrdinalRange{lo, hi};
  }
  return out;
}

std::vector<RegionBox> SubtractBox(const RegionBox& a, const RegionBox& b) {
  auto inter = IntersectBoxes(a, b);
  if (!inter) return {a};
  std::vector<RegionBox> pieces;
  // Peel slabs off `rest` dimension by dimension: everything strictly
  // below / above the intersection on dimension d becomes a piece, and the
  // search continues inside the middle slab. The pieces are disjoint and
  // tile a \ b.
  RegionBox rest = a;
  for (uint32_t d = 0; d < a.num_dims; ++d) {
    if (rest.ranges[d].begin < inter->ranges[d].begin) {
      RegionBox below = rest;
      below.ranges[d] =
          OrdinalRange{rest.ranges[d].begin, inter->ranges[d].begin - 1};
      pieces.push_back(below);
    }
    if (rest.ranges[d].end > inter->ranges[d].end) {
      RegionBox above = rest;
      above.ranges[d] =
          OrdinalRange{inter->ranges[d].end + 1, rest.ranges[d].end};
      pieces.push_back(above);
    }
    rest.ranges[d] = inter->ranges[d];
  }
  return pieces;
}

SemanticRegionCache::SemanticRegionCache(
    uint64_t capacity_bytes, std::unique_ptr<ReplacementPolicy> policy)
    : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  CHUNKCACHE_CHECK(policy_ != nullptr);
}

uint64_t SemanticRegionCache::GroupKey(const chunks::GroupBySpec& spec) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t d = 0; d < spec.num_dims; ++d) {
    h = (h ^ spec.levels[d]) * 0x100000001b3ULL;
  }
  return h;
}

SemanticRegionCache::Probe SemanticRegionCache::Decompose(
    const backend::StarJoinQuery& query) {
  ++stats_.lookups;
  Probe probe;
  RegionBox query_box;
  query_box.num_dims = query.group_by.num_dims;
  for (uint32_t d = 0; d < query_box.num_dims; ++d) {
    query_box.ranges[d] = query.selection[d];
  }
  std::vector<RegionBox> remainder = {query_box};

  auto bucket = by_group_.find(GroupKey(query.group_by));
  if (bucket != by_group_.end()) {
    for (uint64_t handle : bucket->second) {
      if (remainder.empty()) break;
      const SemanticRegion& region = by_handle_.at(handle);
      ++stats_.intersection_tests;
      if (!(region.group_by == query.group_by)) continue;
      if (region.non_group_by != query.non_group_by) continue;
      // Intersect the region with every outstanding remainder piece.
      std::vector<RegionBox> next;
      bool used = false;
      for (const RegionBox& piece : remainder) {
        auto overlap = IntersectBoxes(piece, region.box);
        if (!overlap) {
          next.push_back(piece);
          continue;
        }
        used = true;
        probe.covered.emplace_back(&region, *overlap);
        for (RegionBox& left : SubtractBox(piece, region.box)) {
          next.push_back(left);
        }
      }
      if (used) {
        policy_->OnAccess(handle);
        ++stats_.regions_used;
      }
      remainder = std::move(next);
    }
  }
  probe.remainder = std::move(remainder);
  uint64_t covered_cells = 0;
  for (const auto& [region, box] : probe.covered) covered_cells += box.Volume();
  probe.covered_fraction = query_box.Volume() == 0
                               ? 0.0
                               : static_cast<double>(covered_cells) /
                                     static_cast<double>(query_box.Volume());
  return probe;
}

void SemanticRegionCache::Erase(uint64_t handle) {
  auto it = by_handle_.find(handle);
  CHUNKCACHE_DCHECK(it != by_handle_.end());
  bytes_used_ -= it->second.ByteSize();
  auto bucket = by_group_.find(GroupKey(it->second.group_by));
  if (bucket != by_group_.end()) {
    auto& v = bucket->second;
    v.erase(std::remove(v.begin(), v.end(), handle), v.end());
    if (v.empty()) by_group_.erase(bucket);
  }
  policy_->OnErase(handle);
  by_handle_.erase(it);
}

void SemanticRegionCache::Insert(SemanticRegion region) {
  const uint64_t bytes = region.ByteSize();
  if (bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  while (bytes_used_ + bytes > capacity_bytes_) {
    auto victim = policy_->PickVictim(region.benefit);
    if (!victim) break;
    Erase(*victim);
    ++stats_.evictions;
  }
  if (bytes_used_ + bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  const uint64_t handle = next_handle_++;
  policy_->OnInsert(handle, region.benefit);
  by_group_[GroupKey(region.group_by)].push_back(handle);
  bytes_used_ += bytes;
  by_handle_.emplace(handle, std::move(region));
  ++stats_.insertions;
}

void SemanticRegionCache::Clear() {
  for (const auto& [handle, region] : by_handle_) policy_->OnErase(handle);
  by_handle_.clear();
  by_group_.clear();
  bytes_used_ = 0;
}

}  // namespace chunkcache::cache
