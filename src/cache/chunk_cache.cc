#include "cache/chunk_cache.h"

#include "common/logging.h"

namespace chunkcache::cache {

ChunkCache::ChunkCache(uint64_t capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  CHUNKCACHE_CHECK(policy_ != nullptr);
}

const CachedChunk* ChunkCache::Lookup(uint32_t group_by_id,
                                      uint64_t chunk_num,
                                      uint64_t filter_hash) {
  ++stats_.lookups;
  auto it = by_key_.find(Key{group_by_id, chunk_num, filter_hash});
  if (it == by_key_.end()) return nullptr;
  ++stats_.hits;
  policy_->OnAccess(it->second);
  return &by_handle_.at(it->second);
}

bool ChunkCache::Contains(uint32_t group_by_id, uint64_t chunk_num,
                          uint64_t filter_hash) const {
  return by_key_.find(Key{group_by_id, chunk_num, filter_hash}) !=
         by_key_.end();
}

uint64_t ChunkCache::CountForGroupBy(uint32_t group_by_id) const {
  auto it = per_group_by_.find(group_by_id);
  return it == per_group_by_.end() ? 0 : it->second;
}

void ChunkCache::Erase(uint64_t handle) {
  auto it = by_handle_.find(handle);
  CHUNKCACHE_DCHECK(it != by_handle_.end());
  const CachedChunk& chunk = it->second;
  bytes_used_ -= chunk.ByteSize();
  auto pg = per_group_by_.find(chunk.group_by_id);
  if (pg != per_group_by_.end() && --pg->second == 0) {
    per_group_by_.erase(pg);
  }
  by_key_.erase(Key{chunk.group_by_id, chunk.chunk_num, chunk.filter_hash});
  policy_->OnErase(handle);
  by_handle_.erase(it);
}

void ChunkCache::Insert(CachedChunk chunk) {
  const uint64_t bytes = chunk.ByteSize();
  if (bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  // Replace an existing entry for the same key.
  auto existing = by_key_.find(
      Key{chunk.group_by_id, chunk.chunk_num, chunk.filter_hash});
  if (existing != by_key_.end()) Erase(existing->second);

  // Evict until the newcomer fits.
  while (bytes_used_ + bytes > capacity_bytes_) {
    auto victim = policy_->PickVictim(chunk.benefit);
    if (!victim) break;  // empty cache; nothing to evict
    Erase(*victim);
    ++stats_.evictions;
  }
  if (bytes_used_ + bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  const uint64_t handle = next_handle_++;
  policy_->OnInsert(handle, chunk.benefit);
  per_group_by_[chunk.group_by_id]++;
  by_key_[Key{chunk.group_by_id, chunk.chunk_num, chunk.filter_hash}] =
      handle;
  bytes_used_ += bytes;
  by_handle_.emplace(handle, std::move(chunk));
  ++stats_.insertions;
}

void ChunkCache::Clear() {
  for (const auto& [handle, chunk] : by_handle_) policy_->OnErase(handle);
  by_handle_.clear();
  by_key_.clear();
  per_group_by_.clear();
  bytes_used_ = 0;
}

}  // namespace chunkcache::cache
