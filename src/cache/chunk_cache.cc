#include "cache/chunk_cache.h"

#include <chrono>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace chunkcache::cache {

namespace {
uint32_t RoundUpPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ChunkCache::ChunkCache(uint64_t capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy,
                       MetricsRegistry* metrics)
    : capacity_bytes_(capacity_bytes) {
  CHUNKCACHE_CHECK(policy != nullptr);
  auto shard = std::make_unique<Shard>();
  shard->policy = std::move(policy);
  shard->capacity_bytes = capacity_bytes;
  shards_.push_back(std::move(shard));
  metrics_ = metrics;
  WireMetrics();
}

ChunkCache::ChunkCache(uint64_t capacity_bytes, const std::string& policy,
                       uint32_t num_shards, MetricsRegistry* metrics)
    : capacity_bytes_(capacity_bytes) {
  const uint32_t n = RoundUpPow2(num_shards == 0 ? 1 : num_shards);
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = MakePolicyOrDie(policy);
    shard->capacity_bytes = capacity_bytes / n;
    shards_.push_back(std::move(shard));
  }
  metrics_ = metrics;
  WireMetrics();
}

void ChunkCache::WireMetrics() {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  insertions_ = metrics_->GetCounter("cache.insertions");
  evictions_ = metrics_->GetCounter("cache.evictions");
  rejected_ = metrics_->GetCounter("cache.rejected");
  lock_wait_ns_ = metrics_->GetHistogram("cache.lock_wait_ns");
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "cache.shard" + std::to_string(i);
    shards_[i]->lookups = metrics_->GetCounter(prefix + ".lookups");
    shards_[i]->hits = metrics_->GetCounter(prefix + ".hits");
  }
}

std::unique_lock<std::mutex> ChunkCache::LockShard(const Shard& s) const {
  std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const auto t0 = std::chrono::steady_clock::now();
    lock.lock();
    const auto waited = std::chrono::steady_clock::now() - t0;
    lock_wait_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count()));
  }
  return lock;
}

ChunkHandle ChunkCache::Lookup(uint32_t group_by_id, uint64_t chunk_num,
                               uint64_t filter_hash) {
  const Key key{group_by_id, chunk_num, filter_hash};
  Shard& s = ShardFor(key);
  ChunkHandle out;
  {
    auto lock = LockShard(s);
    s.lookups->Increment();
    auto it = s.by_key.find(key);
    if (it == s.by_key.end()) return nullptr;
    s.hits->Increment();
    s.policy->OnAccess(it->second);
    out = s.by_handle.at(it->second);
  }
  // Shadow simulation sees every policy event (hits here, inserts in
  // Insert), outside the shard lock so it never extends hold times.
  if (GhostCacheSet* ghosts = this->ghosts()) {
    ghosts->Access(KeyHash{}(key), out->ByteSize(), out->benefit);
  }
  return out;
}

bool ChunkCache::Contains(uint32_t group_by_id, uint64_t chunk_num,
                          uint64_t filter_hash) const {
  const Key key{group_by_id, chunk_num, filter_hash};
  Shard& s = ShardFor(key);
  auto lock = LockShard(s);
  return s.by_key.find(key) != s.by_key.end();
}

uint64_t ChunkCache::CountForGroupBy(uint32_t group_by_id) const {
  uint64_t count = 0;
  for (const auto& shard : shards_) {
    auto lock = LockShard(*shard);
    auto it = shard->per_group_by.find(group_by_id);
    if (it != shard->per_group_by.end()) count += it->second;
  }
  return count;
}

void ChunkCache::EraseLocked(Shard& s, uint64_t handle) {
  auto it = s.by_handle.find(handle);
  CHUNKCACHE_DCHECK(it != s.by_handle.end());
  const CachedChunk& chunk = *it->second;
  s.bytes_used -= chunk.ByteSize();
  auto pg = s.per_group_by.find(chunk.group_by_id);
  if (pg != s.per_group_by.end() && --pg->second == 0) {
    s.per_group_by.erase(pg);
  }
  s.by_key.erase(Key{chunk.group_by_id, chunk.chunk_num, chunk.filter_hash});
  s.policy->OnErase(handle);
  // Outstanding ChunkHandles keep the data alive; this only drops the
  // cache's own reference.
  s.by_handle.erase(it);
}

void ChunkCache::Insert(CachedChunk chunk) {
  Insert(std::make_shared<CachedChunk>(std::move(chunk)));
}

void ChunkCache::Insert(std::shared_ptr<CachedChunk> chunk) {
  CHUNKCACHE_CHECK(chunk != nullptr);
  // Injected admission loss: the chunk is simply not cached. Correctness
  // is unaffected — every producer holds its own handle to the data — so
  // this exercises "cache dropped my insert" paths (e.g. degraded answers
  // must not assume their sources stayed resident).
  {
    FaultInjector& fi = FaultInjector::Global();
    if (fi.armed() && fi.ShouldInject(FaultSite::kCacheInsert)) return;
  }
  const Key key{chunk->group_by_id, chunk->chunk_num, chunk->filter_hash};
  Shard& s = ShardFor(key);
  const uint64_t bytes = chunk->ByteSize();
  const double benefit = chunk->benefit;
  // Event-sink bookkeeping: victim keys are collected under the shard lock
  // but delivered only after it is dropped (same discipline as the ghost
  // feed below), so the WAL writer never extends shard hold times.
  std::vector<Key> evicted;
  bool admitted = false;
  std::shared_ptr<const CachedChunk> admitted_entry;
  // Locked admission body as a lambda so every exit path — reject paths
  // included — still feeds the ghost simulators below: a rejected insert
  // is still a reference to the key, and the sims replicate the rejection
  // logic themselves.
  [&] {
    auto lock = LockShard(s);
    if (bytes > s.capacity_bytes) {
      rejected_->Increment();
      return;
    }
    // Replace an existing entry for the same key. Not reported as an
    // eviction to the sink: the admit event that follows overwrites it.
    auto existing = s.by_key.find(key);
    if (existing != s.by_key.end()) EraseLocked(s, existing->second);

    // Evict until the newcomer fits.
    while (s.bytes_used + bytes > s.capacity_bytes) {
      auto victim = s.policy->PickVictim(benefit);
      if (!victim) break;  // empty shard; nothing to evict
      const CachedChunk& v = *s.by_handle.at(*victim);
      evicted.push_back(Key{v.group_by_id, v.chunk_num, v.filter_hash});
      EraseLocked(s, *victim);
      evictions_->Increment();
    }
    if (s.bytes_used + bytes > s.capacity_bytes) {
      rejected_->Increment();
      return;
    }
    const uint64_t handle = s.next_handle++;
    // Keyed insert: the key hash is stable across re-insertions of the
    // same chunk under fresh handles, which is what ghost-listed policies
    // (ARC, 2Q) need to recognize a re-fetched key.
    s.policy->OnInsertKeyed(handle, KeyHash{}(key), benefit);
    s.per_group_by[chunk->group_by_id]++;
    s.by_key[key] = handle;
    s.bytes_used += bytes;
    admitted_entry = chunk;
    admitted = true;
    s.by_handle.emplace(handle, std::move(chunk));
    insertions_->Increment();
  }();
  if (CacheEventSink* sink = sink_live_.load(std::memory_order_acquire)) {
    for (const Key& k : evicted) sink->OnEvict(k);
    if (admitted) sink->OnAdmit(admitted_entry);
  }
  if (GhostCacheSet* ghosts = this->ghosts()) {
    ghosts->Access(KeyHash{}(key), bytes, benefit);
  }
}

void ChunkCache::EnableGhostPolicies(const std::vector<std::string>& policies,
                                     bool record_trace) {
  ghosts_live_.store(nullptr, std::memory_order_release);
  ghosts_.reset();
  if (policies.empty()) return;
  ghosts_ = std::make_unique<GhostCacheSet>(policies, capacity_bytes_,
                                            metrics_, record_trace);
  ghosts_live_.store(ghosts_.get(), std::memory_order_release);
}

void ChunkCache::Clear() {
  CacheEventSink* sink = sink_live_.load(std::memory_order_acquire);
  std::vector<Key> evicted;
  for (const auto& shard : shards_) {
    {
      auto lock = LockShard(*shard);
      for (const auto& [handle, chunk] : shard->by_handle) {
        shard->policy->OnErase(handle);
        if (sink != nullptr) {
          evicted.push_back(
              Key{chunk->group_by_id, chunk->chunk_num, chunk->filter_hash});
        }
      }
      shard->by_handle.clear();
      shard->by_key.clear();
      shard->per_group_by.clear();
      shard->bytes_used = 0;
    }
    // One shard at a time, outside its lock — same contract as Insert.
    for (const Key& k : evicted) sink->OnEvict(k);
    evicted.clear();
  }
}

void ChunkCache::ForEachEntry(
    const std::function<void(const ChunkHandle&)>& fn) const {
  std::vector<ChunkHandle> pinned;
  for (const auto& shard : shards_) {
    pinned.clear();
    {
      auto lock = LockShard(*shard);
      pinned.reserve(shard->by_handle.size());
      for (const auto& [handle, chunk] : shard->by_handle) {
        pinned.push_back(chunk);
      }
    }
    for (const ChunkHandle& h : pinned) fn(h);
  }
}

uint64_t ChunkCache::bytes_used() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = LockShard(*shard);
    total += shard->bytes_used;
  }
  return total;
}

size_t ChunkCache::num_chunks() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = LockShard(*shard);
    total += shard->by_key.size();
  }
  return total;
}

std::string ChunkCache::policy_name() const {
  return shards_[0]->policy->name();
}

ChunkCacheStats ChunkCache::stats() const {
  ChunkCacheStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ChunkShardStats per;
    per.lookups = shard->lookups->Value();
    per.hits = shard->hits->Value();
    {
      auto lock = LockShard(*shard);
      per.chunks = shard->by_key.size();
      per.bytes_used = shard->bytes_used;
    }
    out.lookups += per.lookups;
    out.hits += per.hits;
    out.shards.push_back(per);
  }
  out.insertions = insertions_->Value();
  out.evictions = evictions_->Value();
  out.rejected = rejected_->Value();
  out.contention_ns = lock_wait_ns_->Snapshot().sum;
  return out;
}

void ChunkCache::ResetStats() {
  for (const auto& shard : shards_) {
    shard->lookups->Reset();
    shard->hits->Reset();
  }
  insertions_->Reset();
  evictions_->Reset();
  rejected_->Reset();
  lock_wait_ns_->Reset();
}

}  // namespace chunkcache::cache
