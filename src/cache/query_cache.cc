#include "cache/query_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace chunkcache::cache {

using backend::StarJoinQuery;

namespace {

uint64_t GroupByHash(const StarJoinQuery& q) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t d = 0; d < q.group_by.num_dims; ++d) {
    h = (h ^ q.group_by.levels[d]) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

bool QueryContains(const StarJoinQuery& outer, const StarJoinQuery& inner) {
  if (!(outer.group_by == inner.group_by)) return false;
  // Non-group-by selections must match exactly (order-insensitive).
  if (outer.non_group_by.size() != inner.non_group_by.size()) return false;
  for (const auto& p : inner.non_group_by) {
    if (std::find(outer.non_group_by.begin(), outer.non_group_by.end(), p) ==
        outer.non_group_by.end()) {
      return false;
    }
  }
  for (uint32_t d = 0; d < inner.group_by.num_dims; ++d) {
    if (inner.selection[d].begin < outer.selection[d].begin ||
        inner.selection[d].end > outer.selection[d].end) {
      return false;
    }
  }
  return true;
}

QueryCache::QueryCache(uint64_t capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  CHUNKCACHE_CHECK(policy_ != nullptr);
}

const CachedQuery* QueryCache::FindContaining(const StarJoinQuery& q) {
  ++stats_.lookups;
  auto bucket = by_group_by_.find(GroupByHash(q));
  if (bucket == by_group_by_.end()) return nullptr;
  for (uint64_t handle : bucket->second) {
    ++stats_.containment_checks;
    const CachedQuery& cached = by_handle_.at(handle);
    if (QueryContains(cached.query, q)) {
      ++stats_.hits;
      policy_->OnAccess(handle);
      return &cached;
    }
  }
  return nullptr;
}

void QueryCache::Erase(uint64_t handle) {
  auto it = by_handle_.find(handle);
  CHUNKCACHE_DCHECK(it != by_handle_.end());
  bytes_used_ -= it->second.ByteSize();
  auto bucket = by_group_by_.find(GroupByHash(it->second.query));
  if (bucket != by_group_by_.end()) {
    auto& v = bucket->second;
    v.erase(std::remove(v.begin(), v.end(), handle), v.end());
    if (v.empty()) by_group_by_.erase(bucket);
  }
  policy_->OnErase(handle);
  by_handle_.erase(it);
}

void QueryCache::Insert(CachedQuery entry) {
  const uint64_t bytes = entry.ByteSize();
  if (bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  // Drop a previous entry for the *identical* query.
  auto bucket = by_group_by_.find(GroupByHash(entry.query));
  if (bucket != by_group_by_.end()) {
    for (uint64_t handle : bucket->second) {
      if (by_handle_.at(handle).query == entry.query) {
        Erase(handle);
        break;
      }
    }
  }
  while (bytes_used_ + bytes > capacity_bytes_) {
    auto victim = policy_->PickVictim(entry.benefit);
    if (!victim) break;
    Erase(*victim);
    ++stats_.evictions;
  }
  if (bytes_used_ + bytes > capacity_bytes_) {
    ++stats_.rejected;
    return;
  }
  const uint64_t handle = next_handle_++;
  policy_->OnInsert(handle, entry.benefit);
  by_group_by_[GroupByHash(entry.query)].push_back(handle);
  bytes_used_ += bytes;
  by_handle_.emplace(handle, std::move(entry));
  ++stats_.insertions;
}

void QueryCache::Clear() {
  for (const auto& [handle, entry] : by_handle_) policy_->OnErase(handle);
  by_handle_.clear();
  by_group_by_.clear();
  bytes_used_ = 0;
}

}  // namespace chunkcache::cache
