#ifndef CHUNKCACHE_CACHE_DECODED_CACHE_H_
#define CHUNKCACHE_CACHE_DECODED_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cache/chunk_cache.h"
#include "common/metrics.h"
#include "storage/agg_columns.h"

namespace chunkcache::cache {

/// Small LRU front for the compressed in-memory tier: maps a ChunkKey to
/// recently decoded AggColumns so back-to-back hits on the same chunk
/// (row-major box enumeration, proximity streams) decode once instead of
/// per hit. Deliberately tiny relative to the chunk cache — it trades a
/// bounded slice of memory for the common re-hit, while the main budget
/// stays charged at encoded bytes.
///
/// Statistics live on the MetricsRegistry (the PR 5 convention):
/// "cache.decoded_lru_hits" / "cache.decoded_lru_evictions" counters and
/// the "cache.decoded_lru_bytes" gauge are kept current by the cache
/// itself — no shadow fields to fold at snapshot time. Passing a null
/// registry gives the cache a private one.
///
/// Thread-safe; values are shared_ptr<const AggColumns>, so a returned
/// decode stays valid however the LRU churns.
class DecodedCache {
 public:
  explicit DecodedCache(uint64_t capacity_bytes,
                        MetricsRegistry* metrics = nullptr);

  DecodedCache(const DecodedCache&) = delete;
  DecodedCache& operator=(const DecodedCache&) = delete;

  /// The decoded columns for `key`, refreshing its recency; null if absent.
  /// A hit bumps "cache.decoded_lru_hits".
  std::shared_ptr<const storage::AggColumns> Get(const ChunkKey& key);

  /// Remembers a decode, evicting least-recently-used entries over budget.
  /// A payload larger than the whole budget is simply not admitted.
  void Put(const ChunkKey& key,
           std::shared_ptr<const storage::AggColumns> cols);

  /// Drops `key` if present (entry invalidated by a re-insert).
  void Erase(const ChunkKey& key);

  void Clear();

  uint64_t bytes_used() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t size() const;
  uint64_t hits() const { return hits_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }

 private:
  using Entry =
      std::pair<ChunkKey, std::shared_ptr<const storage::AggColumns>>;

  void EvictOverBudgetLocked();

  const uint64_t capacity_bytes_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when none was passed
  Counter* hits_ = nullptr;       // cache.decoded_lru_hits
  Counter* evictions_ = nullptr;  // cache.decoded_lru_evictions
  Gauge* bytes_gauge_ = nullptr;  // cache.decoded_lru_bytes
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<ChunkKey, std::list<Entry>::iterator, ChunkKeyHash>
      index_;
  uint64_t bytes_used_ = 0;
};

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_DECODED_CACHE_H_
