#ifndef CHUNKCACHE_CACHE_SEMANTIC_CACHE_H_
#define CHUNKCACHE_CACHE_SEMANTIC_CACHE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/star_join_query.h"
#include "cache/replacement.h"
#include "storage/tuple.h"

namespace chunkcache::cache {

/// An axis-aligned box of ordinals at some group-by level — the shape of a
/// semantic region and of the remainders produced by subtracting regions
/// from a query.
struct RegionBox {
  std::array<schema::OrdinalRange, storage::kMaxDims> ranges{};
  uint32_t num_dims = 0;

  uint64_t Volume() const {
    uint64_t v = 1;
    for (uint32_t d = 0; d < num_dims; ++d) v *= ranges[d].size();
    return v;
  }
  bool Contains(const storage::AggTuple& row) const {
    for (uint32_t d = 0; d < num_dims; ++d) {
      if (!ranges[d].Contains(row.coords[d])) return false;
    }
    return true;
  }
};

/// Intersection of two boxes; empty optional when disjoint.
std::optional<RegionBox> IntersectBoxes(const RegionBox& a,
                                        const RegionBox& b);

/// Subtracts `b` from `a`, returning up to 2*num_dims disjoint boxes that
/// tile a \ b (the classic semantic-caching remainder decomposition).
std::vector<RegionBox> SubtractBox(const RegionBox& a, const RegionBox& b);

/// One cached semantic region: the rows of `box` at aggregation level
/// `group_by`, computed under the given non-group-by predicates.
struct SemanticRegion {
  chunks::GroupBySpec group_by;
  std::vector<backend::NonGroupByPredicate> non_group_by;
  RegionBox box;
  double benefit = 0;
  std::vector<storage::AggTuple> rows;

  uint64_t ByteSize() const {
    return sizeof(SemanticRegion) +
           rows.size() * sizeof(storage::AggTuple);
  }
};

struct SemanticCacheStats {
  uint64_t lookups = 0;
  uint64_t intersection_tests = 0;  ///< The cost the paper criticizes.
  uint64_t regions_used = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;
};

/// Semantic-region caching after Dar et al. [DFJST96], the comparison
/// point of the paper's Section 2.4: query results are cached as arbitrary
/// rectangular *semantic regions*; answering a new query means
/// intersecting it with every cached region of the same group-by (cost
/// linear in the number of regions — exactly the overhead chunks'
/// uniformity removes) and computing the leftover remainder boxes at the
/// backend.
class SemanticRegionCache {
 public:
  /// The decomposition of one query against the cache.
  struct Probe {
    /// (region handle, sub-box) pairs covering part of the query;
    /// sub-boxes are mutually disjoint.
    std::vector<std::pair<const SemanticRegion*, RegionBox>> covered;
    /// Boxes of the query not covered by any region.
    std::vector<RegionBox> remainder;
    /// Cells covered / total query cells.
    double covered_fraction = 0;
  };

  SemanticRegionCache(uint64_t capacity_bytes,
                      std::unique_ptr<ReplacementPolicy> policy);

  SemanticRegionCache(const SemanticRegionCache&) = delete;
  SemanticRegionCache& operator=(const SemanticRegionCache&) = delete;

  /// Decomposes `query` into covered parts and remainder boxes, touching
  /// every cached candidate region (and recording the per-probe
  /// intersection-test count in stats). Region pointers stay valid until
  /// the next Insert/Clear.
  Probe Decompose(const backend::StarJoinQuery& query);

  /// Caches a region, evicting per policy until it fits.
  void Insert(SemanticRegion region);

  void Clear();

  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_regions() const { return by_handle_.size(); }
  const SemanticCacheStats& stats() const { return stats_; }

 private:
  static uint64_t GroupKey(const chunks::GroupBySpec& spec);
  void Erase(uint64_t handle);

  uint64_t capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  uint64_t next_handle_ = 1;
  std::unordered_map<uint64_t, SemanticRegion> by_handle_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_group_;
  uint64_t bytes_used_ = 0;
  SemanticCacheStats stats_;
};

}  // namespace chunkcache::cache

#endif  // CHUNKCACHE_CACHE_SEMANTIC_CACHE_H_
