#ifndef CHUNKCACHE_STORAGE_TUPLE_H_
#define CHUNKCACHE_STORAGE_TUPLE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "common/logging.h"

namespace chunkcache::storage {

/// Upper bound on dimensions per fact table. The paper uses 4; eight leaves
/// room without heap allocation per tuple.
inline constexpr uint32_t kMaxDims = 8;

/// Describes the fixed-length record layout of a fact table: `num_dims`
/// 32-bit dimension-key ordinals followed by one 64-bit measure.
struct TupleDesc {
  uint32_t num_dims = 0;

  uint32_t RecordSize() const { return num_dims * 4 + 8; }

  friend bool operator==(const TupleDesc& a, const TupleDesc& b) {
    return a.num_dims == b.num_dims;
  }
};

/// One fact tuple in memory. `keys[i]` is the *base-level ordinal* of the
/// tuple's member on dimension i (the Domain Index maps real values to these
/// ordinals at load time), `measure` the additive measure (dollar sales).
struct Tuple {
  std::array<uint32_t, kMaxDims> keys{};
  double measure = 0;

  /// Serializes into `dst` (must hold desc.RecordSize() bytes).
  void Serialize(const TupleDesc& desc, uint8_t* dst) const {
    std::memcpy(dst, keys.data(), desc.num_dims * 4);
    std::memcpy(dst + desc.num_dims * 4, &measure, 8);
  }

  /// Deserializes from `src`.
  void Deserialize(const TupleDesc& desc, const uint8_t* src) {
    CHUNKCACHE_DCHECK(desc.num_dims <= kMaxDims);
    std::memcpy(keys.data(), src, desc.num_dims * 4);
    std::memcpy(&measure, src + desc.num_dims * 4, 8);
  }
};

/// One row of an aggregated (group-by) result. `coords[i]` is the ordinal of
/// the group on dimension i *at the query's aggregation level* (0 for a
/// dimension aggregated away). Every row carries SUM, COUNT, MIN and MAX of
/// the measure: all four are re-aggregable (min of mins, etc.), so the
/// closure property holds for them and AVG derives as SUM/COUNT.
struct AggTuple {
  std::array<uint32_t, kMaxDims> coords{};
  double sum = 0;
  uint64_t count = 0;
  double min_v = 0;
  double max_v = 0;

  /// Folds one base measure into this cell.
  void FoldMeasure(double measure) {
    if (count == 0) {
      min_v = max_v = measure;
    } else {
      if (measure < min_v) min_v = measure;
      if (measure > max_v) max_v = measure;
    }
    sum += measure;
    count += 1;
  }

  /// Folds another (finer) aggregate row into this cell; `other` must be
  /// non-empty.
  void FoldRow(const AggTuple& other) {
    if (count == 0) {
      min_v = other.min_v;
      max_v = other.max_v;
    } else {
      if (other.min_v < min_v) min_v = other.min_v;
      if (other.max_v > max_v) max_v = other.max_v;
    }
    sum += other.sum;
    count += other.count;
  }

  double Avg() const { return count == 0 ? 0.0 : sum / count; }
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_TUPLE_H_
