#ifndef CHUNKCACHE_STORAGE_FACT_FILE_H_
#define CHUNKCACHE_STORAGE_FACT_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/agg_columns.h"
#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/tuple.h"

namespace chunkcache::storage {

/// Row id within a FactFile: dense 0-based index in append order.
using RowId = uint64_t;

/// Fixed-length record file optimized for fact tables (after the "fact
/// file" of RJZN97 that the paper's PARADISE implementation uses): records
/// are packed back to back with no slot directory, so the page holds
/// floor(kPageSize / record_size) records and a RowId maps to a page with
/// one division. Supports append (bulk load), point reads, full scans, and
/// skipped-sequential scans over RowId ranges — the access pattern chunk
/// reads need.
///
/// A file may instead be created *compressed*: tuples are buffered and
/// written as codec-encoded blocks of 4x the raw page row count through a
/// BlockStore, so sequential chunk runs read several-fold fewer pages.
/// RowIds stay dense append-order indexes in both modes, so the chunk
/// B-tree and bitmap indexes over the file never notice the difference.
class FactFile {
 public:
  /// Creates a new empty fact file inside `pool`'s disk manager. With
  /// `compressed`, pages hold codec-encoded blocks instead of raw records.
  static Result<FactFile> Create(BufferPool* pool, TupleDesc desc,
                                 bool compressed = false);

  /// Opens an existing fact file by its DiskManager file id.
  static Result<FactFile> Open(BufferPool* pool, uint32_t file_id);

  FactFile(FactFile&&) = default;
  FactFile& operator=(FactFile&&) = default;

  /// Appends one tuple; returns its RowId. Appends go through the buffer
  /// pool, so bulk loads stay within the pool budget.
  Result<RowId> Append(const Tuple& t);

  /// Reads the tuple at `rid`.
  Status Get(RowId rid, Tuple* out);

  /// Scans tuples with rid in [first, first + count), invoking
  /// `fn(rid, tuple)`; each touched page is pinned exactly once. `fn`
  /// returning false stops the scan early.
  Status ScanRange(RowId first, uint64_t count,
                   const std::function<bool(RowId, const Tuple&)>& fn);

  /// Full-file scan.
  Status Scan(const std::function<bool(RowId, const Tuple&)>& fn) {
    return ScanRange(0, num_tuples_, fn);
  }

  /// Bulk-decodes tuples with rid in [first, first + count) into `*out`,
  /// *appending* to its columns (callers accumulate several coalesced
  /// chunk runs into one batch). One pin and one tight decode loop per
  /// touched page — the columnar feed of the dense aggregation kernels.
  Status ScanRangeColumns(RowId first, uint64_t count, TupleColumns* out);

  /// Fetches the tuples whose RowIds are listed in `rids` (ascending order
  /// recommended). Consecutive rids on one page cost a single page access —
  /// this is the "skipped sequential" path bitmap-index fetches use.
  Status FetchRows(const std::vector<RowId>& rids, std::vector<Tuple>* out);

  uint64_t num_tuples() const { return num_tuples_; }
  uint32_t file_id() const { return file_id_; }
  const TupleDesc& desc() const { return desc_; }
  uint32_t tuples_per_page() const { return tuples_per_page_; }
  bool compressed() const { return compressed_; }

  /// Number of data pages currently allocated.
  uint32_t num_data_pages() const;

  /// Page number (within this file) holding `rid`; useful for analyses that
  /// count distinct pages a row set touches. In compressed mode this is the
  /// first page of the rid's block (not-yet-flushed tail rows report the
  /// page the next block will land on).
  uint32_t PageOfRow(RowId rid) const;

  /// Persists the header (tuple count). Call after a bulk load. In
  /// compressed mode this first flushes the buffered tail rows as a final
  /// (possibly short) block — required before Open can see them.
  Status SyncHeader();

 private:
  FactFile(BufferPool* pool, uint32_t file_id, TupleDesc desc)
      : pool_(pool), file_id_(file_id), desc_(desc),
        tuples_per_page_(kPageSize / desc.RecordSize()) {}

  /// Encodes and writes the pending tuple buffer as one block.
  Status FlushPending();

  /// Decodes block `idx` into `*out` (replacing its contents).
  Status DecodeBlock(size_t idx, TupleColumns* out);

  struct Header {
    uint64_t magic;
    uint32_t num_dims;
    uint32_t flags;  // bit 0: compressed block format
    uint64_t num_tuples;
  };
  static constexpr uint64_t kMagic = 0x4641435446494C45ULL;  // "FACTFILE"
  static constexpr uint32_t kFlagCompressed = 1u;

  BufferPool* pool_;
  uint32_t file_id_;
  TupleDesc desc_;
  uint32_t tuples_per_page_;
  uint64_t num_tuples_ = 0;

  // Compressed mode state. `block_rows_` is the target rows per block
  // (4x the raw page capacity); `pending_` buffers appended tuples until a
  // block fills; `flushed_rows_` counts rows already in the block store.
  bool compressed_ = false;
  uint32_t block_rows_ = 0;
  std::unique_ptr<BlockStore> store_;
  TupleColumns pending_;
  uint64_t flushed_rows_ = 0;
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_FACT_FILE_H_
