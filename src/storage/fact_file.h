#ifndef CHUNKCACHE_STORAGE_FACT_FILE_H_
#define CHUNKCACHE_STORAGE_FACT_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/agg_columns.h"
#include "storage/buffer_pool.h"
#include "storage/tuple.h"

namespace chunkcache::storage {

/// Row id within a FactFile: dense 0-based index in append order.
using RowId = uint64_t;

/// Fixed-length record file optimized for fact tables (after the "fact
/// file" of RJZN97 that the paper's PARADISE implementation uses): records
/// are packed back to back with no slot directory, so the page holds
/// floor(kPageSize / record_size) records and a RowId maps to a page with
/// one division. Supports append (bulk load), point reads, full scans, and
/// skipped-sequential scans over RowId ranges — the access pattern chunk
/// reads need.
class FactFile {
 public:
  /// Creates a new empty fact file inside `pool`'s disk manager.
  static Result<FactFile> Create(BufferPool* pool, TupleDesc desc);

  /// Opens an existing fact file by its DiskManager file id.
  static Result<FactFile> Open(BufferPool* pool, uint32_t file_id);

  FactFile(FactFile&&) = default;
  FactFile& operator=(FactFile&&) = default;

  /// Appends one tuple; returns its RowId. Appends go through the buffer
  /// pool, so bulk loads stay within the pool budget.
  Result<RowId> Append(const Tuple& t);

  /// Reads the tuple at `rid`.
  Status Get(RowId rid, Tuple* out);

  /// Scans tuples with rid in [first, first + count), invoking
  /// `fn(rid, tuple)`; each touched page is pinned exactly once. `fn`
  /// returning false stops the scan early.
  Status ScanRange(RowId first, uint64_t count,
                   const std::function<bool(RowId, const Tuple&)>& fn);

  /// Full-file scan.
  Status Scan(const std::function<bool(RowId, const Tuple&)>& fn) {
    return ScanRange(0, num_tuples_, fn);
  }

  /// Bulk-decodes tuples with rid in [first, first + count) into `*out`,
  /// *appending* to its columns (callers accumulate several coalesced
  /// chunk runs into one batch). One pin and one tight decode loop per
  /// touched page — the columnar feed of the dense aggregation kernels.
  Status ScanRangeColumns(RowId first, uint64_t count, TupleColumns* out);

  /// Fetches the tuples whose RowIds are listed in `rids` (ascending order
  /// recommended). Consecutive rids on one page cost a single page access —
  /// this is the "skipped sequential" path bitmap-index fetches use.
  Status FetchRows(const std::vector<RowId>& rids, std::vector<Tuple>* out);

  uint64_t num_tuples() const { return num_tuples_; }
  uint32_t file_id() const { return file_id_; }
  const TupleDesc& desc() const { return desc_; }
  uint32_t tuples_per_page() const { return tuples_per_page_; }

  /// Number of data pages currently allocated.
  uint32_t num_data_pages() const;

  /// Page number (within this file) holding `rid`; useful for analyses that
  /// count distinct pages a row set touches.
  uint32_t PageOfRow(RowId rid) const {
    return 1 + static_cast<uint32_t>(rid / tuples_per_page_);
  }

  /// Persists the header (tuple count). Call after a bulk load.
  Status SyncHeader();

 private:
  FactFile(BufferPool* pool, uint32_t file_id, TupleDesc desc)
      : pool_(pool), file_id_(file_id), desc_(desc),
        tuples_per_page_(kPageSize / desc.RecordSize()) {}

  struct Header {
    uint64_t magic;
    uint32_t num_dims;
    uint32_t reserved;
    uint64_t num_tuples;
  };
  static constexpr uint64_t kMagic = 0x4641435446494C45ULL;  // "FACTFILE"

  BufferPool* pool_;
  uint32_t file_id_;
  TupleDesc desc_;
  uint32_t tuples_per_page_;
  uint64_t num_tuples_ = 0;
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_FACT_FILE_H_
