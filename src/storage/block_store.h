#ifndef CHUNKCACHE_STORAGE_BLOCK_STORE_H_
#define CHUNKCACHE_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace chunkcache::storage {

/// Page layout shared by the compressed FactFile / AggFile modes: the file
/// is a sequence of variable-length *blocks*, each holding a fixed target
/// number of rows encoded with the storage/codec blob format. A block
/// starts on a page boundary with
///
///   BlockHeader { u32 rows | u32 payload_len | u32 crc32c(payload) }
///
/// and its payload spans ceil((12 + payload_len) / kPageSize) contiguous
/// pages. Blocks are self-describing, so no directory is persisted: Open
/// rebuilds the in-memory block directory by walking headers (one page pin
/// per block), which also verifies the chain is structurally sound.
class BlockStore {
 public:
  struct BlockRef {
    uint64_t first_row = 0;
    uint32_t rows = 0;
    uint32_t first_page = 0;
    uint32_t num_pages = 0;
  };

  BlockStore(BufferPool* pool, uint32_t file_id, uint32_t first_page)
      : pool_(pool), file_id_(file_id), first_page_(first_page) {}

  /// Appends one block of `rows` rows with the given encoded payload,
  /// allocating fresh pages through the buffer pool.
  Status AppendBlock(uint32_t rows, const std::vector<uint8_t>& payload);

  /// Rebuilds the directory by walking block headers until `total_rows`
  /// rows are accounted for. Fails with Corruption on a short or
  /// inconsistent chain.
  Status Rebuild(uint64_t total_rows);

  /// Index of the block containing `row` (which must be < total rows).
  size_t FindBlock(uint64_t row) const;

  /// Reads block `idx`'s payload into `*out` (replacing its contents) and
  /// verifies the stored CRC32C.
  Status ReadBlock(size_t idx, std::vector<uint8_t>* out);

  const std::vector<BlockRef>& blocks() const { return blocks_; }

  /// Total data pages occupied by appended blocks.
  uint32_t num_pages() const { return next_page_ - first_page_; }

 private:
  struct BlockHeader {
    uint32_t rows;
    uint32_t payload_len;
    uint32_t crc;
  };
  static constexpr size_t kBlockHeaderSize = 12;

  BufferPool* pool_;
  uint32_t file_id_;
  uint32_t first_page_;
  uint32_t next_page_ = 0;  // set by first Append / Rebuild
  uint64_t total_rows_ = 0;
  std::vector<BlockRef> blocks_;
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_BLOCK_STORE_H_
