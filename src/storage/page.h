#ifndef CHUNKCACHE_STORAGE_PAGE_H_
#define CHUNKCACHE_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>

namespace chunkcache::storage {

/// Size of one disk page. 4 KiB keeps tuple-per-page counts close to the
/// paper's setup (20-24 B tuples -> ~200 tuples/page).
inline constexpr uint32_t kPageSize = 4096;

/// Identifies a page as (file, page-number-within-file). Files are created
/// through DiskManager::CreateFile.
struct PageId {
  uint32_t file_id = 0;
  uint32_t page_no = 0;

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.file_id == b.file_id && a.page_no == b.page_no;
  }
  friend bool operator!=(const PageId& a, const PageId& b) {
    return !(a == b);
  }

  uint64_t AsU64() const {
    return (static_cast<uint64_t>(file_id) << 32) | page_no;
  }
};

/// An invalid page id (file 0 is never handed out by DiskManager).
inline constexpr PageId kInvalidPageId{0, 0};

/// Raw page buffer. Interpretation is up to the owning file structure.
struct alignas(64) Page {
  std::array<uint8_t, kPageSize> data;

  void Zero() { std::memset(data.data(), 0, kPageSize); }

  template <typename T>
  T* As(uint32_t offset = 0) {
    return reinterpret_cast<T*>(data.data() + offset);
  }
  template <typename T>
  const T* As(uint32_t offset = 0) const {
    return reinterpret_cast<const T*>(data.data() + offset);
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    // 64-bit mix of the combined id; cheap and well distributed.
    uint64_t x = id.AsU64() * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(x ^ (x >> 32));
  }
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_PAGE_H_
