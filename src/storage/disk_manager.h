#ifndef CHUNKCACHE_STORAGE_DISK_MANAGER_H_
#define CHUNKCACHE_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace chunkcache::storage {

/// Physical I/O statistics. These are the ground truth for every cost
/// number reported by the benchmarks: a "physical read" here corresponds to
/// a raw-device read in the paper's setup.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t checksum_failures = 0;
  /// Short writes and failed fsyncs, surfaced as Status::IoError (never
  /// swallowed) and counted here -> "disk.write_errors" on the registry.
  uint64_t write_errors = 0;
};

/// Abstraction over the physical page store. One DiskManager hosts many
/// numbered files (fact file, indexes, ...), each a dense array of pages.
///
/// Implementations:
///  - InMemoryDiskManager: pages live in RAM with exact I/O accounting; this
///    emulates the paper's raw device (no hidden OS caching) and is what the
///    experiments use.
///  - FileDiskManager: pages live in one real file on disk; useful for
///    persistence demos and for validating that the format round-trips.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Creates a new empty file and returns its id (ids start at 1).
  virtual uint32_t CreateFile() = 0;

  /// Appends a zeroed page to `file_id` and returns its PageId.
  virtual Result<PageId> AllocatePage(uint32_t file_id) = 0;

  /// Reads the page `id` into `*out`.
  virtual Status ReadPage(PageId id, Page* out) = 0;

  /// Writes `page` to `id`. The page must have been allocated.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Number of pages currently allocated in `file_id`.
  virtual uint32_t FilePageCount(uint32_t file_id) const = 0;

  /// Snapshot of the I/O counters. Counters are guarded by their own
  /// mutex so concurrent queries can read work deltas while other threads
  /// perform I/O (page data itself is serialized by the BufferPool).
  DiskStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = DiskStats();
  }

 protected:
  void CountRead() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
  }
  void CountWrite() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.writes;
  }
  void CountAllocation() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.allocations;
  }
  void CountWriteError() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.write_errors;
  }

  /// End-to-end page integrity: WritePage records a CRC32C of the payload
  /// in a side table keyed by PageId, ReadPage verifies against it and
  /// fails with Status::Corruption instead of serving bad bytes. Keeping
  /// the checksum out of the page keeps the on-page capacity math and the
  /// file format unchanged; the cost is that checksums do not persist
  /// across a FileDiskManager re-open (the first write re-establishes
  /// coverage — VerifyPageChecksum treats an absent entry as OK).
  void RecordPageChecksum(PageId id, const Page& page);
  Status VerifyPageChecksum(PageId id, const Page& page);

 private:
  mutable std::mutex stats_mu_;
  DiskStats stats_;
  mutable std::mutex crc_mu_;
  std::unordered_map<uint64_t, uint32_t> page_crc_;  // PageId::AsU64() -> crc
};

/// RAM-backed DiskManager with exact physical-I/O accounting.
class InMemoryDiskManager final : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  InMemoryDiskManager(const InMemoryDiskManager&) = delete;
  InMemoryDiskManager& operator=(const InMemoryDiskManager&) = delete;

  uint32_t CreateFile() override;
  Result<PageId> AllocatePage(uint32_t file_id) override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint32_t FilePageCount(uint32_t file_id) const override;

 private:
  // files_[file_id - 1] is the page vector of that file.
  std::vector<std::vector<std::unique_ptr<Page>>> files_;
};

/// DiskManager backed by one OS file. Pages of all logical files are
/// interleaved in allocation order; a small in-memory directory maps
/// (file_id, page_no) to the physical slot. The directory is rebuilt on
/// open from a trailer, making the format self-describing.
class FileDiskManager final : public DiskManager {
 public:
  /// Opens (creating if necessary) the backing file at `path`.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  uint32_t CreateFile() override;
  Result<PageId> AllocatePage(uint32_t file_id) override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint32_t FilePageCount(uint32_t file_id) const override;

  /// Flushes the page directory and fsyncs the backing file so a re-open
  /// sees all logical files. Short writes and a failed fsync both surface
  /// as Status::IoError (and count in DiskStats::write_errors).
  Status Sync();

 private:
  explicit FileDiskManager(int fd) : fd_(fd) {}

  Status LoadDirectory();
  Status SaveDirectory();

  int fd_;
  // directory_[file_id - 1][page_no] = physical page slot in the OS file.
  std::vector<std::vector<uint64_t>> directory_;
  uint64_t next_slot_ = 0;
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_DISK_MANAGER_H_
