#ifndef CHUNKCACHE_STORAGE_CACHE_PERSIST_H_
#define CHUNKCACHE_STORAGE_CACHE_PERSIST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace chunkcache::storage {

/// One cache entry in its durable form: the chunk key triple, the
/// replacement-policy benefit, and the payload as a self-contained
/// codec::EncodeAggColumns blob (PR 6) — the blob carries its own CRC32C
/// trailer, so every persisted payload is checksummed twice (record frame
/// + blob trailer) and verified on recovery.
struct PersistedChunk {
  uint32_t group_by_id = 0;
  uint64_t chunk_num = 0;
  uint64_t filter_hash = 0;
  double benefit = 0.0;
  uint64_t raw_bytes = 0;  ///< Decoded payload bytes (ratio accounting).
  uint32_t rows = 0;
  std::vector<uint8_t> blob;  ///< codec blob; empty only for empty chunks.
};

struct PersistOptions {
  std::string dir;  ///< Created if missing; holds snapshot-G / wal-G files.
  /// WAL records per fsync (1 = every record, 0 = never fsync). Records
  /// not yet synced can be lost to a crash; replay absorbs the gap.
  uint64_t wal_fsync_every = 1;
};

/// What recovery found. Entries and the benefit-EWMA table are handed to
/// the manager exactly once via CachePersistence::TakeRecovery().
struct RecoveryStats {
  uint64_t generation = 0;          ///< Snapshot generation recovered from.
  uint64_t snapshot_entries = 0;    ///< Entries read from the snapshot.
  uint64_t wal_records = 0;         ///< WAL records replayed on top.
  uint64_t wal_truncated_bytes = 0; ///< Torn-tail bytes dropped.
  uint64_t quarantined = 0;         ///< Corrupt entries dropped, not served.
  uint64_t recovery_ns = 0;
  std::vector<PersistedChunk> entries;  ///< Surviving state, stable order.
  std::vector<std::pair<uint32_t, double>> benefit_ewma;  ///< (gb_id, ewma).
};

/// Crash-safe persistence for the chunk cache (DESIGN.md §14): an
/// append-only WAL of admissions / evictions / benefit-EWMA updates in
/// CRC32C-framed records, plus generation-numbered snapshots written
/// shadow-file-then-atomic-rename. Recovery = newest readable snapshot +
/// replay of every WAL at or above its generation, truncating torn tails
/// and quarantining (dropping + counting) corrupt entries — it never
/// fails on corrupt *content*; the worst case is a cold start. Only an
/// unusable directory makes Open() return an error.
///
/// Thread safety: LogAdmit/LogEvict/LogBenefit are safe from any thread.
/// WriteSnapshot serializes internally; `only_if_idle` turns a contended
/// call into a no-op so the auto-trigger never piles up behind a running
/// snapshot.
class CachePersistence {
 public:
  /// Opens `opts.dir` (creating it), recovers, truncates any torn WAL
  /// tail, and opens a fresh WAL generation for appending. `metrics` may
  /// be null (counters then live on a private registry).
  static Result<std::unique_ptr<CachePersistence>> Open(
      PersistOptions opts, MetricsRegistry* metrics = nullptr);

  ~CachePersistence();

  CachePersistence(const CachePersistence&) = delete;
  CachePersistence& operator=(const CachePersistence&) = delete;

  /// Moves the recovered state out (entries are large; call once).
  RecoveryStats TakeRecovery();

  // -- WAL appends (thread-safe, best-effort: an append that fails —
  // injected or real — is counted on persist.wal_errors and dropped;
  // losing a WAL record costs warmth, never correctness) ----------------
  void LogAdmit(const PersistedChunk& chunk);
  void LogEvict(uint32_t group_by_id, uint64_t chunk_num,
                uint64_t filter_hash);
  void LogBenefit(uint32_t group_by_id, double ewma);

  /// Writes the next snapshot generation. The protocol rotates the WAL
  /// *first*, then calls `gather_entries` / `gather_ewma` (so any event
  /// racing the snapshot lands in the new WAL, where idempotent replay
  /// absorbs the duplicate), writes snapshot-<G>.tmp, fsyncs, atomically
  /// renames to snapshot-<G>, fsyncs the directory, and only then GCs
  /// older generations. On any failure the previous snapshot remains
  /// authoritative and no event has been lost.
  Status WriteSnapshot(
      const std::function<void(std::vector<PersistedChunk>*)>& gather_entries,
      const std::function<void(std::vector<std::pair<uint32_t, double>>*)>&
          gather_ewma,
      bool only_if_idle = false);

  /// WAL records appended since the last completed snapshot (the
  /// auto-snapshot trigger input).
  uint64_t wal_records_since_snapshot() const {
    return records_since_snapshot_.load(std::memory_order_relaxed);
  }

  /// Current (open-for-append) WAL generation.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Counts one manager-side quarantined entry (recovered record whose
  /// blob failed decode) on the shared persist.quarantined counter.
  void CountQuarantined() { quarantined_->Increment(); }

  /// Test hook simulating a process kill: every later append, fsync and
  /// snapshot (including the manager's shutdown snapshot) becomes a
  /// no-op, so a subsequent Open() sees exactly what a crash at this
  /// point would have left on disk.
  void SimulateCrash() { crashed_.store(true, std::memory_order_release); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // -- WAL/snapshot frame layout, shared with tests ---------------------
  // File = 16-byte header (magic u64 | generation u64) then records:
  //   u32 crc32c(type|payload) | u32 len(type|payload) | u8 type | payload
  static constexpr uint64_t kWalMagic = 0x314C4157'43434843ull;   // CHCCWAL1
  static constexpr uint64_t kSnapMagic = 0x50414E53'43434843ull;  // CHCCSNAP
  static constexpr size_t kFileHeaderBytes = 16;
  static constexpr size_t kRecordHeaderBytes = 8;
  enum RecordType : uint8_t {
    kAdmit = 1,    ///< key, benefit, raw_bytes, rows, blob
    kEvict = 2,    ///< key
    kBenefit = 3,  ///< group_by_id, ewma
    kFooter = 4,   ///< snapshot only: entry count (validity marker)
  };

 private:
  CachePersistence(PersistOptions opts, MetricsRegistry* metrics);

  Status OpenWal(uint64_t generation);
  void AppendRecord(uint8_t type, const std::vector<uint8_t>& payload);
  void MaybeFsyncWal();

  /// Recovery pipeline (constructor only; no locks needed).
  void Recover();
  bool ReadSnapshot(uint64_t generation,
                    std::vector<PersistedChunk>* entries,
                    std::vector<std::pair<uint32_t, double>>* ewma);
  void ReplayWal(uint64_t generation);

  PersistOptions opts_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;

  // Recovered state, moved out by TakeRecovery().
  RecoveryStats recovery_;
  // Replay working state, alive only inside Recover() (stack-owned there;
  // this pointer just lets ReplayWal reach it).
  struct ReplayState;
  ReplayState* replay_ = nullptr;

  mutable std::mutex wal_mu_;   ///< Guards wal_fd_ + append counters.
  std::mutex snapshot_mu_;      ///< Serializes WriteSnapshot.
  int wal_fd_ = -1;
  uint64_t wal_unsynced_ = 0;   ///< Records appended since last fsync.
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> records_since_snapshot_{0};
  std::atomic<bool> crashed_{false};

  // persist.* instruments (stable pointers from the registry).
  Counter* wal_records_;
  Counter* wal_bytes_;
  Counter* wal_fsyncs_;
  Counter* wal_errors_;
  Counter* snapshots_;
  Counter* snapshot_bytes_;
  Counter* snapshot_errors_;
  Counter* recovered_entries_;
  Counter* replayed_records_;
  Counter* truncated_bytes_;
  Counter* quarantined_;
  Histogram* snapshot_ns_;
  Histogram* recovery_ns_;
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_CACHE_PERSIST_H_
