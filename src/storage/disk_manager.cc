#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/fault_injector.h"

namespace chunkcache::storage {

// ---------------------------------------------------------------------------
// Page checksums (shared by all DiskManager implementations)
// ---------------------------------------------------------------------------

void DiskManager::RecordPageChecksum(PageId id, const Page& page) {
  const uint32_t crc = Crc32c(page.data.data(), kPageSize);
  std::lock_guard<std::mutex> lock(crc_mu_);
  page_crc_[id.AsU64()] = crc;
}

Status DiskManager::VerifyPageChecksum(PageId id, const Page& page) {
  uint32_t expected;
  {
    std::lock_guard<std::mutex> lock(crc_mu_);
    auto it = page_crc_.find(id.AsU64());
    if (it == page_crc_.end()) return Status::OK();  // no coverage yet
    expected = it->second;
  }
  if (Crc32c(page.data.data(), kPageSize) == expected) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.checksum_failures;
  }
  return Status::Corruption("page checksum mismatch at file " +
                            std::to_string(id.file_id) + " page " +
                            std::to_string(id.page_no));
}

// ---------------------------------------------------------------------------
// InMemoryDiskManager
// ---------------------------------------------------------------------------

uint32_t InMemoryDiskManager::CreateFile() {
  files_.emplace_back();
  return static_cast<uint32_t>(files_.size());  // ids start at 1
}

Result<PageId> InMemoryDiskManager::AllocatePage(uint32_t file_id) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskAlloc);
  if (file_id == 0 || file_id > files_.size()) {
    return Status::InvalidArgument("AllocatePage: unknown file id " +
                                   std::to_string(file_id));
  }
  auto& pages = files_[file_id - 1];
  auto page = std::make_unique<Page>();
  page->Zero();
  const PageId id{file_id, static_cast<uint32_t>(pages.size())};
  RecordPageChecksum(id, *page);
  pages.push_back(std::move(page));
  CountAllocation();
  return id;
}

Status InMemoryDiskManager::ReadPage(PageId id, Page* out) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskRead);
  if (id.file_id == 0 || id.file_id > files_.size()) {
    return Status::IoError("ReadPage: unknown file id");
  }
  const auto& pages = files_[id.file_id - 1];
  if (id.page_no >= pages.size()) {
    return Status::IoError("ReadPage: page " + std::to_string(id.page_no) +
                           " beyond EOF of file " +
                           std::to_string(id.file_id));
  }
  *out = *pages[id.page_no];
  CountRead();
  // Corrupt only the returned copy — the store stays clean, so a retry of
  // the same read recovers (models a transient bus/DMA flip).
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed() && fi.ShouldInject(FaultSite::kDiskCorrupt)) {
    fi.CorruptBuffer(out->data.data(), kPageSize);
  }
  return VerifyPageChecksum(id, *out);
}

Status InMemoryDiskManager::WritePage(PageId id, const Page& page) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskWrite);
  if (id.file_id == 0 || id.file_id > files_.size()) {
    return Status::IoError("WritePage: unknown file id");
  }
  auto& pages = files_[id.file_id - 1];
  if (id.page_no >= pages.size()) {
    return Status::IoError("WritePage: page beyond EOF");
  }
  *pages[id.page_no] = page;
  RecordPageChecksum(id, page);
  CountWrite();
  return Status::OK();
}

uint32_t InMemoryDiskManager::FilePageCount(uint32_t file_id) const {
  if (file_id == 0 || file_id > files_.size()) return 0;
  return static_cast<uint32_t>(files_[file_id - 1].size());
}

// ---------------------------------------------------------------------------
// FileDiskManager
//
// Physical layout: slot 0 is a superblock holding the slot number of the
// directory run and the directory size in bytes; data/directory slots
// follow. The directory is serialized as:
//   u32 num_files, then per file: u32 num_pages, u64 slots[num_pages].
// ---------------------------------------------------------------------------

namespace {

struct Superblock {
  uint64_t magic;
  uint64_t dir_slot;
  uint64_t dir_bytes;
  uint64_t next_slot;
};

constexpr uint64_t kMagic = 0x43484E4B43414348ULL;  // "CHNKCACH"

Status PReadPage(int fd, uint64_t slot, Page* out) {
  const off_t off = static_cast<off_t>(slot) * kPageSize;
  ssize_t n = ::pread(fd, out->data.data(), kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pread failed: " +
                           std::string(n < 0 ? std::strerror(errno)
                                             : "short read"));
  }
  return Status::OK();
}

Status PWritePage(int fd, uint64_t slot, const Page& page) {
  const off_t off = static_cast<off_t>(slot) * kPageSize;
  ssize_t n = ::pwrite(fd, page.data.data(), kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pwrite failed: " +
                           std::string(n < 0 ? std::strerror(errno)
                                             : "short write"));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager(fd));
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size >= static_cast<off_t>(kPageSize)) {
    CHUNKCACHE_RETURN_IF_ERROR(dm->LoadDirectory());
  } else {
    // Fresh file: reserve slot 0 for the superblock.
    dm->next_slot_ = 1;
    Page zero;
    zero.Zero();
    CHUNKCACHE_RETURN_IF_ERROR(PWritePage(fd, 0, zero));
    CHUNKCACHE_RETURN_IF_ERROR(dm->SaveDirectory());
  }
  return dm;
}

FileDiskManager::~FileDiskManager() {
  // A destructor cannot return a Status, but a failed final flush must not
  // vanish: it is counted (disk.write_errors via Sync -> CountWriteError)
  // and reported, so tests and operators can see the file may be stale.
  Status s = Sync();
  if (!s.ok()) {
    std::fprintf(stderr, "FileDiskManager: final sync failed: %s\n",
                 s.message().c_str());
  }
  ::close(fd_);
}

Status FileDiskManager::LoadDirectory() {
  Page super;
  CHUNKCACHE_RETURN_IF_ERROR(PReadPage(fd_, 0, &super));
  const auto* sb = super.As<Superblock>();
  if (sb->magic != kMagic) {
    return Status::Corruption("bad superblock magic");
  }
  next_slot_ = sb->next_slot;
  std::vector<uint8_t> buf(sb->dir_bytes);
  uint64_t remaining = sb->dir_bytes;
  uint64_t slot = sb->dir_slot;
  uint64_t pos = 0;
  Page page;
  while (remaining > 0) {
    CHUNKCACHE_RETURN_IF_ERROR(PReadPage(fd_, slot++, &page));
    const uint64_t take = remaining < kPageSize ? remaining : kPageSize;
    std::memcpy(buf.data() + pos, page.data.data(), take);
    pos += take;
    remaining -= take;
  }
  directory_.clear();
  const uint8_t* p = buf.data();
  uint32_t num_files;
  std::memcpy(&num_files, p, sizeof(num_files));
  p += sizeof(num_files);
  directory_.resize(num_files);
  for (uint32_t f = 0; f < num_files; ++f) {
    uint32_t num_pages;
    std::memcpy(&num_pages, p, sizeof(num_pages));
    p += sizeof(num_pages);
    directory_[f].resize(num_pages);
    std::memcpy(directory_[f].data(), p, num_pages * sizeof(uint64_t));
    p += num_pages * sizeof(uint64_t);
  }
  return Status::OK();
}

Status FileDiskManager::SaveDirectory() {
  // Serialize the directory.
  std::vector<uint8_t> buf;
  auto append = [&buf](const void* src, size_t n) {
    const auto* b = static_cast<const uint8_t*>(src);
    buf.insert(buf.end(), b, b + n);
  };
  uint32_t num_files = static_cast<uint32_t>(directory_.size());
  append(&num_files, sizeof(num_files));
  for (const auto& pages : directory_) {
    uint32_t num_pages = static_cast<uint32_t>(pages.size());
    append(&num_pages, sizeof(num_pages));
    append(pages.data(), pages.size() * sizeof(uint64_t));
  }
  // Write the directory at the end of the data region.
  const uint64_t dir_slot = next_slot_;
  uint64_t slot = dir_slot;
  Page page;
  for (size_t pos = 0; pos < buf.size(); pos += kPageSize) {
    page.Zero();
    const size_t take = std::min<size_t>(kPageSize, buf.size() - pos);
    std::memcpy(page.data.data(), buf.data() + pos, take);
    CHUNKCACHE_RETURN_IF_ERROR(PWritePage(fd_, slot++, page));
  }
  // Publish via the superblock.
  Page super;
  super.Zero();
  auto* sb = super.As<Superblock>();
  sb->magic = kMagic;
  sb->dir_slot = dir_slot;
  sb->dir_bytes = buf.size();
  sb->next_slot = next_slot_;
  return PWritePage(fd_, 0, super);
}

Status FileDiskManager::Sync() {
  Status s = SaveDirectory();
  if (!s.ok()) {
    CountWriteError();
    return s;
  }
  if (::fsync(fd_) != 0) {
    CountWriteError();
    return Status::IoError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

uint32_t FileDiskManager::CreateFile() {
  directory_.emplace_back();
  return static_cast<uint32_t>(directory_.size());
}

Result<PageId> FileDiskManager::AllocatePage(uint32_t file_id) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskAlloc);
  if (file_id == 0 || file_id > directory_.size()) {
    return Status::InvalidArgument("AllocatePage: unknown file id");
  }
  auto& pages = directory_[file_id - 1];
  const uint64_t slot = next_slot_++;
  Page zero;
  zero.Zero();
  Status ws = PWritePage(fd_, slot, zero);
  if (!ws.ok()) {
    CountWriteError();
    return ws;
  }
  pages.push_back(slot);
  const PageId id{file_id, static_cast<uint32_t>(pages.size() - 1)};
  RecordPageChecksum(id, zero);
  CountAllocation();
  return id;
}

Status FileDiskManager::ReadPage(PageId id, Page* out) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskRead);
  if (id.file_id == 0 || id.file_id > directory_.size()) {
    return Status::IoError("ReadPage: unknown file id");
  }
  const auto& pages = directory_[id.file_id - 1];
  if (id.page_no >= pages.size()) {
    return Status::IoError("ReadPage: page beyond EOF");
  }
  CountRead();
  CHUNKCACHE_RETURN_IF_ERROR(PReadPage(fd_, pages[id.page_no], out));
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed() && fi.ShouldInject(FaultSite::kDiskCorrupt)) {
    fi.CorruptBuffer(out->data.data(), kPageSize);
  }
  return VerifyPageChecksum(id, *out);
}

Status FileDiskManager::WritePage(PageId id, const Page& page) {
  CHUNKCACHE_FAULT_POINT(FaultSite::kDiskWrite);
  if (id.file_id == 0 || id.file_id > directory_.size()) {
    return Status::IoError("WritePage: unknown file id");
  }
  const auto& pages = directory_[id.file_id - 1];
  if (id.page_no >= pages.size()) {
    return Status::IoError("WritePage: page beyond EOF");
  }
  CountWrite();
  Status ws = PWritePage(fd_, pages[id.page_no], page);
  if (!ws.ok()) {
    CountWriteError();
    return ws;
  }
  RecordPageChecksum(id, page);
  return Status::OK();
}

uint32_t FileDiskManager::FilePageCount(uint32_t file_id) const {
  if (file_id == 0 || file_id > directory_.size()) return 0;
  return static_cast<uint32_t>(directory_[file_id - 1].size());
}

}  // namespace chunkcache::storage
