#include "storage/buffer_pool.h"

#include <chrono>

#include "common/logging.h"

namespace chunkcache::storage {

namespace {
class HistTimer {
 public:
  explicit HistTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~HistTimer() {
    if (h_ != nullptr) {
      h_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count()));
    }
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};
}  // namespace

void PageGuard::MarkDirty() {
  CHUNKCACHE_DCHECK(valid());
  // Mark through the pool so the flag lives on the frame, not the guard.
  pool_->MarkFrameDirty(frame_);
}

void PageGuard::Release() {
  if (page_ != nullptr) {
    pool_->Unpin(frame_, /*dirty=*/false);
    page_ = nullptr;
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, uint32_t num_frames)
    : disk_(disk), frames_(num_frames) {
  CHUNKCACHE_CHECK(num_frames > 0);
  table_.reserve(num_frames * 2);
}

void BufferPool::BindMetrics(MetricsRegistry* m) {
  if (m == nullptr) return;
  read_ns_.store(m->GetHistogram("disk.read_ns"), std::memory_order_relaxed);
  write_ns_.store(m->GetHistogram("disk.write_ns"), std::memory_order_relaxed);
  bound_registry_.store(m, std::memory_order_release);
}

void BufferPool::UnbindMetrics(MetricsRegistry* m) {
  MetricsRegistry* cur = m;
  if (bound_registry_.compare_exchange_strong(cur, nullptr,
                                              std::memory_order_acq_rel)) {
    read_ns_.store(nullptr, std::memory_order_relaxed);
    write_ns_.store(nullptr, std::memory_order_relaxed);
  }
}

Status BufferPool::ReadTimed(PageId id, Page* page) {
  HistTimer t(read_ns_.load(std::memory_order_relaxed));
  return disk_->ReadPage(id, page);
}

Status BufferPool::WriteTimed(PageId id, const Page& page) {
  HistTimer t(write_ns_.load(std::memory_order_relaxed));
  return disk_->WritePage(id, page);
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    f.pin_count++;
    f.referenced = true;
    ++stats_.hits;
    return PageGuard(this, it->second, id, &f.page);
  }
  ++stats_.misses;
  CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t frame, GrabFrame());
  Frame& f = frames_[frame];
  CHUNKCACHE_RETURN_IF_ERROR(ReadTimed(id, &f.page));
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.referenced = true;
  f.in_use = true;
  table_.emplace(id, frame);
  return PageGuard(this, frame, id, &f.page);
}

Result<PageGuard> BufferPool::Allocate(uint32_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage(file_id));
  CHUNKCACHE_ASSIGN_OR_RETURN(uint32_t frame, GrabFrame());
  Frame& f = frames_[frame];
  f.page.Zero();
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;  // fresh page must eventually reach disk
  f.referenced = true;
  f.in_use = true;
  table_.emplace(id, frame);
  return PageGuard(this, frame, id, &f.page);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      CHUNKCACHE_RETURN_IF_ERROR(WriteTimed(f.id, f.page));
      f.dirty = false;
      ++stats_.dirty_writebacks;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (!f.in_use) continue;
    if (f.pin_count > 0) {
      return Status::Internal("EvictAll with pinned page");
    }
    if (f.dirty) {
      CHUNKCACHE_RETURN_IF_ERROR(WriteTimed(f.id, f.page));
      ++stats_.dirty_writebacks;
    }
    table_.erase(f.id);
    f = Frame();
  }
  return Status::OK();
}

void BufferPool::Unpin(uint32_t frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  CHUNKCACHE_DCHECK(f.pin_count > 0);
  f.pin_count--;
  f.dirty = f.dirty || dirty;
}

void BufferPool::MarkFrameDirty(uint32_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

Result<uint32_t> BufferPool::GrabFrame() {
  const uint32_t n = static_cast<uint32_t>(frames_.size());
  // Two sweeps of CLOCK: the first clears reference bits, the second takes
  // the first unpinned frame. 2n+1 steps bound guarantees termination.
  for (uint32_t step = 0; step < 2 * n + 1; ++step) {
    Frame& f = frames_[clock_hand_];
    const uint32_t current = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (!f.in_use) return current;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    // Victim found.
    if (f.dirty) {
      CHUNKCACHE_RETURN_IF_ERROR(WriteTimed(f.id, f.page));
      ++stats_.dirty_writebacks;
    }
    table_.erase(f.id);
    ++stats_.evictions;
    f = Frame();
    return current;
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

}  // namespace chunkcache::storage
