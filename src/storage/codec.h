#ifndef CHUNKCACHE_STORAGE_CODEC_H_
#define CHUNKCACHE_STORAGE_CODEC_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/agg_columns.h"

namespace chunkcache::storage::codec {

/// Per-column encodings for chunk payloads. Every codec is lossless at the
/// bit level (doubles round-trip through their uint64 bit patterns), so an
/// encode→decode cycle reproduces the source column exactly — the property
/// the compression ablation (on == off bit-identity) rests on.
enum class ColumnCodec : uint8_t {
  kRaw = 0,           ///< memcpy of fixed-width values (the fallback).
  kVarint = 1,        ///< LEB128 per value — small unsigned values (counts).
  kDeltaZigzag = 2,   ///< zigzag(v[i]-v[i-1]) varints — sorted-ish columns.
  kDeltaOfDelta = 3,  ///< zigzag of second differences — near-linear runs.
  kDict = 4,          ///< sorted distinct dictionary + bit-packed indexes.
  kXorVarint = 5,     ///< varint(bits[i] ^ bits[i-1]) — measure doubles.
};
inline constexpr size_t kNumCodecs = 6;

/// Stable short name ("raw", "varint", "delta", "dod", "dict", "xor") for
/// metrics and reports.
const char* CodecName(ColumnCodec c);

/// Per-codec byte accounting for one or more encode calls: how many raw
/// bytes went in, how many encoded bytes came out, and how many columns
/// each codec won. Feeds the per-codec ratio counters on the metrics
/// registry.
struct CodecStats {
  std::array<uint64_t, kNumCodecs> raw_bytes{};
  std::array<uint64_t, kNumCodecs> encoded_bytes{};
  std::array<uint64_t, kNumCodecs> columns{};

  void MergeFrom(const CodecStats& other) {
    for (size_t i = 0; i < kNumCodecs; ++i) {
      raw_bytes[i] += other.raw_bytes[i];
      encoded_bytes[i] += other.encoded_bytes[i];
      columns[i] += other.columns[i];
    }
  }
};

/// Decoder selection: kFast is the production bulk decoder (word-wise
/// varint parsing, branch-light unpack loops); kReference is the scalar
/// decoder that checks every read — the ground truth the property tests
/// compare kFast against.
enum class DecodeMode { kFast, kReference };

// -- Column-level API ------------------------------------------------------
//
// Each encoder appends one self-describing column to `*out`:
//   u8 codec tag | varint payload_len | payload bytes
// choosing the smallest candidate codec for the data (cost is computed
// before encoding, so only the winner is materialized). Decoders consume
// exactly one column, append `n` values to `*out`, and return
// Status::Corruption on any truncated, over-long, or malformed input —
// they never read past `end` and never trust a length field without
// bounds-checking it first.

void EncodeU32Column(const uint32_t* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats = nullptr);
void EncodeU64Column(const uint64_t* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats = nullptr);
void EncodeF64Column(const double* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats = nullptr);

Status DecodeU32Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<uint32_t>* out,
                       DecodeMode mode = DecodeMode::kFast);
Status DecodeU64Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<uint64_t>* out,
                       DecodeMode mode = DecodeMode::kFast);
Status DecodeF64Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<double>* out,
                       DecodeMode mode = DecodeMode::kFast);

// -- Payload-level API -----------------------------------------------------
//
// Self-contained blobs: a one-byte format tag, the dimension count, a
// varint row count, one encoded column per active column, and a trailing
// CRC32C over everything before it. Decode validates the CRC first (cheap
// relative to column decode), so random corruption is rejected up front
// and the column decoders only ever see structurally plausible input —
// which they still bounds-check.

/// Encodes `cols` (dimension ordinal columns first, then SUM/COUNT/MIN/MAX)
/// into `*out` (appended). Sorted row-major input compresses best — the
/// canonical chunk order — but any order round-trips exactly.
void EncodeAggColumns(const AggColumns& cols, std::vector<uint8_t>* out,
                      CodecStats* stats = nullptr);
Result<AggColumns> DecodeAggColumns(const uint8_t* data, size_t len,
                                    DecodeMode mode = DecodeMode::kFast);

/// Encodes a base-tuple batch (key columns then the measure column).
void EncodeTupleColumns(const TupleColumns& cols, std::vector<uint8_t>* out,
                        CodecStats* stats = nullptr);
Result<TupleColumns> DecodeTupleColumns(const uint8_t* data, size_t len,
                                        DecodeMode mode = DecodeMode::kFast);

/// Raw (uncompressed) byte size of the payload the blob encodes — the
/// denominator of a compression ratio.
uint64_t RawPayloadBytes(const AggColumns& cols);
uint64_t RawPayloadBytes(const TupleColumns& cols);

}  // namespace chunkcache::storage::codec

#endif  // CHUNKCACHE_STORAGE_CODEC_H_
