#include "storage/cache_persist.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/crc32c.h"
#include "common/fault_injector.h"

namespace chunkcache::storage {

namespace {

/// Upper bound on a single record frame; anything larger during replay is
/// treated as a desynced length field, not a real record.
constexpr uint64_t kMaxRecordBytes = 256ull << 20;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PutU32(std::vector<uint8_t>* b, uint32_t v) {
  const size_t n = b->size();
  b->resize(n + 4);
  std::memcpy(b->data() + n, &v, 4);
}

void PutU64(std::vector<uint8_t>* b, uint64_t v) {
  const size_t n = b->size();
  b->resize(n + 8);
  std::memcpy(b->data() + n, &v, 8);
}

void PutF64(std::vector<uint8_t>* b, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(b, bits);
}

/// Bounds-checked sequential reader over one record payload. Every Get
/// clears `ok` on underrun instead of reading past the end, so a damaged
/// payload surfaces as ok == false, never as garbage values.
struct Cursor {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool Get(void* out, size_t n) {
    if (!ok || static_cast<size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Get(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Get(&v, 8);
    return v;
  }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
};

/// write(2) until done; false on error or short write (disk full).
bool WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Creates every missing component of `path` (mkdir -p).
bool MkDirs(const std::string& path) {
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    partial = path.substr(0, i == path.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Reads the whole file, honoring the recovery-read fault site: an
/// injected fault makes the file look unreadable, exactly like a media
/// error mid-recovery.
bool ReadFileFully(const std::string& path, std::vector<uint8_t>* out) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed() && fi.ShouldInject(FaultSite::kRecoveryRead)) return false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out->size()) {
    const ssize_t r =
        ::read(fd, out->data() + off, out->size() - off);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(r);
  }
  ::close(fd);
  return true;
}

std::string SnapshotPath(const std::string& dir, uint64_t gen) {
  return dir + "/snapshot-" + std::to_string(gen);
}

std::string WalPath(const std::string& dir, uint64_t gen) {
  return dir + "/wal-" + std::to_string(gen);
}

/// Parses "<prefix>-<number>" names; returns false for anything else
/// (including .tmp strays).
bool ParseGeneration(const std::string& name, const char* prefix,
                     uint64_t* gen) {
  const size_t plen = std::strlen(prefix);
  if (name.size() <= plen + 1 || name.compare(0, plen, prefix) != 0 ||
      name[plen] != '-') {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = plen + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *gen = value;
  return true;
}

void EncodeAdmitPayload(const PersistedChunk& chunk,
                        std::vector<uint8_t>* payload) {
  PutU32(payload, chunk.group_by_id);
  PutU64(payload, chunk.chunk_num);
  PutU64(payload, chunk.filter_hash);
  PutF64(payload, chunk.benefit);
  PutU64(payload, chunk.raw_bytes);
  PutU32(payload, chunk.rows);
  PutU32(payload, static_cast<uint32_t>(chunk.blob.size()));
  payload->insert(payload->end(), chunk.blob.begin(), chunk.blob.end());
}

bool DecodeAdmitPayload(const uint8_t* p, size_t len, PersistedChunk* out) {
  Cursor c{p, p + len};
  out->group_by_id = c.U32();
  out->chunk_num = c.U64();
  out->filter_hash = c.U64();
  out->benefit = c.F64();
  out->raw_bytes = c.U64();
  out->rows = c.U32();
  const uint32_t blob_len = c.U32();
  if (!c.ok || static_cast<size_t>(c.end - c.p) != blob_len) return false;
  out->blob.assign(c.p, c.p + blob_len);
  return true;
}

std::vector<uint8_t> FrameRecord(uint8_t type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(CachePersistence::kRecordHeaderBytes + 1 + payload.size());
  frame.resize(CachePersistence::kRecordHeaderBytes);
  frame.push_back(type);
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint32_t len = static_cast<uint32_t>(1 + payload.size());
  const uint32_t crc =
      Crc32c(frame.data() + CachePersistence::kRecordHeaderBytes, len);
  std::memcpy(frame.data(), &crc, 4);
  std::memcpy(frame.data() + 4, &len, 4);
  return frame;
}

struct ReplayKey {
  uint32_t group_by_id;
  uint64_t chunk_num;
  uint64_t filter_hash;

  bool operator==(const ReplayKey& o) const {
    return group_by_id == o.group_by_id && chunk_num == o.chunk_num &&
           filter_hash == o.filter_hash;
  }
};

struct ReplayKeyHash {
  size_t operator()(const ReplayKey& k) const {
    uint64_t h = k.chunk_num * 0x9E3779B97F4A7C15ull;
    h ^= (static_cast<uint64_t>(k.group_by_id) + 0x517CC1B727220A95ull) +
         (h << 6) + (h >> 2);
    h ^= k.filter_hash + 0x2545F4914F6CDD1Dull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace

/// Replay working state: insertion-ordered entries + key index, so the
/// recovered entry order (and therefore warm-cache admission order) is
/// deterministic for a given on-disk state.
struct CachePersistence::ReplayState {
  std::vector<PersistedChunk> entries;
  std::vector<bool> live;
  std::unordered_map<ReplayKey, size_t, ReplayKeyHash> index;
  std::unordered_map<uint32_t, double> ewma;

  void Admit(PersistedChunk&& chunk) {
    const ReplayKey key{chunk.group_by_id, chunk.chunk_num,
                        chunk.filter_hash};
    auto it = index.find(key);
    if (it != index.end()) {
      entries[it->second] = std::move(chunk);
      live[it->second] = true;
      return;
    }
    index.emplace(key, entries.size());
    entries.push_back(std::move(chunk));
    live.push_back(true);
  }

  void Evict(uint32_t gb, uint64_t chunk_num, uint64_t filter_hash) {
    auto it = index.find(ReplayKey{gb, chunk_num, filter_hash});
    if (it != index.end()) live[it->second] = false;
  }
};

Result<std::unique_ptr<CachePersistence>> CachePersistence::Open(
    PersistOptions opts, MetricsRegistry* metrics) {
  std::unique_ptr<CachePersistence> p(
      new CachePersistence(std::move(opts), metrics));
  if (!MkDirs(p->opts_.dir)) {
    return Status::IoError("cache persist: cannot create directory " +
                           p->opts_.dir);
  }
  const uint64_t start = NowNs();
  p->Recover();
  p->recovery_.recovery_ns = NowNs() - start;
  p->recovery_ns_->Record(p->recovery_.recovery_ns);
  Status s = p->OpenWal(p->generation_.load(std::memory_order_relaxed));
  if (!s.ok()) return s;
  return p;
}

CachePersistence::CachePersistence(PersistOptions opts,
                                   MetricsRegistry* metrics)
    : opts_(std::move(opts)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  wal_records_ = metrics_->GetCounter("persist.wal_records");
  wal_bytes_ = metrics_->GetCounter("persist.wal_bytes");
  wal_fsyncs_ = metrics_->GetCounter("persist.wal_fsyncs");
  wal_errors_ = metrics_->GetCounter("persist.wal_errors");
  snapshots_ = metrics_->GetCounter("persist.snapshots");
  snapshot_bytes_ = metrics_->GetCounter("persist.snapshot_bytes");
  snapshot_errors_ = metrics_->GetCounter("persist.snapshot_errors");
  recovered_entries_ = metrics_->GetCounter("persist.recovered_entries");
  replayed_records_ = metrics_->GetCounter("persist.replayed_records");
  truncated_bytes_ = metrics_->GetCounter("persist.truncated_bytes");
  quarantined_ = metrics_->GetCounter("persist.quarantined");
  snapshot_ns_ = metrics_->GetHistogram("persist.snapshot_ns");
  recovery_ns_ = metrics_->GetHistogram("persist.recovery_ns");
}

CachePersistence::~CachePersistence() {
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_fd_ >= 0) {
    if (!crashed() && opts_.wal_fsync_every > 0 && wal_unsynced_ > 0) {
      ::fsync(wal_fd_);
    }
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

RecoveryStats CachePersistence::TakeRecovery() {
  return std::move(recovery_);
}

// -- Recovery --------------------------------------------------------------

void CachePersistence::Recover() {
  // Inventory the directory: generation-numbered snapshots and WALs, plus
  // .tmp strays from a crash mid-snapshot (deleted — never authoritative).
  std::vector<uint64_t> snapshot_gens;
  std::vector<uint64_t> wal_gens;
  uint64_t max_gen = 0;
  if (DIR* d = ::opendir(opts_.dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      uint64_t gen = 0;
      if (ParseGeneration(name, "snapshot", &gen)) {
        snapshot_gens.push_back(gen);
        if (gen > max_gen) max_gen = gen;
      } else if (ParseGeneration(name, "wal", &gen)) {
        wal_gens.push_back(gen);
        if (gen > max_gen) max_gen = gen;
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        ::unlink((opts_.dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  std::sort(snapshot_gens.rbegin(), snapshot_gens.rend());
  std::sort(wal_gens.begin(), wal_gens.end());

  // Newest readable snapshot wins; an unreadable or bad-magic file falls
  // back to the previous generation (its WALs are still on disk until a
  // *successful* newer snapshot GCs them).
  ReplayState state;
  replay_ = &state;
  uint64_t snapshot_gen = 0;
  std::vector<PersistedChunk> snap_entries;
  std::vector<std::pair<uint32_t, double>> snap_ewma;
  for (uint64_t gen : snapshot_gens) {
    snap_entries.clear();
    snap_ewma.clear();
    if (ReadSnapshot(gen, &snap_entries, &snap_ewma)) {
      snapshot_gen = gen;
      break;
    }
  }
  recovery_.generation = snapshot_gen;
  recovery_.snapshot_entries = snap_entries.size();
  for (PersistedChunk& chunk : snap_entries) state.Admit(std::move(chunk));
  for (const auto& [gb, v] : snap_ewma) state.ewma[gb] = v;

  // Replay every WAL at or above the snapshot generation, oldest first.
  // Replay is idempotent (admit = upsert, evict of a missing key = no-op),
  // which is what lets the snapshot protocol rotate the WAL before
  // gathering: events racing the snapshot appear in both.
  for (uint64_t gen : wal_gens) {
    if (gen < snapshot_gen) continue;
    ReplayWal(gen);
  }

  recovery_.entries.reserve(state.entries.size());
  for (size_t i = 0; i < state.entries.size(); ++i) {
    if (state.live[i]) recovery_.entries.push_back(std::move(state.entries[i]));
  }
  recovery_.benefit_ewma.assign(state.ewma.begin(), state.ewma.end());
  std::sort(recovery_.benefit_ewma.begin(), recovery_.benefit_ewma.end());
  replay_ = nullptr;

  recovered_entries_->Add(recovery_.entries.size());
  replayed_records_->Add(recovery_.wal_records);
  truncated_bytes_->Add(recovery_.wal_truncated_bytes);
  quarantined_->Add(recovery_.quarantined);

  generation_.store(max_gen + 1, std::memory_order_relaxed);
}

bool CachePersistence::ReadSnapshot(
    uint64_t generation, std::vector<PersistedChunk>* entries,
    std::vector<std::pair<uint32_t, double>>* ewma) {
  std::vector<uint8_t> data;
  if (!ReadFileFully(SnapshotPath(opts_.dir, generation), &data)) return false;
  if (data.size() < kFileHeaderBytes) return false;
  uint64_t magic = 0;
  std::memcpy(&magic, data.data(), 8);
  if (magic != kSnapMagic) return false;

  // Snapshot records are individually CRC-framed, so one rotted entry is
  // quarantined (skipped + counted) without sacrificing its neighbors. A
  // corrupt *length* desyncs the frame walk; everything after it is
  // unparseable and dropped.
  size_t off = kFileHeaderBytes;
  while (off + kRecordHeaderBytes <= data.size()) {
    uint32_t crc = 0, len = 0;
    std::memcpy(&crc, data.data() + off, 4);
    std::memcpy(&len, data.data() + off + 4, 4);
    const size_t remaining = data.size() - off - kRecordHeaderBytes;
    if (len < 1 || len > remaining || len > kMaxRecordBytes) {
      recovery_.quarantined++;
      break;
    }
    const uint8_t* body = data.data() + off + kRecordHeaderBytes;
    off += kRecordHeaderBytes + len;
    if (Crc32c(body, len) != crc) {
      recovery_.quarantined++;
      continue;
    }
    const uint8_t type = body[0];
    const uint8_t* payload = body + 1;
    const size_t payload_len = len - 1;
    if (type == kAdmit) {
      PersistedChunk chunk;
      if (DecodeAdmitPayload(payload, payload_len, &chunk)) {
        entries->push_back(std::move(chunk));
      } else {
        recovery_.quarantined++;
      }
    } else if (type == kBenefit) {
      Cursor c{payload, payload + payload_len};
      const uint32_t gb = c.U32();
      const double v = c.F64();
      if (c.ok) ewma->emplace_back(gb, v);
    }
    // kFooter and unknown types carry no recoverable state; the snapshot
    // is usable either way (partial warmth beats a cold start).
  }
  return true;
}

void CachePersistence::ReplayWal(uint64_t generation) {
  std::vector<uint8_t> data;
  if (!ReadFileFully(WalPath(opts_.dir, generation), &data)) return;
  if (data.size() < kFileHeaderBytes) {
    recovery_.wal_truncated_bytes += data.size();
    return;
  }
  uint64_t magic = 0;
  std::memcpy(&magic, data.data(), 8);
  if (magic != kWalMagic) {
    recovery_.wal_truncated_bytes += data.size();
    return;
  }

  // WAL records were appended sequentially and fsynced in order, so the
  // first frame that fails to parse marks the torn tail: everything from
  // that offset on is truncated, never trusted.
  size_t off = kFileHeaderBytes;
  while (off + kRecordHeaderBytes <= data.size()) {
    uint32_t crc = 0, len = 0;
    std::memcpy(&crc, data.data() + off, 4);
    std::memcpy(&len, data.data() + off + 4, 4);
    const size_t remaining = data.size() - off - kRecordHeaderBytes;
    if (len < 1 || len > remaining || len > kMaxRecordBytes) break;
    const uint8_t* body = data.data() + off + kRecordHeaderBytes;
    if (Crc32c(body, len) != crc) break;
    const uint8_t type = body[0];
    const uint8_t* payload = body + 1;
    const size_t payload_len = len - 1;
    bool applied = false;
    if (type == kAdmit) {
      PersistedChunk chunk;
      if (DecodeAdmitPayload(payload, payload_len, &chunk)) {
        replay_->Admit(std::move(chunk));
        applied = true;
      }
    } else if (type == kEvict) {
      Cursor c{payload, payload + payload_len};
      const uint32_t gb = c.U32();
      const uint64_t chunk_num = c.U64();
      const uint64_t filter_hash = c.U64();
      if (c.ok) {
        replay_->Evict(gb, chunk_num, filter_hash);
        applied = true;
      }
    } else if (type == kBenefit) {
      Cursor c{payload, payload + payload_len};
      const uint32_t gb = c.U32();
      const double v = c.F64();
      if (c.ok) {
        replay_->ewma[gb] = v;
        applied = true;
      }
    }
    if (!applied) break;  // CRC passed but payload malformed: stop trusting.
    off += kRecordHeaderBytes + len;
    recovery_.wal_records++;
  }
  recovery_.wal_truncated_bytes += data.size() - off;
}

// -- WAL appends -----------------------------------------------------------

Status CachePersistence::OpenWal(uint64_t generation) {
  const std::string path = WalPath(opts_.dir, generation);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cache persist: cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size == 0) {
    std::vector<uint8_t> header;
    PutU64(&header, kWalMagic);
    PutU64(&header, generation);
    if (!WriteAll(fd, header.data(), header.size())) {
      ::close(fd);
      return Status::IoError("cache persist: cannot write WAL header");
    }
  }
  if (wal_fd_ >= 0) ::close(wal_fd_);
  wal_fd_ = fd;
  wal_unsynced_ = 0;
  return Status::OK();
}

void CachePersistence::AppendRecord(uint8_t type,
                                    const std::vector<uint8_t>& payload) {
  if (crashed()) return;
  const std::vector<uint8_t> frame = FrameRecord(type, payload);
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_fd_ < 0) {
    wal_errors_->Increment();
    return;
  }
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed() && fi.ShouldInject(FaultSite::kWalAppend)) {
    wal_errors_->Increment();
    return;
  }
  struct stat st;
  const bool have_start = ::fstat(wal_fd_, &st) == 0;
  if (!WriteAll(wal_fd_, frame.data(), frame.size())) {
    wal_errors_->Increment();
    // A short write leaves a torn frame that would end replay early; cut
    // the file back to the last whole record so later appends stay live.
    if (have_start) (void)::ftruncate(wal_fd_, st.st_size);
    return;
  }
  wal_records_->Increment();
  wal_bytes_->Add(frame.size());
  records_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
  wal_unsynced_++;
  MaybeFsyncWal();
}

void CachePersistence::MaybeFsyncWal() {
  if (opts_.wal_fsync_every == 0 || wal_unsynced_ < opts_.wal_fsync_every) {
    return;
  }
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed() && fi.ShouldInject(FaultSite::kWalFsync)) {
    wal_errors_->Increment();
    return;  // unsynced stays > 0; the next append retries the fsync
  }
  if (::fsync(wal_fd_) != 0) {
    wal_errors_->Increment();
    return;
  }
  wal_fsyncs_->Increment();
  wal_unsynced_ = 0;
}

void CachePersistence::LogAdmit(const PersistedChunk& chunk) {
  std::vector<uint8_t> payload;
  payload.reserve(44 + chunk.blob.size());
  EncodeAdmitPayload(chunk, &payload);
  AppendRecord(kAdmit, payload);
}

void CachePersistence::LogEvict(uint32_t group_by_id, uint64_t chunk_num,
                                uint64_t filter_hash) {
  std::vector<uint8_t> payload;
  payload.reserve(20);
  PutU32(&payload, group_by_id);
  PutU64(&payload, chunk_num);
  PutU64(&payload, filter_hash);
  AppendRecord(kEvict, payload);
}

void CachePersistence::LogBenefit(uint32_t group_by_id, double ewma) {
  std::vector<uint8_t> payload;
  payload.reserve(12);
  PutU32(&payload, group_by_id);
  PutF64(&payload, ewma);
  AppendRecord(kBenefit, payload);
}

// -- Snapshots -------------------------------------------------------------

Status CachePersistence::WriteSnapshot(
    const std::function<void(std::vector<PersistedChunk>*)>& gather_entries,
    const std::function<void(std::vector<std::pair<uint32_t, double>>*)>&
        gather_ewma,
    bool only_if_idle) {
  if (crashed()) return Status::OK();  // simulated kill: nothing runs
  std::unique_lock<std::mutex> snap_lock(snapshot_mu_, std::defer_lock);
  if (only_if_idle) {
    if (!snap_lock.try_lock()) return Status::OK();
  } else {
    snap_lock.lock();
  }
  const uint64_t start = NowNs();
  FaultInjector& fi = FaultInjector::Global();

  // Rotate the WAL before gathering: events that race the snapshot land
  // in the new WAL, where idempotent replay absorbs any duplicate with
  // the snapshot; events already in the old WAL are visible to the
  // gather (their cache mutation happened before the rotation).
  uint64_t gen;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    gen = generation_.load(std::memory_order_relaxed) + 1;
    if (wal_fd_ >= 0 && wal_unsynced_ > 0) (void)::fsync(wal_fd_);
    Status s = OpenWal(gen);
    if (!s.ok()) {
      snapshot_errors_->Increment();
      return s;
    }
    generation_.store(gen, std::memory_order_relaxed);
    records_since_snapshot_.store(0, std::memory_order_relaxed);
  }

  std::vector<PersistedChunk> entries;
  std::vector<std::pair<uint32_t, double>> ewma;
  gather_entries(&entries);
  gather_ewma(&ewma);

  const std::string final_path = SnapshotPath(opts_.dir, gen);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    snapshot_errors_->Increment();
    return Status::IoError("cache persist: cannot create " + tmp_path);
  }
  auto fail_write = [&]() {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    snapshot_errors_->Increment();
    return Status::IoError("cache persist: snapshot write failed");
  };
  auto checked_write = [&](const std::vector<uint8_t>& buf) {
    if (fi.armed() && fi.ShouldInject(FaultSite::kSnapshotWrite)) return false;
    return WriteAll(fd, buf.data(), buf.size());
  };

  uint64_t total_bytes = 0;
  {
    std::vector<uint8_t> header;
    PutU64(&header, kSnapMagic);
    PutU64(&header, gen);
    if (!checked_write(header)) return fail_write();
    total_bytes += header.size();
  }
  for (const auto& [gb, v] : ewma) {
    std::vector<uint8_t> payload;
    PutU32(&payload, gb);
    PutF64(&payload, v);
    const std::vector<uint8_t> frame = FrameRecord(kBenefit, payload);
    if (!checked_write(frame)) return fail_write();
    total_bytes += frame.size();
  }
  for (const PersistedChunk& chunk : entries) {
    std::vector<uint8_t> payload;
    payload.reserve(44 + chunk.blob.size());
    EncodeAdmitPayload(chunk, &payload);
    const std::vector<uint8_t> frame = FrameRecord(kAdmit, payload);
    if (!checked_write(frame)) return fail_write();
    total_bytes += frame.size();
  }
  {
    std::vector<uint8_t> payload;
    PutU64(&payload, entries.size());
    const std::vector<uint8_t> frame = FrameRecord(kFooter, payload);
    if (!checked_write(frame)) return fail_write();
    total_bytes += frame.size();
  }
  if ((fi.armed() && fi.ShouldInject(FaultSite::kSnapshotWrite)) ||
      ::fsync(fd) != 0) {
    return fail_write();
  }
  ::close(fd);

  if (fi.armed() && fi.ShouldInject(FaultSite::kSnapshotRename)) {
    ::unlink(tmp_path.c_str());
    snapshot_errors_->Increment();
    return Status::IoError("injected fault at snapshot-rename");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    snapshot_errors_->Increment();
    return Status::IoError("cache persist: rename failed for " + final_path);
  }
  if (!FsyncDir(opts_.dir)) snapshot_errors_->Increment();

  // The new generation is durable; superseded snapshots and WALs go.
  if (DIR* d = ::opendir(opts_.dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      uint64_t old_gen = 0;
      if ((ParseGeneration(name, "snapshot", &old_gen) && old_gen < gen) ||
          (ParseGeneration(name, "wal", &old_gen) && old_gen < gen)) {
        ::unlink((opts_.dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }

  snapshots_->Increment();
  snapshot_bytes_->Add(total_bytes);
  snapshot_ns_->Record(NowNs() - start);
  return Status::OK();
}

}  // namespace chunkcache::storage
