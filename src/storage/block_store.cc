#include "storage/block_store.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"

namespace chunkcache::storage {

Status BlockStore::AppendBlock(uint32_t rows,
                               const std::vector<uint8_t>& payload) {
  if (rows == 0) return Status::InvalidArgument("BlockStore: empty block");
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("BlockStore: oversized block");
  }
  if (next_page_ == 0) next_page_ = first_page_;

  BlockHeader h;
  h.rows = rows;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.crc = Crc32c(payload.data(), payload.size());

  const size_t total = kBlockHeaderSize + payload.size();
  const uint32_t num_pages =
      static_cast<uint32_t>((total + kPageSize - 1) / kPageSize);

  BlockRef ref;
  ref.first_row = total_rows_;
  ref.rows = rows;
  ref.first_page = next_page_;
  ref.num_pages = num_pages;

  size_t written = 0;
  for (uint32_t i = 0; i < num_pages; ++i) {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Allocate(file_id_));
    if (guard.id().page_no != next_page_ + i) {
      return Status::Internal("BlockStore: non-contiguous allocation");
    }
    uint8_t* dst = guard.page()->data.data();
    size_t at = 0;
    if (i == 0) {
      std::memcpy(dst, &h, kBlockHeaderSize);
      at = kBlockHeaderSize;
    }
    const size_t n =
        std::min(kPageSize - at, payload.size() - written);
    std::memcpy(dst + at, payload.data() + written, n);
    written += n;
    guard.MarkDirty();
  }

  next_page_ += num_pages;
  total_rows_ += rows;
  blocks_.push_back(ref);
  return Status::OK();
}

Status BlockStore::Rebuild(uint64_t total_rows) {
  blocks_.clear();
  total_rows_ = 0;
  next_page_ = first_page_;
  while (total_rows_ < total_rows) {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, next_page_}));
    BlockHeader h;
    std::memcpy(&h, guard.page()->data.data(), kBlockHeaderSize);
    if (h.rows == 0 || total_rows_ + h.rows > total_rows) {
      return Status::Corruption("BlockStore: inconsistent block chain");
    }
    BlockRef ref;
    ref.first_row = total_rows_;
    ref.rows = h.rows;
    ref.first_page = next_page_;
    ref.num_pages = static_cast<uint32_t>(
        (kBlockHeaderSize + static_cast<size_t>(h.payload_len) + kPageSize -
         1) /
        kPageSize);
    blocks_.push_back(ref);
    next_page_ += ref.num_pages;
    total_rows_ += h.rows;
  }
  return Status::OK();
}

size_t BlockStore::FindBlock(uint64_t row) const {
  CHUNKCACHE_DCHECK(!blocks_.empty() && row < total_rows_);
  // Last block whose first_row <= row.
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), row,
      [](uint64_t r, const BlockRef& b) { return r < b.first_row; });
  return static_cast<size_t>(it - blocks_.begin()) - 1;
}

Status BlockStore::ReadBlock(size_t idx, std::vector<uint8_t>* out) {
  if (idx >= blocks_.size()) {
    return Status::OutOfRange("BlockStore: block index beyond directory");
  }
  const BlockRef& ref = blocks_[idx];
  out->clear();
  BlockHeader h{};
  size_t read = 0;
  for (uint32_t i = 0; i < ref.num_pages; ++i) {
    CHUNKCACHE_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->Fetch(PageId{file_id_, ref.first_page + i}));
    const uint8_t* src = guard.page()->data.data();
    size_t at = 0;
    if (i == 0) {
      std::memcpy(&h, src, kBlockHeaderSize);
      if (h.rows != ref.rows) {
        return Status::Corruption("BlockStore: block header row mismatch");
      }
      if (static_cast<size_t>(h.payload_len) + kBlockHeaderSize >
          static_cast<size_t>(ref.num_pages) * kPageSize) {
        return Status::Corruption("BlockStore: block payload overruns pages");
      }
      out->resize(h.payload_len);
      at = kBlockHeaderSize;
    }
    const size_t n = std::min(kPageSize - at, out->size() - read);
    std::memcpy(out->data() + read, src + at, n);
    read += n;
  }
  if (read != out->size()) {
    return Status::Corruption("BlockStore: short block read");
  }
  if (Crc32c(out->data(), out->size()) != h.crc) {
    return Status::Corruption("BlockStore: block checksum mismatch");
  }
  return Status::OK();
}

}  // namespace chunkcache::storage
