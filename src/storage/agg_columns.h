#ifndef CHUNKCACHE_STORAGE_AGG_COLUMNS_H_
#define CHUNKCACHE_STORAGE_AGG_COLUMNS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "schema/hierarchy.h"
#include "storage/tuple.h"

namespace chunkcache::storage {

/// Columnar (structure-of-arrays) container for aggregate rows — the
/// memory layout of chunk payloads. Where a std::vector<AggTuple> pads
/// every row to kMaxDims coordinates, AggColumns keeps one contiguous
/// uint32_t column per *active* dimension plus contiguous SUM / COUNT /
/// MIN / MAX measure columns, so per-chunk aggregation kernels and the
/// boundary filter stream over flat arrays and the cache stops charging
/// for unused coordinate slots.
///
/// Row i is the tuple (coords(0)[i], ..., coords(n-1)[i], sum[i],
/// count[i], min[i], max[i]). Rows have no inherent order; SortRowMajor
/// establishes the canonical row-major coordinate order used everywhere
/// rows used to be sorted with SortRows.
class AggColumns {
 public:
  AggColumns() = default;
  explicit AggColumns(uint32_t num_dims) : num_dims_(num_dims) {}

  uint32_t num_dims() const { return num_dims_; }
  size_t size() const { return sum_.size(); }
  bool empty() const { return sum_.empty(); }

  void Reserve(size_t n);
  void Clear();

  /// Appends one row (AoS -> SoA).
  void PushRow(const AggTuple& row);

  /// Appends one cell from raw parts; `coords` must hold num_dims values.
  void PushCell(const uint32_t* coords, double sum, uint64_t count,
                double min_v, double max_v);

  /// Materializes row `i` (SoA -> AoS).
  AggTuple RowAt(size_t i) const;

  /// Appends every row to `*out` (the cache-hit assembly path).
  void AppendToRows(std::vector<AggTuple>* out) const;

  std::vector<AggTuple> ToRows() const;
  static AggColumns FromRows(const std::vector<AggTuple>& rows,
                             uint32_t num_dims);

  const std::vector<uint32_t>& coords(uint32_t d) const { return coords_[d]; }
  const std::vector<double>& sums() const { return sum_; }
  const std::vector<uint64_t>& counts() const { return count_; }
  const std::vector<double>& mins() const { return min_; }
  const std::vector<double>& maxs() const { return max_; }

  /// Mutable column access for bulk decode (file scans). Callers must keep
  /// all active columns the same length.
  std::vector<uint32_t>* mutable_coords(uint32_t d) { return &coords_[d]; }
  std::vector<double>* mutable_sums() { return &sum_; }
  std::vector<uint64_t>* mutable_counts() { return &count_; }
  std::vector<double>* mutable_mins() { return &min_; }
  std::vector<double>* mutable_maxs() { return &max_; }

  /// Heap footprint charged against cache budgets. Uses capacity(): the
  /// allocator really holds capacity() slots per column.
  uint64_t ByteSize() const;

  /// Reallocates every column down to exactly size() slots. Called after
  /// operations that shrink the row count (boundary filtering) so the
  /// cache charge reflects what is kept, not what was scanned.
  void ShrinkToFit();

  /// Sorts rows into row-major coordinate order (dimension 0 outermost) —
  /// the canonical order SortRows defines for row vectors.
  void SortRowMajor();

  /// Keeps only rows whose coordinates fall inside `sel` on every active
  /// dimension (the Section 5.2.3 boundary post-filter), compacting in
  /// place.
  void FilterToSelection(
      const std::array<schema::OrdinalRange, kMaxDims>& sel);

  /// Flat little-endian serialization: header (num_dims, num_rows) then
  /// each coordinate column, then sum/count/min/max columns back to back.
  void SerializeTo(std::vector<uint8_t>* out) const;
  static Result<AggColumns> Deserialize(const uint8_t* data, size_t len);

  friend bool operator==(const AggColumns& a, const AggColumns& b);

 private:
  uint32_t num_dims_ = 0;
  std::array<std::vector<uint32_t>, kMaxDims> coords_{};
  std::vector<double> sum_;
  std::vector<uint64_t> count_;
  std::vector<double> min_;
  std::vector<double> max_;
};

/// Columnar batch of base fact tuples: per-dimension key columns plus the
/// measure column. Produced by FactFile::ScanRangeColumns so the dense
/// aggregation kernel consumes whole chunk runs as flat arrays.
struct TupleColumns {
  uint32_t num_dims = 0;
  std::array<std::vector<uint32_t>, kMaxDims> keys{};
  std::vector<double> measure;

  size_t size() const { return measure.size(); }
  bool empty() const { return measure.empty(); }

  void Clear() {
    for (uint32_t d = 0; d < num_dims; ++d) keys[d].clear();
    measure.clear();
  }

  void Reserve(size_t n) {
    for (uint32_t d = 0; d < num_dims; ++d) keys[d].reserve(n);
    measure.reserve(n);
  }

  void PushTuple(const Tuple& t) {
    for (uint32_t d = 0; d < num_dims; ++d) keys[d].push_back(t.keys[d]);
    measure.push_back(t.measure);
  }

  Tuple TupleAt(size_t i) const {
    Tuple t;
    for (uint32_t d = 0; d < num_dims; ++d) t.keys[d] = keys[d][i];
    t.measure = measure[i];
    return t;
  }
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_AGG_COLUMNS_H_
