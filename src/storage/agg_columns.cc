#include "storage/agg_columns.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/simd.h"

#if CHUNKCACHE_SIMD_X86_64
#include <immintrin.h>
#endif

namespace chunkcache::storage {

#if CHUNKCACHE_SIMD_X86_64

namespace {

/// 8-row in-selection mask: bit r is set iff row i+r lies inside every
/// dimension's ordinal range. Unsigned range checks via max/min-compare
/// (x >= lo  <=>  max(x, lo) == x), AND-combined across dimensions.
__attribute__((target("avx2"))) inline uint32_t KeepMask8Avx2(
    const uint32_t* const* cols, const schema::OrdinalRange* sel, uint32_t nd,
    size_t i) {
  __m256i keep = _mm256_set1_epi32(-1);
  for (uint32_t d = 0; d < nd; ++d) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[d] + i));
    const __m256i lo = _mm256_set1_epi32(static_cast<int>(sel[d].begin));
    const __m256i hi = _mm256_set1_epi32(static_cast<int>(sel[d].end));
    const __m256i ge = _mm256_cmpeq_epi32(_mm256_max_epu32(x, lo), x);
    const __m256i le = _mm256_cmpeq_epi32(_mm256_min_epu32(x, hi), x);
    keep = _mm256_and_si256(keep, _mm256_and_si256(ge, le));
  }
  return static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(keep)));
}

}  // namespace

#endif  // CHUNKCACHE_SIMD_X86_64

void AggColumns::Reserve(size_t n) {
  for (uint32_t d = 0; d < num_dims_; ++d) coords_[d].reserve(n);
  sum_.reserve(n);
  count_.reserve(n);
  min_.reserve(n);
  max_.reserve(n);
}

void AggColumns::Clear() {
  for (uint32_t d = 0; d < num_dims_; ++d) coords_[d].clear();
  sum_.clear();
  count_.clear();
  min_.clear();
  max_.clear();
}

void AggColumns::PushRow(const AggTuple& row) {
  for (uint32_t d = 0; d < num_dims_; ++d) {
    coords_[d].push_back(row.coords[d]);
  }
  sum_.push_back(row.sum);
  count_.push_back(row.count);
  min_.push_back(row.min_v);
  max_.push_back(row.max_v);
}

void AggColumns::PushCell(const uint32_t* coords, double sum, uint64_t count,
                          double min_v, double max_v) {
  for (uint32_t d = 0; d < num_dims_; ++d) coords_[d].push_back(coords[d]);
  sum_.push_back(sum);
  count_.push_back(count);
  min_.push_back(min_v);
  max_.push_back(max_v);
}

AggTuple AggColumns::RowAt(size_t i) const {
  CHUNKCACHE_DCHECK(i < size());
  AggTuple row;
  for (uint32_t d = 0; d < num_dims_; ++d) row.coords[d] = coords_[d][i];
  row.sum = sum_[i];
  row.count = count_[i];
  row.min_v = min_[i];
  row.max_v = max_[i];
  return row;
}

void AggColumns::AppendToRows(std::vector<AggTuple>* out) const {
  const size_t base = out->size();
  out->resize(base + size());
  for (size_t i = 0; i < size(); ++i) {
    AggTuple& row = (*out)[base + i];
    for (uint32_t d = 0; d < num_dims_; ++d) row.coords[d] = coords_[d][i];
    row.sum = sum_[i];
    row.count = count_[i];
    row.min_v = min_[i];
    row.max_v = max_[i];
  }
}

std::vector<AggTuple> AggColumns::ToRows() const {
  std::vector<AggTuple> rows;
  rows.reserve(size());
  AppendToRows(&rows);
  return rows;
}

AggColumns AggColumns::FromRows(const std::vector<AggTuple>& rows,
                                uint32_t num_dims) {
  AggColumns cols(num_dims);
  cols.Reserve(rows.size());
  for (const AggTuple& row : rows) cols.PushRow(row);
  return cols;
}

uint64_t AggColumns::ByteSize() const {
  uint64_t bytes = sizeof(AggColumns);
  for (uint32_t d = 0; d < num_dims_; ++d) {
    bytes += coords_[d].capacity() * sizeof(uint32_t);
  }
  bytes += sum_.capacity() * sizeof(double);
  bytes += count_.capacity() * sizeof(uint64_t);
  bytes += min_.capacity() * sizeof(double);
  bytes += max_.capacity() * sizeof(double);
  return bytes;
}

void AggColumns::ShrinkToFit() {
  for (uint32_t d = 0; d < num_dims_; ++d) coords_[d].shrink_to_fit();
  sum_.shrink_to_fit();
  count_.shrink_to_fit();
  min_.shrink_to_fit();
  max_.shrink_to_fit();
}

void AggColumns::SortRowMajor() {
  const size_t n = size();
  if (n < 2) return;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (uint32_t d = 0; d < num_dims_; ++d) {
      if (coords_[d][a] != coords_[d][b]) {
        return coords_[d][a] < coords_[d][b];
      }
    }
    return false;
  });
  const auto apply = [&](auto& col) {
    using Col = std::remove_reference_t<decltype(col)>;
    Col next(n);
    for (size_t i = 0; i < n; ++i) next[i] = col[perm[i]];
    col = std::move(next);
  };
  for (uint32_t d = 0; d < num_dims_; ++d) apply(coords_[d]);
  apply(sum_);
  apply(count_);
  apply(min_);
  apply(max_);
}

void AggColumns::FilterToSelection(
    const std::array<schema::OrdinalRange, kMaxDims>& sel) {
  size_t kept = 0;
  const size_t n = size();
  size_t i = 0;
#if CHUNKCACHE_SIMD_X86_64
  // Vectorized mask-and-compact: the kept set and its order are exactly
  // the scalar loop's, so the result is bit-identical either way. The
  // all-keep (boundary chunks mostly inside the selection) and none-keep
  // masks skip per-row work entirely.
  if (simd::ActiveLevel() == simd::IsaLevel::kAvx2) {
    const uint32_t* cols[kMaxDims];
    for (uint32_t d = 0; d < num_dims_; ++d) cols[d] = coords_[d].data();
    for (; i + 8 <= n; i += 8) {
      const uint32_t m = KeepMask8Avx2(cols, sel.data(), num_dims_, i);
      if (m == 0xFFu) {
        if (kept != i) {
          for (uint32_t d = 0; d < num_dims_; ++d) {
            std::memmove(&coords_[d][kept], &coords_[d][i], 8 * 4);
          }
          std::memmove(&sum_[kept], &sum_[i], 8 * 8);
          std::memmove(&count_[kept], &count_[i], 8 * 8);
          std::memmove(&min_[kept], &min_[i], 8 * 8);
          std::memmove(&max_[kept], &max_[i], 8 * 8);
        }
        kept += 8;
      } else if (m != 0) {
        for (uint32_t r = 0; r < 8; ++r) {
          if (((m >> r) & 1) == 0) continue;
          const size_t j = i + r;
          if (kept != j) {
            for (uint32_t d = 0; d < num_dims_; ++d) {
              coords_[d][kept] = coords_[d][j];
            }
            sum_[kept] = sum_[j];
            count_[kept] = count_[j];
            min_[kept] = min_[j];
            max_[kept] = max_[j];
          }
          ++kept;
        }
      }
    }
  }
#endif
  for (; i < n; ++i) {
    bool in = true;
    for (uint32_t d = 0; d < num_dims_; ++d) {
      if (!sel[d].Contains(coords_[d][i])) {
        in = false;
        break;
      }
    }
    if (!in) continue;
    if (kept != i) {
      for (uint32_t d = 0; d < num_dims_; ++d) {
        coords_[d][kept] = coords_[d][i];
      }
      sum_[kept] = sum_[i];
      count_[kept] = count_[i];
      min_[kept] = min_[i];
      max_[kept] = max_[i];
    }
    ++kept;
  }
  for (uint32_t d = 0; d < num_dims_; ++d) coords_[d].resize(kept);
  sum_.resize(kept);
  count_.resize(kept);
  min_.resize(kept);
  max_.resize(kept);
  // A boundary filter can drop most of a chunk's rows, but resize() keeps
  // the old allocations, so ByteSize() would keep billing the cache for
  // the pre-filter footprint. Reallocate when at least a third of the
  // slots (and a non-trivial number of bytes) would otherwise be dead.
  const size_t row_bytes = num_dims_ * sizeof(uint32_t) + 32;
  const size_t wasted = sum_.capacity() - kept;
  if (wasted > kept / 2 && wasted * row_bytes >= 1024) ShrinkToFit();
}

namespace {

template <typename T>
void AppendBytes(std::vector<uint8_t>* out, const T* data, size_t n) {
  if (n == 0) return;  // empty vectors may hand us data() == nullptr
  const size_t at = out->size();
  out->resize(at + n * sizeof(T));
  std::memcpy(out->data() + at, data, n * sizeof(T));
}

template <typename T>
bool ReadBytes(const uint8_t*& p, const uint8_t* end, T* data, size_t n) {
  if (static_cast<size_t>(end - p) < n * sizeof(T)) return false;
  if (n == 0) return true;
  std::memcpy(data, p, n * sizeof(T));
  p += n * sizeof(T);
  return true;
}

}  // namespace

void AggColumns::SerializeTo(std::vector<uint8_t>* out) const {
  const uint64_t header[2] = {num_dims_, size()};
  AppendBytes(out, header, 2);
  for (uint32_t d = 0; d < num_dims_; ++d) {
    AppendBytes(out, coords_[d].data(), coords_[d].size());
  }
  AppendBytes(out, sum_.data(), sum_.size());
  AppendBytes(out, count_.data(), count_.size());
  AppendBytes(out, min_.data(), min_.size());
  AppendBytes(out, max_.data(), max_.size());
}

Result<AggColumns> AggColumns::Deserialize(const uint8_t* data, size_t len) {
  const uint8_t* p = data;
  const uint8_t* end = data + len;
  uint64_t header[2];
  if (!ReadBytes(p, end, header, 2)) {
    return Status::Corruption("AggColumns: truncated header");
  }
  if (header[0] > kMaxDims) {
    return Status::Corruption("AggColumns: bad dimension count");
  }
  // Validate the claimed row count against the bytes actually present
  // BEFORE sizing any column: a corrupt header must never drive a huge
  // allocation or a partial read past the buffer.
  const uint64_t row_bytes = header[0] * 4 + 32;
  if (header[1] > (len - 16) / row_bytes) {
    return Status::Corruption("AggColumns: row count beyond input size");
  }
  AggColumns cols(static_cast<uint32_t>(header[0]));
  const size_t n = static_cast<size_t>(header[1]);
  bool ok = true;
  for (uint32_t d = 0; d < cols.num_dims_; ++d) {
    cols.coords_[d].resize(n);
    ok = ok && ReadBytes(p, end, cols.coords_[d].data(), n);
  }
  cols.sum_.resize(n);
  cols.count_.resize(n);
  cols.min_.resize(n);
  cols.max_.resize(n);
  ok = ok && ReadBytes(p, end, cols.sum_.data(), n) &&
       ReadBytes(p, end, cols.count_.data(), n) &&
       ReadBytes(p, end, cols.min_.data(), n) &&
       ReadBytes(p, end, cols.max_.data(), n);
  if (!ok) return Status::Corruption("AggColumns: truncated columns");
  return cols;
}

bool operator==(const AggColumns& a, const AggColumns& b) {
  if (a.num_dims_ != b.num_dims_ || a.size() != b.size()) return false;
  for (uint32_t d = 0; d < a.num_dims_; ++d) {
    if (a.coords_[d] != b.coords_[d]) return false;
  }
  return a.sum_ == b.sum_ && a.count_ == b.count_ && a.min_ == b.min_ &&
         a.max_ == b.max_;
}

}  // namespace chunkcache::storage
