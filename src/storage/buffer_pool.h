#ifndef CHUNKCACHE_STORAGE_BUFFER_POOL_H_
#define CHUNKCACHE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace chunkcache::storage {

class BufferPool;

/// Pins one page in the buffer pool for the guard's lifetime; unpins on
/// destruction. Movable, not copyable. Obtained from BufferPool::Fetch or
/// BufferPool::Allocate.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t frame, PageId id, Page* page)
      : pool_(pool), frame_(frame), id_(id), page_(page) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { MoveFrom(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(o);
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  bool valid() const { return page_ != nullptr; }
  PageId id() const { return id_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }

  /// Marks the page dirty so eviction writes it back.
  void MarkDirty();

  /// Unpins immediately (idempotent).
  void Release();

 private:
  void MoveFrom(PageGuard& o) {
    pool_ = o.pool_;
    frame_ = o.frame_;
    id_ = o.id_;
    page_ = o.page_;
    o.page_ = nullptr;
    o.pool_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
};

/// Buffer-pool hit/miss statistics. A miss costs one physical read against
/// the DiskManager (plus possibly one write-back of a dirty victim).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Fixed-capacity page cache over a DiskManager, with CLOCK (second chance)
/// replacement — the same policy family the paper uses for its chunk cache.
/// All page access in the backend goes through here, so the pool size is the
/// experiment knob corresponding to the paper's "8 MB buffer pool".
///
/// Thread-safe: one mutex guards the frame table, CLOCK state and pin
/// counts, so concurrent queries (the parallel miss-chunk pipeline and
/// multi-client traffic) may fetch pages freely. Page *content* access is
/// deliberately outside the lock — a pinned page can never be evicted, so
/// readers holding a PageGuard race with nobody on read-only workloads.
/// Writers of page content (bulk loads, index builds) must still be
/// externally serialized, as they always were.
class BufferPool {
 public:
  /// `num_frames` pages of capacity (e.g. 8 MiB / 4 KiB = 2048 frames).
  BufferPool(DiskManager* disk, uint32_t num_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page `id`, reading it from disk on a miss. Fails with
  /// ResourceExhausted if every frame is pinned.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page in `file_id` and pins it (already zeroed).
  Result<PageGuard> Allocate(uint32_t file_id);

  /// Writes back all dirty pages (pages stay cached).
  Status FlushAll();

  /// Drops every unpinned page (writing back dirty ones). Used between
  /// experiment phases to start cold, mimicking the paper's raw device.
  Status EvictAll();

  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = BufferPoolStats();
  }
  uint32_t capacity() const { return static_cast<uint32_t>(frames_.size()); }
  DiskManager* disk() const { return disk_; }

  /// Homes physical I/O latency on `m` ("disk.read_ns"/"disk.write_ns"
  /// histograms). The pool times its DiskManager calls itself so
  /// DiskManager's virtual interface stays untouched (tests subclass it).
  /// Latest binding wins; UnbindMetrics(m) detaches only if `m` is still
  /// the current binding, so a middle tier that outlives another sharing
  /// this pool never yanks the survivor's histograms.
  void BindMetrics(MetricsRegistry* m);
  void UnbindMetrics(MetricsRegistry* m);

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
    bool in_use = false;
  };

  void Unpin(uint32_t frame, bool dirty);
  void MarkFrameDirty(uint32_t frame);
  /// Finds a victim frame via CLOCK; writes back if dirty. Returns frame
  /// index or ResourceExhausted. Caller must hold mu_.
  Result<uint32_t> GrabFrame();

  /// DiskManager calls timed into the bound histograms (no-ops when
  /// unbound beyond one relaxed load).
  Status ReadTimed(PageId id, Page* page);
  Status WriteTimed(PageId id, const Page& page);

  mutable std::mutex mu_;
  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, uint32_t, PageIdHash> table_;
  uint32_t clock_hand_ = 0;
  BufferPoolStats stats_;

  std::atomic<MetricsRegistry*> bound_registry_{nullptr};
  std::atomic<Histogram*> read_ns_{nullptr};
  std::atomic<Histogram*> write_ns_{nullptr};
};

}  // namespace chunkcache::storage

#endif  // CHUNKCACHE_STORAGE_BUFFER_POOL_H_
