#include "storage/fact_file.h"

#include <algorithm>
#include <cstring>

#include "storage/codec.h"

namespace chunkcache::storage {

namespace {

/// Appends rows [from, from + n) of `src` to `*out`.
void AppendTupleRange(const TupleColumns& src, size_t from, size_t n,
                      TupleColumns* out) {
  out->num_dims = src.num_dims;
  for (uint32_t d = 0; d < src.num_dims; ++d) {
    out->keys[d].insert(out->keys[d].end(), src.keys[d].begin() + from,
                        src.keys[d].begin() + from + n);
  }
  out->measure.insert(out->measure.end(), src.measure.begin() + from,
                      src.measure.begin() + from + n);
}

}  // namespace

Result<FactFile> FactFile::Create(BufferPool* pool, TupleDesc desc,
                                  bool compressed) {
  if (desc.num_dims == 0 || desc.num_dims > kMaxDims) {
    return Status::InvalidArgument("FactFile: bad dimension count");
  }
  const uint32_t file_id = pool->disk()->CreateFile();
  FactFile f(pool, file_id, desc);
  // Page 0 is the header page.
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate(file_id));
  auto* h = guard.page()->As<Header>();
  h->magic = kMagic;
  h->num_dims = desc.num_dims;
  h->flags = compressed ? kFlagCompressed : 0;
  h->num_tuples = 0;
  guard.MarkDirty();
  if (compressed) {
    f.compressed_ = true;
    f.block_rows_ = 4 * f.tuples_per_page_;
    f.store_ = std::make_unique<BlockStore>(pool, file_id, 1);
    f.pending_.num_dims = desc.num_dims;
    f.pending_.Reserve(f.block_rows_);
  }
  return f;
}

Result<FactFile> FactFile::Open(BufferPool* pool, uint32_t file_id) {
  uint32_t flags;
  uint64_t num_tuples;
  TupleDesc desc;
  {
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool->Fetch(PageId{file_id, 0}));
    const auto* h = guard.page()->As<Header>();
    if (h->magic != kMagic) {
      return Status::Corruption("FactFile: bad header magic");
    }
    desc = TupleDesc{h->num_dims};
    flags = h->flags;
    num_tuples = h->num_tuples;
  }
  FactFile f(pool, file_id, desc);
  f.num_tuples_ = num_tuples;
  if (flags & kFlagCompressed) {
    f.compressed_ = true;
    f.block_rows_ = 4 * f.tuples_per_page_;
    f.store_ = std::make_unique<BlockStore>(pool, file_id, 1);
    CHUNKCACHE_RETURN_IF_ERROR(f.store_->Rebuild(num_tuples));
    f.flushed_rows_ = num_tuples;
    f.pending_.num_dims = desc.num_dims;
  }
  return f;
}

Status FactFile::FlushPending() {
  if (pending_.empty()) return Status::OK();
  std::vector<uint8_t> blob;
  codec::EncodeTupleColumns(pending_, &blob);
  CHUNKCACHE_RETURN_IF_ERROR(
      store_->AppendBlock(static_cast<uint32_t>(pending_.size()), blob));
  flushed_rows_ += pending_.size();
  pending_.Clear();
  return Status::OK();
}

Status FactFile::DecodeBlock(size_t idx, TupleColumns* out) {
  std::vector<uint8_t> blob;
  CHUNKCACHE_RETURN_IF_ERROR(store_->ReadBlock(idx, &blob));
  CHUNKCACHE_ASSIGN_OR_RETURN(*out,
                              codec::DecodeTupleColumns(blob.data(),
                                                        blob.size()));
  if (out->size() != store_->blocks()[idx].rows ||
      out->num_dims != desc_.num_dims) {
    return Status::Corruption("FactFile: block shape mismatch");
  }
  return Status::OK();
}

Result<RowId> FactFile::Append(const Tuple& t) {
  const RowId rid = num_tuples_;
  if (compressed_) {
    pending_.PushTuple(t);
    ++num_tuples_;
    if (pending_.size() >= block_rows_) {
      CHUNKCACHE_RETURN_IF_ERROR(FlushPending());
    }
    return rid;
  }
  const uint32_t page_no = PageOfRow(rid);
  const uint32_t slot = static_cast<uint32_t>(rid % tuples_per_page_);
  PageGuard guard;
  if (slot == 0) {
    // New data page needed.
    CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Allocate(file_id_));
    if (guard.id().page_no != page_no) {
      return Status::Internal("FactFile: non-contiguous allocation");
    }
  } else {
    CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Fetch(PageId{file_id_, page_no}));
  }
  t.Serialize(desc_, guard.page()->data.data() + slot * desc_.RecordSize());
  guard.MarkDirty();
  ++num_tuples_;
  return rid;
}

Status FactFile::Get(RowId rid, Tuple* out) {
  if (rid >= num_tuples_) {
    return Status::OutOfRange("FactFile::Get: rid beyond EOF");
  }
  if (compressed_) {
    if (rid >= flushed_rows_) {
      *out = pending_.TupleAt(static_cast<size_t>(rid - flushed_rows_));
      return Status::OK();
    }
    TupleColumns block;
    const size_t idx = store_->FindBlock(rid);
    CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
    *out = block.TupleAt(
        static_cast<size_t>(rid - store_->blocks()[idx].first_row));
    return Status::OK();
  }
  const uint32_t page_no = PageOfRow(rid);
  const uint32_t slot = static_cast<uint32_t>(rid % tuples_per_page_);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, page_no}));
  out->Deserialize(desc_,
                   guard.page()->data.data() + slot * desc_.RecordSize());
  return Status::OK();
}

Status FactFile::ScanRange(RowId first, uint64_t count,
                           const std::function<bool(RowId, const Tuple&)>& fn) {
  if (first > num_tuples_) {
    return Status::OutOfRange("FactFile::ScanRange: start beyond EOF");
  }
  const RowId end = std::min<RowId>(first + count, num_tuples_);
  if (compressed_) {
    RowId rid = first;
    TupleColumns block;
    while (rid < end && rid < flushed_rows_) {
      const size_t idx = store_->FindBlock(rid);
      CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
      const BlockStore::BlockRef& ref = store_->blocks()[idx];
      const RowId block_end = std::min<RowId>(ref.first_row + ref.rows, end);
      for (; rid < block_end; ++rid) {
        if (!fn(rid, block.TupleAt(static_cast<size_t>(rid - ref.first_row)))) {
          return Status::OK();
        }
      }
    }
    for (; rid < end; ++rid) {
      if (!fn(rid,
              pending_.TupleAt(static_cast<size_t>(rid - flushed_rows_)))) {
        return Status::OK();
      }
    }
    return Status::OK();
  }
  Tuple t;
  RowId rid = first;
  while (rid < end) {
    const uint32_t page_no = PageOfRow(rid);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint8_t* base = guard.page()->data.data();
    // All rids of this page that fall in [rid, end).
    const RowId page_first =
        static_cast<RowId>(page_no - 1) * tuples_per_page_;
    const RowId page_end = std::min<RowId>(page_first + tuples_per_page_, end);
    for (; rid < page_end; ++rid) {
      const uint32_t slot = static_cast<uint32_t>(rid - page_first);
      t.Deserialize(desc_, base + slot * desc_.RecordSize());
      if (!fn(rid, t)) return Status::OK();
    }
  }
  return Status::OK();
}

Status FactFile::ScanRangeColumns(RowId first, uint64_t count,
                                  TupleColumns* out) {
  if (first > num_tuples_) {
    return Status::OutOfRange("FactFile::ScanRangeColumns: start beyond EOF");
  }
  const RowId end = std::min<RowId>(first + count, num_tuples_);
  if (first >= end) return Status::OK();
  out->num_dims = desc_.num_dims;
  out->Reserve(out->size() + static_cast<size_t>(end - first));
  if (compressed_) {
    RowId rid = first;
    TupleColumns block;
    while (rid < end && rid < flushed_rows_) {
      const size_t idx = store_->FindBlock(rid);
      CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
      const BlockStore::BlockRef& ref = store_->blocks()[idx];
      const RowId block_end = std::min<RowId>(ref.first_row + ref.rows, end);
      AppendTupleRange(block, static_cast<size_t>(rid - ref.first_row),
                       static_cast<size_t>(block_end - rid), out);
      rid = block_end;
    }
    if (rid < end) {
      AppendTupleRange(pending_, static_cast<size_t>(rid - flushed_rows_),
                       static_cast<size_t>(end - rid), out);
    }
    return Status::OK();
  }
  const uint32_t record_size = desc_.RecordSize();
  RowId rid = first;
  while (rid < end) {
    const uint32_t page_no = PageOfRow(rid);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint8_t* base = guard.page()->data.data();
    const RowId page_first =
        static_cast<RowId>(page_no - 1) * tuples_per_page_;
    const RowId page_end = std::min<RowId>(page_first + tuples_per_page_, end);
    for (; rid < page_end; ++rid) {
      const uint8_t* rec =
          base + static_cast<uint32_t>(rid - page_first) * record_size;
      for (uint32_t d = 0; d < desc_.num_dims; ++d) {
        uint32_t key;
        std::memcpy(&key, rec + d * 4, 4);
        out->keys[d].push_back(key);
      }
      double measure;
      std::memcpy(&measure, rec + desc_.num_dims * 4, 8);
      out->measure.push_back(measure);
    }
  }
  return Status::OK();
}

Status FactFile::FetchRows(const std::vector<RowId>& rids,
                           std::vector<Tuple>* out) {
  out->clear();
  out->reserve(rids.size());
  if (compressed_) {
    // Consecutive rids usually share a block: keep the last one decoded.
    TupleColumns block;
    size_t block_idx = SIZE_MAX;
    for (RowId rid : rids) {
      if (rid >= num_tuples_) {
        return Status::OutOfRange("FactFile::FetchRows: rid beyond EOF");
      }
      if (rid >= flushed_rows_) {
        out->push_back(
            pending_.TupleAt(static_cast<size_t>(rid - flushed_rows_)));
        continue;
      }
      const size_t idx = store_->FindBlock(rid);
      if (idx != block_idx) {
        CHUNKCACHE_RETURN_IF_ERROR(DecodeBlock(idx, &block));
        block_idx = idx;
      }
      out->push_back(block.TupleAt(
          static_cast<size_t>(rid - store_->blocks()[idx].first_row)));
    }
    return Status::OK();
  }
  PageGuard guard;
  uint32_t pinned_page = 0;  // 0 = none (page 0 is the header, never data)
  Tuple t;
  for (RowId rid : rids) {
    if (rid >= num_tuples_) {
      return Status::OutOfRange("FactFile::FetchRows: rid beyond EOF");
    }
    const uint32_t page_no = PageOfRow(rid);
    if (page_no != pinned_page) {
      CHUNKCACHE_ASSIGN_OR_RETURN(guard,
                                  pool_->Fetch(PageId{file_id_, page_no}));
      pinned_page = page_no;
    }
    const uint32_t slot = static_cast<uint32_t>(rid % tuples_per_page_);
    t.Deserialize(desc_,
                  guard.page()->data.data() + slot * desc_.RecordSize());
    out->push_back(t);
  }
  return Status::OK();
}

uint32_t FactFile::num_data_pages() const {
  if (compressed_) return store_->num_pages();
  return num_tuples_ == 0
             ? 0
             : static_cast<uint32_t>((num_tuples_ + tuples_per_page_ - 1) /
                                     tuples_per_page_);
}

uint32_t FactFile::PageOfRow(RowId rid) const {
  if (compressed_) {
    if (rid >= flushed_rows_ || store_->blocks().empty()) {
      return 1 + store_->num_pages();
    }
    return store_->blocks()[store_->FindBlock(rid)].first_page;
  }
  return 1 + static_cast<uint32_t>(rid / tuples_per_page_);
}

Status FactFile::SyncHeader() {
  if (compressed_) CHUNKCACHE_RETURN_IF_ERROR(FlushPending());
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, 0}));
  auto* h = guard.page()->As<Header>();
  h->num_tuples = num_tuples_;
  guard.MarkDirty();
  return Status::OK();
}

}  // namespace chunkcache::storage
