#include "storage/fact_file.h"

#include <algorithm>

namespace chunkcache::storage {

Result<FactFile> FactFile::Create(BufferPool* pool, TupleDesc desc) {
  if (desc.num_dims == 0 || desc.num_dims > kMaxDims) {
    return Status::InvalidArgument("FactFile: bad dimension count");
  }
  const uint32_t file_id = pool->disk()->CreateFile();
  FactFile f(pool, file_id, desc);
  // Page 0 is the header page.
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate(file_id));
  auto* h = guard.page()->As<Header>();
  h->magic = kMagic;
  h->num_dims = desc.num_dims;
  h->num_tuples = 0;
  guard.MarkDirty();
  return f;
}

Result<FactFile> FactFile::Open(BufferPool* pool, uint32_t file_id) {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool->Fetch(PageId{file_id, 0}));
  const auto* h = guard.page()->As<Header>();
  if (h->magic != kMagic) {
    return Status::Corruption("FactFile: bad header magic");
  }
  FactFile f(pool, file_id, TupleDesc{h->num_dims});
  f.num_tuples_ = h->num_tuples;
  return f;
}

Result<RowId> FactFile::Append(const Tuple& t) {
  const RowId rid = num_tuples_;
  const uint32_t page_no = PageOfRow(rid);
  const uint32_t slot = static_cast<uint32_t>(rid % tuples_per_page_);
  PageGuard guard;
  if (slot == 0) {
    // New data page needed.
    CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Allocate(file_id_));
    if (guard.id().page_no != page_no) {
      return Status::Internal("FactFile: non-contiguous allocation");
    }
  } else {
    CHUNKCACHE_ASSIGN_OR_RETURN(guard, pool_->Fetch(PageId{file_id_, page_no}));
  }
  t.Serialize(desc_, guard.page()->data.data() + slot * desc_.RecordSize());
  guard.MarkDirty();
  ++num_tuples_;
  return rid;
}

Status FactFile::Get(RowId rid, Tuple* out) {
  if (rid >= num_tuples_) {
    return Status::OutOfRange("FactFile::Get: rid beyond EOF");
  }
  const uint32_t page_no = PageOfRow(rid);
  const uint32_t slot = static_cast<uint32_t>(rid % tuples_per_page_);
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, page_no}));
  out->Deserialize(desc_,
                   guard.page()->data.data() + slot * desc_.RecordSize());
  return Status::OK();
}

Status FactFile::ScanRange(RowId first, uint64_t count,
                           const std::function<bool(RowId, const Tuple&)>& fn) {
  if (first > num_tuples_) {
    return Status::OutOfRange("FactFile::ScanRange: start beyond EOF");
  }
  const RowId end = std::min<RowId>(first + count, num_tuples_);
  Tuple t;
  RowId rid = first;
  while (rid < end) {
    const uint32_t page_no = PageOfRow(rid);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint8_t* base = guard.page()->data.data();
    // All rids of this page that fall in [rid, end).
    const RowId page_first =
        static_cast<RowId>(page_no - 1) * tuples_per_page_;
    const RowId page_end = std::min<RowId>(page_first + tuples_per_page_, end);
    for (; rid < page_end; ++rid) {
      const uint32_t slot = static_cast<uint32_t>(rid - page_first);
      t.Deserialize(desc_, base + slot * desc_.RecordSize());
      if (!fn(rid, t)) return Status::OK();
    }
  }
  return Status::OK();
}

Status FactFile::ScanRangeColumns(RowId first, uint64_t count,
                                  TupleColumns* out) {
  if (first > num_tuples_) {
    return Status::OutOfRange("FactFile::ScanRangeColumns: start beyond EOF");
  }
  const RowId end = std::min<RowId>(first + count, num_tuples_);
  if (first >= end) return Status::OK();
  out->num_dims = desc_.num_dims;
  out->Reserve(out->size() + static_cast<size_t>(end - first));
  const uint32_t record_size = desc_.RecordSize();
  RowId rid = first;
  while (rid < end) {
    const uint32_t page_no = PageOfRow(rid);
    CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                                pool_->Fetch(PageId{file_id_, page_no}));
    const uint8_t* base = guard.page()->data.data();
    const RowId page_first =
        static_cast<RowId>(page_no - 1) * tuples_per_page_;
    const RowId page_end = std::min<RowId>(page_first + tuples_per_page_, end);
    for (; rid < page_end; ++rid) {
      const uint8_t* rec =
          base + static_cast<uint32_t>(rid - page_first) * record_size;
      for (uint32_t d = 0; d < desc_.num_dims; ++d) {
        uint32_t key;
        std::memcpy(&key, rec + d * 4, 4);
        out->keys[d].push_back(key);
      }
      double measure;
      std::memcpy(&measure, rec + desc_.num_dims * 4, 8);
      out->measure.push_back(measure);
    }
  }
  return Status::OK();
}

Status FactFile::FetchRows(const std::vector<RowId>& rids,
                           std::vector<Tuple>* out) {
  out->clear();
  out->reserve(rids.size());
  PageGuard guard;
  uint32_t pinned_page = 0;  // 0 = none (page 0 is the header, never data)
  Tuple t;
  for (RowId rid : rids) {
    if (rid >= num_tuples_) {
      return Status::OutOfRange("FactFile::FetchRows: rid beyond EOF");
    }
    const uint32_t page_no = PageOfRow(rid);
    if (page_no != pinned_page) {
      CHUNKCACHE_ASSIGN_OR_RETURN(guard,
                                  pool_->Fetch(PageId{file_id_, page_no}));
      pinned_page = page_no;
    }
    const uint32_t slot = static_cast<uint32_t>(rid % tuples_per_page_);
    t.Deserialize(desc_,
                  guard.page()->data.data() + slot * desc_.RecordSize());
    out->push_back(t);
  }
  return Status::OK();
}

uint32_t FactFile::num_data_pages() const {
  return num_tuples_ == 0
             ? 0
             : static_cast<uint32_t>((num_tuples_ + tuples_per_page_ - 1) /
                                     tuples_per_page_);
}

Status FactFile::SyncHeader() {
  CHUNKCACHE_ASSIGN_OR_RETURN(PageGuard guard,
                              pool_->Fetch(PageId{file_id_, 0}));
  auto* h = guard.page()->As<Header>();
  h->num_tuples = num_tuples_;
  guard.MarkDirty();
  return Status::OK();
}

}  // namespace chunkcache::storage
