#include "storage/codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>

#include "common/crc32c.h"
#include "common/logging.h"
#include "common/simd.h"

#if CHUNKCACHE_SIMD_X86_64
#include <immintrin.h>
#endif

namespace chunkcache::storage::codec {

namespace {

// -- varint / zigzag primitives --------------------------------------------

constexpr size_t kMaxVarintLen = 10;  // 64 bits / 7 bits per byte, rounded up

inline size_t VarintLen(uint64_t v) {
  // bit_width(0) == 0; a zero still takes one byte.
  return std::max<size_t>(1, (std::bit_width(v) + 6) / 7);
}

inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Bounds-checked varint parse; rejects encodings longer than 10 bytes.
inline bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  uint32_t shift = 0;
  const uint8_t* q = *p;
  while (q < end && shift < 70) {
    const uint8_t byte = *q++;
    result |= static_cast<uint64_t>(byte & 0x7F) << (shift < 64 ? shift : 63);
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte >> 1) != 0) return false;  // overflows 64 bits
      *p = q;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or over-long
}

/// Fast-path varint parse for callers that guarantee >= kMaxVarintLen
/// readable bytes: the common one-byte case is a single branch.
inline const uint8_t* GetVarintFast(const uint8_t* p, uint64_t* v) {
  uint64_t result = *p;
  if ((result & 0x80) == 0) {
    *v = result;
    return p + 1;
  }
  result &= 0x7F;
  uint32_t shift = 7;
  do {
    const uint8_t byte = *++p;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p + 1;
    }
    shift += 7;
  } while (shift < 64);
  return nullptr;  // over-long
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline uint64_t BitsOf(double d) {
  uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

inline double DoubleOf(uint64_t b) {
  double d;
  std::memcpy(&d, &b, 8);
  return d;
}

// -- cost estimators (compute the encoded size without materializing) ------

template <typename T>
size_t VarintCost(const T* v, size_t n) {
  size_t bytes = 0;
  for (size_t i = 0; i < n; ++i) bytes += VarintLen(static_cast<uint64_t>(v[i]));
  return bytes;
}

template <typename T>
size_t DeltaZigzagCost(const T* v, size_t n) {
  if (n == 0) return 0;
  size_t bytes = VarintLen(ZigzagEncode(static_cast<int64_t>(v[0])));
  for (size_t i = 1; i < n; ++i) {
    // Subtract with unsigned wraparound: u64 extremes overflow int64.
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    bytes += VarintLen(ZigzagEncode(static_cast<int64_t>(delta)));
  }
  return bytes;
}

template <typename T>
size_t DeltaOfDeltaCost(const T* v, size_t n) {
  if (n == 0) return 0;
  size_t bytes = VarintLen(ZigzagEncode(static_cast<int64_t>(v[0])));
  uint64_t prev_delta = 0;
  for (size_t i = 1; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    bytes += VarintLen(ZigzagEncode(static_cast<int64_t>(delta - prev_delta)));
    prev_delta = delta;
  }
  return bytes;
}

size_t XorVarintCost(const double* v, size_t n) {
  if (n == 0) return 0;
  size_t bytes = 8;
  uint64_t prev = BitsOf(v[0]);
  for (size_t i = 1; i < n; ++i) {
    const uint64_t bits = BitsOf(v[i]);
    bytes += VarintLen(bits ^ prev);
    prev = bits;
  }
  return bytes;
}

// -- dictionary candidate for u32 columns ----------------------------------

/// Distinct-value cap: a dictionary bigger than this cannot beat delta
/// coding on ordinal data, so the distinct scan gives up early.
constexpr size_t kMaxDictSize = 4096;

struct DictPlan {
  std::vector<uint32_t> values;  // sorted ascending distinct
  size_t cost = SIZE_MAX;        // encoded bytes if chosen
  uint32_t bits = 0;             // index width
};

DictPlan PlanDict(const uint32_t* v, size_t n) {
  DictPlan plan;
  if (n == 0) return plan;
  std::unordered_set<uint32_t> distinct;
  distinct.reserve(256);
  for (size_t i = 0; i < n; ++i) {
    distinct.insert(v[i]);
    if (distinct.size() > kMaxDictSize) return plan;  // not worth it
  }
  plan.values.assign(distinct.begin(), distinct.end());
  std::sort(plan.values.begin(), plan.values.end());
  plan.bits = std::max<uint32_t>(
      1, std::bit_width(static_cast<uint32_t>(plan.values.size() - 1)));
  size_t bytes = VarintLen(plan.values.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < plan.values.size(); ++i) {
    bytes += VarintLen(i == 0 ? plan.values[0] : plan.values[i] - prev);
    prev = plan.values[i];
  }
  bytes += (n * plan.bits + 7) / 8;
  plan.cost = bytes;
  return plan;
}

// -- encoders ---------------------------------------------------------------

template <typename T>
void EncodeDeltaZigzag(const T* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;
  PutVarint(out, ZigzagEncode(static_cast<int64_t>(v[0])));
  for (size_t i = 1; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    PutVarint(out, ZigzagEncode(static_cast<int64_t>(delta)));
  }
}

template <typename T>
void EncodeDeltaOfDelta(const T* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;
  PutVarint(out, ZigzagEncode(static_cast<int64_t>(v[0])));
  uint64_t prev_delta = 0;
  for (size_t i = 1; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    PutVarint(out, ZigzagEncode(static_cast<int64_t>(delta - prev_delta)));
    prev_delta = delta;
  }
}

void EncodeDict(const uint32_t* v, size_t n, const DictPlan& plan,
                std::vector<uint8_t>* out) {
  PutVarint(out, plan.values.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < plan.values.size(); ++i) {
    PutVarint(out, i == 0 ? plan.values[0] : plan.values[i] - prev);
    prev = plan.values[i];
  }
  // Bit-packed indexes, little-endian bit order within a 64-bit buffer.
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(plan.values.begin(), plan.values.end(), v[i]) -
        plan.values.begin());
    acc |= static_cast<uint64_t>(idx) << acc_bits;
    acc_bits += plan.bits;
    while (acc_bits >= 8) {
      out->push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out->push_back(static_cast<uint8_t>(acc));
}

void EncodeXorVarint(const double* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;
  uint64_t prev = BitsOf(v[0]);
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &prev, 8);
  for (size_t i = 1; i < n; ++i) {
    const uint64_t bits = BitsOf(v[i]);
    PutVarint(out, bits ^ prev);
    prev = bits;
  }
}

template <typename T>
void EncodeRaw(const T* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;  // empty vectors may hand us data() == nullptr
  const size_t at = out->size();
  out->resize(at + n * sizeof(T));
  std::memcpy(out->data() + at, v, n * sizeof(T));
}

void NoteCodec(CodecStats* stats, ColumnCodec codec, size_t raw,
               size_t encoded) {
  if (stats == nullptr) return;
  const size_t i = static_cast<size_t>(codec);
  stats->raw_bytes[i] += raw;
  stats->encoded_bytes[i] += encoded;
  stats->columns[i] += 1;
}

/// Emits `tag | varint(payload_len) | payload` by encoding into `*out`
/// directly: the payload length is computed up front by the cost
/// estimators, so no second buffer or memmove is needed.
template <typename EncodeFn>
void EmitColumn(std::vector<uint8_t>* out, ColumnCodec tag,
                size_t payload_len, EncodeFn&& encode) {
  out->push_back(static_cast<uint8_t>(tag));
  PutVarint(out, payload_len);
  const size_t at = out->size();
  encode(out);
  CHUNKCACHE_DCHECK(out->size() - at == payload_len);
  (void)at;
}

// -- column decode helpers --------------------------------------------------

struct ColumnHeader {
  ColumnCodec codec;
  const uint8_t* payload;
  size_t len;
};

Status ReadColumnHeader(const uint8_t** p, const uint8_t* end,
                        ColumnHeader* h) {
  if (*p >= end) return Status::Corruption("codec: truncated column tag");
  const uint8_t tag = *(*p)++;
  if (tag >= kNumCodecs) return Status::Corruption("codec: bad column tag");
  uint64_t len;
  if (!GetVarint(p, end, &len)) {
    return Status::Corruption("codec: bad column length");
  }
  if (len > static_cast<uint64_t>(end - *p)) {
    return Status::Corruption("codec: column length beyond input");
  }
  h->codec = static_cast<ColumnCodec>(tag);
  h->payload = *p;
  h->len = static_cast<size_t>(len);
  *p += len;
  return Status::OK();
}

#if CHUNKCACHE_SIMD_X86_64

/// kPextByLen[k] selects the low 7 bits of each of the first k bytes.
constexpr uint64_t kPextByLen[9] = {
    0,
    0x7f,
    0x7f7f,
    0x7f7f7f,
    0x7f7f7f7f,
    0x7f7f7f7fULL | (0x7fULL << 32),
    0x7f7f7f7f7f7fULL,
    0x7f7f7f7f7f7f7fULL,
    0x7f7f7f7f7f7f7f7fULL,
};

/// One step of the PEXT varint parse: reads the 8-byte window at `*p`
/// (caller guarantees 8 readable bytes), decodes a varint of up to 8
/// bytes with TZCNT over the inverted continuation bits plus a single
/// PEXT of the 7-bit payload groups, and advances `*p`. Returns false
/// when the window has no terminator (a 9- or 10-byte varint, i.e. a
/// value >= 2^56) — the caller falls back to the scalar parser for that
/// varint, so the accepted language and decoded values stay exactly
/// those of the scalar path.
__attribute__((target("bmi,bmi2"))) inline bool PextVarintStep(
    const uint8_t** p, uint64_t* v) {
  uint64_t w;
  std::memcpy(&w, *p, 8);
  const uint64_t stops = ~w & 0x8080808080808080ULL;
  if (stops == 0) return false;
  const unsigned len = static_cast<unsigned>(_tzcnt_u64(stops) >> 3) + 1;
  *v = _pext_u64(w, kPextByLen[len]);
  *p += len;
  return true;
}

/// BMI2 varint stream parse. Single-varint decode is one 8-byte load +
/// TZCNT + PEXT (see PextVarintStep), but throughput is bound by the
/// serial cursor-advance chain (~10 cycles: load -> ANDN -> TZCNT ->
/// advance), so for long streams the parse runs TWO cursors interleaved:
/// a movemask pre-scan counts stop bytes (exactly one per varint —
/// 32 bytes per POPCNT) to locate where varint n/2 ends, and the two
/// halves then parse as independent dependency chains that the CPU
/// overlaps. Because the second cursor emits indices [n/2, n) while the
/// first is still below n/2, `fn` must be a pure index-addressed store —
/// which every kFast decode callback is (reconstruction happens in a
/// separate vector pass).
template <typename Fn>
__attribute__((target("avx2,bmi,bmi2"))) Status DecodeVarintStreamBmi2(
    const ColumnHeader& h, size_t n, Fn&& fn) {
  const uint8_t* p = h.payload;
  const uint8_t* end = h.payload + h.len;
  size_t i = 0;
  if (n >= 512 && h.len >= 64) {
    // Pre-scan for where varints n/4, n/2 and 3n/4 end: the positions of
    // the k-th bytes with their high bit clear. PDEP(1 << j, mask)
    // isolates the j-th set bit of a 32-byte block's stop mask.
    const size_t targets[3] = {n / 4, n / 2, n / 2 + n / 4};
    const uint8_t* splits[3] = {nullptr, nullptr, nullptr};
    size_t count = 0;
    int found = 0;
    for (const uint8_t* q = p; q + 32 <= end && found < 3; q += 32) {
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
      const uint32_t stops =
          ~static_cast<uint32_t>(_mm256_movemask_epi8(block));
      const unsigned c = static_cast<unsigned>(_mm_popcnt_u32(stops));
      while (found < 3 && count + c >= targets[found]) {
        const uint32_t kth = _pdep_u32(
            uint32_t{1} << (targets[found] - count - 1), stops);
        splits[found] = q + _tzcnt_u32(kth) + 1;
        ++found;
      }
      count += c;
    }
    if (found == 3) {
      // Four interleaved cursors, one per quarter of the stream: four
      // independent load->TZCNT->advance chains the CPU overlaps. A
      // cursor may peek (not consume) past its boundary; in a
      // well-formed stream each lands exactly on its split, which the
      // pc[k] == splits[k] checks enforce after the fact. Malformed
      // streams can emit garbage values before a check fires; every
      // caller discards its output on error.
      const uint8_t* pc[4] = {p, splits[0], splits[1], splits[2]};
      size_t ic[4] = {0, targets[0], targets[1], targets[2]};
      const size_t lim[4] = {targets[0], targets[1], targets[2], n};
      // A 9- or 10-byte varint (PextVarintStep returns false) must NOT
      // abort the interleave — columns whose values straddle wide
      // exponent ranges hit one every few thousand varints, and
      // degrading the rest of the stream to the checked parser costs
      // 3x. GetVarint handles just that varint and the cursors carry on.
      while (ic[0] < lim[0] && ic[1] < lim[1] && ic[2] < lim[2] &&
             ic[3] < lim[3] && end - pc[0] >= 8 && end - pc[1] >= 8 &&
             end - pc[2] >= 8 && end - pc[3] >= 8) {
        uint64_t v0, v1, v2, v3;
        if (!PextVarintStep(&pc[0], &v0) && !GetVarint(&pc[0], end, &v0)) {
          return Status::Corruption("codec: truncated varint stream");
        }
        fn(ic[0]++, v0);
        if (!PextVarintStep(&pc[1], &v1) && !GetVarint(&pc[1], end, &v1)) {
          return Status::Corruption("codec: truncated varint stream");
        }
        fn(ic[1]++, v1);
        if (!PextVarintStep(&pc[2], &v2) && !GetVarint(&pc[2], end, &v2)) {
          return Status::Corruption("codec: truncated varint stream");
        }
        fn(ic[2]++, v2);
        if (!PextVarintStep(&pc[3], &v3) && !GetVarint(&pc[3], end, &v3)) {
          return Status::Corruption("codec: truncated varint stream");
        }
        fn(ic[3]++, v3);
      }
      // Drain cursors 0-2 to their boundaries; cursor 3 hands its
      // progress to the shared single-cursor tail below.
      for (int k = 0; k < 3; ++k) {
        while (ic[k] < lim[k] && end - pc[k] >= 8) {
          uint64_t v;
          if (!PextVarintStep(&pc[k], &v) && !GetVarint(&pc[k], end, &v)) {
            return Status::Corruption("codec: truncated varint stream");
          }
          fn(ic[k]++, v);
        }
        for (; ic[k] < lim[k]; ++ic[k]) {
          uint64_t v;
          if (!GetVarint(&pc[k], end, &v)) {
            return Status::Corruption("codec: truncated varint stream");
          }
          fn(ic[k], v);
        }
        if (pc[k] != splits[k]) {
          return Status::Corruption("codec: varint stream split mismatch");
        }
      }
      p = pc[3];
      i = ic[3];
    }
  }
  while (i < n && end - p >= 8) {
    uint64_t v;
    if (!PextVarintStep(&p, &v)) {  // 9- or 10-byte varint
      if (!GetVarint(&p, end, &v)) {
        return Status::Corruption("codec: truncated varint stream");
      }
    }
    fn(i++, v);
  }
  for (; i < n; ++i) {
    uint64_t v;
    if (!GetVarint(&p, end, &v)) {
      return Status::Corruption("codec: truncated varint stream");
    }
    fn(i, v);
  }
  if (p != end) return Status::Corruption("codec: trailing column bytes");
  return Status::OK();
}

#endif  // CHUNKCACHE_SIMD_X86_64

/// Decodes a varint stream of exactly `n` values into `fn(i, value)`.
/// kFast uses the unchecked parser while >= kMaxVarintLen bytes remain;
/// under AVX2 dispatch it parses with the BMI2 PEXT kernel instead. Both
/// fast parsers accept the same streams and produce the same values as
/// the checked one, so the dispatch level never changes results.
template <typename Fn>
Status DecodeVarintStream(const ColumnHeader& h, size_t n, DecodeMode mode,
                          Fn&& fn) {
#if CHUNKCACHE_SIMD_X86_64
  // Streams averaging under two bytes per varint stay on the scalar fast
  // parser: its one-byte path is a single predicted branch (~1 cycle),
  // which the PEXT sequence cannot beat. The PEXT win grows with varint
  // length — at the 8-byte varints XOR'd doubles produce it is ~3x.
  if (mode == DecodeMode::kFast &&
      simd::ActiveLevel() == simd::IsaLevel::kAvx2 && h.len >= 2 * n) {
    return DecodeVarintStreamBmi2(h, n, std::forward<Fn>(fn));
  }
#endif
  const uint8_t* p = h.payload;
  const uint8_t* end = h.payload + h.len;
  size_t i = 0;
  if (mode == DecodeMode::kFast) {
    while (i < n && end - p >= static_cast<ptrdiff_t>(kMaxVarintLen)) {
      uint64_t v;
      const uint8_t* q = GetVarintFast(p, &v);
      if (q == nullptr) return Status::Corruption("codec: over-long varint");
      p = q;
      fn(i++, v);
    }
  }
  for (; i < n; ++i) {
    uint64_t v;
    if (!GetVarint(&p, end, &v)) {
      return Status::Corruption("codec: truncated varint stream");
    }
    fn(i, v);
  }
  if (p != end) return Status::Corruption("codec: trailing column bytes");
  return Status::OK();
}

template <typename T>
Status DecodeRawColumn(const ColumnHeader& h, size_t n, std::vector<T>* out) {
  if (h.len != n * sizeof(T)) {
    return Status::Corruption("codec: raw column size mismatch");
  }
  if (n == 0) return Status::OK();
  const size_t at = out->size();
  out->resize(at + n);
  std::memcpy(out->data() + at, h.payload, h.len);
  return Status::OK();
}

#if CHUNKCACHE_SIMD_X86_64

// -- AVX2 fast-decode kernels ------------------------------------------------
//
// The varint *parse* stays scalar (it is inherently serial); what
// vectorizes is the reconstruction: zigzag undo, prefix-sum / prefix-xor
// chains, and the dict bit-unpack. All reconstruction arithmetic is 64-bit
// integer add/xor/shift — associative mod 2^64 — so regrouping the scalar
// running chains into 4-lane prefix networks is bit-exact.

/// Parse target for the split parse/reconstruct pipeline. Thread-local so
/// concurrent chunk decodes never share or reallocate per call.
thread_local std::vector<uint64_t> tls_decode_scratch;

/// [0, x0, x1, x2]
__attribute__((target("avx2"))) inline __m256i ShiftLanesLeft1(__m256i x) {
  const __m256i p = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 1, 0, 0));
  return _mm256_blend_epi32(p, _mm256_setzero_si256(), 0x03);
}

/// [0, 0, x0, x1]
__attribute__((target("avx2"))) inline __m256i ShiftLanesLeft2(__m256i x) {
  const __m256i p = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 0, 0, 0));
  return _mm256_blend_epi32(p, _mm256_setzero_si256(), 0x0F);
}

/// In place: v[i] = ZigzagDecode(v[i]).
__attribute__((target("avx2"))) void ZigzagDecodeAvx2(uint64_t* v, size_t n) {
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i sign = _mm256_sub_epi64(zero, _mm256_and_si256(x, one));
    x = _mm256_xor_si256(_mm256_srli_epi64(x, 1), sign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i), x);
  }
  for (; i < n; ++i) v[i] = static_cast<uint64_t>(ZigzagDecode(v[i]));
}

/// In place inclusive prefix sum with carry-in: v[i] = seed + v[0]+..+v[i].
__attribute__((target("avx2"))) void PrefixSumAvx2(uint64_t* v, size_t n,
                                                   uint64_t seed) {
  __m256i run = _mm256_set1_epi64x(static_cast<long long>(seed));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    x = _mm256_add_epi64(x, ShiftLanesLeft1(x));
    x = _mm256_add_epi64(x, ShiftLanesLeft2(x));
    x = _mm256_add_epi64(x, run);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i), x);
    run = _mm256_permute4x64_epi64(x, 0xFF);  // broadcast new running total
  }
  uint64_t acc = i == 0 ? seed : v[i - 1];
  for (; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

/// In place inclusive prefix xor with carry-in.
__attribute__((target("avx2"))) void PrefixXorAvx2(uint64_t* v, size_t n,
                                                   uint64_t seed) {
  __m256i run = _mm256_set1_epi64x(static_cast<long long>(seed));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    x = _mm256_xor_si256(x, ShiftLanesLeft1(x));
    x = _mm256_xor_si256(x, ShiftLanesLeft2(x));
    x = _mm256_xor_si256(x, run);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i), x);
    run = _mm256_permute4x64_epi64(x, 0xFF);
  }
  uint64_t acc = i == 0 ? seed : v[i - 1];
  for (; i < n; ++i) {
    acc ^= v[i];
    v[i] = acc;
  }
}

/// Unpacks `n` bit-packed dict indexes of width `bits` from `p` (holding
/// `avail` bytes, already size-validated as ceil(n*bits/8)) and translates
/// them through dict[0..dict_size). Four indexes per step: one 8-byte load
/// broadcast to all lanes, variable right shifts, mask, then a gather
/// through the dictionary. Little-endian bit order matches the scalar
/// accumulator loop exactly. Returns false on an out-of-range index.
__attribute__((target("avx2"))) bool DictUnpackAvx2(const uint8_t* p,
                                                    size_t avail, size_t n,
                                                    uint32_t bits,
                                                    const uint32_t* dict,
                                                    size_t dict_size,
                                                    uint32_t* dst) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i max_idx =
      _mm256_set1_epi64x(static_cast<long long>(dict_size - 1));
  // Lane r shifts by r*bits more; bits <= 12, so the worst shift is
  // 7 + 3*12 + 12 = 55 bits — four indexes always fit one 8-byte load.
  const __m256i step = _mm256_set_epi64x(3 * bits, 2 * bits, bits, 0);
  size_t i = 0;
  uint64_t bitpos = 0;
  for (; i + 4 <= n; i += 4) {
    const size_t byte = bitpos >> 3;
    if (byte + 8 > avail) break;  // near the end: fall through to scalar
    uint64_t w;
    std::memcpy(&w, p + byte, 8);
    const __m256i sh = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(bitpos & 7)), step);
    const __m256i idx = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(w)), sh),
        vmask);
    if (_mm256_movemask_epi8(_mm256_cmpgt_epi64(idx, max_idx)) != 0) {
      return false;
    }
    const __m128i vals =
        _mm256_i64gather_epi32(reinterpret_cast<const int*>(dict), idx, 4);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), vals);
    bitpos += 4 * bits;
  }
  for (; i < n; ++i) {
    const size_t byte = bitpos >> 3;
    const uint32_t shift = static_cast<uint32_t>(bitpos & 7);
    uint64_t w = 0;
    std::memcpy(&w, p + byte, std::min<size_t>(8, avail - byte));
    const uint64_t idx = (w >> shift) & mask;
    if (idx >= dict_size) return false;
    dst[i] = dict[static_cast<size_t>(idx)];
    bitpos += bits;
  }
  return true;
}

/// Shared AVX2 fast path for the delta and delta-of-delta int codecs:
/// scalar-parse the varints into scratch, then reconstruct with vector
/// zigzag + prefix-sum passes (twice for delta-of-delta).
template <typename T>
Status DecodeDeltaAvx2(const ColumnHeader& h, size_t n, std::vector<T>* out,
                       bool delta_of_delta) {
  std::vector<uint64_t>& scratch = tls_decode_scratch;
  scratch.resize(n);
  uint64_t* s = scratch.data();
  Status st = DecodeVarintStream(h, n, DecodeMode::kFast,
                                 [s](size_t i, uint64_t v) { s[i] = v; });
  if (!st.ok()) return st;
  ZigzagDecodeAvx2(s, n);
  if (delta_of_delta) {
    if (n > 1) {
      PrefixSumAvx2(s + 1, n - 1, 0);     // second differences -> deltas
      PrefixSumAvx2(s + 1, n - 1, s[0]);  // deltas -> values
    }
  } else {
    PrefixSumAvx2(s, n, 0);
  }
  const size_t at = out->size();
  out->resize(at + n);
  T* dst = out->data() + at;
  for (size_t i = 0; i < n; ++i) dst[i] = static_cast<T>(s[i]);
  return Status::OK();
}

#endif  // CHUNKCACHE_SIMD_X86_64

template <typename T>
Status DecodeIntColumn(const ColumnHeader& h, size_t n, std::vector<T>* out,
                       DecodeMode mode) {
  const size_t at = out->size();
  switch (h.codec) {
    case ColumnCodec::kRaw:
      return DecodeRawColumn(h, n, out);
    case ColumnCodec::kVarint: {
      out->resize(at + n);
      T* dst = out->data() + at;
      Status s = DecodeVarintStream(h, n, mode, [&](size_t i, uint64_t v) {
        dst[i] = static_cast<T>(v);
      });
      if (!s.ok()) out->resize(at);
      return s;
    }
    case ColumnCodec::kDeltaZigzag: {
#if CHUNKCACHE_SIMD_X86_64
      if (mode == DecodeMode::kFast &&
          simd::ActiveLevel() == simd::IsaLevel::kAvx2) {
        return DecodeDeltaAvx2(h, n, out, /*delta_of_delta=*/false);
      }
#endif
      out->resize(at + n);
      T* dst = out->data() + at;
      uint64_t prev = 0;
      Status s = DecodeVarintStream(h, n, mode, [&](size_t i, uint64_t v) {
        prev = (i == 0 ? uint64_t{0} : prev) +
               static_cast<uint64_t>(ZigzagDecode(v));
        dst[i] = static_cast<T>(prev);
      });
      if (!s.ok()) out->resize(at);
      return s;
    }
    case ColumnCodec::kDeltaOfDelta: {
#if CHUNKCACHE_SIMD_X86_64
      if (mode == DecodeMode::kFast &&
          simd::ActiveLevel() == simd::IsaLevel::kAvx2) {
        return DecodeDeltaAvx2(h, n, out, /*delta_of_delta=*/true);
      }
#endif
      out->resize(at + n);
      T* dst = out->data() + at;
      uint64_t prev = 0;
      uint64_t prev_delta = 0;
      Status s = DecodeVarintStream(h, n, mode, [&](size_t i, uint64_t v) {
        if (i == 0) {
          prev = static_cast<uint64_t>(ZigzagDecode(v));
        } else {
          prev_delta += static_cast<uint64_t>(ZigzagDecode(v));
          prev += prev_delta;
        }
        dst[i] = static_cast<T>(prev);
      });
      if (!s.ok()) out->resize(at);
      return s;
    }
    case ColumnCodec::kDict: {
      if constexpr (sizeof(T) != 4) {
        return Status::Corruption("codec: dict codec on non-u32 column");
      } else {
        const uint8_t* p = h.payload;
        const uint8_t* end = h.payload + h.len;
        uint64_t dict_size;
        if (!GetVarint(&p, end, &dict_size) || dict_size == 0 ||
            dict_size > kMaxDictSize) {
          return Status::Corruption("codec: bad dictionary size");
        }
        std::vector<uint32_t> dict(static_cast<size_t>(dict_size));
        uint64_t prev = 0;
        for (size_t i = 0; i < dict.size(); ++i) {
          uint64_t d;
          if (!GetVarint(&p, end, &d)) {
            return Status::Corruption("codec: truncated dictionary");
          }
          prev = i == 0 ? d : prev + d;
          if (prev > UINT32_MAX) {
            return Status::Corruption("codec: dictionary value overflow");
          }
          dict[i] = static_cast<uint32_t>(prev);
        }
        const uint32_t bits = std::max<uint32_t>(
            1, std::bit_width(static_cast<uint32_t>(dict.size() - 1)));
        if (static_cast<uint64_t>(end - p) != (n * bits + 7) / 8) {
          return Status::Corruption("codec: dict index block size mismatch");
        }
        out->resize(at + n);
        T* dst = out->data() + at;
#if CHUNKCACHE_SIMD_X86_64
        if (mode == DecodeMode::kFast &&
            simd::ActiveLevel() == simd::IsaLevel::kAvx2) {
          if (!DictUnpackAvx2(p, static_cast<size_t>(end - p), n, bits,
                              dict.data(), dict.size(), dst)) {
            out->resize(at);
            return Status::Corruption("codec: dict index out of range");
          }
          return Status::OK();
        }
#endif
        uint64_t acc = 0;
        uint32_t acc_bits = 0;
        const uint64_t mask = (uint64_t{1} << bits) - 1;
        for (size_t i = 0; i < n; ++i) {
          while (acc_bits < bits) {
            acc |= static_cast<uint64_t>(*p++) << acc_bits;
            acc_bits += 8;
          }
          const uint64_t idx = acc & mask;
          acc >>= bits;
          acc_bits -= bits;
          if (idx >= dict.size()) {
            out->resize(at);
            return Status::Corruption("codec: dict index out of range");
          }
          dst[i] = dict[static_cast<size_t>(idx)];
        }
        return Status::OK();
      }
    }
    case ColumnCodec::kXorVarint:
      return Status::Corruption("codec: xor codec on integer column");
  }
  return Status::Corruption("codec: unreachable tag");
}

}  // namespace

const char* CodecName(ColumnCodec c) {
  switch (c) {
    case ColumnCodec::kRaw:
      return "raw";
    case ColumnCodec::kVarint:
      return "varint";
    case ColumnCodec::kDeltaZigzag:
      return "delta";
    case ColumnCodec::kDeltaOfDelta:
      return "dod";
    case ColumnCodec::kDict:
      return "dict";
    case ColumnCodec::kXorVarint:
      return "xor";
  }
  return "unknown";
}

void EncodeU32Column(const uint32_t* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats) {
  const size_t raw_cost = n * 4;
  const size_t delta_cost = DeltaZigzagCost(v, n);
  const size_t dod_cost = DeltaOfDeltaCost(v, n);
  const DictPlan dict = PlanDict(v, n);

  size_t best_cost = raw_cost;
  ColumnCodec best = ColumnCodec::kRaw;
  if (delta_cost < best_cost) best_cost = delta_cost, best = ColumnCodec::kDeltaZigzag;
  if (dod_cost < best_cost) best_cost = dod_cost, best = ColumnCodec::kDeltaOfDelta;
  if (dict.cost < best_cost) best_cost = dict.cost, best = ColumnCodec::kDict;

  EmitColumn(out, best, best_cost, [&](std::vector<uint8_t>* dst) {
    switch (best) {
      case ColumnCodec::kRaw:
        EncodeRaw(v, n, dst);
        break;
      case ColumnCodec::kDeltaZigzag:
        EncodeDeltaZigzag(v, n, dst);
        break;
      case ColumnCodec::kDeltaOfDelta:
        EncodeDeltaOfDelta(v, n, dst);
        break;
      case ColumnCodec::kDict:
        EncodeDict(v, n, dict, dst);
        break;
      default:
        break;
    }
  });
  NoteCodec(stats, best, raw_cost, best_cost);
}

void EncodeU64Column(const uint64_t* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats) {
  const size_t raw_cost = n * 8;
  const size_t varint_cost = VarintCost(v, n);
  const size_t delta_cost = DeltaZigzagCost(v, n);

  size_t best_cost = raw_cost;
  ColumnCodec best = ColumnCodec::kRaw;
  if (varint_cost < best_cost) best_cost = varint_cost, best = ColumnCodec::kVarint;
  if (delta_cost < best_cost) best_cost = delta_cost, best = ColumnCodec::kDeltaZigzag;

  EmitColumn(out, best, best_cost, [&](std::vector<uint8_t>* dst) {
    switch (best) {
      case ColumnCodec::kRaw:
        EncodeRaw(v, n, dst);
        break;
      case ColumnCodec::kVarint:
        for (size_t i = 0; i < n; ++i) PutVarint(dst, v[i]);
        break;
      case ColumnCodec::kDeltaZigzag:
        EncodeDeltaZigzag(v, n, dst);
        break;
      default:
        break;
    }
  });
  NoteCodec(stats, best, raw_cost, best_cost);
}

void EncodeF64Column(const double* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats) {
  const size_t raw_cost = n * 8;
  const size_t xor_cost = XorVarintCost(v, n);

  size_t best_cost = raw_cost;
  ColumnCodec best = ColumnCodec::kRaw;
  if (xor_cost < best_cost) best_cost = xor_cost, best = ColumnCodec::kXorVarint;

  EmitColumn(out, best, best_cost, [&](std::vector<uint8_t>* dst) {
    if (best == ColumnCodec::kRaw) {
      EncodeRaw(v, n, dst);
    } else {
      EncodeXorVarint(v, n, dst);
    }
  });
  NoteCodec(stats, best, raw_cost, best_cost);
}

Status DecodeU32Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<uint32_t>* out, DecodeMode mode) {
  ColumnHeader h;
  CHUNKCACHE_RETURN_IF_ERROR(ReadColumnHeader(p, end, &h));
  return DecodeIntColumn(h, n, out, mode);
}

Status DecodeU64Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<uint64_t>* out, DecodeMode mode) {
  ColumnHeader h;
  CHUNKCACHE_RETURN_IF_ERROR(ReadColumnHeader(p, end, &h));
  return DecodeIntColumn(h, n, out, mode);
}

Status DecodeF64Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<double>* out, DecodeMode mode) {
  ColumnHeader h;
  CHUNKCACHE_RETURN_IF_ERROR(ReadColumnHeader(p, end, &h));
  const size_t at = out->size();
  switch (h.codec) {
    case ColumnCodec::kRaw:
      return DecodeRawColumn(h, n, out);
    case ColumnCodec::kXorVarint: {
      if (n == 0) {
        return h.len == 0 ? Status::OK()
                          : Status::Corruption("codec: trailing column bytes");
      }
      if (h.len < 8) return Status::Corruption("codec: truncated xor column");
      uint64_t prev;
      std::memcpy(&prev, h.payload, 8);
      out->resize(at + n);
      double* dst = out->data() + at;
      dst[0] = DoubleOf(prev);
      const ColumnHeader rest{h.codec, h.payload + 8, h.len - 8};
#if CHUNKCACHE_SIMD_X86_64
      if (mode == DecodeMode::kFast &&
          simd::ActiveLevel() == simd::IsaLevel::kAvx2) {
        std::vector<uint64_t>& scratch = tls_decode_scratch;
        scratch.resize(n - 1);
        uint64_t* s64 = scratch.data();
        Status s = DecodeVarintStream(
            rest, n - 1, DecodeMode::kFast,
            [s64](size_t i, uint64_t v) { s64[i] = v; });
        if (!s.ok()) {
          out->resize(at);
          return s;
        }
        PrefixXorAvx2(s64, n - 1, prev);
        // The xor chain yields the raw IEEE bit patterns; bulk-bitcast.
        if (n > 1) std::memcpy(dst + 1, s64, (n - 1) * 8);
        return Status::OK();
      }
#endif
      Status s =
          DecodeVarintStream(rest, n - 1, mode, [&](size_t i, uint64_t v) {
            prev ^= v;
            dst[i + 1] = DoubleOf(prev);
          });
      if (!s.ok()) out->resize(at);
      return s;
    }
    default:
      return Status::Corruption("codec: bad codec for double column");
  }
}

namespace {

constexpr uint8_t kAggBlobTag = 0xA1;
constexpr uint8_t kTupleBlobTag = 0xB1;

/// Common blob epilogue: CRC32C over [data, data+len).
void AppendCrc(std::vector<uint8_t>* out, size_t from) {
  const uint32_t crc = Crc32c(out->data() + from, out->size() - from);
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &crc, 4);
}

/// Validates the trailing CRC and the blob tag; on success sets `*p` past
/// the tag and `*end` to the start of the CRC, and parses num_dims +
/// num_rows. A claimed row count is sanity-bounded against the input
/// length (every active column costs at least one bit per row), so a
/// corrupt header can never drive a huge allocation.
Status OpenBlob(const uint8_t* data, size_t len, uint8_t expected_tag,
                const uint8_t** p, const uint8_t** end, uint32_t* num_dims,
                size_t* num_rows) {
  if (len < 6) return Status::Corruption("codec: blob too short");
  uint32_t crc_stored;
  std::memcpy(&crc_stored, data + len - 4, 4);
  if (Crc32c(data, len - 4) != crc_stored) {
    return Status::Corruption("codec: blob checksum mismatch");
  }
  *p = data;
  *end = data + len - 4;
  const uint8_t tag = *(*p)++;
  if (tag != expected_tag) return Status::Corruption("codec: bad blob tag");
  if (*p >= *end) return Status::Corruption("codec: truncated blob header");
  *num_dims = *(*p)++;
  if (*num_dims > kMaxDims) {
    return Status::Corruption("codec: bad dimension count");
  }
  uint64_t rows;
  if (!GetVarint(p, *end, &rows)) {
    return Status::Corruption("codec: bad row count");
  }
  if (rows > 8 * len) {
    return Status::Corruption("codec: row count beyond input size");
  }
  *num_rows = static_cast<size_t>(rows);
  return Status::OK();
}

}  // namespace

uint64_t RawPayloadBytes(const AggColumns& cols) {
  return cols.size() * (cols.num_dims() * 4ull + 32ull);
}

uint64_t RawPayloadBytes(const TupleColumns& cols) {
  return cols.size() * (cols.num_dims * 4ull + 8ull);
}

void EncodeAggColumns(const AggColumns& cols, std::vector<uint8_t>* out,
                      CodecStats* stats) {
  const size_t from = out->size();
  out->push_back(kAggBlobTag);
  out->push_back(static_cast<uint8_t>(cols.num_dims()));
  PutVarint(out, cols.size());
  const size_t n = cols.size();
  for (uint32_t d = 0; d < cols.num_dims(); ++d) {
    EncodeU32Column(cols.coords(d).data(), n, out, stats);
  }
  EncodeF64Column(cols.sums().data(), n, out, stats);
  EncodeU64Column(cols.counts().data(), n, out, stats);
  EncodeF64Column(cols.mins().data(), n, out, stats);
  EncodeF64Column(cols.maxs().data(), n, out, stats);
  AppendCrc(out, from);
}

Result<AggColumns> DecodeAggColumns(const uint8_t* data, size_t len,
                                    DecodeMode mode) {
  const uint8_t* p;
  const uint8_t* end;
  uint32_t num_dims;
  size_t n;
  CHUNKCACHE_RETURN_IF_ERROR(
      OpenBlob(data, len, kAggBlobTag, &p, &end, &num_dims, &n));
  AggColumns cols(num_dims);
  cols.Reserve(n);
  for (uint32_t d = 0; d < num_dims; ++d) {
    CHUNKCACHE_RETURN_IF_ERROR(
        DecodeU32Column(&p, end, n, cols.mutable_coords(d), mode));
  }
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, cols.mutable_sums(), mode));
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeU64Column(&p, end, n, cols.mutable_counts(), mode));
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, cols.mutable_mins(), mode));
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, cols.mutable_maxs(), mode));
  if (p != end) return Status::Corruption("codec: trailing blob bytes");
  return cols;
}

void EncodeTupleColumns(const TupleColumns& cols, std::vector<uint8_t>* out,
                        CodecStats* stats) {
  const size_t from = out->size();
  out->push_back(kTupleBlobTag);
  out->push_back(static_cast<uint8_t>(cols.num_dims));
  PutVarint(out, cols.size());
  const size_t n = cols.size();
  for (uint32_t d = 0; d < cols.num_dims; ++d) {
    EncodeU32Column(cols.keys[d].data(), n, out, stats);
  }
  EncodeF64Column(cols.measure.data(), n, out, stats);
  AppendCrc(out, from);
}

Result<TupleColumns> DecodeTupleColumns(const uint8_t* data, size_t len,
                                        DecodeMode mode) {
  const uint8_t* p;
  const uint8_t* end;
  uint32_t num_dims;
  size_t n;
  CHUNKCACHE_RETURN_IF_ERROR(
      OpenBlob(data, len, kTupleBlobTag, &p, &end, &num_dims, &n));
  TupleColumns cols;
  cols.num_dims = num_dims;
  cols.Reserve(n);
  for (uint32_t d = 0; d < num_dims; ++d) {
    CHUNKCACHE_RETURN_IF_ERROR(
        DecodeU32Column(&p, end, n, &cols.keys[d], mode));
  }
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, &cols.measure, mode));
  if (p != end) return Status::Corruption("codec: trailing blob bytes");
  return cols;
}

}  // namespace chunkcache::storage::codec
