#include "storage/codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>

#include "common/crc32c.h"
#include "common/logging.h"

namespace chunkcache::storage::codec {

namespace {

// -- varint / zigzag primitives --------------------------------------------

constexpr size_t kMaxVarintLen = 10;  // 64 bits / 7 bits per byte, rounded up

inline size_t VarintLen(uint64_t v) {
  // bit_width(0) == 0; a zero still takes one byte.
  return std::max<size_t>(1, (std::bit_width(v) + 6) / 7);
}

inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Bounds-checked varint parse; rejects encodings longer than 10 bytes.
inline bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  uint32_t shift = 0;
  const uint8_t* q = *p;
  while (q < end && shift < 70) {
    const uint8_t byte = *q++;
    result |= static_cast<uint64_t>(byte & 0x7F) << (shift < 64 ? shift : 63);
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte >> 1) != 0) return false;  // overflows 64 bits
      *p = q;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or over-long
}

/// Fast-path varint parse for callers that guarantee >= kMaxVarintLen
/// readable bytes: the common one-byte case is a single branch.
inline const uint8_t* GetVarintFast(const uint8_t* p, uint64_t* v) {
  uint64_t result = *p;
  if ((result & 0x80) == 0) {
    *v = result;
    return p + 1;
  }
  result &= 0x7F;
  uint32_t shift = 7;
  do {
    const uint8_t byte = *++p;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p + 1;
    }
    shift += 7;
  } while (shift < 64);
  return nullptr;  // over-long
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline uint64_t BitsOf(double d) {
  uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

inline double DoubleOf(uint64_t b) {
  double d;
  std::memcpy(&d, &b, 8);
  return d;
}

// -- cost estimators (compute the encoded size without materializing) ------

template <typename T>
size_t VarintCost(const T* v, size_t n) {
  size_t bytes = 0;
  for (size_t i = 0; i < n; ++i) bytes += VarintLen(static_cast<uint64_t>(v[i]));
  return bytes;
}

template <typename T>
size_t DeltaZigzagCost(const T* v, size_t n) {
  if (n == 0) return 0;
  size_t bytes = VarintLen(ZigzagEncode(static_cast<int64_t>(v[0])));
  for (size_t i = 1; i < n; ++i) {
    // Subtract with unsigned wraparound: u64 extremes overflow int64.
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    bytes += VarintLen(ZigzagEncode(static_cast<int64_t>(delta)));
  }
  return bytes;
}

template <typename T>
size_t DeltaOfDeltaCost(const T* v, size_t n) {
  if (n == 0) return 0;
  size_t bytes = VarintLen(ZigzagEncode(static_cast<int64_t>(v[0])));
  uint64_t prev_delta = 0;
  for (size_t i = 1; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    bytes += VarintLen(ZigzagEncode(static_cast<int64_t>(delta - prev_delta)));
    prev_delta = delta;
  }
  return bytes;
}

size_t XorVarintCost(const double* v, size_t n) {
  if (n == 0) return 0;
  size_t bytes = 8;
  uint64_t prev = BitsOf(v[0]);
  for (size_t i = 1; i < n; ++i) {
    const uint64_t bits = BitsOf(v[i]);
    bytes += VarintLen(bits ^ prev);
    prev = bits;
  }
  return bytes;
}

// -- dictionary candidate for u32 columns ----------------------------------

/// Distinct-value cap: a dictionary bigger than this cannot beat delta
/// coding on ordinal data, so the distinct scan gives up early.
constexpr size_t kMaxDictSize = 4096;

struct DictPlan {
  std::vector<uint32_t> values;  // sorted ascending distinct
  size_t cost = SIZE_MAX;        // encoded bytes if chosen
  uint32_t bits = 0;             // index width
};

DictPlan PlanDict(const uint32_t* v, size_t n) {
  DictPlan plan;
  if (n == 0) return plan;
  std::unordered_set<uint32_t> distinct;
  distinct.reserve(256);
  for (size_t i = 0; i < n; ++i) {
    distinct.insert(v[i]);
    if (distinct.size() > kMaxDictSize) return plan;  // not worth it
  }
  plan.values.assign(distinct.begin(), distinct.end());
  std::sort(plan.values.begin(), plan.values.end());
  plan.bits = std::max<uint32_t>(
      1, std::bit_width(static_cast<uint32_t>(plan.values.size() - 1)));
  size_t bytes = VarintLen(plan.values.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < plan.values.size(); ++i) {
    bytes += VarintLen(i == 0 ? plan.values[0] : plan.values[i] - prev);
    prev = plan.values[i];
  }
  bytes += (n * plan.bits + 7) / 8;
  plan.cost = bytes;
  return plan;
}

// -- encoders ---------------------------------------------------------------

template <typename T>
void EncodeDeltaZigzag(const T* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;
  PutVarint(out, ZigzagEncode(static_cast<int64_t>(v[0])));
  for (size_t i = 1; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    PutVarint(out, ZigzagEncode(static_cast<int64_t>(delta)));
  }
}

template <typename T>
void EncodeDeltaOfDelta(const T* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;
  PutVarint(out, ZigzagEncode(static_cast<int64_t>(v[0])));
  uint64_t prev_delta = 0;
  for (size_t i = 1; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    PutVarint(out, ZigzagEncode(static_cast<int64_t>(delta - prev_delta)));
    prev_delta = delta;
  }
}

void EncodeDict(const uint32_t* v, size_t n, const DictPlan& plan,
                std::vector<uint8_t>* out) {
  PutVarint(out, plan.values.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < plan.values.size(); ++i) {
    PutVarint(out, i == 0 ? plan.values[0] : plan.values[i] - prev);
    prev = plan.values[i];
  }
  // Bit-packed indexes, little-endian bit order within a 64-bit buffer.
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(plan.values.begin(), plan.values.end(), v[i]) -
        plan.values.begin());
    acc |= static_cast<uint64_t>(idx) << acc_bits;
    acc_bits += plan.bits;
    while (acc_bits >= 8) {
      out->push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out->push_back(static_cast<uint8_t>(acc));
}

void EncodeXorVarint(const double* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;
  uint64_t prev = BitsOf(v[0]);
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &prev, 8);
  for (size_t i = 1; i < n; ++i) {
    const uint64_t bits = BitsOf(v[i]);
    PutVarint(out, bits ^ prev);
    prev = bits;
  }
}

template <typename T>
void EncodeRaw(const T* v, size_t n, std::vector<uint8_t>* out) {
  if (n == 0) return;  // empty vectors may hand us data() == nullptr
  const size_t at = out->size();
  out->resize(at + n * sizeof(T));
  std::memcpy(out->data() + at, v, n * sizeof(T));
}

void NoteCodec(CodecStats* stats, ColumnCodec codec, size_t raw,
               size_t encoded) {
  if (stats == nullptr) return;
  const size_t i = static_cast<size_t>(codec);
  stats->raw_bytes[i] += raw;
  stats->encoded_bytes[i] += encoded;
  stats->columns[i] += 1;
}

/// Emits `tag | varint(payload_len) | payload` by encoding into `*out`
/// directly: the payload length is computed up front by the cost
/// estimators, so no second buffer or memmove is needed.
template <typename EncodeFn>
void EmitColumn(std::vector<uint8_t>* out, ColumnCodec tag,
                size_t payload_len, EncodeFn&& encode) {
  out->push_back(static_cast<uint8_t>(tag));
  PutVarint(out, payload_len);
  const size_t at = out->size();
  encode(out);
  CHUNKCACHE_DCHECK(out->size() - at == payload_len);
  (void)at;
}

// -- column decode helpers --------------------------------------------------

struct ColumnHeader {
  ColumnCodec codec;
  const uint8_t* payload;
  size_t len;
};

Status ReadColumnHeader(const uint8_t** p, const uint8_t* end,
                        ColumnHeader* h) {
  if (*p >= end) return Status::Corruption("codec: truncated column tag");
  const uint8_t tag = *(*p)++;
  if (tag >= kNumCodecs) return Status::Corruption("codec: bad column tag");
  uint64_t len;
  if (!GetVarint(p, end, &len)) {
    return Status::Corruption("codec: bad column length");
  }
  if (len > static_cast<uint64_t>(end - *p)) {
    return Status::Corruption("codec: column length beyond input");
  }
  h->codec = static_cast<ColumnCodec>(tag);
  h->payload = *p;
  h->len = static_cast<size_t>(len);
  *p += len;
  return Status::OK();
}

/// Decodes a varint stream of exactly `n` values into `fn(i, value)`.
/// kFast uses the unchecked parser while >= kMaxVarintLen bytes remain.
template <typename Fn>
Status DecodeVarintStream(const ColumnHeader& h, size_t n, DecodeMode mode,
                          Fn&& fn) {
  const uint8_t* p = h.payload;
  const uint8_t* end = h.payload + h.len;
  size_t i = 0;
  if (mode == DecodeMode::kFast) {
    while (i < n && end - p >= static_cast<ptrdiff_t>(kMaxVarintLen)) {
      uint64_t v;
      const uint8_t* q = GetVarintFast(p, &v);
      if (q == nullptr) return Status::Corruption("codec: over-long varint");
      p = q;
      fn(i++, v);
    }
  }
  for (; i < n; ++i) {
    uint64_t v;
    if (!GetVarint(&p, end, &v)) {
      return Status::Corruption("codec: truncated varint stream");
    }
    fn(i, v);
  }
  if (p != end) return Status::Corruption("codec: trailing column bytes");
  return Status::OK();
}

template <typename T>
Status DecodeRawColumn(const ColumnHeader& h, size_t n, std::vector<T>* out) {
  if (h.len != n * sizeof(T)) {
    return Status::Corruption("codec: raw column size mismatch");
  }
  if (n == 0) return Status::OK();
  const size_t at = out->size();
  out->resize(at + n);
  std::memcpy(out->data() + at, h.payload, h.len);
  return Status::OK();
}

template <typename T>
Status DecodeIntColumn(const ColumnHeader& h, size_t n, std::vector<T>* out,
                       DecodeMode mode) {
  const size_t at = out->size();
  switch (h.codec) {
    case ColumnCodec::kRaw:
      return DecodeRawColumn(h, n, out);
    case ColumnCodec::kVarint: {
      out->resize(at + n);
      T* dst = out->data() + at;
      Status s = DecodeVarintStream(h, n, mode, [&](size_t i, uint64_t v) {
        dst[i] = static_cast<T>(v);
      });
      if (!s.ok()) out->resize(at);
      return s;
    }
    case ColumnCodec::kDeltaZigzag: {
      out->resize(at + n);
      T* dst = out->data() + at;
      uint64_t prev = 0;
      Status s = DecodeVarintStream(h, n, mode, [&](size_t i, uint64_t v) {
        prev = (i == 0 ? uint64_t{0} : prev) +
               static_cast<uint64_t>(ZigzagDecode(v));
        dst[i] = static_cast<T>(prev);
      });
      if (!s.ok()) out->resize(at);
      return s;
    }
    case ColumnCodec::kDeltaOfDelta: {
      out->resize(at + n);
      T* dst = out->data() + at;
      uint64_t prev = 0;
      uint64_t prev_delta = 0;
      Status s = DecodeVarintStream(h, n, mode, [&](size_t i, uint64_t v) {
        if (i == 0) {
          prev = static_cast<uint64_t>(ZigzagDecode(v));
        } else {
          prev_delta += static_cast<uint64_t>(ZigzagDecode(v));
          prev += prev_delta;
        }
        dst[i] = static_cast<T>(prev);
      });
      if (!s.ok()) out->resize(at);
      return s;
    }
    case ColumnCodec::kDict: {
      if constexpr (sizeof(T) != 4) {
        return Status::Corruption("codec: dict codec on non-u32 column");
      } else {
        const uint8_t* p = h.payload;
        const uint8_t* end = h.payload + h.len;
        uint64_t dict_size;
        if (!GetVarint(&p, end, &dict_size) || dict_size == 0 ||
            dict_size > kMaxDictSize) {
          return Status::Corruption("codec: bad dictionary size");
        }
        std::vector<uint32_t> dict(static_cast<size_t>(dict_size));
        uint64_t prev = 0;
        for (size_t i = 0; i < dict.size(); ++i) {
          uint64_t d;
          if (!GetVarint(&p, end, &d)) {
            return Status::Corruption("codec: truncated dictionary");
          }
          prev = i == 0 ? d : prev + d;
          if (prev > UINT32_MAX) {
            return Status::Corruption("codec: dictionary value overflow");
          }
          dict[i] = static_cast<uint32_t>(prev);
        }
        const uint32_t bits = std::max<uint32_t>(
            1, std::bit_width(static_cast<uint32_t>(dict.size() - 1)));
        if (static_cast<uint64_t>(end - p) != (n * bits + 7) / 8) {
          return Status::Corruption("codec: dict index block size mismatch");
        }
        out->resize(at + n);
        T* dst = out->data() + at;
        uint64_t acc = 0;
        uint32_t acc_bits = 0;
        const uint64_t mask = (uint64_t{1} << bits) - 1;
        for (size_t i = 0; i < n; ++i) {
          while (acc_bits < bits) {
            acc |= static_cast<uint64_t>(*p++) << acc_bits;
            acc_bits += 8;
          }
          const uint64_t idx = acc & mask;
          acc >>= bits;
          acc_bits -= bits;
          if (idx >= dict.size()) {
            out->resize(at);
            return Status::Corruption("codec: dict index out of range");
          }
          dst[i] = dict[static_cast<size_t>(idx)];
        }
        return Status::OK();
      }
    }
    case ColumnCodec::kXorVarint:
      return Status::Corruption("codec: xor codec on integer column");
  }
  return Status::Corruption("codec: unreachable tag");
}

}  // namespace

const char* CodecName(ColumnCodec c) {
  switch (c) {
    case ColumnCodec::kRaw:
      return "raw";
    case ColumnCodec::kVarint:
      return "varint";
    case ColumnCodec::kDeltaZigzag:
      return "delta";
    case ColumnCodec::kDeltaOfDelta:
      return "dod";
    case ColumnCodec::kDict:
      return "dict";
    case ColumnCodec::kXorVarint:
      return "xor";
  }
  return "unknown";
}

void EncodeU32Column(const uint32_t* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats) {
  const size_t raw_cost = n * 4;
  const size_t delta_cost = DeltaZigzagCost(v, n);
  const size_t dod_cost = DeltaOfDeltaCost(v, n);
  const DictPlan dict = PlanDict(v, n);

  size_t best_cost = raw_cost;
  ColumnCodec best = ColumnCodec::kRaw;
  if (delta_cost < best_cost) best_cost = delta_cost, best = ColumnCodec::kDeltaZigzag;
  if (dod_cost < best_cost) best_cost = dod_cost, best = ColumnCodec::kDeltaOfDelta;
  if (dict.cost < best_cost) best_cost = dict.cost, best = ColumnCodec::kDict;

  EmitColumn(out, best, best_cost, [&](std::vector<uint8_t>* dst) {
    switch (best) {
      case ColumnCodec::kRaw:
        EncodeRaw(v, n, dst);
        break;
      case ColumnCodec::kDeltaZigzag:
        EncodeDeltaZigzag(v, n, dst);
        break;
      case ColumnCodec::kDeltaOfDelta:
        EncodeDeltaOfDelta(v, n, dst);
        break;
      case ColumnCodec::kDict:
        EncodeDict(v, n, dict, dst);
        break;
      default:
        break;
    }
  });
  NoteCodec(stats, best, raw_cost, best_cost);
}

void EncodeU64Column(const uint64_t* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats) {
  const size_t raw_cost = n * 8;
  const size_t varint_cost = VarintCost(v, n);
  const size_t delta_cost = DeltaZigzagCost(v, n);

  size_t best_cost = raw_cost;
  ColumnCodec best = ColumnCodec::kRaw;
  if (varint_cost < best_cost) best_cost = varint_cost, best = ColumnCodec::kVarint;
  if (delta_cost < best_cost) best_cost = delta_cost, best = ColumnCodec::kDeltaZigzag;

  EmitColumn(out, best, best_cost, [&](std::vector<uint8_t>* dst) {
    switch (best) {
      case ColumnCodec::kRaw:
        EncodeRaw(v, n, dst);
        break;
      case ColumnCodec::kVarint:
        for (size_t i = 0; i < n; ++i) PutVarint(dst, v[i]);
        break;
      case ColumnCodec::kDeltaZigzag:
        EncodeDeltaZigzag(v, n, dst);
        break;
      default:
        break;
    }
  });
  NoteCodec(stats, best, raw_cost, best_cost);
}

void EncodeF64Column(const double* v, size_t n, std::vector<uint8_t>* out,
                     CodecStats* stats) {
  const size_t raw_cost = n * 8;
  const size_t xor_cost = XorVarintCost(v, n);

  size_t best_cost = raw_cost;
  ColumnCodec best = ColumnCodec::kRaw;
  if (xor_cost < best_cost) best_cost = xor_cost, best = ColumnCodec::kXorVarint;

  EmitColumn(out, best, best_cost, [&](std::vector<uint8_t>* dst) {
    if (best == ColumnCodec::kRaw) {
      EncodeRaw(v, n, dst);
    } else {
      EncodeXorVarint(v, n, dst);
    }
  });
  NoteCodec(stats, best, raw_cost, best_cost);
}

Status DecodeU32Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<uint32_t>* out, DecodeMode mode) {
  ColumnHeader h;
  CHUNKCACHE_RETURN_IF_ERROR(ReadColumnHeader(p, end, &h));
  return DecodeIntColumn(h, n, out, mode);
}

Status DecodeU64Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<uint64_t>* out, DecodeMode mode) {
  ColumnHeader h;
  CHUNKCACHE_RETURN_IF_ERROR(ReadColumnHeader(p, end, &h));
  return DecodeIntColumn(h, n, out, mode);
}

Status DecodeF64Column(const uint8_t** p, const uint8_t* end, size_t n,
                       std::vector<double>* out, DecodeMode mode) {
  ColumnHeader h;
  CHUNKCACHE_RETURN_IF_ERROR(ReadColumnHeader(p, end, &h));
  const size_t at = out->size();
  switch (h.codec) {
    case ColumnCodec::kRaw:
      return DecodeRawColumn(h, n, out);
    case ColumnCodec::kXorVarint: {
      if (n == 0) {
        return h.len == 0 ? Status::OK()
                          : Status::Corruption("codec: trailing column bytes");
      }
      if (h.len < 8) return Status::Corruption("codec: truncated xor column");
      uint64_t prev;
      std::memcpy(&prev, h.payload, 8);
      out->resize(at + n);
      double* dst = out->data() + at;
      dst[0] = DoubleOf(prev);
      const ColumnHeader rest{h.codec, h.payload + 8, h.len - 8};
      Status s =
          DecodeVarintStream(rest, n - 1, mode, [&](size_t i, uint64_t v) {
            prev ^= v;
            dst[i + 1] = DoubleOf(prev);
          });
      if (!s.ok()) out->resize(at);
      return s;
    }
    default:
      return Status::Corruption("codec: bad codec for double column");
  }
}

namespace {

constexpr uint8_t kAggBlobTag = 0xA1;
constexpr uint8_t kTupleBlobTag = 0xB1;

/// Common blob epilogue: CRC32C over [data, data+len).
void AppendCrc(std::vector<uint8_t>* out, size_t from) {
  const uint32_t crc = Crc32c(out->data() + from, out->size() - from);
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &crc, 4);
}

/// Validates the trailing CRC and the blob tag; on success sets `*p` past
/// the tag and `*end` to the start of the CRC, and parses num_dims +
/// num_rows. A claimed row count is sanity-bounded against the input
/// length (every active column costs at least one bit per row), so a
/// corrupt header can never drive a huge allocation.
Status OpenBlob(const uint8_t* data, size_t len, uint8_t expected_tag,
                const uint8_t** p, const uint8_t** end, uint32_t* num_dims,
                size_t* num_rows) {
  if (len < 6) return Status::Corruption("codec: blob too short");
  uint32_t crc_stored;
  std::memcpy(&crc_stored, data + len - 4, 4);
  if (Crc32c(data, len - 4) != crc_stored) {
    return Status::Corruption("codec: blob checksum mismatch");
  }
  *p = data;
  *end = data + len - 4;
  const uint8_t tag = *(*p)++;
  if (tag != expected_tag) return Status::Corruption("codec: bad blob tag");
  if (*p >= *end) return Status::Corruption("codec: truncated blob header");
  *num_dims = *(*p)++;
  if (*num_dims > kMaxDims) {
    return Status::Corruption("codec: bad dimension count");
  }
  uint64_t rows;
  if (!GetVarint(p, *end, &rows)) {
    return Status::Corruption("codec: bad row count");
  }
  if (rows > 8 * len) {
    return Status::Corruption("codec: row count beyond input size");
  }
  *num_rows = static_cast<size_t>(rows);
  return Status::OK();
}

}  // namespace

uint64_t RawPayloadBytes(const AggColumns& cols) {
  return cols.size() * (cols.num_dims() * 4ull + 32ull);
}

uint64_t RawPayloadBytes(const TupleColumns& cols) {
  return cols.size() * (cols.num_dims * 4ull + 8ull);
}

void EncodeAggColumns(const AggColumns& cols, std::vector<uint8_t>* out,
                      CodecStats* stats) {
  const size_t from = out->size();
  out->push_back(kAggBlobTag);
  out->push_back(static_cast<uint8_t>(cols.num_dims()));
  PutVarint(out, cols.size());
  const size_t n = cols.size();
  for (uint32_t d = 0; d < cols.num_dims(); ++d) {
    EncodeU32Column(cols.coords(d).data(), n, out, stats);
  }
  EncodeF64Column(cols.sums().data(), n, out, stats);
  EncodeU64Column(cols.counts().data(), n, out, stats);
  EncodeF64Column(cols.mins().data(), n, out, stats);
  EncodeF64Column(cols.maxs().data(), n, out, stats);
  AppendCrc(out, from);
}

Result<AggColumns> DecodeAggColumns(const uint8_t* data, size_t len,
                                    DecodeMode mode) {
  const uint8_t* p;
  const uint8_t* end;
  uint32_t num_dims;
  size_t n;
  CHUNKCACHE_RETURN_IF_ERROR(
      OpenBlob(data, len, kAggBlobTag, &p, &end, &num_dims, &n));
  AggColumns cols(num_dims);
  cols.Reserve(n);
  for (uint32_t d = 0; d < num_dims; ++d) {
    CHUNKCACHE_RETURN_IF_ERROR(
        DecodeU32Column(&p, end, n, cols.mutable_coords(d), mode));
  }
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, cols.mutable_sums(), mode));
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeU64Column(&p, end, n, cols.mutable_counts(), mode));
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, cols.mutable_mins(), mode));
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, cols.mutable_maxs(), mode));
  if (p != end) return Status::Corruption("codec: trailing blob bytes");
  return cols;
}

void EncodeTupleColumns(const TupleColumns& cols, std::vector<uint8_t>* out,
                        CodecStats* stats) {
  const size_t from = out->size();
  out->push_back(kTupleBlobTag);
  out->push_back(static_cast<uint8_t>(cols.num_dims));
  PutVarint(out, cols.size());
  const size_t n = cols.size();
  for (uint32_t d = 0; d < cols.num_dims; ++d) {
    EncodeU32Column(cols.keys[d].data(), n, out, stats);
  }
  EncodeF64Column(cols.measure.data(), n, out, stats);
  AppendCrc(out, from);
}

Result<TupleColumns> DecodeTupleColumns(const uint8_t* data, size_t len,
                                        DecodeMode mode) {
  const uint8_t* p;
  const uint8_t* end;
  uint32_t num_dims;
  size_t n;
  CHUNKCACHE_RETURN_IF_ERROR(
      OpenBlob(data, len, kTupleBlobTag, &p, &end, &num_dims, &n));
  TupleColumns cols;
  cols.num_dims = num_dims;
  cols.Reserve(n);
  for (uint32_t d = 0; d < num_dims; ++d) {
    CHUNKCACHE_RETURN_IF_ERROR(
        DecodeU32Column(&p, end, n, &cols.keys[d], mode));
  }
  CHUNKCACHE_RETURN_IF_ERROR(
      DecodeF64Column(&p, end, n, &cols.measure, mode));
  if (p != end) return Status::Corruption("codec: trailing blob bytes");
  return cols;
}

}  // namespace chunkcache::storage::codec
