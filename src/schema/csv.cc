#include "schema/csv.h"

#include <algorithm>
#include <cstdlib>

namespace chunkcache::schema {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  // Trim unquoted whitespace.
  for (auto& f : fields) {
    const auto b = f.find_first_not_of(" \t\r");
    const auto e = f.find_last_not_of(" \t\r");
    f = b == std::string::npos ? "" : f.substr(b, e - b + 1);
  }
  return fields;
}

Result<Dimension> LoadDimensionCsv(const std::string& dim_name,
                                   const std::vector<std::string>& level_names,
                                   std::istream& in) {
  if (level_names.empty()) {
    return Status::InvalidArgument("LoadDimensionCsv: no levels");
  }
  const size_t depth = level_names.size();
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool header_skipped = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != depth) {
      return Status::InvalidArgument(
          "LoadDimensionCsv: line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(depth));
    }
    rows.push_back(std::move(fields));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("LoadDimensionCsv: no data rows");
  }
  // Sorting by full path guarantees hierarchical clustering.
  std::sort(rows.begin(), rows.end());

  // The builder takes whole levels top-down; dedup consecutive equal path
  // prefixes per level and remember each row's member ordinal so the next
  // level can name its parent.
  HierarchyBuilder b2;
  std::vector<uint32_t> parent_of_row(rows.size());
  for (size_t li = 0; li < depth; ++li) {
    b2.AddLevel(level_names[li]);
    std::string prev_path;
    uint32_t ordinal = 0;
    bool first = true;
    std::vector<uint32_t> ordinal_of_row(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      // Path prefix through level li identifies the member.
      std::string path;
      for (size_t l = 0; l <= li; ++l) path += rows[r][l] + "\x1f";
      if (first || path != prev_path) {
        auto added = b2.AddMember(rows[r][li],
                                  li == 0 ? 0 : parent_of_row[r]);
        if (!added.ok()) {
          // Same member name under a different parent collides: the data
          // must disambiguate names (documented contract).
          return added.status();
        }
        ordinal = *added;
        prev_path = path;
        first = false;
      }
      ordinal_of_row[r] = ordinal;
    }
    parent_of_row = std::move(ordinal_of_row);
  }
  CHUNKCACHE_ASSIGN_OR_RETURN(Hierarchy h, b2.Build());
  return Dimension{dim_name, std::move(h)};
}

Result<std::vector<storage::Tuple>> LoadFactCsv(const StarSchema& schema,
                                                std::istream& in) {
  std::vector<storage::Tuple> tuples;
  std::string line;
  bool header_skipped = false;
  size_t line_no = 0;
  const uint32_t num_dims = schema.num_dims();
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != num_dims + 1) {
      return Status::InvalidArgument(
          "LoadFactCsv: line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(num_dims + 1));
    }
    storage::Tuple t;
    for (uint32_t d = 0; d < num_dims; ++d) {
      const auto& h = schema.dimension(d).hierarchy;
      auto ord = h.OrdinalOf(h.depth(), fields[d]);
      if (!ord.ok()) {
        return Status::NotFound("LoadFactCsv: line " +
                                std::to_string(line_no) + ": " +
                                ord.status().message());
      }
      t.keys[d] = *ord;
    }
    char* end = nullptr;
    t.measure = std::strtod(fields[num_dims].c_str(), &end);
    if (end == fields[num_dims].c_str()) {
      return Status::InvalidArgument("LoadFactCsv: line " +
                                     std::to_string(line_no) +
                                     ": bad measure '" + fields[num_dims] +
                                     "'");
    }
    tuples.push_back(t);
  }
  return tuples;
}

}  // namespace chunkcache::schema
