#ifndef CHUNKCACHE_SCHEMA_STAR_SCHEMA_H_
#define CHUNKCACHE_SCHEMA_STAR_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/hierarchy.h"
#include "storage/tuple.h"

namespace chunkcache::schema {

/// One dimension of the star schema: a name plus its hierarchy/domain
/// index. The fact table stores the *base-level ordinal* of each dimension
/// member (the paper's Domain Index translation happens at load time).
struct Dimension {
  std::string name;
  Hierarchy hierarchy;
};

/// Catalog entry for a star schema: the fact table's dimensions and its
/// single additive measure. Dimension order matches the fact tuple's key
/// order.
class StarSchema {
 public:
  StarSchema(std::string fact_name, std::vector<Dimension> dimensions,
             std::string measure_name)
      : fact_name_(std::move(fact_name)),
        dimensions_(std::move(dimensions)),
        measure_name_(std::move(measure_name)) {}

  const std::string& fact_name() const { return fact_name_; }
  const std::string& measure_name() const { return measure_name_; }
  uint32_t num_dims() const {
    return static_cast<uint32_t>(dimensions_.size());
  }
  const Dimension& dimension(uint32_t i) const { return dimensions_[i]; }
  const std::vector<Dimension>& dimensions() const { return dimensions_; }

  /// Index of the dimension called `name`.
  Result<uint32_t> DimensionIndex(const std::string& name) const;

  /// Tuple layout of the fact table.
  storage::TupleDesc tuple_desc() const {
    return storage::TupleDesc{num_dims()};
  }

  /// Number of distinct group-by combinations: every dimension can be
  /// grouped at any of its levels or aggregated away (level 0).
  uint64_t NumGroupBys() const {
    uint64_t n = 1;
    for (const auto& d : dimensions_) n *= d.hierarchy.depth() + 1;
    return n;
  }

  /// Number of cells at the base level (product of base cardinalities).
  uint64_t BaseCells() const {
    uint64_t n = 1;
    for (const auto& d : dimensions_) {
      n *= d.hierarchy.LevelCardinality(d.hierarchy.depth());
    }
    return n;
  }

 private:
  std::string fact_name_;
  std::vector<Dimension> dimensions_;
  std::string measure_name_;
};

}  // namespace chunkcache::schema

#endif  // CHUNKCACHE_SCHEMA_STAR_SCHEMA_H_
