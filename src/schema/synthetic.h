#ifndef CHUNKCACHE_SCHEMA_SYNTHETIC_H_
#define CHUNKCACHE_SCHEMA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "schema/star_schema.h"
#include "storage/tuple.h"

namespace chunkcache::schema {

/// Builds a synthetic dimension whose level cardinalities are
/// `level_cards[0..k)` (level 1 first, base level last, per the paper's
/// Table 1 layout). Children are distributed evenly over parents (with any
/// remainder spread over the first parents), which automatically satisfies
/// hierarchical clustering. Member names are "<dim>.<level>.<i>".
Result<Dimension> BuildSyntheticDimension(
    const std::string& name, const std::vector<uint32_t>& level_cards);

/// The exact experimental schema of the paper's Section 6.1.1 / Table 1:
/// four dimensions D0..D3 with hierarchies
///   D0: 25 / 50 / 100,  D1: 25 / 50,  D2: 5 / 25 / 50,  D3: 10 / 50
/// and one additive measure.
Result<StarSchema> BuildPaperSchema();

/// Options for synthetic fact generation.
struct FactGenOptions {
  uint64_t num_tuples = 500000;  ///< Paper: 500,000 base tuples.
  uint64_t seed = 42;
  /// Zipf skew per dimension key draw; 0 = uniform (the paper's setting).
  double zipf_theta = 0.0;
  double measure_min = 0.0;
  double measure_max = 100.0;
};

/// Generates fact tuples for `schema` (keys are base-level ordinals drawn
/// per FactGenOptions, measure uniform in [measure_min, measure_max)).
std::vector<storage::Tuple> GenerateFactTuples(const StarSchema& schema,
                                               const FactGenOptions& opts);

}  // namespace chunkcache::schema

#endif  // CHUNKCACHE_SCHEMA_SYNTHETIC_H_
