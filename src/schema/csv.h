#ifndef CHUNKCACHE_SCHEMA_CSV_H_
#define CHUNKCACHE_SCHEMA_CSV_H_

#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/star_schema.h"
#include "storage/tuple.h"

namespace chunkcache::schema {

/// Splits one CSV line on commas. Double-quoted fields may contain commas
/// and escaped quotes (""). Surrounding whitespace of unquoted fields is
/// trimmed.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Loads a dimension from CSV rows of hierarchy paths, one column per
/// level from the most aggregated to the base, e.g. for
/// state -> city -> store:
///
///   WI,Madison,store_0
///   WI,Madison,store_1
///   WI,Milwaukee,store_2
///   IL,Chicago,store_3
///
/// Rows may arrive in any order (they are sorted to satisfy hierarchical
/// clustering) and duplicate paths are deduplicated. Member names must be
/// unique within a level: the same city name under two states must be
/// disambiguated by the source data. A header line is expected and
/// supplies nothing (level names come from `level_names`).
Result<Dimension> LoadDimensionCsv(const std::string& dim_name,
                                   const std::vector<std::string>& level_names,
                                   std::istream& in);

/// Loads fact tuples from CSV rows of base-level member names per
/// dimension (schema order) followed by the measure:
///
///   store_0,blaire_cotton_shirts,1997-Jan,12.50
///
/// A header line is expected and skipped. Unknown members fail with
/// NotFound naming the offending row.
Result<std::vector<storage::Tuple>> LoadFactCsv(const StarSchema& schema,
                                                std::istream& in);

}  // namespace chunkcache::schema

#endif  // CHUNKCACHE_SCHEMA_CSV_H_
