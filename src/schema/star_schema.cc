#include "schema/star_schema.h"

namespace chunkcache::schema {

Result<uint32_t> StarSchema::DimensionIndex(const std::string& name) const {
  for (uint32_t i = 0; i < num_dims(); ++i) {
    if (dimensions_[i].name == name) return i;
  }
  return Status::NotFound("no dimension '" + name + "'");
}

}  // namespace chunkcache::schema
