#include "schema/hierarchy.h"

#include "common/logging.h"

namespace chunkcache::schema {

const std::string& Hierarchy::MemberName(uint32_t level,
                                         uint32_t ordinal) const {
  static const std::string kAll = "ALL";
  if (level == 0) return kAll;
  CHUNKCACHE_DCHECK(level <= depth());
  CHUNKCACHE_DCHECK(ordinal < LevelCardinality(level));
  return levels_[level - 1].members[ordinal];
}

Result<uint32_t> Hierarchy::OrdinalOf(uint32_t level,
                                      const std::string& name) const {
  if (level == 0) return uint32_t{0};
  if (level > depth()) {
    return Status::InvalidArgument("OrdinalOf: level out of range");
  }
  const auto& by_name = levels_[level - 1].by_name;
  auto it = by_name.find(name);
  if (it == by_name.end()) {
    return Status::NotFound("no member '" + name + "' at level " +
                            LevelName(level));
  }
  return it->second;
}

OrdinalRange Hierarchy::ChildRange(uint32_t level, uint32_t ordinal) const {
  CHUNKCACHE_DCHECK(level < depth());
  if (level == 0) {
    return OrdinalRange{0, LevelCardinality(1) - 1};
  }
  const auto& cb = levels_[level - 1].child_begin;
  CHUNKCACHE_DCHECK(ordinal + 1 < cb.size());
  return OrdinalRange{cb[ordinal], cb[ordinal + 1] - 1};
}

uint32_t Hierarchy::AncestorAt(uint32_t from_level, uint32_t ordinal,
                               uint32_t to_level) const {
  CHUNKCACHE_DCHECK(to_level <= from_level);
  if (to_level == from_level) return ordinal;
  if (to_level == 0) return 0;
  if (from_level == depth()) return rollup_[to_level - 1][ordinal];
  // Walk up level by level (cheap: depth <= 3 in practice).
  uint32_t cur = ordinal;
  for (uint32_t l = from_level; l > to_level; --l) cur = ParentOf(l, cur);
  return cur;
}

OrdinalRange Hierarchy::BaseRange(uint32_t level, uint32_t ordinal) const {
  OrdinalRange r{ordinal, ordinal};
  for (uint32_t l = level; l < depth(); ++l) {
    const OrdinalRange lo = ChildRange(l, r.begin);
    const OrdinalRange hi = ChildRange(l, r.end);
    r = OrdinalRange{lo.begin, hi.end};
  }
  return r;
}

OrdinalRange Hierarchy::BaseRangeOf(uint32_t level, OrdinalRange r) const {
  const OrdinalRange lo = BaseRange(level, r.begin);
  const OrdinalRange hi = BaseRange(level, r.end);
  return OrdinalRange{lo.begin, hi.end};
}

HierarchyBuilder& HierarchyBuilder::AddLevel(std::string name) {
  Hierarchy::Level level;
  level.name = std::move(name);
  h_.levels_.push_back(std::move(level));
  return *this;
}

Result<uint32_t> HierarchyBuilder::AddMember(std::string name,
                                             uint32_t parent) {
  if (h_.levels_.empty()) {
    return Status::InvalidArgument("AddMember before AddLevel");
  }
  auto& level = h_.levels_.back();
  const uint32_t level_no = static_cast<uint32_t>(h_.levels_.size());
  if (level_no > 1) {
    const uint32_t parent_card =
        static_cast<uint32_t>(h_.levels_[level_no - 2].members.size());
    if (parent >= parent_card) {
      return Status::InvalidArgument("AddMember: parent ordinal " +
                                     std::to_string(parent) +
                                     " out of range");
    }
    if (!level.parent.empty() && parent < level.parent.back()) {
      return Status::InvalidArgument(
          "AddMember: members must be added in parent order "
          "(hierarchical clustering)");
    }
    level.parent.push_back(parent);
  }
  const uint32_t ordinal = static_cast<uint32_t>(level.members.size());
  if (!level.by_name.emplace(name, ordinal).second) {
    return Status::AlreadyExists("duplicate member '" + name + "'");
  }
  level.members.push_back(std::move(name));
  return ordinal;
}

Result<Hierarchy> HierarchyBuilder::Build() {
  if (h_.levels_.empty()) {
    return Status::InvalidArgument("hierarchy needs at least one level");
  }
  for (const auto& level : h_.levels_) {
    if (level.members.empty()) {
      return Status::InvalidArgument("level '" + level.name +
                                     "' has no members");
    }
  }
  // Every parent must have at least one child, or BaseRange would be
  // ill-defined for it.
  for (size_t li = 0; li + 1 < h_.levels_.size(); ++li) {
    auto& level = h_.levels_[li];
    const auto& child = h_.levels_[li + 1];
    const uint32_t card = static_cast<uint32_t>(level.members.size());
    level.child_begin.assign(card + 1, 0);
    std::vector<uint32_t> child_count(card, 0);
    for (uint32_t p : child.parent) child_count[p]++;
    for (uint32_t i = 0; i < card; ++i) {
      if (child_count[i] == 0) {
        return Status::InvalidArgument("member '" + level.members[i] +
                                       "' of level '" + level.name +
                                       "' has no children");
      }
      level.child_begin[i + 1] = level.child_begin[i] + child_count[i];
    }
  }
  // Rollup table: ancestor of each base member at every level.
  const uint32_t depth = h_.depth();
  const uint32_t base_card = h_.LevelCardinality(depth);
  h_.rollup_.assign(depth, std::vector<uint32_t>(base_card));
  for (uint32_t b = 0; b < base_card; ++b) {
    uint32_t cur = b;
    for (uint32_t l = depth; l >= 1; --l) {
      h_.rollup_[l - 1][b] = cur;
      cur = h_.ParentOf(l, cur);
    }
  }
  return std::move(h_);
}

}  // namespace chunkcache::schema
