#ifndef CHUNKCACHE_SCHEMA_HIERARCHY_H_
#define CHUNKCACHE_SCHEMA_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace chunkcache::schema {

/// A closed [begin, end] range of ordinals at one hierarchy level.
struct OrdinalRange {
  uint32_t begin = 0;
  uint32_t end = 0;  // inclusive

  uint32_t size() const { return end - begin + 1; }
  bool Contains(uint32_t v) const { return v >= begin && v <= end; }
  friend bool operator==(const OrdinalRange& a, const OrdinalRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Dimension hierarchy with the paper's level numbering: level 1 is the most
/// aggregated *named* level and level depth() the base (most detailed)
/// level; level 0 is the implicit ALL level with a single member. Members of
/// each level are identified by dense ordinals that are *hierarchically
/// clustered*: all children of one parent occupy a contiguous ordinal range
/// (Section 3.3's ordering requirement). This class is simultaneously the
/// paper's "Domain Index": it maps member names to ordinals per level, rolls
/// ordinals up (child -> ancestor) and down (member -> base-level range).
///
/// Build one with HierarchyBuilder; instances are immutable afterwards.
class Hierarchy {
 public:
  /// Number of named levels (>= 1); base level index equals depth().
  uint32_t depth() const { return static_cast<uint32_t>(levels_.size()); }

  /// Members at `level` (level 0 returns 1 for ALL).
  uint32_t LevelCardinality(uint32_t level) const {
    return level == 0 ? 1 : static_cast<uint32_t>(
                                levels_[level - 1].members.size());
  }

  /// Name of level `level` (1-based; level 0 is "ALL").
  const std::string& LevelName(uint32_t level) const {
    static const std::string kAll = "ALL";
    return level == 0 ? kAll : levels_[level - 1].name;
  }

  /// Member name at (level, ordinal). Level 0 ordinal 0 is "ALL".
  const std::string& MemberName(uint32_t level, uint32_t ordinal) const;

  /// Resolves a member name at `level` to its ordinal.
  Result<uint32_t> OrdinalOf(uint32_t level, const std::string& name) const;

  /// Parent ordinal at level-1 of (level, ordinal). level must be >= 1
  /// (parent of a level-1 member is ALL, ordinal 0).
  uint32_t ParentOf(uint32_t level, uint32_t ordinal) const {
    return level <= 1 ? 0 : levels_[level - 1].parent[ordinal];
  }

  /// Ordinal range of (level, ordinal)'s children at level+1. level may be
  /// 0 (children of ALL = the whole of level 1); level must be < depth().
  OrdinalRange ChildRange(uint32_t level, uint32_t ordinal) const;

  /// Ancestor of (from_level, ordinal) at `to_level` (to_level <=
  /// from_level). O(1) via the precomputed rollup table.
  uint32_t AncestorAt(uint32_t from_level, uint32_t ordinal,
                      uint32_t to_level) const;

  /// Base-level (depth()) ordinal range covered by member (level, ordinal).
  OrdinalRange BaseRange(uint32_t level, uint32_t ordinal) const;

  /// Base-level range covered by the member range [r.begin, r.end] at
  /// `level`. Contiguity is guaranteed by hierarchical clustering.
  OrdinalRange BaseRangeOf(uint32_t level, OrdinalRange r) const;

 private:
  friend class HierarchyBuilder;

  struct Level {
    std::string name;
    std::vector<std::string> members;
    std::vector<uint32_t> parent;  // ordinal at level-1; empty for level 1
    std::unordered_map<std::string, uint32_t> by_name;
    // child_begin[i] = first ordinal at level+1 whose parent is i;
    // has LevelCardinality+1 entries (last = cardinality of level+1).
    // Empty for the base level.
    std::vector<uint32_t> child_begin;
  };

  // rollup_[l-1][base_ordinal] = ancestor ordinal at level l, for l in
  // [1, depth].
  std::vector<Level> levels_;
  std::vector<std::vector<uint32_t>> rollup_;
};

/// Incremental builder enforcing the hierarchical-clustering invariant:
/// members at level l+1 must be added in non-decreasing parent order.
class HierarchyBuilder {
 public:
  /// Appends a level below all existing levels (first call adds level 1).
  HierarchyBuilder& AddLevel(std::string name);

  /// Adds a member to the deepest level. `parent` is its parent's ordinal
  /// at the level above (ignored for level 1). Returns the new ordinal.
  Result<uint32_t> AddMember(std::string name, uint32_t parent = 0);

  /// Validates and finalizes.
  Result<Hierarchy> Build();

 private:
  Hierarchy h_;
};

}  // namespace chunkcache::schema

#endif  // CHUNKCACHE_SCHEMA_HIERARCHY_H_
