#include "schema/synthetic.h"

#include <cmath>

namespace chunkcache::schema {

Result<Dimension> BuildSyntheticDimension(
    const std::string& name, const std::vector<uint32_t>& level_cards) {
  if (level_cards.empty()) {
    return Status::InvalidArgument("dimension needs at least one level");
  }
  for (size_t i = 1; i < level_cards.size(); ++i) {
    if (level_cards[i] < level_cards[i - 1]) {
      return Status::InvalidArgument(
          "level cardinalities must be non-decreasing toward the base");
    }
  }
  HierarchyBuilder builder;
  for (size_t li = 0; li < level_cards.size(); ++li) {
    // Plain "L<k>" level names keep SQL attribute references unambiguous
    // ("D0.L2" = dimension D0, level L2).
    builder.AddLevel("L" + std::to_string(li + 1));
    const uint32_t card = level_cards[li];
    if (li == 0) {
      for (uint32_t i = 0; i < card; ++i) {
        CHUNKCACHE_RETURN_IF_ERROR(
            builder.AddMember(name + ".1." + std::to_string(i)).status());
      }
      continue;
    }
    // Distribute `card` children evenly over the `parents` of the level
    // above: the first (card % parents) parents get one extra child.
    const uint32_t parents = level_cards[li - 1];
    const uint32_t base_fanout = card / parents;
    const uint32_t extra = card % parents;
    if (base_fanout == 0) {
      return Status::InvalidArgument("a parent level has more members than "
                                     "its child level");
    }
    uint32_t child = 0;
    for (uint32_t p = 0; p < parents; ++p) {
      const uint32_t fanout = base_fanout + (p < extra ? 1 : 0);
      for (uint32_t c = 0; c < fanout; ++c, ++child) {
        CHUNKCACHE_RETURN_IF_ERROR(
            builder
                .AddMember(name + "." + std::to_string(li + 1) + "." +
                               std::to_string(child),
                           p)
                .status());
      }
    }
  }
  CHUNKCACHE_ASSIGN_OR_RETURN(Hierarchy h, builder.Build());
  return Dimension{name, std::move(h)};
}

Result<StarSchema> BuildPaperSchema() {
  std::vector<Dimension> dims;
  struct Spec {
    const char* name;
    std::vector<uint32_t> cards;
  };
  const Spec specs[] = {
      {"D0", {25, 50, 100}},
      {"D1", {25, 50}},
      {"D2", {5, 25, 50}},
      {"D3", {10, 50}},
  };
  for (const auto& s : specs) {
    CHUNKCACHE_ASSIGN_OR_RETURN(Dimension d,
                                BuildSyntheticDimension(s.name, s.cards));
    dims.push_back(std::move(d));
  }
  return StarSchema("Sales", std::move(dims), "dollar_sales");
}

namespace {

/// Draws from a Zipf(theta) distribution over [0, n) using the standard
/// inverse-CDF rejection-free approximation (Gray et al.'s method would be
/// overkill; a cached harmonic table is exact and fast for our n <= 100).
class ZipfDraw {
 public:
  ZipfDraw(uint32_t n, double theta) : cdf_(n) {
    double sum = 0;
    for (uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  uint32_t Draw(Random& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf >= u.
    uint32_t lo = 0, hi = static_cast<uint32_t>(cdf_.size() - 1);
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::vector<storage::Tuple> GenerateFactTuples(const StarSchema& schema,
                                               const FactGenOptions& opts) {
  Random rng(opts.seed);
  const uint32_t num_dims = schema.num_dims();
  std::vector<uint32_t> base_cards(num_dims);
  std::vector<ZipfDraw> zipfs;
  for (uint32_t d = 0; d < num_dims; ++d) {
    const auto& h = schema.dimension(d).hierarchy;
    base_cards[d] = h.LevelCardinality(h.depth());
    if (opts.zipf_theta > 0) zipfs.emplace_back(base_cards[d], opts.zipf_theta);
  }
  std::vector<storage::Tuple> tuples(opts.num_tuples);
  for (auto& t : tuples) {
    for (uint32_t d = 0; d < num_dims; ++d) {
      t.keys[d] = opts.zipf_theta > 0
                      ? zipfs[d].Draw(rng)
                      : static_cast<uint32_t>(rng.Uniform(base_cards[d]));
    }
    t.measure = opts.measure_min +
                rng.NextDouble() * (opts.measure_max - opts.measure_min);
  }
  return tuples;
}

}  // namespace chunkcache::schema
