#ifndef CHUNKCACHE_CHUNKS_CHUNK_GRID_H_
#define CHUNKCACHE_CHUNKS_CHUNK_GRID_H_

#include <array>
#include <cstdint>
#include <functional>

#include "chunks/group_by_spec.h"
#include "common/logging.h"
#include "schema/hierarchy.h"
#include "storage/tuple.h"

namespace chunkcache::chunks {

/// Per-dimension chunk coordinates (range indices) of one chunk.
using ChunkCoords = std::array<uint32_t, storage::kMaxDims>;

/// The chunk lattice of one group-by: dimension d is divided into
/// num_ranges[d] chunk ranges at the group-by's level, and chunks are
/// numbered row-major over range indices — the paper's getChNum() (Figure 8).
class ChunkGrid {
 public:
  ChunkGrid() = default;
  ChunkGrid(GroupBySpec spec,
            const std::array<uint32_t, storage::kMaxDims>& num_ranges)
      : spec_(spec), num_ranges_(num_ranges) {
    num_chunks_ = 1;
    for (uint32_t d = 0; d < spec_.num_dims; ++d) {
      CHUNKCACHE_DCHECK(num_ranges_[d] > 0);
      num_chunks_ *= num_ranges_[d];
    }
  }

  const GroupBySpec& spec() const { return spec_; }
  uint32_t num_dims() const { return spec_.num_dims; }
  uint64_t num_chunks() const { return num_chunks_; }
  uint32_t NumRangesOnDim(uint32_t d) const { return num_ranges_[d]; }

  /// Row-major chunk number of `coords` — getChNum() of Section 5.2.2.
  uint64_t GetChunkNum(const ChunkCoords& coords) const {
    uint64_t num = 0;
    for (uint32_t d = 0; d < spec_.num_dims; ++d) {
      CHUNKCACHE_DCHECK(coords[d] < num_ranges_[d]);
      num = num * num_ranges_[d] + coords[d];
    }
    return num;
  }

  /// Inverse of GetChunkNum.
  ChunkCoords DecodeChunkNum(uint64_t num) const {
    CHUNKCACHE_DCHECK(num < num_chunks_);
    ChunkCoords coords{};
    for (uint32_t d = spec_.num_dims; d-- > 0;) {
      coords[d] = static_cast<uint32_t>(num % num_ranges_[d]);
      num /= num_ranges_[d];
    }
    return coords;
  }

 private:
  GroupBySpec spec_;
  std::array<uint32_t, storage::kMaxDims> num_ranges_{};
  uint64_t num_chunks_ = 0;
};

/// An axis-aligned box of chunk coordinates within one grid: per dimension
/// an inclusive interval of range indices. Selections map to boxes because
/// range predicates select contiguous ordinals, which map to contiguous
/// range indices.
struct ChunkBox {
  std::array<schema::OrdinalRange, storage::kMaxDims> spans{};
  uint32_t num_dims = 0;

  uint64_t NumChunks() const {
    uint64_t n = 1;
    for (uint32_t d = 0; d < num_dims; ++d) n *= spans[d].size();
    return n;
  }

  /// Visits each chunk in the box: `fn(chunk_num, coords)`. Iterates the
  /// cross product in row-major order — the paper's ComputeChunkNums.
  void ForEach(const ChunkGrid& grid,
               const std::function<void(uint64_t, const ChunkCoords&)>& fn)
      const {
    CHUNKCACHE_DCHECK(num_dims == grid.num_dims());
    ChunkCoords coords{};
    for (uint32_t d = 0; d < num_dims; ++d) coords[d] = spans[d].begin;
    while (true) {
      fn(grid.GetChunkNum(coords), coords);
      // Odometer increment.
      uint32_t d = num_dims;
      while (d-- > 0) {
        if (coords[d] < spans[d].end) {
          ++coords[d];
          break;
        }
        coords[d] = spans[d].begin;
        if (d == 0) return;
      }
    }
  }
};

}  // namespace chunkcache::chunks

#endif  // CHUNKCACHE_CHUNKS_CHUNK_GRID_H_
