#include "chunks/chunking_scheme.h"

#include <cmath>

#include "common/logging.h"

namespace chunkcache::chunks {

Result<ChunkingScheme> ChunkingScheme::Build(const schema::StarSchema* schema,
                                             const ChunkingOptions& opts,
                                             uint64_t num_base_tuples) {
  if (schema == nullptr || schema->num_dims() == 0) {
    return Status::InvalidArgument("ChunkingScheme: empty schema");
  }
  if (schema->num_dims() > storage::kMaxDims) {
    return Status::InvalidArgument("ChunkingScheme: too many dimensions");
  }
  if (!opts.explicit_sizes.empty() &&
      opts.explicit_sizes.size() != schema->num_dims()) {
    return Status::InvalidArgument(
        "ChunkingScheme: explicit_sizes must match dimension count");
  }
  if (opts.explicit_sizes.empty() &&
      (opts.range_fraction <= 0.0 || opts.range_fraction > 1.0)) {
    return Status::InvalidArgument(
        "ChunkingScheme: range_fraction must be in (0, 1]");
  }
  ChunkingScheme scheme(schema, num_base_tuples);
  for (uint32_t d = 0; d < schema->num_dims(); ++d) {
    const auto& h = schema->dimension(d).hierarchy;
    ChunkRangeSizes sizes;
    if (!opts.explicit_sizes.empty()) {
      sizes = opts.explicit_sizes[d];
    } else {
      // Chunk range proportional to the level's cardinality (Section 5.1).
      for (uint32_t l = 1; l <= h.depth(); ++l) {
        const double c = opts.range_fraction * h.LevelCardinality(l);
        sizes.per_level.push_back(
            std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(c))));
      }
    }
    CHUNKCACHE_ASSIGN_OR_RETURN(DimensionChunking dc,
                                DimensionChunking::Build(h, sizes));
    scheme.dim_chunking_.push_back(std::move(dc));
  }
  return scheme;
}

GroupBySpec ChunkingScheme::BaseSpec() const {
  GroupBySpec spec;
  spec.num_dims = num_dims();
  for (uint32_t d = 0; d < num_dims(); ++d) {
    spec.levels[d] =
        static_cast<uint8_t>(schema_->dimension(d).hierarchy.depth());
  }
  return spec;
}

uint32_t ChunkingScheme::GroupById(const GroupBySpec& spec) const {
  CHUNKCACHE_DCHECK(spec.num_dims == num_dims());
  uint32_t id = 0;
  for (uint32_t d = 0; d < num_dims(); ++d) {
    const uint32_t radix = schema_->dimension(d).hierarchy.depth() + 1;
    CHUNKCACHE_DCHECK(spec.levels[d] < radix);
    id = id * radix + spec.levels[d];
  }
  return id;
}

GroupBySpec ChunkingScheme::SpecOfId(uint32_t id) const {
  GroupBySpec spec;
  spec.num_dims = num_dims();
  for (uint32_t d = num_dims(); d-- > 0;) {
    const uint32_t radix = schema_->dimension(d).hierarchy.depth() + 1;
    spec.levels[d] = static_cast<uint8_t>(id % radix);
    id /= radix;
  }
  CHUNKCACHE_DCHECK(id == 0);
  return spec;
}

uint32_t ChunkingScheme::NumGroupByIds() const {
  uint32_t n = 1;
  for (uint32_t d = 0; d < num_dims(); ++d) {
    n *= schema_->dimension(d).hierarchy.depth() + 1;
  }
  return n;
}

const ChunkGrid& ChunkingScheme::GridFor(const GroupBySpec& spec) const {
  const uint32_t id = GroupById(spec);
  std::lock_guard<std::mutex> lock(grids_->mu);
  auto it = grids_->grids.find(id);
  if (it != grids_->grids.end()) return *it->second;
  std::array<uint32_t, storage::kMaxDims> num_ranges{};
  for (uint32_t d = 0; d < num_dims(); ++d) {
    num_ranges[d] = dim_chunking_[d].NumRanges(spec.levels[d]);
  }
  auto grid = std::make_unique<ChunkGrid>(spec, num_ranges);
  // The returned reference stays valid: grids are held by unique_ptr, so
  // rehashing never moves the ChunkGrid itself.
  const ChunkGrid& ref = *grid;
  grids_->grids.emplace(id, std::move(grid));
  return ref;
}

ChunkBox ChunkingScheme::BoxForSelection(
    const GroupBySpec& spec,
    const std::array<schema::OrdinalRange, storage::kMaxDims>& sel) const {
  ChunkBox box;
  box.num_dims = num_dims();
  for (uint32_t d = 0; d < num_dims(); ++d) {
    const auto& dc = dim_chunking_[d];
    const uint32_t level = spec.levels[d];
    box.spans[d] = schema::OrdinalRange{
        dc.RangeOfValue(level, sel[d].begin),
        dc.RangeOfValue(level, sel[d].end)};
  }
  return box;
}

std::array<schema::OrdinalRange, storage::kMaxDims>
ChunkingScheme::ChunkExtent(const GroupBySpec& spec,
                            uint64_t chunk_num) const {
  const ChunkGrid& grid = GridFor(spec);
  const ChunkCoords coords = grid.DecodeChunkNum(chunk_num);
  std::array<schema::OrdinalRange, storage::kMaxDims> extent{};
  for (uint32_t d = 0; d < num_dims(); ++d) {
    extent[d] = dim_chunking_[d].Range(spec.levels[d], coords[d]);
  }
  return extent;
}

Result<ChunkBox> ChunkingScheme::SourceBox(const GroupBySpec& spec,
                                           uint64_t chunk_num,
                                           const GroupBySpec& fine_spec) const {
  if (!spec.CoarserOrEqual(fine_spec)) {
    return Status::InvalidArgument(
        "SourceBox: target group-by " + spec.ToString() +
        " is not computable from " + fine_spec.ToString());
  }
  const ChunkGrid& grid = GridFor(spec);
  if (chunk_num >= grid.num_chunks()) {
    return Status::OutOfRange("SourceBox: chunk number out of range");
  }
  const ChunkCoords coords = grid.DecodeChunkNum(chunk_num);
  ChunkBox box;
  box.num_dims = num_dims();
  for (uint32_t d = 0; d < num_dims(); ++d) {
    box.spans[d] = dim_chunking_[d].SpanAtLevel(spec.levels[d], coords[d],
                                                fine_spec.levels[d]);
  }
  return box;
}

uint64_t ChunkingScheme::ChunkOfCell(const GroupBySpec& spec,
                                     const ChunkCoords& cell) const {
  const ChunkGrid& grid = GridFor(spec);
  ChunkCoords coords{};
  for (uint32_t d = 0; d < num_dims(); ++d) {
    coords[d] = dim_chunking_[d].RangeOfValue(spec.levels[d], cell[d]);
  }
  return grid.GetChunkNum(coords);
}

}  // namespace chunkcache::chunks
