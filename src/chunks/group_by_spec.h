#ifndef CHUNKCACHE_CHUNKS_GROUP_BY_SPEC_H_
#define CHUNKCACHE_CHUNKS_GROUP_BY_SPEC_H_

#include <array>
#include <cstdint>
#include <string>

#include "storage/tuple.h"

namespace chunkcache::chunks {

/// Identifies one level of aggregation of the cube: for each dimension, the
/// hierarchy level it is grouped at. Level 0 means the dimension is
/// aggregated away (grouped at ALL); level hierarchy.depth() means grouped
/// at the base level. The base group-by has every dimension at its base
/// level.
struct GroupBySpec {
  std::array<uint8_t, storage::kMaxDims> levels{};
  uint32_t num_dims = 0;

  uint8_t level(uint32_t dim) const { return levels[dim]; }

  friend bool operator==(const GroupBySpec& a, const GroupBySpec& b) {
    if (a.num_dims != b.num_dims) return false;
    for (uint32_t i = 0; i < a.num_dims; ++i) {
      if (a.levels[i] != b.levels[i]) return false;
    }
    return true;
  }

  /// True if every dimension of `this` is at the same or a more aggregated
  /// level than in `other` (i.e. `this` is computable from `other`).
  bool CoarserOrEqual(const GroupBySpec& other) const {
    if (num_dims != other.num_dims) return false;
    for (uint32_t i = 0; i < num_dims; ++i) {
      if (levels[i] > other.levels[i]) return false;
    }
    return true;
  }

  /// Debug rendering, e.g. "(2,0,3,1)".
  std::string ToString() const {
    std::string s = "(";
    for (uint32_t i = 0; i < num_dims; ++i) {
      if (i > 0) s += ",";
      s += std::to_string(static_cast<int>(levels[i]));
    }
    s += ")";
    return s;
  }
};

struct GroupBySpecHash {
  size_t operator()(const GroupBySpec& s) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t i = 0; i < s.num_dims; ++i) {
      h = (h ^ s.levels[i]) * 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Globally unique identity of a cached chunk: the group-by it belongs to
/// (as a dense interned id, see ChunkingScheme::GroupById) plus its chunk
/// number within that group-by's grid.
struct ChunkKey {
  uint32_t group_by_id = 0;
  uint64_t chunk_num = 0;

  friend bool operator==(const ChunkKey& a, const ChunkKey& b) {
    return a.group_by_id == b.group_by_id && a.chunk_num == b.chunk_num;
  }
};

struct ChunkKeyHash {
  size_t operator()(const ChunkKey& k) const {
    uint64_t x = (static_cast<uint64_t>(k.group_by_id) << 40) ^ k.chunk_num;
    x *= 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(x ^ (x >> 32));
  }
};

}  // namespace chunkcache::chunks

#endif  // CHUNKCACHE_CHUNKS_GROUP_BY_SPEC_H_
