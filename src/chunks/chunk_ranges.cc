#include "chunks/chunk_ranges.h"

#include "common/logging.h"

namespace chunkcache::chunks {

Result<DimensionChunking> DimensionChunking::Build(
    const schema::Hierarchy& hierarchy, const ChunkRangeSizes& sizes) {
  const uint32_t depth = hierarchy.depth();
  if (sizes.per_level.size() != depth) {
    return Status::InvalidArgument(
        "ChunkRangeSizes must have one entry per named level");
  }
  DimensionChunking dc;
  dc.levels_.resize(depth);

  // Level 1: uniform division of the whole level.
  {
    const uint32_t card = hierarchy.LevelCardinality(1);
    const uint32_t c = std::max<uint32_t>(1, sizes.per_level[0]);
    auto& lc = dc.levels_[0];
    for (uint32_t begin = 0; begin < card; begin += c) {
      const uint32_t end = std::min(begin + c, card) - 1;
      lc.ranges.push_back(OrdinalRange{begin, end});
    }
  }

  // Levels 2..depth: subdivide each parent range's mapped value set.
  for (uint32_t level = 2; level <= depth; ++level) {
    const uint32_t c = std::max<uint32_t>(1, sizes.per_level[level - 1]);
    auto& parent_lc = dc.levels_[level - 2];
    auto& lc = dc.levels_[level - 1];
    parent_lc.child_span.reserve(parent_lc.ranges.size());
    for (const OrdinalRange& pr : parent_lc.ranges) {
      // Values at `level` that range `pr` (at level-1) maps to.
      const OrdinalRange lo = hierarchy.ChildRange(level - 1, pr.begin);
      const OrdinalRange hi = hierarchy.ChildRange(level - 1, pr.end);
      const OrdinalRange mapped{lo.begin, hi.end};
      const uint32_t first_idx = static_cast<uint32_t>(lc.ranges.size());
      for (uint32_t begin = mapped.begin; begin <= mapped.end; begin += c) {
        const uint32_t end = std::min(begin + c - 1, mapped.end);
        lc.ranges.push_back(OrdinalRange{begin, end});
        if (end == mapped.end) break;  // guard wrap when begin + c overflows
      }
      const uint32_t last_idx = static_cast<uint32_t>(lc.ranges.size()) - 1;
      parent_lc.child_span.push_back(OrdinalRange{first_idx, last_idx});
    }
  }

  // range_of_value lookup tables.
  for (uint32_t level = 1; level <= depth; ++level) {
    auto& lc = dc.levels_[level - 1];
    lc.range_of_value.assign(hierarchy.LevelCardinality(level), 0);
    for (uint32_t i = 0; i < lc.ranges.size(); ++i) {
      for (uint32_t v = lc.ranges[i].begin; v <= lc.ranges[i].end; ++v) {
        lc.range_of_value[v] = i;
      }
    }
  }
  return dc;
}

OrdinalRange DimensionChunking::ChildRangeSpan(uint32_t level,
                                               uint32_t idx) const {
  CHUNKCACHE_DCHECK(level < depth());
  if (level == 0) {
    return OrdinalRange{0, NumRanges(1) - 1};
  }
  return levels_[level - 1].child_span[idx];
}

OrdinalRange DimensionChunking::SpanAtLevel(uint32_t from_level, uint32_t idx,
                                            uint32_t to_level) const {
  CHUNKCACHE_DCHECK(from_level <= to_level);
  CHUNKCACHE_DCHECK(to_level <= depth());
  if (from_level == to_level) return OrdinalRange{idx, idx};
  OrdinalRange span = ChildRangeSpan(from_level, idx);
  for (uint32_t l = from_level + 1; l < to_level; ++l) {
    const OrdinalRange lo = ChildRangeSpan(l, span.begin);
    const OrdinalRange hi = ChildRangeSpan(l, span.end);
    span = OrdinalRange{lo.begin, hi.end};
  }
  return span;
}

OrdinalRange DimensionChunking::BaseRangeSpan(uint32_t level,
                                              uint32_t idx) const {
  return SpanAtLevel(level, idx, depth());
}

}  // namespace chunkcache::chunks
