#ifndef CHUNKCACHE_CHUNKS_CHUNKING_SCHEME_H_
#define CHUNKCACHE_CHUNKS_CHUNKING_SCHEME_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chunks/chunk_grid.h"
#include "chunks/chunk_ranges.h"
#include "chunks/group_by_spec.h"
#include "common/status.h"
#include "schema/star_schema.h"

namespace chunkcache::chunks {

/// How chunk-range sizes are chosen. The paper keeps the chunk range at any
/// level proportional to the number of distinct values at that level
/// (Section 5.1); `range_fraction` is that proportion and is the knob swept
/// by the Figure 12 experiment.
struct ChunkingOptions {
  /// Desired chunk range / level cardinality (e.g. 0.1 -> ~10 ranges per
  /// level on each dimension). Ignored for dimensions with explicit sizes.
  double range_fraction = 0.1;
  /// Optional explicit per-dimension sizes (empty = derive from
  /// range_fraction). If non-empty, must have one entry per dimension.
  std::vector<ChunkRangeSizes> explicit_sizes;
};

/// Ties a StarSchema to its chunk ranges on every dimension and exposes the
/// paper's chunk algebra:
///  - group-by specs interned to dense ids,
///  - the ChunkGrid of any group-by (lazily built and cached),
///  - selection ranges -> chunk numbers (ComputeChunkNums),
///  - chunk extents (ordinal ranges a chunk spans),
///  - closure: the source chunks at a finer group-by needed to compute a
///    chunk (Section 3.2's property 3 / Section 5.2.3's splitting),
///  - chunk benefit for the replacement policy (Section 5.4).
class ChunkingScheme {
 public:
  /// `num_base_tuples` feeds the benefit metric (|base table| / #chunks).
  static Result<ChunkingScheme> Build(const schema::StarSchema* schema,
                                      const ChunkingOptions& opts,
                                      uint64_t num_base_tuples);

  ChunkingScheme(ChunkingScheme&&) = default;
  ChunkingScheme& operator=(ChunkingScheme&&) = default;

  const schema::StarSchema& schema() const { return *schema_; }
  uint32_t num_dims() const { return schema_->num_dims(); }
  const DimensionChunking& dim_chunking(uint32_t d) const {
    return dim_chunking_[d];
  }

  /// The all-base-levels group-by (the fact table's own granularity).
  GroupBySpec BaseSpec() const;

  /// Dense id of `spec` (mixed-radix over per-dimension level counts);
  /// inverse of SpecOfId. Ids are stable across runs.
  uint32_t GroupById(const GroupBySpec& spec) const;
  GroupBySpec SpecOfId(uint32_t id) const;
  uint32_t NumGroupByIds() const;

  /// Grid of `spec`, built on first use.
  const ChunkGrid& GridFor(const GroupBySpec& spec) const;

  /// Box of chunk coordinates covering the selection `sel` (per-dimension
  /// inclusive ordinal ranges *at the spec's levels*; a dimension at level
  /// 0 must select {0,0}).
  ChunkBox BoxForSelection(
      const GroupBySpec& spec,
      const std::array<schema::OrdinalRange, storage::kMaxDims>& sel) const;

  /// Per-dimension ordinal ranges (at the spec's levels) spanned by chunk
  /// `chunk_num` of `spec` — the chunk's extent, used for boundary
  /// post-filtering.
  std::array<schema::OrdinalRange, storage::kMaxDims> ChunkExtent(
      const GroupBySpec& spec, uint64_t chunk_num) const;

  /// The box of chunks of `fine_spec` whose union covers chunk `chunk_num`
  /// of `spec`. Every dimension of `fine_spec` must be at the same or a
  /// finer level than in `spec` (spec.CoarserOrEqual(fine_spec)).
  Result<ChunkBox> SourceBox(const GroupBySpec& spec, uint64_t chunk_num,
                             const GroupBySpec& fine_spec) const;

  /// Chunk number within `spec`'s grid of the cell with per-dimension
  /// ordinals `cell` (at the spec's levels) — routes aggregate rows into
  /// chunks.
  uint64_t ChunkOfCell(const GroupBySpec& spec, const ChunkCoords& cell) const;

  /// Benefit of one chunk of `spec`: the fraction of the base table it
  /// represents, scaled to tuples (|base| / #chunks(spec), Section 5.4).
  double ChunkBenefit(const GroupBySpec& spec) const {
    return static_cast<double>(num_base_tuples_) /
           static_cast<double>(GridFor(spec).num_chunks());
  }

  uint64_t num_base_tuples() const { return num_base_tuples_; }

 private:
  // Lazily materialized grids, keyed by interned group-by id. GridFor is
  // called from concurrent query threads, so the map is mutex-guarded;
  // boxed in a unique_ptr because the scheme itself must stay movable.
  struct GridCache {
    std::mutex mu;
    std::unordered_map<uint32_t, std::unique_ptr<ChunkGrid>> grids;
  };

  ChunkingScheme(const schema::StarSchema* schema, uint64_t num_base_tuples)
      : schema_(schema),
        num_base_tuples_(num_base_tuples),
        grids_(std::make_unique<GridCache>()) {}

  const schema::StarSchema* schema_;
  uint64_t num_base_tuples_;
  std::vector<DimensionChunking> dim_chunking_;
  std::unique_ptr<GridCache> grids_;
};

}  // namespace chunkcache::chunks

#endif  // CHUNKCACHE_CHUNKS_CHUNKING_SCHEME_H_
