#ifndef CHUNKCACHE_CHUNKS_CHUNK_RANGES_H_
#define CHUNKCACHE_CHUNKS_CHUNK_RANGES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "schema/hierarchy.h"

namespace chunkcache::chunks {

using schema::OrdinalRange;

/// Desired chunk-range sizes for one dimension, one entry per named level
/// (level 1 first). A size of c at a level means "divide that level's
/// ordinals into ranges of about c values", subject to the hierarchy
/// alignment rule below.
struct ChunkRangeSizes {
  std::vector<uint32_t> per_level;
};

/// The chunk ranges of one dimension at every level, produced by the
/// paper's CreateChunkRanges algorithm (Section 3.4):
///
///   Divide level 1 into uniform ranges;
///   for each level l = 1 .. depth-1:
///     for each chunk range R at level l:
///       divide the set of level-(l+1) values R maps to into uniform ranges.
///
/// This alignment guarantees that a range at level l maps to a *disjoint,
/// contiguous* set of ranges at level l+1 — the closure property that lets
/// an aggregate chunk be computed from a known set of finer chunks.
///
/// Level 0 (ALL) implicitly has a single range covering its single member.
class DimensionChunking {
 public:
  /// Builds chunk ranges for `hierarchy` with the given desired sizes
  /// (sizes.per_level.size() must equal hierarchy.depth(); entries are
  /// clamped to >= 1).
  static Result<DimensionChunking> Build(const schema::Hierarchy& hierarchy,
                                         const ChunkRangeSizes& sizes);

  /// Number of chunk ranges at `level` (level 0 -> 1).
  uint32_t NumRanges(uint32_t level) const {
    return level == 0 ? 1
                      : static_cast<uint32_t>(levels_[level - 1].ranges.size());
  }

  /// The `idx`-th chunk range at `level`.
  OrdinalRange Range(uint32_t level, uint32_t idx) const {
    if (level == 0) return OrdinalRange{0, 0};
    return levels_[level - 1].ranges[idx];
  }

  /// Index of the chunk range containing `ordinal` at `level`.
  uint32_t RangeOfValue(uint32_t level, uint32_t ordinal) const {
    if (level == 0) return 0;
    return levels_[level - 1].range_of_value[ordinal];
  }

  /// Indices [begin, end] of the ranges at `level`+1 that range `idx` at
  /// `level` maps to (CreateChunkRanges makes this contiguous). `level`
  /// must be < depth(); level 0 maps to all of level 1's ranges.
  OrdinalRange ChildRangeSpan(uint32_t level, uint32_t idx) const;

  /// Indices [begin, end] of ranges at `to_level` covered by range `idx`
  /// at `from_level` (to_level >= from_level; composition of
  /// ChildRangeSpan). This is the closure property's range mapping.
  OrdinalRange SpanAtLevel(uint32_t from_level, uint32_t idx,
                           uint32_t to_level) const;

  /// Indices [begin, end] of *base-level* ranges covered by range `idx` at
  /// `level` (composition of ChildRangeSpan down to the base).
  OrdinalRange BaseRangeSpan(uint32_t level, uint32_t idx) const;

  uint32_t depth() const { return static_cast<uint32_t>(levels_.size()); }

 private:
  struct LevelChunking {
    std::vector<OrdinalRange> ranges;
    std::vector<uint32_t> range_of_value;
    // child_span[i] = indices of level+1 ranges produced from ranges[i];
    // empty at the base level.
    std::vector<OrdinalRange> child_span;
  };

  std::vector<LevelChunking> levels_;
};

}  // namespace chunkcache::chunks

#endif  // CHUNKCACHE_CHUNKS_CHUNK_RANGES_H_
