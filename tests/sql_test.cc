#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "schema/synthetic.h"
#include "sql/parser.h"

namespace chunkcache::sql {
namespace {

using backend::StarJoinQuery;
using schema::OrdinalRange;

class SqlFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    parser_ = std::make_unique<SqlParser>(schema_.get());
  }

  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<SqlParser> parser_;
};

TEST_F(SqlFixture, ParsesBasicStarJoin) {
  auto q = parser_->Parse(
      "SELECT D0.L2, D2.L1, SUM(dollar_sales) "
      "FROM Sales, D0, D2 "
      "WHERE D0.L2 BETWEEN 'D0.2.7' AND 'D0.2.33' AND D2.L1 = 'D2.1.3' "
      "GROUP BY D0.L2, D2.L1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by.levels[0], 2);
  EXPECT_EQ(q->group_by.levels[1], 0);
  EXPECT_EQ(q->group_by.levels[2], 1);
  EXPECT_EQ(q->group_by.levels[3], 0);
  EXPECT_EQ(q->selection[0], (OrdinalRange{7, 33}));
  EXPECT_EQ(q->selection[2], (OrdinalRange{3, 3}));
  EXPECT_EQ(q->selection[1], (OrdinalRange{0, 0}));  // aggregated away
  EXPECT_TRUE(q->non_group_by.empty());
}

TEST_F(SqlFixture, DefaultSelectionIsFullLevel) {
  auto q = parser_->Parse(
      "SELECT D1.L1, SUM(dollar_sales) FROM Sales, D1 GROUP BY D1.L1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->selection[1], (OrdinalRange{0, 24}));
}

TEST_F(SqlFixture, ComparisonOperatorsIntersect) {
  auto q = parser_->Parse(
      "SELECT D0.L3, SUM(dollar_sales) FROM Sales, D0 "
      "WHERE D0.L3 >= 'D0.3.10' AND D0.L3 <= 'D0.3.40' "
      "AND D0.L3 > 'D0.3.11' AND D0.L3 < 'D0.3.39' "
      "GROUP BY D0.L3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->selection[0], (OrdinalRange{12, 38}));
}

TEST_F(SqlFixture, NonGroupByPredicateRecognized) {
  // Selection on D0's level 1 while grouping on its level 2: a predicate
  // on a non-group-by attribute.
  auto q = parser_->Parse(
      "SELECT D0.L2, SUM(dollar_sales) FROM Sales, D0 "
      "WHERE D0.L1 = 'D0.1.4' GROUP BY D0.L2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->non_group_by.size(), 1u);
  EXPECT_EQ(q->non_group_by[0].dim, 0u);
  EXPECT_EQ(q->non_group_by[0].level, 1u);
  EXPECT_EQ(q->non_group_by[0].range, (OrdinalRange{4, 4}));
  // Group-by selection defaults to full.
  EXPECT_EQ(q->selection[0], (OrdinalRange{0, 49}));
}

TEST_F(SqlFixture, CountStarAccepted) {
  auto q = parser_->Parse(
      "SELECT D3.L2, COUNT(*) FROM Sales, D3 GROUP BY D3.L2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by.levels[3], 2);
}

TEST_F(SqlFixture, AllAggregateFunctionsAccepted) {
  for (const char* agg :
       {"SUM(dollar_sales)", "MIN(dollar_sales)", "MAX(dollar_sales)",
        "AVG(dollar_sales)", "COUNT(*)", "COUNT(dollar_sales)"}) {
    const std::string text = std::string("SELECT D1.L1, ") + agg +
                             " FROM Sales, D1 GROUP BY D1.L1";
    auto q = parser_->Parse(text);
    EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
  }
  // Several aggregates in one query.
  auto q = parser_->Parse(
      "SELECT D1.L1, SUM(dollar_sales), MIN(dollar_sales), "
      "MAX(dollar_sales), COUNT(*) FROM Sales, D1 GROUP BY D1.L1");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  // Wrong argument still rejected.
  EXPECT_FALSE(parser_
                   ->Parse("SELECT D1.L1, MIN(profit) FROM Sales, D1 "
                           "GROUP BY D1.L1")
                   .ok());
}

TEST_F(SqlFixture, CaseInsensitiveKeywords) {
  auto q = parser_->Parse(
      "select D1.L1, sum(dollar_sales) from Sales, D1 "
      "where D1.L1 between 'D1.1.2' and 'D1.1.9' group by D1.L1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->selection[1], (OrdinalRange{2, 9}));
}

TEST_F(SqlFixture, ErrorsAreDescriptive) {
  struct Case {
    const char* sql;
    StatusCode code;
  };
  const Case cases[] = {
      // Missing aggregate.
      {"SELECT D0.L1 FROM Sales, D0 GROUP BY D0.L1",
       StatusCode::kInvalidArgument},
      // Unknown dimension.
      {"SELECT D9.L1, SUM(dollar_sales) FROM Sales GROUP BY D9.L1",
       StatusCode::kNotFound},
      // Unknown level.
      {"SELECT D0.L9, SUM(dollar_sales) FROM Sales, D0 GROUP BY D0.L9",
       StatusCode::kNotFound},
      // Unknown member.
      {"SELECT D0.L1, SUM(dollar_sales) FROM Sales, D0 "
       "WHERE D0.L1 = 'nope' GROUP BY D0.L1",
       StatusCode::kNotFound},
      // Select item missing from GROUP BY.
      {"SELECT D0.L1, D1.L1, SUM(dollar_sales) FROM Sales, D0, D1 "
       "GROUP BY D0.L1",
       StatusCode::kInvalidArgument},
      // Wrong measure.
      {"SELECT D0.L1, SUM(profit) FROM Sales, D0 GROUP BY D0.L1",
       StatusCode::kInvalidArgument},
      // Missing fact table.
      {"SELECT D0.L1, SUM(dollar_sales) FROM D0 GROUP BY D0.L1",
       StatusCode::kInvalidArgument},
      // Empty range.
      {"SELECT D0.L1, SUM(dollar_sales) FROM Sales, D0 "
       "WHERE D0.L1 >= 'D0.1.9' AND D0.L1 <= 'D0.1.3' GROUP BY D0.L1",
       StatusCode::kInvalidArgument},
      // Unterminated string.
      {"SELECT D0.L1, SUM(dollar_sales) FROM Sales, D0 "
       "WHERE D0.L1 = 'D0.1.3 GROUP BY D0.L1",
       StatusCode::kInvalidArgument},
      // Grouping one dimension at two levels.
      {"SELECT D0.L1, D0.L2, SUM(dollar_sales) FROM Sales, D0 "
       "GROUP BY D0.L1, D0.L2",
       StatusCode::kInvalidArgument},
      // Trailing garbage.
      {"SELECT D0.L1, SUM(dollar_sales) FROM Sales, D0 GROUP BY D0.L1 xyz .",
       StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    auto q = parser_->Parse(c.sql);
    EXPECT_FALSE(q.ok()) << c.sql;
    EXPECT_EQ(q.status().code(), c.code) << c.sql << " -> "
                                         << q.status().ToString();
  }
}

TEST_F(SqlFixture, RoundTripsThroughToSql) {
  const char* original =
      "SELECT D0.L2, D2.L1, SUM(dollar_sales) FROM Sales, D0, D2 "
      "WHERE D0.L2 BETWEEN 'D0.2.7' AND 'D0.2.33' AND D2.L1 = 'D2.1.3' "
      "AND D1.L1 BETWEEN 'D1.1.0' AND 'D1.1.9' "
      "GROUP BY D0.L2, D2.L1";
  auto q = parser_->Parse(original);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->non_group_by.size(), 1u);  // D1 predicate is non-group-by
  const std::string rendered = ToSql(*schema_, *q);
  auto q2 = parser_->Parse(rendered);
  ASSERT_TRUE(q2.ok()) << rendered << " -> " << q2.status().ToString();
  EXPECT_TRUE(*q == *q2) << rendered;
}

// Fuzz round trip: random well-formed queries render to SQL and parse
// back to exactly themselves.
TEST_F(SqlFixture, RandomQueriesRoundTrip) {
  Random rng(123);
  for (int iter = 0; iter < 300; ++iter) {
    StarJoinQuery q;
    q.group_by.num_dims = 4;
    bool any = false;
    for (uint32_t d = 0; d < 4; ++d) {
      const auto& h = schema_->dimension(d).hierarchy;
      const uint32_t level =
          static_cast<uint32_t>(rng.Uniform(h.depth() + 1));
      q.group_by.levels[d] = static_cast<uint8_t>(level);
      if (level == 0) {
        q.selection[d] = OrdinalRange{0, 0};
        continue;
      }
      any = true;
      const uint32_t card = h.LevelCardinality(level);
      const uint32_t lo = static_cast<uint32_t>(rng.Uniform(card));
      const uint32_t hi =
          lo + static_cast<uint32_t>(rng.Uniform(card - lo));
      q.selection[d] = OrdinalRange{lo, hi};
    }
    if (!any) {
      q.group_by.levels[0] = 1;
      q.selection[0] = OrdinalRange{0, 24};
    }
    // Occasionally add a non-group-by predicate at a different level.
    if (rng.Bernoulli(0.3)) {
      for (uint32_t d = 0; d < 4; ++d) {
        const auto& h = schema_->dimension(d).hierarchy;
        const uint32_t level =
            1 + static_cast<uint32_t>(rng.Uniform(h.depth()));
        if (level == q.group_by.levels[d]) continue;
        const uint32_t card = h.LevelCardinality(level);
        const uint32_t lo = static_cast<uint32_t>(rng.Uniform(card));
        const uint32_t hi =
            lo + static_cast<uint32_t>(rng.Uniform(card - lo));
        q.non_group_by.push_back(
            backend::NonGroupByPredicate{d, level, OrdinalRange{lo, hi}});
        break;
      }
    }
    const std::string text = ToSql(*schema_, q);
    auto parsed = parser_->Parse(text);
    ASSERT_TRUE(parsed.ok())
        << "iter " << iter << ": " << text << " -> "
        << parsed.status().ToString();
    EXPECT_TRUE(*parsed == q) << "iter " << iter << ": " << text;
  }
}

TEST_F(SqlFixture, PaperQueryOneAnalog) {
  // The paper's Q1 in this schema's vocabulary: monthly sales of a product
  // category for a half year -> a level-2 slice with a level-1 filter.
  auto q = parser_->Parse(
      "SELECT D0.L3, D3.L2, SUM(dollar_sales) "
      "FROM Sales, D0, D3 "
      "WHERE D0.L1 = 'D0.1.2' "
      "AND D3.L2 BETWEEN 'D3.2.0' AND 'D3.2.24' "
      "GROUP BY D0.L3, D3.L2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by.levels[0], 3);
  EXPECT_EQ(q->group_by.levels[3], 2);
  EXPECT_EQ(q->selection[3], (OrdinalRange{0, 24}));
  ASSERT_EQ(q->non_group_by.size(), 1u);
  EXPECT_EQ(q->non_group_by[0].level, 1u);
}

}  // namespace
}  // namespace chunkcache::sql
