#include <gtest/gtest.h>

#include <numeric>

#include "schema/hierarchy.h"
#include "schema/star_schema.h"
#include "schema/synthetic.h"

namespace chunkcache::schema {
namespace {

// Small hand-built hierarchy:
//   level 1 (state):  WI, IL
//   level 2 (city):   Madison, Milwaukee | Chicago
//   level 3 (store):  M1, M2 | Mke1 | Chi1, Chi2, Chi3
Hierarchy MakeStoreHierarchy() {
  HierarchyBuilder b;
  b.AddLevel("state");
  EXPECT_TRUE(b.AddMember("WI").ok());
  EXPECT_TRUE(b.AddMember("IL").ok());
  b.AddLevel("city");
  EXPECT_TRUE(b.AddMember("Madison", 0).ok());
  EXPECT_TRUE(b.AddMember("Milwaukee", 0).ok());
  EXPECT_TRUE(b.AddMember("Chicago", 1).ok());
  b.AddLevel("store");
  EXPECT_TRUE(b.AddMember("M1", 0).ok());
  EXPECT_TRUE(b.AddMember("M2", 0).ok());
  EXPECT_TRUE(b.AddMember("Mke1", 1).ok());
  EXPECT_TRUE(b.AddMember("Chi1", 2).ok());
  EXPECT_TRUE(b.AddMember("Chi2", 2).ok());
  EXPECT_TRUE(b.AddMember("Chi3", 2).ok());
  auto h = b.Build();
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

TEST(HierarchyTest, LevelsAndCardinalities) {
  Hierarchy h = MakeStoreHierarchy();
  EXPECT_EQ(h.depth(), 3u);
  EXPECT_EQ(h.LevelCardinality(0), 1u);  // ALL
  EXPECT_EQ(h.LevelCardinality(1), 2u);
  EXPECT_EQ(h.LevelCardinality(2), 3u);
  EXPECT_EQ(h.LevelCardinality(3), 6u);
  EXPECT_EQ(h.LevelName(0), "ALL");
  EXPECT_EQ(h.LevelName(2), "city");
}

TEST(HierarchyTest, MemberNamesAndOrdinals) {
  Hierarchy h = MakeStoreHierarchy();
  EXPECT_EQ(h.MemberName(1, 1), "IL");
  EXPECT_EQ(h.MemberName(3, 2), "Mke1");
  auto ord = h.OrdinalOf(2, "Chicago");
  ASSERT_TRUE(ord.ok());
  EXPECT_EQ(*ord, 2u);
  EXPECT_EQ(h.OrdinalOf(2, "Paris").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(h.OrdinalOf(9, "x").status().code(),
            StatusCode::kInvalidArgument);
  auto all = h.OrdinalOf(0, "anything");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 0u);
}

TEST(HierarchyTest, ParentAndChildRanges) {
  Hierarchy h = MakeStoreHierarchy();
  EXPECT_EQ(h.ParentOf(2, 0), 0u);  // Madison -> WI
  EXPECT_EQ(h.ParentOf(2, 2), 1u);  // Chicago -> IL
  EXPECT_EQ(h.ParentOf(3, 5), 2u);  // Chi3 -> Chicago
  EXPECT_EQ(h.ParentOf(1, 1), 0u);  // IL -> ALL

  EXPECT_EQ(h.ChildRange(1, 0), (OrdinalRange{0, 1}));  // WI -> Madison,Mke
  EXPECT_EQ(h.ChildRange(2, 2), (OrdinalRange{3, 5}));  // Chicago -> Chi1..3
  EXPECT_EQ(h.ChildRange(0, 0), (OrdinalRange{0, 1}));  // ALL -> states
}

TEST(HierarchyTest, AncestorAt) {
  Hierarchy h = MakeStoreHierarchy();
  EXPECT_EQ(h.AncestorAt(3, 4, 2), 2u);  // Chi2 -> Chicago
  EXPECT_EQ(h.AncestorAt(3, 4, 1), 1u);  // Chi2 -> IL
  EXPECT_EQ(h.AncestorAt(3, 2, 1), 0u);  // Mke1 -> WI
  EXPECT_EQ(h.AncestorAt(3, 4, 0), 0u);  // anything -> ALL
  EXPECT_EQ(h.AncestorAt(2, 1, 2), 1u);  // identity
  EXPECT_EQ(h.AncestorAt(2, 2, 1), 1u);  // Chicago -> IL (non-base walk)
}

TEST(HierarchyTest, BaseRanges) {
  Hierarchy h = MakeStoreHierarchy();
  EXPECT_EQ(h.BaseRange(1, 0), (OrdinalRange{0, 2}));  // WI's stores
  EXPECT_EQ(h.BaseRange(1, 1), (OrdinalRange{3, 5}));  // IL's stores
  EXPECT_EQ(h.BaseRange(2, 1), (OrdinalRange{2, 2}));  // Milwaukee
  EXPECT_EQ(h.BaseRange(3, 4), (OrdinalRange{4, 4}));  // identity at base
  EXPECT_EQ(h.BaseRange(0, 0), (OrdinalRange{0, 5}));  // ALL
  // Range of members maps to the contiguous union of their base ranges.
  EXPECT_EQ(h.BaseRangeOf(2, OrdinalRange{1, 2}), (OrdinalRange{2, 5}));
}

TEST(HierarchyBuilderTest, RejectsOutOfOrderParents) {
  HierarchyBuilder b;
  b.AddLevel("top");
  ASSERT_TRUE(b.AddMember("a").ok());
  ASSERT_TRUE(b.AddMember("b").ok());
  b.AddLevel("bottom");
  ASSERT_TRUE(b.AddMember("b1", 1).ok());
  auto bad = b.AddMember("a1", 0);  // parent order violated
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyBuilderTest, RejectsDuplicatesBadParentsChildless) {
  {
    HierarchyBuilder b;
    b.AddLevel("l");
    ASSERT_TRUE(b.AddMember("x").ok());
    EXPECT_EQ(b.AddMember("x").status().code(), StatusCode::kAlreadyExists);
  }
  {
    HierarchyBuilder b;
    b.AddLevel("l1");
    ASSERT_TRUE(b.AddMember("x").ok());
    b.AddLevel("l2");
    EXPECT_EQ(b.AddMember("y", 5).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // A parent with no children must be rejected at Build.
    HierarchyBuilder b;
    b.AddLevel("l1");
    ASSERT_TRUE(b.AddMember("p0").ok());
    ASSERT_TRUE(b.AddMember("p1").ok());
    b.AddLevel("l2");
    ASSERT_TRUE(b.AddMember("c0", 0).ok());  // p1 childless
    EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
  }
  {
    HierarchyBuilder b;
    EXPECT_FALSE(b.Build().ok());  // no levels
  }
}

// ------------------------------ Synthetic ------------------------------------

TEST(SyntheticTest, PaperSchemaMatchesTable1) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->num_dims(), 4u);
  const uint32_t expected[4][3] = {
      {25, 50, 100}, {25, 50, 0}, {5, 25, 50}, {10, 50, 0}};
  const uint32_t depths[4] = {3, 2, 3, 2};
  for (uint32_t d = 0; d < 4; ++d) {
    const auto& h = schema->dimension(d).hierarchy;
    ASSERT_EQ(h.depth(), depths[d]) << "dim " << d;
    for (uint32_t l = 1; l <= depths[d]; ++l) {
      EXPECT_EQ(h.LevelCardinality(l), expected[d][l - 1])
          << "dim " << d << " level " << l;
    }
  }
  // 100 * 50 * 50 * 50 base cells.
  EXPECT_EQ(schema->BaseCells(), 100ull * 50 * 50 * 50);
  // (3+1)*(2+1)*(3+1)*(2+1) = 144 group-bys.
  EXPECT_EQ(schema->NumGroupBys(), 144u);
}

TEST(SyntheticTest, HierarchicalClusteringHolds) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  for (uint32_t d = 0; d < schema->num_dims(); ++d) {
    const auto& h = schema->dimension(d).hierarchy;
    for (uint32_t l = 2; l <= h.depth(); ++l) {
      uint32_t prev_parent = 0;
      for (uint32_t v = 0; v < h.LevelCardinality(l); ++v) {
        const uint32_t p = h.ParentOf(l, v);
        EXPECT_GE(p, prev_parent);
        prev_parent = p;
      }
    }
  }
}

TEST(SyntheticTest, ChildRangesPartitionEachLevel) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  for (uint32_t d = 0; d < schema->num_dims(); ++d) {
    const auto& h = schema->dimension(d).hierarchy;
    for (uint32_t l = 1; l < h.depth(); ++l) {
      uint32_t next = 0;
      for (uint32_t v = 0; v < h.LevelCardinality(l); ++v) {
        const OrdinalRange r = h.ChildRange(l, v);
        EXPECT_EQ(r.begin, next);
        EXPECT_GE(r.end, r.begin);
        next = r.end + 1;
      }
      EXPECT_EQ(next, h.LevelCardinality(l + 1));
    }
  }
}

TEST(SyntheticTest, UnevenFanoutDistributesRemainder) {
  // 3 parents, 7 children: fanouts must be 3,2,2.
  auto dim = BuildSyntheticDimension("X", {3, 7});
  ASSERT_TRUE(dim.ok());
  const auto& h = dim->hierarchy;
  EXPECT_EQ(h.ChildRange(1, 0).size(), 3u);
  EXPECT_EQ(h.ChildRange(1, 1).size(), 2u);
  EXPECT_EQ(h.ChildRange(1, 2).size(), 2u);
}

TEST(SyntheticTest, RejectsBadSpecs) {
  EXPECT_FALSE(BuildSyntheticDimension("X", {}).ok());
  EXPECT_FALSE(BuildSyntheticDimension("X", {10, 5}).ok());
}

TEST(SyntheticTest, FactTuplesInDomainAndDeterministic) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  FactGenOptions opts;
  opts.num_tuples = 5000;
  opts.seed = 9;
  auto a = GenerateFactTuples(*schema, opts);
  auto b = GenerateFactTuples(*schema, opts);
  ASSERT_EQ(a.size(), 5000u);
  const uint32_t base_cards[4] = {100, 50, 50, 50};
  for (size_t i = 0; i < a.size(); ++i) {
    for (uint32_t d = 0; d < 4; ++d) {
      EXPECT_LT(a[i].keys[d], base_cards[d]);
      EXPECT_EQ(a[i].keys[d], b[i].keys[d]);
    }
    EXPECT_GE(a[i].measure, 0.0);
    EXPECT_LT(a[i].measure, 100.0);
  }
}

TEST(SyntheticTest, ZipfSkewsDistribution) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  FactGenOptions opts;
  opts.num_tuples = 20000;
  opts.zipf_theta = 1.0;
  auto tuples = GenerateFactTuples(*schema, opts);
  std::vector<uint32_t> counts(100, 0);
  for (const auto& t : tuples) counts[t.keys[0]]++;
  // Under Zipf(1) the most popular value dwarfs the least popular.
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(StarSchemaTest, DimensionLookup) {
  auto schema = BuildPaperSchema();
  ASSERT_TRUE(schema.ok());
  auto idx = schema->DimensionIndex("D2");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_EQ(schema->DimensionIndex("D9").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema->tuple_desc().num_dims, 4u);
  EXPECT_EQ(schema->fact_name(), "Sales");
  EXPECT_EQ(schema->measure_name(), "dollar_sales");
}

}  // namespace
}  // namespace chunkcache::schema
