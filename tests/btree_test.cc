#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::index {
namespace {

using storage::BufferPool;
using storage::InMemoryDiskManager;

BTreePayload P(uint64_t a, uint64_t b = 0) { return BTreePayload{a, b}; }

struct TreeFixture {
  InMemoryDiskManager dm;
  BufferPool pool{&dm, 256};
};

TEST(BTreeTest, EmptyTreeGetIsNotFound) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Get(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t->size(), 0u);
  EXPECT_EQ(t->height(), 1u);
  EXPECT_TRUE(t->CheckInvariants().ok());
}

TEST(BTreeTest, InsertAndGetSingle) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Insert(5, P(50, 51)).ok());
  auto v = t->Get(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->v1, 50u);
  EXPECT_EQ(v->v2, 51u);
  EXPECT_EQ(t->size(), 1u);
}

TEST(BTreeTest, DuplicateInsertFailsButUpsertReplaces) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Insert(5, P(1)).ok());
  EXPECT_EQ(t->Insert(5, P(2)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t->Get(5)->v1, 1u);
  ASSERT_TRUE(t->Upsert(5, P(2)).ok());
  EXPECT_EQ(t->Get(5)->v1, 2u);
  EXPECT_EQ(t->size(), 1u);
}

// Insertion orders exercised by the parameterized suite.
enum class Order { kAscending, kDescending, kRandom };

class BTreeInsertTest
    : public ::testing::TestWithParam<std::tuple<int, Order>> {};

TEST_P(BTreeInsertTest, InsertGetScanInvariants) {
  const int n = std::get<0>(GetParam());
  const Order order = std::get<1>(GetParam());
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());

  std::vector<uint64_t> keys(n);
  for (int i = 0; i < n; ++i) keys[i] = static_cast<uint64_t>(i) * 3 + 1;
  if (order == Order::kDescending) {
    std::reverse(keys.begin(), keys.end());
  } else if (order == Order::kRandom) {
    Random rng(n);
    for (int i = n - 1; i > 0; --i) {
      std::swap(keys[i], keys[rng.Uniform(i + 1)]);
    }
  }
  for (uint64_t k : keys) ASSERT_TRUE(t->Insert(k, P(k * 10)).ok());
  EXPECT_EQ(t->size(), static_cast<uint64_t>(n));
  ASSERT_TRUE(t->CheckInvariants().ok());

  // Point lookups.
  for (uint64_t k : keys) {
    auto v = t->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v->v1, k * 10);
  }
  // Misses between keys.
  EXPECT_FALSE(t->Get(0).ok());
  EXPECT_FALSE(t->Get(2).ok());

  // Full scan is sorted and complete.
  std::vector<uint64_t> scanned;
  ASSERT_TRUE(t->ScanRange(0, UINT64_MAX,
                           [&](uint64_t k, const BTreePayload& p) {
                             EXPECT_EQ(p.v1, k * 10);
                             scanned.push_back(k);
                             return true;
                           })
                  .ok());
  ASSERT_EQ(scanned.size(), static_cast<size_t>(n));
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));

  // Sub-range scan.
  scanned.clear();
  ASSERT_TRUE(t->ScanRange(10, 40,
                           [&](uint64_t k, const BTreePayload&) {
                             scanned.push_back(k);
                             return true;
                           })
                  .ok());
  for (uint64_t k : scanned) {
    EXPECT_GE(k, 10u);
    EXPECT_LE(k, 40u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BTreeInsertTest,
    ::testing::Combine(::testing::Values(1, 10, 200, 2000, 20000),
                       ::testing::Values(Order::kAscending, Order::kDescending,
                                         Order::kRandom)));

TEST(BTreeTest, GrowsBeyondOneLevel) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  for (uint64_t k = 0; k < 5000; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  EXPECT_GE(t->height(), 2u);
  ASSERT_TRUE(t->CheckInvariants().ok());
}

TEST(BTreeTest, DeleteFromLeafNoUnderflow) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  ASSERT_TRUE(t->Delete(25).ok());
  EXPECT_EQ(t->size(), 49u);
  EXPECT_FALSE(t->Get(25).ok());
  EXPECT_TRUE(t->Get(24).ok());
  EXPECT_TRUE(t->Get(26).ok());
  EXPECT_EQ(t->Delete(25).code(), StatusCode::kNotFound);
  ASSERT_TRUE(t->CheckInvariants().ok());
}

TEST(BTreeTest, DeleteEverythingForwards) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  const uint64_t n = 3000;
  for (uint64_t k = 0; k < n; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(t->Delete(k).ok()) << "key " << k;
  }
  EXPECT_EQ(t->size(), 0u);
  ASSERT_TRUE(t->CheckInvariants().ok());
  for (uint64_t k = 0; k < n; k += 37) EXPECT_FALSE(t->Get(k).ok());
}

TEST(BTreeTest, DeleteEverythingBackwards) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  const uint64_t n = 3000;
  for (uint64_t k = 0; k < n; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  for (uint64_t k = n; k-- > 0;) {
    ASSERT_TRUE(t->Delete(k).ok()) << "key " << k;
  }
  EXPECT_EQ(t->size(), 0u);
  ASSERT_TRUE(t->CheckInvariants().ok());
}

TEST(BTreeTest, RandomInsertDeleteAgainstReferenceMap) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  std::map<uint64_t, uint64_t> reference;
  Random rng(77);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.Uniform(500);
    if (rng.Bernoulli(0.6)) {
      const uint64_t val = rng.Next64();
      ASSERT_TRUE(t->Upsert(key, P(val)).ok());
      reference[key] = val;
    } else {
      Status s = t->Delete(key);
      if (reference.erase(key) > 0) {
        ASSERT_TRUE(s.ok());
      } else {
        ASSERT_EQ(s.code(), StatusCode::kNotFound);
      }
    }
    if (step % 2500 == 0) ASSERT_TRUE(t->CheckInvariants().ok());
  }
  ASSERT_TRUE(t->CheckInvariants().ok());
  EXPECT_EQ(t->size(), reference.size());
  for (const auto& [k, v] : reference) {
    auto got = t->Get(k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->v1, v);
  }
}

TEST(BTreeTest, BulkLoadMatchesPointInserts) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  std::vector<std::pair<uint64_t, BTreePayload>> input;
  for (uint64_t k = 0; k < 10000; ++k) input.emplace_back(k * 2, P(k));
  ASSERT_TRUE(t->BulkLoad(input).ok());
  EXPECT_EQ(t->size(), 10000u);
  ASSERT_TRUE(t->CheckInvariants().ok());
  for (uint64_t k = 0; k < 10000; k += 113) {
    auto v = t->Get(k * 2);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->v1, k);
    EXPECT_FALSE(t->Get(k * 2 + 1).ok());
  }
}

TEST(BTreeTest, BulkLoadRejectsUnsortedAndNonEmpty) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->BulkLoad({{3, P(0)}, {2, P(0)}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t->BulkLoad({{3, P(0)}, {3, P(0)}}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(t->Insert(1, P(0)).ok());
  EXPECT_EQ(t->BulkLoad({{2, P(0)}}).code(), StatusCode::kInvalidArgument);
}

TEST(BTreeTest, BulkLoadedTreeAcceptsFurtherInsertsAndDeletes) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  std::vector<std::pair<uint64_t, BTreePayload>> input;
  for (uint64_t k = 0; k < 5000; ++k) input.emplace_back(k * 2, P(k));
  ASSERT_TRUE(t->BulkLoad(input).ok());
  for (uint64_t k = 1; k < 2000; k += 2) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  for (uint64_t k = 0; k < 1000; k += 2) ASSERT_TRUE(t->Delete(k).ok());
  ASSERT_TRUE(t->CheckInvariants().ok());
  EXPECT_EQ(t->size(), 5000u + 1000u - 500u);
}

TEST(BTreeTest, PersistsAcrossReopen) {
  InMemoryDiskManager dm;
  BufferPool pool(&dm, 256);
  uint32_t file_id;
  {
    auto t = BTree::Create(&pool);
    ASSERT_TRUE(t.ok());
    file_id = t->file_id();
    for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
    ASSERT_TRUE(t->SyncMeta().ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  auto t = BTree::Open(&pool, file_id);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 1000u);
  for (uint64_t k = 0; k < 1000; k += 97) {
    auto v = t->Get(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->v1, k);
  }
  ASSERT_TRUE(t->CheckInvariants().ok());
}

TEST(BTreeTest, ScanEarlyStop) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  int visited = 0;
  ASSERT_TRUE(t->ScanRange(0, UINT64_MAX,
                           [&](uint64_t, const BTreePayload&) {
                             return ++visited < 10;
                           })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST(BTreeTest, ScanEmptyRange) {
  TreeFixture f;
  auto t = BTree::Create(&f.pool);
  ASSERT_TRUE(t.ok());
  for (uint64_t k = 100; k < 200; ++k) ASSERT_TRUE(t->Insert(k, P(k)).ok());
  int visited = 0;
  ASSERT_TRUE(t->ScanRange(300, 400,
                           [&](uint64_t, const BTreePayload&) {
                             ++visited;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(visited, 0);
  // lo > hi is a no-op, not an error.
  ASSERT_TRUE(t->ScanRange(50, 10,
                           [&](uint64_t, const BTreePayload&) {
                             ++visited;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(visited, 0);
}

}  // namespace
}  // namespace chunkcache::index
