#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace chunkcache {
namespace {

// ----------------------------- bucket layout --------------------------------

TEST(HistogramBuckets, LayoutCoversUint64WithoutGapsOrOverlaps) {
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(~uint64_t{0}), 64u);
  for (size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
    // Consecutive buckets tile the domain: upper(b) + 1 == lower(b + 1).
    EXPECT_EQ(HistogramBucketUpper(b) + 1, HistogramBucketLower(b + 1)) << b;
    // And every bucket contains its own bounds.
    EXPECT_EQ(HistogramBucketOf(HistogramBucketLower(b)), b);
    EXPECT_EQ(HistogramBucketOf(HistogramBucketUpper(b)), b);
  }
}

// -------------------------------- counters ----------------------------------

TEST(Counter, AddAndReset) {
  Counter c("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(c.name(), "test.counter");
}

TEST(Counter, ConcurrentTotalsAreExact) {
  // Striped relaxed adds from many threads must fold to the exact total
  // once the threads have joined. (Run under TSAN in CI.)
  Counter c("test.concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kAdds = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kAdds; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kAdds);
}

TEST(Gauge, SetAddSetMax) {
  Gauge g("test.gauge");
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(7);  // below current: no change
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(40);
  EXPECT_EQ(g.Value(), 40);
  g.Set(-4);  // gauges are signed
  EXPECT_EQ(g.Value(), -4);
}

// ------------------------------- histograms ---------------------------------

std::vector<uint64_t> CannedValues(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Log-uniform-ish spread across many buckets, plus occasional zeros.
    const int shift = static_cast<int>(rng() % 40);
    out.push_back(rng() % 17 == 0 ? 0 : (rng() >> (63 - shift)));
  }
  return out;
}

TEST(Histogram, SnapshotTracksCountSumMinMax) {
  Histogram h("test.hist");
  for (uint64_t v : {5u, 13u, 1u, 200u}) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 219u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 200u);
  h.Reset();
  const HistogramSnapshot z = h.Snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_EQ(z.min, 0u);
  EXPECT_EQ(z.max, 0u);
}

TEST(Histogram, MergeOfShardsEqualsSingleStream) {
  // The satellite property: recording stream A into one histogram and
  // stream B into another, then merging the snapshots, must equal the
  // snapshot of one histogram that saw both streams.
  const std::vector<uint64_t> a = CannedValues(17, 5000);
  const std::vector<uint64_t> b = CannedValues(99, 3000);

  Histogram ha("shard.a");
  Histogram hb("shard.b");
  Histogram hall("single.stream");
  for (uint64_t v : a) {
    ha.Record(v);
    hall.Record(v);
  }
  for (uint64_t v : b) {
    hb.Record(v);
    hall.Record(v);
  }

  HistogramSnapshot merged = ha.Snapshot();
  merged.Merge(hb.Snapshot());
  const HistogramSnapshot want = hall.Snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.min, want.min);
  EXPECT_EQ(merged.max, want.max);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], want.buckets[i]) << "bucket " << i;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram h("test.hist");
  for (uint64_t v : {3u, 9u, 12u}) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  s.Merge(HistogramSnapshot{});
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 12u);
  HistogramSnapshot empty;
  empty.Merge(h.Snapshot());
  EXPECT_EQ(empty.count, 3u);
  EXPECT_EQ(empty.min, 3u);
}

TEST(Histogram, QuantilesWithinOneBucketOfExact) {
  std::vector<uint64_t> values = CannedValues(4242, 20000);
  Histogram h("test.quantiles");
  for (uint64_t v : values) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();

  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const uint64_t exact =
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
    const double est = s.Quantile(q);
    // The estimate is the (clamped) upper bound of the exact value's
    // bucket: never below the exact quantile, never above the next
    // power of two (and never outside [min, max]).
    EXPECT_GE(est, static_cast<double>(exact)) << "q=" << q;
    EXPECT_LE(est, static_cast<double>(HistogramBucketUpper(
                       HistogramBucketOf(exact))))
        << "q=" << q;
    EXPECT_GE(est, static_cast<double>(s.min));
    EXPECT_LE(est, static_cast<double>(s.max));
  }
}

TEST(Histogram, ConcurrentRecordTotalsExact) {
  Histogram h("test.mt");
  constexpr int kThreads = 8;
  constexpr uint64_t kRecords = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kRecords; ++i) {
        h.Record(static_cast<uint64_t>(t) * kRecords + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kRecords);
  // Sum of 0 .. kThreads*kRecords-1.
  const uint64_t n = kThreads * kRecords;
  EXPECT_EQ(s.sum, n * (n - 1) / 2);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, n - 1);
}

// -------------------------------- registry ----------------------------------

TEST(MetricsRegistry, GetReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.counter");
  Counter* c2 = reg.GetCounter("a.counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.GetGauge("a.gauge");
  EXPECT_EQ(g1, reg.GetGauge("a.gauge"));
  Histogram* h1 = reg.GetHistogram("a.hist");
  EXPECT_EQ(h1, reg.GetHistogram("a.hist"));
  // Distinct names, distinct metrics (same name may exist per kind).
  EXPECT_NE(c1, reg.GetCounter("b.counter"));
}

TEST(MetricsRegistry, SnapshotAndReset) {
  MetricsRegistry reg;
  reg.GetCounter("c.one")->Add(3);
  reg.GetGauge("g.one")->Set(-7);
  reg.GetHistogram("h.one")->Record(42);
  const MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("c.one"), 3u);
  EXPECT_EQ(snap.gauge("g.one"), -7);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauge("missing"), 0);
  ASSERT_EQ(snap.histograms.count("h.one"), 1u);
  EXPECT_EQ(snap.histograms.at("h.one").count, 1u);
  reg.ResetAll();
  const MetricsRegistry::Snapshot zero = reg.TakeSnapshot();
  EXPECT_EQ(zero.counter("c.one"), 0u);
  EXPECT_EQ(zero.gauge("g.one"), 0);
  EXPECT_EQ(zero.histograms.at("h.one").count, 0u);
}

TEST(MetricsRegistry, PrometheusExportShape) {
  MetricsRegistry reg;
  reg.GetCounter("cache.lookups")->Add(12);
  reg.GetGauge("inflight.peak")->Set(4);
  Histogram* h = reg.GetHistogram("disk.read_ns");
  h->Record(3);
  h->Record(700);
  const std::string out = reg.ExportPrometheus();
  EXPECT_NE(out.find("# TYPE chunkcache_cache_lookups counter"),
            std::string::npos);
  EXPECT_NE(out.find("chunkcache_cache_lookups 12"), std::string::npos);
  EXPECT_NE(out.find("# TYPE chunkcache_inflight_peak gauge"),
            std::string::npos);
  EXPECT_NE(out.find("chunkcache_inflight_peak 4"), std::string::npos);
  EXPECT_NE(out.find("# TYPE chunkcache_disk_read_ns histogram"),
            std::string::npos);
  // Cumulative buckets end at +Inf with the total count.
  EXPECT_NE(out.find("chunkcache_disk_read_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("chunkcache_disk_read_ns_sum 703"), std::string::npos);
  EXPECT_NE(out.find("chunkcache_disk_read_ns_count 2"), std::string::npos);
}

TEST(MetricsRegistry, JsonExportShape) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(1);
  reg.GetGauge("g")->Set(2);
  reg.GetHistogram("h")->Record(9);
  const std::string out = reg.ExportJson();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"counters\": {\"c\": 1}"), std::string::npos);
  EXPECT_NE(out.find("\"gauges\": {\"g\": 2}"), std::string::npos);
  EXPECT_NE(out.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"p50\":"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecordingIsSafe) {
  // Threads race to register the same names and record through whatever
  // pointer they get; totals must still be exact (TSAN-clean).
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kOps = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.GetCounter("shared.counter");
      Histogram* h = reg.GetHistogram("shared.hist");
      for (uint64_t i = 0; i < kOps; ++i) {
        c->Increment();
        h->Record(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("shared.counter"), kThreads * kOps);
  EXPECT_EQ(snap.histograms.at("shared.hist").count, kThreads * kOps);
}

}  // namespace
}  // namespace chunkcache
