#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "core/query_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/query_generator.h"

namespace chunkcache::core {
namespace {

using backend::NonGroupByPredicate;
using backend::ResultRow;
using backend::StarJoinQuery;
using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggTuple;
using storage::Tuple;

class CoreFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 20000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());

    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 23;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);

    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file = backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(),
                                               tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(pool_.get(),
                                                       file_.get(),
                                                       scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  std::vector<AggTuple> Naive(const StarJoinQuery& q) const {
    std::map<std::vector<uint32_t>, AggTuple> cells;
    for (const Tuple& t : tuples_) {
      bool pass = true;
      std::vector<uint32_t> coords(schema_->num_dims());
      for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
        const auto& h = schema_->dimension(d).hierarchy;
        coords[d] = h.AncestorAt(h.depth(), t.keys[d], q.group_by.levels[d]);
        if (!q.selection[d].Contains(coords[d])) pass = false;
      }
      for (const auto& p : q.non_group_by) {
        const auto& h = schema_->dimension(p.dim).hierarchy;
        const uint32_t v = h.AncestorAt(h.depth(), t.keys[p.dim], p.level);
        if (!p.range.Contains(v)) pass = false;
      }
      if (!pass) continue;
      AggTuple& cell = cells[coords];
      for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
        cell.coords[d] = coords[d];
      }
      cell.sum += t.measure;
      cell.count += 1;
    }
    std::vector<AggTuple> rows;
    for (auto& [k, v] : cells) rows.push_back(v);
    return rows;
  }

  static void ExpectRowsEqual(const std::vector<AggTuple>& got,
                              const std::vector<AggTuple>& want,
                              uint32_t num_dims) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      for (uint32_t d = 0; d < num_dims; ++d) {
        ASSERT_EQ(got[i].coords[d], want[i].coords[d]) << "row " << i;
      }
      EXPECT_NEAR(got[i].sum, want[i].sum, 1e-6) << "row " << i;
      EXPECT_EQ(got[i].count, want[i].count) << "row " << i;
    }
  }

  /// A query whose selection is deliberately misaligned with chunk
  /// boundaries, so boundary post-filtering is exercised.
  StarJoinQuery MisalignedQuery() const {
    StarJoinQuery q;
    q.group_by = GroupBySpec{{2, 1, 2, 1}, 4};
    q.selection[0] = OrdinalRange{7, 33};  // D0 level2: 50 values
    q.selection[1] = OrdinalRange{3, 11};  // D1 level1: 25 values
    q.selection[2] = OrdinalRange{1, 17};  // D2 level2: 25 values
    q.selection[3] = OrdinalRange{2, 7};   // D3 level1: 10 values
    return q;
  }

  ChunkCacheManager MakeChunkManager(ChunkManagerOptions opts = {}) {
    return ChunkCacheManager(engine_.get(), opts);
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

// ----------------------------- ChunkCacheManager ----------------------------

TEST_F(CoreFixture, ChunkManagerAnswersCorrectly) {
  ChunkCacheManager mgr = MakeChunkManager();
  const StarJoinQuery q = MisalignedQuery();
  QueryStats stats;
  auto rows = mgr.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(q), 4);
  EXPECT_GT(stats.chunks_needed, 0u);
  EXPECT_EQ(stats.chunks_from_cache, 0u);
  EXPECT_EQ(stats.chunks_from_backend, stats.chunks_needed);
  EXPECT_FALSE(stats.full_cache_hit);
  EXPECT_DOUBLE_EQ(stats.saved_fraction, 0.0);
}

TEST_F(CoreFixture, RepeatQueryIsFullCacheHit) {
  ChunkCacheManager mgr = MakeChunkManager();
  const StarJoinQuery q = MisalignedQuery();
  QueryStats s1, s2;
  auto r1 = mgr.Execute(q, &s1);
  ASSERT_TRUE(r1.ok());
  auto r2 = mgr.Execute(q, &s2);
  ASSERT_TRUE(r2.ok());
  ExpectRowsEqual(*r2, *r1, 4);
  EXPECT_TRUE(s2.full_cache_hit);
  EXPECT_EQ(s2.chunks_from_cache, s2.chunks_needed);
  EXPECT_EQ(s2.backend_work.pages_read, 0u);
  EXPECT_EQ(s2.backend_work.tuples_processed, 0u);
  EXPECT_DOUBLE_EQ(s2.saved_fraction, 1.0);
}

TEST_F(CoreFixture, OverlappingQueryReusesSharedChunks) {
  // The paper's Q1/Q3 motivating scenario: overlap without containment.
  ChunkCacheManager mgr = MakeChunkManager();
  StarJoinQuery q1 = MisalignedQuery();
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(q1, &s1).ok());

  StarJoinQuery q3 = q1;
  q3.selection[0] = OrdinalRange{20, 45};  // shifted: overlaps q1's [7,33]
  QueryStats s3;
  auto rows = mgr.Execute(q3, &s3);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(q3), 4);
  EXPECT_GT(s3.chunks_from_cache, 0u);                    // partial reuse
  EXPECT_GT(s3.chunks_from_backend, 0u);                  // and partial miss
  EXPECT_LT(s3.chunks_from_backend, s3.chunks_needed);
  EXPECT_GT(s3.saved_fraction, 0.0);
  EXPECT_LT(s3.saved_fraction, 1.0);
}

TEST_F(CoreFixture, DifferentNonGroupByFiltersDoNotMix) {
  ChunkCacheManager mgr = MakeChunkManager();
  StarJoinQuery plain = MisalignedQuery();
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(plain, &s1).ok());

  StarJoinQuery filtered = plain;
  filtered.non_group_by.push_back(
      NonGroupByPredicate{0, 3, OrdinalRange{0, 49}});
  QueryStats s2;
  auto rows = mgr.Execute(filtered, &s2);
  ASSERT_TRUE(rows.ok());
  // Must NOT reuse the unfiltered chunks (condition 3 of Section 5.2.1).
  EXPECT_EQ(s2.chunks_from_cache, 0u);
  ExpectRowsEqual(*rows, Naive(filtered), 4);

  // But a repeat of the filtered query hits its own entries.
  QueryStats s3;
  ASSERT_TRUE(mgr.Execute(filtered, &s3).ok());
  EXPECT_TRUE(s3.full_cache_hit);
}

TEST_F(CoreFixture, FilterHashDistinguishesPredicates) {
  EXPECT_EQ(ChunkCacheManager::FilterHash({}), 0u);
  std::vector<NonGroupByPredicate> a = {{0, 1, OrdinalRange{0, 3}}};
  std::vector<NonGroupByPredicate> b = {{0, 1, OrdinalRange{0, 4}}};
  std::vector<NonGroupByPredicate> c = {{1, 1, OrdinalRange{0, 3}}};
  EXPECT_NE(ChunkCacheManager::FilterHash(a), 0u);
  EXPECT_NE(ChunkCacheManager::FilterHash(a), ChunkCacheManager::FilterHash(b));
  EXPECT_NE(ChunkCacheManager::FilterHash(a), ChunkCacheManager::FilterHash(c));
  // Order-insensitive.
  std::vector<NonGroupByPredicate> ab = {a[0], b[0]};
  std::vector<NonGroupByPredicate> ba = {b[0], a[0]};
  EXPECT_EQ(ChunkCacheManager::FilterHash(ab),
            ChunkCacheManager::FilterHash(ba));
}

TEST_F(CoreFixture, CsrAccumulatorTracksSavings) {
  ChunkCacheManager mgr = MakeChunkManager();
  CsrAccumulator csr;
  const StarJoinQuery q = MisalignedQuery();
  QueryStats s;
  ASSERT_TRUE(mgr.Execute(q, &s).ok());
  csr.Record(s);
  EXPECT_DOUBLE_EQ(csr.Csr(), 0.0);  // cold cache: nothing saved
  ASSERT_TRUE(mgr.Execute(q, &s).ok());
  csr.Record(s);
  EXPECT_DOUBLE_EQ(csr.Csr(), 0.5);  // second run fully saved
}

TEST_F(CoreFixture, TinyCacheStillAnswersCorrectly) {
  ChunkManagerOptions opts;
  opts.cache_bytes = 4096;  // pathologically small
  ChunkCacheManager mgr = MakeChunkManager(opts);
  const StarJoinQuery q = MisalignedQuery();
  QueryStats s;
  auto rows = mgr.Execute(q, &s);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(q), 4);
}

TEST_F(CoreFixture, InCacheAggregationAnswersCoarseFromFine) {
  ChunkManagerOptions opts;
  opts.enable_in_cache_aggregation = true;
  ChunkCacheManager mgr = MakeChunkManager(opts);

  // Warm the cache with the FULL fine-level group-by.
  StarJoinQuery fine;
  fine.group_by = GroupBySpec{{1, 1, 1, 1}, 4};
  for (uint32_t d = 0; d < 4; ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    fine.selection[d] = OrdinalRange{0, h.LevelCardinality(1) - 1};
  }
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(fine, &s1).ok());

  // A coarser query must now be computable without the backend.
  StarJoinQuery coarse;
  coarse.group_by = GroupBySpec{{1, 0, 1, 0}, 4};
  coarse.selection[0] = OrdinalRange{0, 24};
  coarse.selection[1] = OrdinalRange{0, 0};
  coarse.selection[2] = OrdinalRange{0, 4};
  coarse.selection[3] = OrdinalRange{0, 0};
  QueryStats s2;
  auto rows = mgr.Execute(coarse, &s2);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(coarse), 4);
  EXPECT_EQ(s2.chunks_from_backend, 0u);
  EXPECT_GT(s2.chunks_from_aggregation, 0u);
  EXPECT_EQ(s2.backend_work.pages_read, 0u);
  EXPECT_TRUE(s2.full_cache_hit);

  // The derived chunks were admitted: repeating the coarse query is a
  // plain cache hit, no aggregation work.
  QueryStats s3;
  ASSERT_TRUE(mgr.Execute(coarse, &s3).ok());
  EXPECT_EQ(s3.chunks_from_aggregation, 0u);
  EXPECT_EQ(s3.chunks_from_cache, s3.chunks_needed);
}

TEST_F(CoreFixture, InCacheAggregationDisabledGoesToBackend) {
  ChunkCacheManager mgr = MakeChunkManager();  // extension off
  StarJoinQuery fine;
  fine.group_by = GroupBySpec{{1, 1, 1, 1}, 4};
  for (uint32_t d = 0; d < 4; ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    fine.selection[d] = OrdinalRange{0, h.LevelCardinality(1) - 1};
  }
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(fine, &s1).ok());
  StarJoinQuery coarse;
  coarse.group_by = GroupBySpec{{1, 0, 1, 0}, 4};
  coarse.selection[0] = OrdinalRange{0, 24};
  coarse.selection[1] = OrdinalRange{0, 0};
  coarse.selection[2] = OrdinalRange{0, 4};
  coarse.selection[3] = OrdinalRange{0, 0};
  QueryStats s2;
  ASSERT_TRUE(mgr.Execute(coarse, &s2).ok());
  EXPECT_GT(s2.chunks_from_backend, 0u);
  EXPECT_EQ(s2.chunks_from_aggregation, 0u);
}

TEST_F(CoreFixture, DrillDownPrefetchWarmsFinerLevel) {
  ChunkManagerOptions opts;
  opts.enable_drill_down_prefetch = true;
  opts.prefetch_budget_chunks = 1000;
  ChunkCacheManager mgr = MakeChunkManager(opts);

  StarJoinQuery coarse;
  coarse.group_by = GroupBySpec{{1, 1, 1, 1}, 4};
  coarse.selection[0] = OrdinalRange{0, 4};
  coarse.selection[1] = OrdinalRange{0, 4};
  coarse.selection[2] = OrdinalRange{0, 1};
  coarse.selection[3] = OrdinalRange{0, 1};
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(coarse, &s1).ok());
  EXPECT_GT(s1.prefetched_chunks, 0u);
  EXPECT_GT(s1.prefetch_work.tuples_processed, 0u);

  // Drill down: same region one level finer on every dimension.
  StarJoinQuery drill;
  drill.group_by = GroupBySpec{{2, 2, 2, 2}, 4};
  for (uint32_t d = 0; d < 4; ++d) {
    const auto& h = schema_->dimension(d).hierarchy;
    drill.selection[d] =
        OrdinalRange{h.ChildRange(1, coarse.selection[d].begin).begin,
                     h.ChildRange(1, coarse.selection[d].end).end};
  }
  QueryStats s2;
  auto rows = mgr.Execute(drill, &s2);
  ASSERT_TRUE(rows.ok());
  ExpectRowsEqual(*rows, Naive(drill), 4);
  EXPECT_GT(s2.chunks_from_cache, 0u);  // prefetch paid off
}

TEST_F(CoreFixture, ModeledMsReflectsForegroundWorkOnly) {
  ChunkManagerOptions opts;
  opts.enable_drill_down_prefetch = true;
  opts.prefetch_budget_chunks = 256;
  CostModel cm;
  cm.page_read_ms = 7.0;
  cm.tuple_cpu_ms = 0.002;
  opts.cost_model = cm;
  ChunkCacheManager mgr = MakeChunkManager(opts);
  StarJoinQuery q;
  q.group_by = GroupBySpec{{1, 1, 1, 1}, 4};
  q.selection[0] = OrdinalRange{0, 9};
  q.selection[1] = OrdinalRange{0, 9};
  q.selection[2] = OrdinalRange{0, 2};
  q.selection[3] = OrdinalRange{0, 3};
  QueryStats s;
  ASSERT_TRUE(mgr.Execute(q, &s).ok());
  EXPECT_DOUBLE_EQ(s.modeled_ms,
                   cm.Cost(s.backend_work.pages_read,
                           s.backend_work.pages_written,
                           s.backend_work.tuples_processed));
  // Prefetch work happened but is tracked separately.
  EXPECT_GT(s.prefetched_chunks, 0u);
  EXPECT_GT(s.prefetch_work.tuples_processed, 0u);
}

TEST_F(CoreFixture, StatsAccountingInvariantsUnderBothExtensions) {
  ChunkManagerOptions opts;
  opts.enable_in_cache_aggregation = true;
  opts.enable_drill_down_prefetch = true;
  ChunkCacheManager mgr = MakeChunkManager(opts);
  workload::QueryGenerator gen(schema_.get(),
                               workload::ProximityStream(321));
  for (int i = 0; i < 60; ++i) {
    QueryStats s;
    ASSERT_TRUE(mgr.Execute(gen.Next(), &s).ok());
    EXPECT_EQ(s.chunks_from_cache + s.chunks_from_aggregation +
                  s.chunks_from_backend,
              s.chunks_needed)
        << "query " << i;
    EXPECT_GE(s.saved_fraction, 0.0);
    EXPECT_LE(s.saved_fraction, 1.0);
    EXPECT_EQ(s.full_cache_hit, s.chunks_from_backend == 0);
    EXPECT_GE(s.cost_estimate, 0.0);
  }
  EXPECT_LE(mgr.chunk_cache().bytes_used(),
            mgr.chunk_cache().capacity_bytes());
}

// ----------------------------- QueryCacheManager ----------------------------

TEST_F(CoreFixture, QueryManagerAnswersAndHitsOnRepeat) {
  QueryCacheManager mgr(engine_.get(), QueryManagerOptions{});
  const StarJoinQuery q = MisalignedQuery();
  QueryStats s1, s2;
  auto r1 = mgr.Execute(q, &s1);
  ASSERT_TRUE(r1.ok());
  ExpectRowsEqual(*r1, Naive(q), 4);
  EXPECT_FALSE(s1.full_cache_hit);
  EXPECT_GT(s1.backend_work.tuples_processed, 0u);

  auto r2 = mgr.Execute(q, &s2);
  ASSERT_TRUE(r2.ok());
  ExpectRowsEqual(*r2, *r1, 4);
  EXPECT_TRUE(s2.full_cache_hit);
  EXPECT_EQ(s2.backend_work.pages_read, 0u);
  EXPECT_DOUBLE_EQ(s2.saved_fraction, 1.0);
}

TEST_F(CoreFixture, QueryManagerHitsOnContainedQuery) {
  QueryCacheManager mgr(engine_.get(), QueryManagerOptions{});
  StarJoinQuery big = MisalignedQuery();
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(big, &s1).ok());

  StarJoinQuery small = big;
  small.selection[0] = OrdinalRange{10, 20};  // inside big's [7,33]
  QueryStats s2;
  auto rows = mgr.Execute(small, &s2);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(s2.full_cache_hit);
  ExpectRowsEqual(*rows, Naive(small), 4);
}

TEST_F(CoreFixture, QueryManagerMissesOnOverlap) {
  // The chunk scheme's key advantage: query caching cannot reuse overlap.
  QueryCacheManager mgr(engine_.get(), QueryManagerOptions{});
  StarJoinQuery q1 = MisalignedQuery();
  QueryStats s1;
  ASSERT_TRUE(mgr.Execute(q1, &s1).ok());
  StarJoinQuery q3 = q1;
  q3.selection[0] = OrdinalRange{20, 45};
  QueryStats s3;
  auto rows = mgr.Execute(q3, &s3);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(s3.full_cache_hit);
  EXPECT_DOUBLE_EQ(s3.saved_fraction, 0.0);
  EXPECT_GT(s3.backend_work.tuples_processed, 0u);
  ExpectRowsEqual(*rows, Naive(q3), 4);
}

// ------------------------------- NoCacheManager -----------------------------

TEST_F(CoreFixture, NoCacheAlwaysGoesToBackend) {
  NoCacheManager mgr(engine_.get());
  const StarJoinQuery q = MisalignedQuery();
  for (int i = 0; i < 2; ++i) {
    QueryStats s;
    auto rows = mgr.Execute(q, &s);
    ASSERT_TRUE(rows.ok());
    ExpectRowsEqual(*rows, Naive(q), 4);
    EXPECT_FALSE(s.full_cache_hit);
    EXPECT_DOUBLE_EQ(s.saved_fraction, 0.0);
    EXPECT_GT(s.backend_work.tuples_processed, 0u);
  }
}

TEST_F(CoreFixture, EstimateColdCostMatchesChunkCount) {
  const StarJoinQuery q = MisalignedQuery();
  uint64_t needed = 0;
  const double cost = EstimateColdCost(*scheme_, q, &needed);
  EXPECT_GT(needed, 0u);
  EXPECT_DOUBLE_EQ(cost,
                   needed * scheme_->ChunkBenefit(q.group_by));
}

// Managers must agree with each other on every query shape.
class ManagerAgreementTest
    : public CoreFixture,
      public ::testing::WithParamInterface<int> {};

TEST_P(ManagerAgreementTest, AllManagersReturnIdenticalRows) {
  const int variant = GetParam();
  StarJoinQuery q;
  switch (variant) {
    case 0:
      q = MisalignedQuery();
      break;
    case 1:  // highly aggregated
      q.group_by = GroupBySpec{{1, 0, 0, 0}, 4};
      q.selection[0] = OrdinalRange{3, 18};
      q.selection[1] = OrdinalRange{0, 0};
      q.selection[2] = OrdinalRange{0, 0};
      q.selection[3] = OrdinalRange{0, 0};
      break;
    case 2:  // base level, narrow
      q.group_by = GroupBySpec{{3, 2, 3, 2}, 4};
      q.selection[0] = OrdinalRange{10, 25};
      q.selection[1] = OrdinalRange{5, 12};
      q.selection[2] = OrdinalRange{30, 44};
      q.selection[3] = OrdinalRange{17, 29};
      break;
    case 3:  // full cube at mid level
      q.group_by = GroupBySpec{{2, 1, 2, 1}, 4};
      q.selection[0] = OrdinalRange{0, 49};
      q.selection[1] = OrdinalRange{0, 24};
      q.selection[2] = OrdinalRange{0, 24};
      q.selection[3] = OrdinalRange{0, 9};
      break;
    case 4:  // with a non-group-by predicate
      q = MisalignedQuery();
      q.non_group_by.push_back(NonGroupByPredicate{3, 2, OrdinalRange{0, 24}});
      break;
  }
  ChunkCacheManager chunk_mgr(engine_.get(), ChunkManagerOptions{});
  QueryCacheManager query_mgr(engine_.get(), QueryManagerOptions{});
  NoCacheManager none(engine_.get());
  QueryStats s;
  auto a = chunk_mgr.Execute(q, &s);
  auto b = query_mgr.Execute(q, &s);
  auto c = none.Execute(q, &s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  const auto naive = Naive(q);
  ExpectRowsEqual(*a, naive, 4);
  ExpectRowsEqual(*b, naive, 4);
  ExpectRowsEqual(*c, naive, 4);
}

INSTANTIATE_TEST_SUITE_P(QueryShapes, ManagerAgreementTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace chunkcache::core
