#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "backend/materialization_advisor.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::backend {
namespace {

using chunks::ChunkingOptions;
using chunks::ChunkingScheme;
using chunks::GroupBySpec;

class AdvisorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    auto scheme = ChunkingScheme::Build(schema_.get(), ChunkingOptions{},
                                        500000);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<ChunkingScheme>(std::move(scheme).value());
  }

  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<ChunkingScheme> scheme_;
};

TEST_F(AdvisorFixture, RowEstimatesAreSaneAndMonotone) {
  const uint64_t n = 500000;
  // Tiny group-by: essentially every cell is hit.
  GroupBySpec tiny{{1, 0, 0, 0}, 4};  // 25 cells
  EXPECT_EQ(EstimateGroupByRows(*scheme_, tiny, n), 25u);
  // Base group-by: 12.5M cells, 500k tuples -> close to 500k rows, and
  // never more than either bound.
  const GroupBySpec base = scheme_->BaseSpec();
  const uint64_t base_rows = EstimateGroupByRows(*scheme_, base, n);
  EXPECT_LE(base_rows, n);
  EXPECT_GT(base_rows, n * 9 / 10);
  // Coarsening any dimension can only reduce the estimate.
  GroupBySpec coarser = base;
  coarser.levels[0] = 1;
  EXPECT_LE(EstimateGroupByRows(*scheme_, coarser, n), base_rows);
  // Degenerate: one tuple, huge grid -> about one row.
  EXPECT_EQ(EstimateGroupByRows(*scheme_, base, 1), 1u);
}

TEST_F(AdvisorFixture, GreedyPicksHaveDecreasingBenefit) {
  AdvisorOptions opts;
  opts.budget_views = 8;
  auto picks = SelectViewsToMaterialize(*scheme_, 500000, opts);
  ASSERT_GT(picks.size(), 0u);
  ASSERT_LE(picks.size(), 8u);
  for (size_t i = 1; i < picks.size(); ++i) {
    EXPECT_LE(picks[i].benefit, picks[i - 1].benefit) << "pick " << i;
  }
  // No duplicates, never the base.
  std::set<uint32_t> ids;
  for (const auto& p : picks) {
    EXPECT_FALSE(p.spec == scheme_->BaseSpec());
    EXPECT_TRUE(ids.insert(scheme_->GroupById(p.spec)).second);
    EXPECT_TRUE(p.spec.CoarserOrEqual(scheme_->BaseSpec()));
  }
}

TEST_F(AdvisorFixture, RespectsRowFractionCap) {
  AdvisorOptions opts;
  opts.budget_views = 8;
  opts.max_rows_fraction = 0.05;
  auto picks = SelectViewsToMaterialize(*scheme_, 500000, opts);
  const uint64_t base_rows =
      EstimateGroupByRows(*scheme_, scheme_->BaseSpec(), 500000);
  for (const auto& p : picks) {
    EXPECT_LE(p.estimated_rows, base_rows / 20 + 1);
  }
}

TEST_F(AdvisorFixture, ZeroBudgetPicksNothing) {
  AdvisorOptions opts;
  opts.budget_views = 0;
  EXPECT_TRUE(SelectViewsToMaterialize(*scheme_, 500000, opts).empty());
}

TEST_F(AdvisorFixture, FirstPickCoversTheLatticeBroadly) {
  // The first greedy pick must be answerable-from for many group-bys and
  // much smaller than base — for this schema that means a mid-level view,
  // not a leaf-adjacent one.
  AdvisorOptions opts;
  opts.budget_views = 1;
  auto picks = SelectViewsToMaterialize(*scheme_, 500000, opts);
  ASSERT_EQ(picks.size(), 1u);
  uint32_t covered = 0;
  for (uint32_t id = 0; id < scheme_->NumGroupByIds(); ++id) {
    covered += scheme_->SpecOfId(id).CoarserOrEqual(picks[0].spec);
  }
  EXPECT_GT(covered, 16u);
  EXPECT_LT(picks[0].estimated_rows, 500000u / 2);
}

TEST_F(AdvisorFixture, AdvisedViewsMaterializeAndServeQueries) {
  // End-to-end: materialize the advisor's picks and check that chunk
  // computation prefers them (fewer tuples processed than from base).
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  schema::FactGenOptions gen;
  gen.num_tuples = 30000;
  auto scheme_small =
      ChunkingScheme::Build(schema_.get(), ChunkingOptions{}, 30000);
  ASSERT_TRUE(scheme_small.ok());
  auto file = ChunkedFile::BulkLoad(&pool, &*scheme_small,
                                    schema::GenerateFactTuples(*schema_, gen));
  ASSERT_TRUE(file.ok());
  BackendEngine engine(&pool, &*file, &*scheme_small);

  AdvisorOptions opts;
  opts.budget_views = 2;
  auto picks = SelectViewsToMaterialize(*scheme_small, 30000, opts);
  ASSERT_GT(picks.size(), 0u);
  for (const auto& p : picks) {
    ASSERT_TRUE(engine.MaterializeAggregate(p.spec).ok());
  }
  // A coarse group-by answerable from the first pick.
  GroupBySpec coarse{{1, 0, 0, 0}, 4};
  ASSERT_TRUE(coarse.CoarserOrEqual(picks[0].spec));
  const auto& grid = scheme_small->GridFor(coarse);
  std::vector<uint64_t> nums(grid.num_chunks());
  for (uint64_t i = 0; i < nums.size(); ++i) nums[i] = i;
  WorkCounters with_views, from_base;
  ASSERT_TRUE(engine.ComputeChunks(coarse, nums, {}, &with_views).ok());
  BackendEngine plain(&pool, &*file, &*scheme_small);
  ASSERT_TRUE(plain.ComputeChunks(coarse, nums, {}, &from_base).ok());
  EXPECT_LT(with_views.tuples_processed, from_base.tuples_processed);
}

}  // namespace
}  // namespace chunkcache::backend
