#include <gtest/gtest.h>

#include <map>
#include <set>
#include <memory>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "backend/multi_range_query.h"
#include "core/chunk_cache_manager.h"
#include "core/multi_range.h"
#include "core/semantic_cache_manager.h"
#include "core/query_cache_manager.h"
#include "schema/synthetic.h"
#include "sql/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::backend {
namespace {

using chunks::GroupBySpec;
using schema::OrdinalRange;
using storage::AggTuple;
using storage::Tuple;

// ------------------------------ Run algebra ---------------------------------

TEST(RunAlgebraTest, NormalizeSortsMergesAdjacentAndOverlapping) {
  auto runs = NormalizeRuns({{8, 9}, {1, 3}, {4, 5}, {2, 6}, {11, 12}});
  // {1,3}+{2,6}+{4,5} merge; {8,9} is adjacent to nothing below it but
  // {11,12} stays separate.
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (OrdinalRange{1, 6}));
  EXPECT_EQ(runs[1], (OrdinalRange{8, 9}));
  EXPECT_EQ(runs[2], (OrdinalRange{11, 12}));
  // Adjacent single points merge into one run.
  auto points = NormalizeRuns({{3, 3}, {1, 1}, {2, 2}});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], (OrdinalRange{1, 3}));
  EXPECT_TRUE(NormalizeRuns({}).empty());
}

TEST(RunAlgebraTest, IntersectRuns) {
  const std::vector<OrdinalRange> a = {{0, 5}, {10, 20}};
  const std::vector<OrdinalRange> b = {{3, 12}, {18, 30}};
  auto out = IntersectRuns(a, b);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (OrdinalRange{3, 5}));
  EXPECT_EQ(out[1], (OrdinalRange{10, 12}));
  EXPECT_EQ(out[2], (OrdinalRange{18, 20}));
  EXPECT_TRUE(IntersectRuns(a, {{6, 9}}).empty());
  EXPECT_TRUE(IntersectRuns({}, a).empty());
}

// ------------------------------ Decomposition -------------------------------

MultiRangeQuery TwoDimQuery() {
  MultiRangeQuery q;
  q.group_by = GroupBySpec{{1, 1, 0, 0}, 4};
  q.runs[0] = {{0, 2}, {5, 6}};
  q.runs[1] = {{1, 1}, {4, 8}, {10, 10}};
  q.runs[2] = {{0, 0}};
  q.runs[3] = {{0, 0}};
  return q;
}

TEST(DecomposeTest, CartesianProductOfRuns) {
  const MultiRangeQuery q = TwoDimQuery();
  EXPECT_EQ(q.NumBoxes(), 6u);
  EXPECT_FALSE(q.IsSingleBox());
  auto boxes = DecomposeToBoxQueries(q);
  ASSERT_TRUE(boxes.ok());
  ASSERT_EQ(boxes->size(), 6u);
  // Every combination appears exactly once.
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const auto& b : *boxes) {
    EXPECT_TRUE(b.group_by == q.group_by);
    seen.insert({b.selection[0].begin, b.selection[1].begin});
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(DecomposeTest, SingleBoxRoundTrip) {
  MultiRangeQuery q;
  q.group_by = GroupBySpec{{2, 0, 1, 0}, 4};
  q.runs[0] = {{3, 9}};
  q.runs[1] = {{0, 0}};
  q.runs[2] = {{1, 4}};
  q.runs[3] = {{0, 0}};
  ASSERT_TRUE(q.IsSingleBox());
  const backend::StarJoinQuery s = q.AsSingleBox();
  EXPECT_EQ(s.selection[0], (OrdinalRange{3, 9}));
  EXPECT_EQ(s.selection[2], (OrdinalRange{1, 4}));
}

TEST(DecomposeTest, RejectsMalformedAndOversized) {
  MultiRangeQuery q = TwoDimQuery();
  q.runs[0] = {{0, 5}, {3, 8}};  // overlapping
  EXPECT_FALSE(DecomposeToBoxQueries(q).ok());
  q = TwoDimQuery();
  q.runs[0].clear();
  EXPECT_FALSE(DecomposeToBoxQueries(q).ok());
  q = TwoDimQuery();
  EXPECT_EQ(DecomposeToBoxQueries(q, /*max_boxes=*/4).status().code(),
            StatusCode::kResourceExhausted);
}

// ------------------------- End-to-end with SQL + tier -----------------------

class MultiRangeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, 20000);
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<chunks::ChunkingScheme>(
        std::move(scheme).value());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    schema::FactGenOptions gen;
    gen.num_tuples = 20000;
    gen.seed = 91;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);
    auto file = ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<BackendEngine>(pool_.get(), file_.get(),
                                              scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<ChunkedFile> file_;
  std::unique_ptr<BackendEngine> engine_;
};

TEST_F(MultiRangeFixture, SqlInListContiguousStaysSingleBox) {
  sql::SqlParser parser(schema_.get());
  // D2.L1 members 1,2,3 are contiguous ordinals -> one run.
  auto q = parser.Parse(
      "SELECT D2.L1, SUM(dollar_sales) FROM Sales, D2 "
      "WHERE D2.L1 IN ('D2.1.1','D2.1.3','D2.1.2') GROUP BY D2.L1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->selection[2], (OrdinalRange{1, 3}));
}

TEST_F(MultiRangeFixture, SqlInListWithGapNeedsParseMulti) {
  sql::SqlParser parser(schema_.get());
  const char* text =
      "SELECT D2.L1, SUM(dollar_sales) FROM Sales, D2 "
      "WHERE D2.L1 IN ('D2.1.0','D2.1.2','D2.1.4') GROUP BY D2.L1";
  auto single = parser.Parse(text);
  EXPECT_EQ(single.status().code(), StatusCode::kUnsupported);
  auto multi = parser.ParseMulti(text);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi->runs[2].size(), 3u);
  EXPECT_EQ(multi->NumBoxes(), 3u);
}

TEST_F(MultiRangeFixture, ExecuteMultiRangeMatchesNaive) {
  sql::SqlParser parser(schema_.get());
  auto multi = parser.ParseMulti(
      "SELECT D0.L2, D2.L1, SUM(dollar_sales) FROM Sales, D0, D2 "
      "WHERE D2.L1 IN ('D2.1.0','D2.1.2','D2.1.4') "
      "AND D0.L2 BETWEEN 'D0.2.5' AND 'D0.2.30' "
      "GROUP BY D0.L2, D2.L1");
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();

  core::ChunkCacheManager tier(engine_.get(), core::ChunkManagerOptions{});
  core::QueryStats stats;
  auto rows = core::ExecuteMultiRange(&tier, *multi, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  // Naive evaluation over the in-memory tuples.
  std::map<std::pair<uint32_t, uint32_t>, AggTuple> cells;
  const auto& h0 = schema_->dimension(0).hierarchy;
  const auto& h2 = schema_->dimension(2).hierarchy;
  for (const Tuple& t : tuples_) {
    const uint32_t c0 = h0.AncestorAt(3, t.keys[0], 2);
    const uint32_t c2 = h2.AncestorAt(3, t.keys[2], 1);
    if (c0 < 5 || c0 > 30) continue;
    if (c2 != 0 && c2 != 2 && c2 != 4) continue;
    AggTuple& cell = cells[{c0, c2}];
    cell.sum += t.measure;
    cell.count += 1;
  }
  ASSERT_EQ(rows->size(), cells.size());
  for (const auto& r : *rows) {
    const auto it = cells.find({r.coords[0], r.coords[2]});
    ASSERT_NE(it, cells.end());
    EXPECT_NEAR(r.sum, it->second.sum, 1e-6);
    EXPECT_EQ(r.count, it->second.count);
  }
  // Stats composed across boxes.
  EXPECT_GT(stats.chunks_needed, 0u);
  EXPECT_EQ(stats.chunks_from_backend, stats.chunks_needed);

  // Second run: everything from cache.
  core::QueryStats s2;
  auto again = core::ExecuteMultiRange(&tier, *multi, &s2);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(s2.full_cache_hit);
  EXPECT_DOUBLE_EQ(s2.saved_fraction, 1.0);
  EXPECT_EQ(again->size(), rows->size());
}

TEST_F(MultiRangeFixture, ExecuteMultiRangeHonorsBoxCap) {
  sql::SqlParser parser(schema_.get());
  auto multi = parser.ParseMulti(
      "SELECT D0.L3, D2.L2, SUM(dollar_sales) FROM Sales, D0, D2 "
      "WHERE D0.L3 IN ('D0.3.0','D0.3.2','D0.3.4','D0.3.6') "
      "AND D2.L2 IN ('D2.2.0','D2.2.2','D2.2.4') "
      "GROUP BY D0.L3, D2.L2");
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  EXPECT_EQ(multi->NumBoxes(), 12u);
  core::ChunkCacheManager tier(engine_.get(), core::ChunkManagerOptions{});
  core::QueryStats stats;
  auto capped = core::ExecuteMultiRange(&tier, *multi, &stats, /*max_boxes=*/4);
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
  auto ok = core::ExecuteMultiRange(&tier, *multi, &stats);
  ASSERT_TRUE(ok.ok());
}

TEST_F(MultiRangeFixture, SemanticTierAlsoAnswersMultiRange) {
  // ExecuteMultiRange works with any middle tier.
  sql::SqlParser parser(schema_.get());
  auto multi = parser.ParseMulti(
      "SELECT D2.L1, SUM(dollar_sales) FROM Sales, D2 "
      "WHERE D2.L1 IN ('D2.1.0','D2.1.2') GROUP BY D2.L1");
  ASSERT_TRUE(multi.ok());
  core::SemanticCacheManager sem(engine_.get(),
                                 core::SemanticManagerOptions{});
  core::NoCacheManager none(engine_.get());
  core::QueryStats s1, s2;
  auto a = core::ExecuteMultiRange(&sem, *multi, &s1);
  auto b = core::ExecuteMultiRange(&none, *multi, &s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].coords[2], (*b)[i].coords[2]);
    EXPECT_NEAR((*a)[i].sum, (*b)[i].sum, 1e-6);
  }
  // Repeat through the semantic tier: full hit.
  core::QueryStats s3;
  ASSERT_TRUE(core::ExecuteMultiRange(&sem, *multi, &s3).ok());
  EXPECT_TRUE(s3.full_cache_hit);
}

TEST_F(MultiRangeFixture, InOnNonGroupByAttributeRejectedWhenDisjoint) {
  sql::SqlParser parser(schema_.get());
  auto q = parser.ParseMulti(
      "SELECT D0.L2, SUM(dollar_sales) FROM Sales, D0, D2 "
      "WHERE D2.L1 IN ('D2.1.0','D2.1.2') GROUP BY D0.L2");
  EXPECT_EQ(q.status().code(), StatusCode::kUnsupported);
  // A contiguous IN on a non-group-by attribute is fine.
  auto ok = parser.ParseMulti(
      "SELECT D0.L2, SUM(dollar_sales) FROM Sales, D0, D2 "
      "WHERE D2.L1 IN ('D2.1.0','D2.1.1') GROUP BY D0.L2");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->non_group_by.size(), 1u);
  EXPECT_EQ(ok->non_group_by[0].range, (OrdinalRange{0, 1}));
}

}  // namespace
}  // namespace chunkcache::backend
