// Compression subsystem tests that cut across layers: the FilterToSelection
// capacity fix, AggColumns::Deserialize hardening against corrupt input,
// the compressed FactFile/AggFile page formats (round trip and reopen),
// and the end-to-end ablation — enable_compression on == off must be
// bit-identical while the compressed tier holds more chunks per byte.

#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "backend/agg_file.h"
#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "gtest/gtest.h"
#include "schema/synthetic.h"
#include "storage/agg_columns.h"
#include "storage/buffer_pool.h"
#include "storage/codec.h"
#include "storage/disk_manager.h"
#include "storage/fact_file.h"
#include "workload/query_generator.h"

namespace chunkcache {
namespace {

using backend::ResultRow;
using backend::StarJoinQuery;
using core::ChunkCacheManager;
using core::ChunkManagerOptions;
using core::QueryStats;
using schema::OrdinalRange;
using storage::AggColumns;
using storage::AggTuple;
using storage::Tuple;

AggColumns MakeAgg(uint32_t num_dims, size_t rows, uint32_t seed = 11) {
  std::mt19937 rng(seed);
  AggColumns cols(num_dims);
  cols.Reserve(rows);
  std::array<uint32_t, storage::kMaxDims> c{};
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t d = 0; d < num_dims; ++d) c[d] = rng() % 32;
    const double sum = static_cast<double>(rng() % 100000) / 4.0;
    cols.PushCell(c.data(), sum, 1 + rng() % 8, sum - 1, sum + 1);
  }
  return cols;
}

// ------------------------- FilterToSelection charge -------------------------

TEST(FilterToSelectionCharge, SharplyFilteredColumnsShrink) {
  // A big chunk filtered down to a sliver used to keep its full capacity —
  // the cache then charged ~N slots for ~N/100 rows. The filter must
  // release the dead capacity so ByteSize reflects what is kept.
  AggColumns cols = MakeAgg(/*num_dims=*/4, /*rows=*/50000);
  const uint64_t before = cols.ByteSize();
  std::array<OrdinalRange, storage::kMaxDims> sel{};
  for (auto& r : sel) r = OrdinalRange{0, 7};  // keeps ~ (8/32)^4 of rows
  cols.FilterToSelection(sel);
  ASSERT_GT(cols.size(), 0u) << "selection kept nothing; widen the range";
  ASSERT_LT(cols.size(), 5000u);
  const uint64_t after = cols.ByteSize();
  EXPECT_LT(after, before / 4)
      << "charged bytes did not drop with the row count";
}

TEST(FilterToSelectionCharge, MildFilterSkipsRealloc) {
  // A filter that keeps nearly everything must not pay a reallocation:
  // capacity (and thus the charge) may stay where it was.
  AggColumns cols = MakeAgg(/*num_dims=*/2, /*rows=*/10000);
  std::array<OrdinalRange, storage::kMaxDims> sel{};
  for (auto& r : sel) r = OrdinalRange{0, 31};  // keeps everything
  const uint64_t before = cols.ByteSize();
  cols.FilterToSelection(sel);
  EXPECT_EQ(cols.size(), 10000u);
  EXPECT_EQ(cols.ByteSize(), before);
}

// ------------------------- Deserialize hardening ----------------------------

TEST(DeserializeHardening, HugeRowCountRejectedBeforeAllocation) {
  // A corrupt header claiming ~2^61 rows must be rejected by comparing the
  // claim against the bytes actually present — not by attempting a
  // multi-exabyte resize.
  AggColumns cols = MakeAgg(3, 64);
  std::vector<uint8_t> buf;
  cols.SerializeTo(&buf);
  uint64_t huge = uint64_t(1) << 61;
  std::memcpy(buf.data() + 8, &huge, 8);  // header[1] = row count
  auto res = AggColumns::Deserialize(buf.data(), buf.size());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST(DeserializeHardening, TruncatedPrefixesReturnStatus) {
  AggColumns cols = MakeAgg(5, 200);
  std::vector<uint8_t> buf;
  cols.SerializeTo(&buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    auto res = AggColumns::Deserialize(buf.data(), len);
    EXPECT_FALSE(res.ok()) << "prefix of " << len << " bytes decoded";
  }
  auto full = AggColumns::Deserialize(buf.data(), buf.size());
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(*full == cols);
}

TEST(DeserializeHardening, RandomBitFlipsNeverCrash) {
  // The flat format has no checksum, so some flips decode "successfully"
  // into different values — that is fine; what must never happen is a
  // crash, an over-read, or a giant allocation (ASAN in CI sees all
  // three).
  AggColumns cols = MakeAgg(4, 300);
  std::vector<uint8_t> buf;
  cols.SerializeTo(&buf);
  std::mt19937 rng(77);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> bad = buf;
    const int flips = 1 + rng() % 8;
    for (int f = 0; f < flips; ++f) {
      bad[rng() % bad.size()] ^= uint8_t(1u << (rng() % 8));
    }
    auto res = AggColumns::Deserialize(bad.data(), bad.size());
    if (res.ok()) {
      // Whatever decoded must at least be self-consistent.
      EXPECT_LE(res->num_dims(), storage::kMaxDims);
    }
  }
}

TEST(DeserializeHardening, RandomGarbageNeverCrashes) {
  std::mt19937 rng(88);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> junk(rng() % 256);
    for (auto& b : junk) b = uint8_t(rng());
    (void)AggColumns::Deserialize(junk.data(), junk.size());
  }
}

// ------------------------- Compressed file formats --------------------------

TEST(CompressedFactFile, RoundTripMatchesRawAndSurvivesReopen) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 512);
  storage::TupleDesc desc;
  desc.num_dims = 4;
  auto raw = storage::FactFile::Create(&pool, desc, /*compressed=*/false);
  auto comp = storage::FactFile::Create(&pool, desc, /*compressed=*/true);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(comp.ok());
  EXPECT_FALSE(raw->compressed());
  EXPECT_TRUE(comp->compressed());

  std::mt19937 rng(3);
  std::vector<Tuple> tuples(5000);
  for (auto& t : tuples) {
    for (uint32_t d = 0; d < desc.num_dims; ++d) t.keys[d] = rng() % 500;
    t.measure = static_cast<double>(rng() % 100000) / 8.0;
  }
  for (const Tuple& t : tuples) {
    ASSERT_TRUE(raw->Append(t).ok());
    ASSERT_TRUE(comp->Append(t).ok());
  }
  ASSERT_EQ(comp->num_tuples(), tuples.size());

  // Point reads and range scans agree with the raw twin, including the
  // unflushed tail.
  for (storage::RowId rid : {storage::RowId{0}, storage::RowId{1234},
                             storage::RowId{tuples.size() - 1}}) {
    Tuple a, b;
    ASSERT_TRUE(raw->Get(rid, &a).ok());
    ASSERT_TRUE(comp->Get(rid, &b).ok());
    EXPECT_EQ(a.keys, b.keys);
    EXPECT_EQ(a.measure, b.measure);
  }
  storage::TupleColumns ra, rb;
  ra.num_dims = rb.num_dims = desc.num_dims;
  ASSERT_TRUE(raw->ScanRangeColumns(100, 3000, &ra).ok());
  ASSERT_TRUE(comp->ScanRangeColumns(100, 3000, &rb).ok());
  for (uint32_t d = 0; d < desc.num_dims; ++d) EXPECT_EQ(ra.keys[d], rb.keys[d]);
  EXPECT_EQ(ra.measure, rb.measure);

  // Compression is the point: fewer data pages than the raw layout.
  EXPECT_LT(comp->num_data_pages(), raw->num_data_pages());

  // Reopen from disk: the block directory is rebuilt by walking headers.
  const uint32_t comp_id = comp->file_id();
  ASSERT_TRUE(comp->SyncHeader().ok());
  auto reopened = storage::FactFile::Open(&pool, comp_id);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->compressed());
  ASSERT_EQ(reopened->num_tuples(), tuples.size());
  size_t idx = 0;
  ASSERT_TRUE(reopened
                  ->Scan([&](storage::RowId rid, const Tuple& t) {
                    EXPECT_EQ(rid, idx);
                    EXPECT_EQ(t.keys, tuples[idx].keys);
                    EXPECT_EQ(t.measure, tuples[idx].measure);
                    ++idx;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(idx, tuples.size());
}

TEST(CompressedAggFile, RoundTripMatchesRawAndSurvivesReopen) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 512);
  const uint32_t num_dims = 3;
  auto raw = backend::AggFile::Create(&pool, num_dims, /*compressed=*/false);
  auto comp = backend::AggFile::Create(&pool, num_dims, /*compressed=*/true);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(comp.ok());

  AggColumns rows = MakeAgg(num_dims, 20000, /*seed=*/21);
  rows.SortRowMajor();
  ASSERT_TRUE(raw->AppendColumns(rows).ok());
  ASSERT_TRUE(comp->AppendColumns(rows).ok());
  ASSERT_EQ(comp->num_rows(), rows.size());

  for (uint64_t rid : {uint64_t{0}, uint64_t{777}, rows.size() - 1}) {
    AggTuple a, b;
    ASSERT_TRUE(raw->Get(rid, &a).ok());
    ASSERT_TRUE(comp->Get(rid, &b).ok());
    EXPECT_EQ(a.coords, b.coords);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.count, b.count);
  }
  AggColumns ca(num_dims), cb(num_dims);
  ASSERT_TRUE(raw->ScanRangeColumns(500, 10000, &ca).ok());
  ASSERT_TRUE(comp->ScanRangeColumns(500, 10000, &cb).ok());
  EXPECT_TRUE(ca == cb);
  EXPECT_LT(comp->num_data_pages(), raw->num_data_pages());

  const uint32_t comp_id = comp->file_id();
  ASSERT_TRUE(comp->SyncHeader().ok());
  auto reopened = backend::AggFile::Open(&pool, comp_id);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->num_rows(), rows.size());
  AggColumns cc(num_dims);
  ASSERT_TRUE(reopened->ScanRangeColumns(0, rows.size(), &cc).ok());
  EXPECT_TRUE(cc == rows);
}

// --------------------------- End-to-end ablation ----------------------------

bool RowsEqual(const std::vector<ResultRow>& a,
               const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].sum != b[i].sum ||
        a[i].count != b[i].count || a[i].min_v != b[i].min_v ||
        a[i].max_v != b[i].max_v) {
      return false;
    }
  }
  return true;
}

class CompressionTierFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 20000;

  void SetUp() override {
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ =
        std::make_unique<chunks::ChunkingScheme>(std::move(scheme).value());
    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 41;
    tuples_ = schema::GenerateFactTuples(*schema_, gen);
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 4096);
    auto file =
        backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(), tuples_);
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(pool_.get(),
                                                       file_.get(),
                                                       scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(CompressionTierFixture, OnEqualsOffBitIdentical) {
  workload::WorkloadOptions wopts;
  wopts.seed = 19;
  workload::QueryGenerator gen(schema_.get(), wopts);
  ChunkManagerOptions on_opts;
  on_opts.enable_compression = true;
  ChunkManagerOptions off_opts;
  off_opts.enable_compression = false;
  ChunkCacheManager on_mgr(engine_.get(), on_opts);
  ChunkCacheManager off_mgr(engine_.get(), off_opts);

  for (int i = 0; i < 40; ++i) {
    const StarJoinQuery q = gen.Next();
    QueryStats on_st, off_st;
    auto on_rows = on_mgr.Execute(q, &on_st);
    auto off_rows = off_mgr.Execute(q, &off_st);
    ASSERT_TRUE(on_rows.ok());
    ASSERT_TRUE(off_rows.ok());
    EXPECT_TRUE(RowsEqual(*on_rows, *off_rows)) << "query " << i;
    EXPECT_EQ(on_st.chunks_needed, off_st.chunks_needed);
    EXPECT_EQ(on_st.chunks_from_cache, off_st.chunks_from_cache);
    EXPECT_EQ(on_st.chunks_from_backend, off_st.chunks_from_backend);
  }
  const auto on_stats = on_mgr.StatsSnapshot();
  const auto off_stats = off_mgr.StatsSnapshot();
  EXPECT_GT(on_stats.compressed_chunks, 0u);
  EXPECT_GT(on_stats.codec_raw_bytes, on_stats.codec_encoded_bytes);
  EXPECT_EQ(off_stats.compressed_chunks, 0u);
  EXPECT_EQ(off_stats.decode_calls, 0u);
  // Same chunk population, charged at encoded bytes: the compressed tier
  // must sit well under the raw tier's footprint.
  ASSERT_EQ(on_mgr.chunk_cache().num_chunks(),
            off_mgr.chunk_cache().num_chunks());
  EXPECT_LT(on_mgr.chunk_cache().bytes_used(),
            off_mgr.chunk_cache().bytes_used());
}

TEST_F(CompressionTierFixture, DecodedFrontServesRepeatHits) {
  workload::WorkloadOptions wopts;
  wopts.seed = 29;
  workload::QueryGenerator gen(schema_.get(), wopts);
  ChunkManagerOptions opts;
  opts.enable_compression = true;
  ChunkCacheManager mgr(engine_.get(), opts);
  const StarJoinQuery q = gen.Next();
  QueryStats st;
  ASSERT_TRUE(mgr.Execute(q, &st).ok());
  const auto first = mgr.StatsSnapshot();
  // Re-running the same query hits compressed entries; the decoded front
  // (seeded at encode time) serves them without fresh decode work.
  ASSERT_TRUE(mgr.Execute(q, &st).ok());
  EXPECT_EQ(st.full_cache_hit, true);
  const auto second = mgr.StatsSnapshot();
  EXPECT_GT(second.decoded_lru_hits, first.decoded_lru_hits);
}

TEST_F(CompressionTierFixture, TinyDecodedFrontFallsBackToDecode) {
  workload::WorkloadOptions wopts;
  wopts.seed = 37;
  workload::QueryGenerator gen(schema_.get(), wopts);
  ChunkManagerOptions opts;
  opts.enable_compression = true;
  opts.decoded_cache_bytes = 0;  // no front: every compressed hit decodes
  ChunkCacheManager mgr(engine_.get(), opts);
  const StarJoinQuery q = gen.Next();
  QueryStats st;
  ASSERT_TRUE(mgr.Execute(q, &st).ok());
  ASSERT_TRUE(mgr.Execute(q, &st).ok());
  const auto stats = mgr.StatsSnapshot();
  if (stats.compressed_chunks > 0) {
    EXPECT_GT(stats.decode_calls, 0u);
    EXPECT_EQ(stats.decoded_lru_hits, 0u);
  }
}

TEST_F(CompressionTierFixture, CompressedEngineFilesAnswerIdentically) {
  // The whole backend over compressed base pages: same queries, same rows.
  auto cfile = backend::ChunkedFile::BulkLoad(pool_.get(), scheme_.get(),
                                              tuples_, /*compressed=*/true);
  ASSERT_TRUE(cfile.ok());
  backend::ChunkedFile compressed_file = std::move(cfile).value();
  backend::BackendEngine cengine(pool_.get(), &compressed_file, scheme_.get());
  ASSERT_TRUE(cengine.BuildBitmapIndexes().ok());

  workload::WorkloadOptions wopts;
  wopts.seed = 43;
  workload::QueryGenerator gen(schema_.get(), wopts);
  ChunkCacheManager raw_mgr(engine_.get(), ChunkManagerOptions{});
  ChunkCacheManager comp_mgr(&cengine, ChunkManagerOptions{});
  for (int i = 0; i < 12; ++i) {
    const StarJoinQuery q = gen.Next();
    QueryStats sa, sb;
    auto ra = raw_mgr.Execute(q, &sa);
    auto rb = comp_mgr.Execute(q, &sb);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_TRUE(RowsEqual(*ra, *rb)) << "query " << i;
  }
}

}  // namespace
}  // namespace chunkcache
