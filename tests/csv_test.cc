#include <gtest/gtest.h>

#include <sstream>

#include "schema/csv.h"

namespace chunkcache::schema {
namespace {

TEST(SplitCsvLineTest, PlainFields) {
  auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLineTest, TrimsWhitespaceAndHandlesEmpties) {
  auto f = SplitCsvLine("  a  , , c\r");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLineTest, QuotedFieldsWithCommasAndQuotes) {
  auto f = SplitCsvLine("\"a,b\",\"he said \"\"hi\"\"\",plain");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "he said \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST(LoadDimensionCsvTest, BuildsHierarchyFromPaths) {
  std::istringstream in(
      "state,city,store\n"
      "WI,Madison,store_0\n"
      "IL,Chicago,store_3\n"          // out of order on purpose
      "WI,Madison,store_1\n"
      "WI,Milwaukee,store_2\n"
      "IL,Chicago,store_4\n");
  auto dim = LoadDimensionCsv("Store", {"state", "city", "store"}, in);
  ASSERT_TRUE(dim.ok()) << dim.status().ToString();
  const auto& h = dim->hierarchy;
  EXPECT_EQ(h.depth(), 3u);
  EXPECT_EQ(h.LevelCardinality(1), 2u);  // IL, WI (sorted)
  EXPECT_EQ(h.LevelCardinality(2), 3u);
  EXPECT_EQ(h.LevelCardinality(3), 5u);
  // Sorted order: IL before WI.
  EXPECT_EQ(h.MemberName(1, 0), "IL");
  EXPECT_EQ(h.MemberName(1, 1), "WI");
  // Chicago's stores are contiguous and under IL.
  auto chicago = h.OrdinalOf(2, "Chicago");
  ASSERT_TRUE(chicago.ok());
  EXPECT_EQ(h.ParentOf(2, *chicago), 0u);
  EXPECT_EQ(h.ChildRange(2, *chicago).size(), 2u);
  // Madison ordinal resolves and rolls up to WI.
  auto store1 = h.OrdinalOf(3, "store_1");
  ASSERT_TRUE(store1.ok());
  EXPECT_EQ(h.AncestorAt(3, *store1, 1), 1u);
}

TEST(LoadDimensionCsvTest, Errors) {
  {
    std::istringstream in("state,city\nWI\n");  // wrong arity
    EXPECT_FALSE(LoadDimensionCsv("S", {"state", "city"}, in).ok());
  }
  {
    std::istringstream in("state\n");  // no data rows
    EXPECT_FALSE(LoadDimensionCsv("S", {"state"}, in).ok());
  }
  {
    std::istringstream in("");  // empty stream
    EXPECT_FALSE(LoadDimensionCsv("S", {"state"}, in).ok());
  }
  {
    // Duplicate full paths are deduplicated, not an error.
    std::istringstream in("state,store\nWI,s0\nWI,s0\nWI,s1\n");
    auto dim = LoadDimensionCsv("S", {"state", "store"}, in);
    ASSERT_TRUE(dim.ok());
    EXPECT_EQ(dim->hierarchy.LevelCardinality(2), 2u);
  }
  {
    // Same member name under two parents: must be rejected (names are
    // unique per level).
    std::istringstream in("state,store\nIL,s0\nWI,s0\n");
    EXPECT_FALSE(LoadDimensionCsv("S", {"state", "store"}, in).ok());
  }
}

TEST(LoadFactCsvTest, ResolvesMembersAndMeasure) {
  std::istringstream dim_in(
      "state,store\n"
      "WI,s0\nWI,s1\nIL,s2\n");
  auto store = LoadDimensionCsv("Store", {"state", "store"}, dim_in);
  ASSERT_TRUE(store.ok());
  std::istringstream prod_in("name\npencil\npen\n");
  auto product = LoadDimensionCsv("Product", {"name"}, prod_in);
  ASSERT_TRUE(product.ok());
  std::vector<Dimension> dims;
  dims.push_back(std::move(*store));
  dims.push_back(std::move(*product));
  StarSchema schema("Sales", std::move(dims), "amount");

  std::istringstream facts(
      "store,product,amount\n"
      "s0,pencil,1.25\n"
      "s2,pen,3.5\n"
      "s1,pen,0.75\n");
  auto tuples = LoadFactCsv(schema, facts);
  ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
  ASSERT_EQ(tuples->size(), 3u);
  const auto& h = schema.dimension(0).hierarchy;
  EXPECT_EQ((*tuples)[0].keys[0], *h.OrdinalOf(2, "s0"));
  EXPECT_DOUBLE_EQ((*tuples)[0].measure, 1.25);
  EXPECT_DOUBLE_EQ((*tuples)[1].measure, 3.5);
}

TEST(LoadFactCsvTest, Errors) {
  std::istringstream dim_in("name\na\nb\n");
  auto d = LoadDimensionCsv("D", {"name"}, dim_in);
  ASSERT_TRUE(d.ok());
  std::vector<Dimension> dims;
  dims.push_back(std::move(*d));
  StarSchema schema("F", std::move(dims), "m");
  {
    std::istringstream facts("d,m\nzzz,1.0\n");  // unknown member
    EXPECT_EQ(LoadFactCsv(schema, facts).status().code(),
              StatusCode::kNotFound);
  }
  {
    std::istringstream facts("d,m\na\n");  // wrong arity
    EXPECT_EQ(LoadFactCsv(schema, facts).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::istringstream facts("d,m\na,notanumber\n");
    EXPECT_EQ(LoadFactCsv(schema, facts).status().code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace chunkcache::schema
