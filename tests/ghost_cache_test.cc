// Ghost-cache shadow simulation: the online standings must be exactly
// reproducible from the recorded trace (oracle replay), must land on the
// metrics registry, and — when the active policy shadows itself on a
// serial single-shard cache — must agree with the real cache's counters.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/chunk_cache.h"
#include "cache/ghost_cache.h"
#include "cache/replacement.h"
#include "common/metrics.h"
#include "common/random.h"

namespace chunkcache::cache {
namespace {

// A deterministic reference stream with skewed reuse: keys from a small
// universe, sizes varying enough to exercise multi-victim evictions.
std::vector<GhostEvent> MakeStream(uint64_t seed, size_t n) {
  Random rng(seed);
  std::vector<GhostEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GhostEvent e;
    // Quadratic skew: low keys recur far more often.
    const uint64_t a = rng.Uniform(128);
    const uint64_t b = rng.Uniform(128);
    e.key_id = std::min(a, b);
    // Size is a pure function of the key, as a cached chunk's is.
    e.bytes = 200 + (e.key_id * 37) % 1800;
    e.benefit = 1.0 + static_cast<double>(e.key_id % 7);
    events.push_back(e);
  }
  return events;
}

TEST(GhostCacheSimTest, RejectsEntriesLargerThanBudget) {
  GhostCacheSim sim("lru", 1000);
  EXPECT_FALSE(sim.Access(1, 5000, 1.0));  // larger than the whole budget
  EXPECT_EQ(sim.size(), 0u);
  EXPECT_EQ(sim.bytes_used(), 0u);
  EXPECT_EQ(sim.misses(), 1u);
  // And it stays a miss on re-reference: never admitted.
  EXPECT_FALSE(sim.Access(1, 5000, 1.0));
  EXPECT_EQ(sim.misses(), 2u);
}

TEST(GhostCacheSimTest, EvictsUntilTheEntryFits) {
  GhostCacheSim sim("lru", 1000);
  EXPECT_FALSE(sim.Access(1, 400, 1.0));
  EXPECT_FALSE(sim.Access(2, 400, 1.0));
  EXPECT_EQ(sim.bytes_used(), 800u);
  // 600 doesn't fit beside 800: one eviction suffices.
  EXPECT_FALSE(sim.Access(3, 600, 1.0));
  EXPECT_EQ(sim.evictions(), 1u);
  EXPECT_LE(sim.bytes_used(), 1000u);
  // Key 1 (LRU victim) is gone; key 3 is resident.
  EXPECT_TRUE(sim.Access(3, 600, 1.0));
  EXPECT_FALSE(sim.Access(1, 400, 1.0));
}

// The tentpole's validation requirement: same trace => same counters, for
// every policy the factory knows.
TEST(GhostCacheSetTest, OracleReplayReproducesOnlineStandings) {
  const std::vector<GhostEvent> stream = MakeStream(7, 20000);
  const uint64_t capacity = 20000;
  GhostCacheSet set(KnownPolicyNames(), capacity, nullptr,
                    /*record_trace=*/true);
  for (const GhostEvent& e : stream) set.Access(e.key_id, e.bytes, e.benefit);

  ASSERT_FALSE(set.trace_truncated());
  const std::vector<GhostEvent> trace = set.Trace();
  ASSERT_EQ(trace.size(), stream.size());

  for (const GhostStanding& st : set.Standings()) {
    GhostCacheSim replay(st.policy, capacity);
    for (const GhostEvent& e : trace) {
      replay.Access(e.key_id, e.bytes, e.benefit);
    }
    EXPECT_EQ(replay.hits(), st.hits) << st.policy;
    EXPECT_EQ(replay.misses(), st.misses) << st.policy;
    EXPECT_EQ(replay.evictions(), st.evictions) << st.policy;
    EXPECT_EQ(replay.bytes_used(), st.bytes_used) << st.policy;
    EXPECT_EQ(st.hits + st.misses, stream.size()) << st.policy;
  }
}

TEST(GhostCacheSetTest, StandingsExportToTheRegistry) {
  MetricsRegistry registry;
  GhostCacheSet set({"lru", "arc"}, 10000, &registry);
  const std::vector<GhostEvent> stream = MakeStream(11, 5000);
  for (const GhostEvent& e : stream) set.Access(e.key_id, e.bytes, e.benefit);

  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  for (const GhostStanding& st : set.Standings()) {
    EXPECT_EQ(snap.counter("cache.ghost." + st.policy + ".hits"), st.hits);
    EXPECT_EQ(snap.counter("cache.ghost." + st.policy + ".misses"),
              st.misses);
    EXPECT_EQ(snap.counter("cache.ghost." + st.policy + ".evictions"),
              st.evictions);
  }
}

TEST(GhostCacheSetTest, TraceCapSetsTruncatedFlag) {
  GhostCacheSet set({"lru"}, 10000, nullptr, /*record_trace=*/true,
                    /*trace_cap=*/100);
  const std::vector<GhostEvent> stream = MakeStream(3, 500);
  for (const GhostEvent& e : stream) set.Access(e.key_id, e.bytes, e.benefit);
  EXPECT_TRUE(set.trace_truncated());
  EXPECT_EQ(set.Trace().size(), 100u);
  // Counters keep counting past the cap.
  uint64_t refs = 0;
  for (const GhostStanding& st : set.Standings()) refs += st.hits + st.misses;
  EXPECT_EQ(refs, 500u);
}

// Serial, single-shard: the active policy's own shadow sees exactly the
// reference stream the real cache serves, so its standings must agree
// with the real counters hit-for-hit.
TEST(GhostCacheIntegrationTest, ActivePolicyShadowMatchesRealCache) {
  const uint64_t entry_bytes = CachedChunk{}.ByteSize();
  const uint64_t capacity = entry_bytes * 8;
  ChunkCache cache(capacity, MakePolicy("lru"));
  cache.EnableGhostPolicies(KnownPolicyNames(), /*record_trace=*/true);

  Random rng(31);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t a = rng.Uniform(32);
    const uint64_t b = rng.Uniform(32);
    const uint64_t chunk = std::min(a, b);  // skewed reuse
    if (cache.Lookup(1, chunk, 0) == nullptr) {
      CachedChunk c;
      c.group_by_id = 1;
      c.chunk_num = chunk;
      c.benefit = 1.0;
      cache.Insert(std::move(c));
    }
  }

  const ChunkCacheStats real = cache.stats();
  ASSERT_NE(cache.ghosts(), nullptr);
  bool found = false;
  for (const GhostStanding& st : cache.ghosts()->Standings()) {
    EXPECT_EQ(st.hits + st.misses, real.lookups) << st.policy;
    if (st.policy == "lru") {
      found = true;
      EXPECT_EQ(st.hits, real.hits);
      EXPECT_EQ(st.misses, real.lookups - real.hits);
    }
  }
  EXPECT_TRUE(found);
}

// Thread-safety of the shadow set under a concurrent cache (runs under
// TSAN in CI): every lookup produces exactly one ghost reference — a hit
// feed or an insert feed — so per-policy references equal total lookups.
TEST(GhostCacheIntegrationTest, ConcurrentFeedsCountEveryReference) {
  const uint64_t entry_bytes = CachedChunk{}.ByteSize();
  ChunkCache cache(entry_bytes * 64, "lru", /*num_shards=*/4);
  cache.EnableGhostPolicies({"lru", "arc", "2q"});

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Random rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t chunk = rng.Uniform(256);
        if (cache.Lookup(2, chunk, 0) == nullptr) {
          CachedChunk c;
          c.group_by_id = 2;
          c.chunk_num = chunk;
          c.benefit = 1.0;
          cache.Insert(std::move(c));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const uint64_t lookups = cache.stats().lookups;
  EXPECT_EQ(lookups, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (const GhostStanding& st : cache.ghosts()->Standings()) {
    EXPECT_EQ(st.hits + st.misses, lookups) << st.policy;
  }
}

}  // namespace
}  // namespace chunkcache::cache
