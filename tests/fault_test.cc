// Failure-injection tests: a DiskManager decorator that starts failing
// after a programmable number of operations verifies that every layer
// (buffer pool, fact file, B+Tree, bitmap index, backend engine, middle
// tier) propagates Status instead of crashing or corrupting siblings, and
// that a recovered disk leaves readable state behind.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "backend/scan_scheduler.h"
#include "common/fault_injector.h"
#include "common/retry.h"
#include "core/chunk_cache_manager.h"
#include "index/bitmap_index.h"
#include "index/btree.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fact_file.h"

namespace chunkcache {
namespace {

using storage::BufferPool;
using storage::DiskManager;
using storage::InMemoryDiskManager;
using storage::Page;
using storage::PageId;
using storage::Tuple;
using storage::TupleDesc;

/// Decorator that fails reads/writes once `budget` operations have been
/// consumed. budget < 0 disables injection.
class FaultyDiskManager final : public DiskManager {
 public:
  explicit FaultyDiskManager(DiskManager* inner) : inner_(inner) {}

  void SetBudget(int64_t ops) { budget_ = ops; }

  uint32_t CreateFile() override { return inner_->CreateFile(); }

  Result<PageId> AllocatePage(uint32_t file_id) override {
    if (Exhausted()) return Status::IoError("injected allocation fault");
    return inner_->AllocatePage(file_id);
  }
  Status ReadPage(PageId id, Page* out) override {
    if (Exhausted()) return Status::IoError("injected read fault");
    CountRead();
    return inner_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const Page& page) override {
    if (Exhausted()) return Status::IoError("injected write fault");
    CountWrite();
    return inner_->WritePage(id, page);
  }
  uint32_t FilePageCount(uint32_t file_id) const override {
    return inner_->FilePageCount(file_id);
  }

 private:
  bool Exhausted() {
    if (budget_ < 0) return false;
    if (budget_ == 0) return true;
    --budget_;
    return false;
  }

  DiskManager* inner_;
  int64_t budget_ = -1;
};

TEST(FaultTest, FactFileAppendSurfacesIoError) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 4);  // tiny pool forces eviction I/O
  auto file = storage::FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  Tuple t;
  t.keys[0] = 1;
  disk.SetBudget(3);
  Status last = Status::OK();
  for (int i = 0; i < 100000 && last.ok(); ++i) {
    last = file->Append(t).status();
  }
  EXPECT_EQ(last.code(), StatusCode::kIoError);
  // Disabling injection makes the file usable again.
  disk.SetBudget(-1);
  EXPECT_TRUE(file->Append(t).ok());
}

TEST(FaultTest, BTreeOperationsSurfaceIoErrorsAtEveryStage) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 8);
  auto tree = index::BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree->Insert(k, index::BTreePayload{k, 0}).ok());
  }
  // Fail during lookups at several budgets: must return IoError, never
  // crash or return wrong data.
  for (int64_t budget : {0, 1, 2, 3, 5}) {
    disk.SetBudget(budget);
    auto got = tree->Get(1234);
    if (got.ok()) {
      EXPECT_EQ(got->v1, 1234u);
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kIoError);
    }
  }
  disk.SetBudget(-1);
  auto got = tree->Get(1234);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->v1, 1234u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(FaultTest, BTreeInsertFaultsDoNotCorruptExistingData) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 8);
  auto tree = index::BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree->Insert(k * 2, index::BTreePayload{k, 0}).ok());
  }
  // Inject faults while inserting new keys; failures are allowed, but
  // previously committed keys must stay readable afterwards.
  disk.SetBudget(20);
  for (uint64_t k = 0; k < 500; ++k) {
    (void)tree->Insert(100000 + k, index::BTreePayload{k, 0});
  }
  disk.SetBudget(-1);
  for (uint64_t k = 0; k < 1000; k += 97) {
    auto got = tree->Get(k * 2);
    ASSERT_TRUE(got.ok()) << "key " << k * 2;
    EXPECT_EQ(got->v1, k);
  }
}

TEST(FaultTest, EngineAndMiddleTierPropagateBackendFaults) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 512);
  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme = chunks::ChunkingScheme::Build(schema.get(), copts, 10000);
  ASSERT_TRUE(scheme.ok());
  schema::FactGenOptions gen;
  gen.num_tuples = 10000;
  auto file = backend::ChunkedFile::BulkLoad(
      &pool, &*scheme, schema::GenerateFactTuples(*schema, gen));
  ASSERT_TRUE(file.ok());
  backend::BackendEngine engine(&pool, &*file, &*scheme);
  ASSERT_TRUE(engine.BuildBitmapIndexes().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());

  core::ChunkCacheManager tier(&engine, core::ChunkManagerOptions{});
  backend::StarJoinQuery q;
  q.group_by = chunks::GroupBySpec{{2, 1, 2, 1}, 4};
  q.selection[0] = {0, 49};
  q.selection[1] = {0, 24};
  q.selection[2] = {0, 24};
  q.selection[3] = {0, 9};

  // A cold query with a zero I/O budget must fail cleanly...
  disk.SetBudget(0);
  core::QueryStats stats;
  auto rows = tier.Execute(q, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);

  // ...and succeed once the disk recovers, with correct contents.
  disk.SetBudget(-1);
  auto ok_rows = tier.Execute(q, &stats);
  ASSERT_TRUE(ok_rows.ok());
  EXPECT_GT(ok_rows->size(), 0u);

  // A later injected fault mid-stream must not poison subsequent queries.
  disk.SetBudget(5);
  backend::StarJoinQuery q2 = q;
  q2.selection[0] = {10, 39};
  (void)tier.Execute(q2, &stats);
  disk.SetBudget(-1);
  auto again = tier.Execute(q2, &stats);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->size(), 0u);
}

TEST(FaultTest, BitmapIndexReadFaultsPropagate) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 64);
  auto file = storage::FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  for (uint32_t i = 0; i < 5000; ++i) {
    Tuple t;
    t.keys[0] = i % 10;
    ASSERT_TRUE(file->Append(t).ok());
  }
  auto idx = index::BitmapIndex::Build(&pool, &*file, 0, 10);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  disk.SetBudget(0);
  index::Bitmap b;
  EXPECT_EQ(idx->ReadBitmap(3, &b).code(), StatusCode::kIoError);
  disk.SetBudget(-1);
  ASSERT_TRUE(idx->ReadBitmap(3, &b).ok());
  EXPECT_EQ(b.CountSet(), 500u);
}

// ------------------- compiled-in fault-injection framework ------------------

bool RowsEqual(const std::vector<backend::ResultRow>& a,
               const std::vector<backend::ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].sum != b[i].sum ||
        a[i].count != b[i].count || a[i].min_v != b[i].min_v ||
        a[i].max_v != b[i].max_v) {
      return false;
    }
  }
  return true;
}

/// Like RowsEqual, but sums compare up to floating-point rounding: a chunk
/// assembled from cached finer chunks adds the same measures in a different
/// association order than a direct base scan, so its sum may differ in the
/// last ulps (the repo's in-cache aggregation tests use the same latitude).
/// Coordinates, counts, and min/max stay exact.
bool RowsNear(const std::vector<backend::ResultRow>& a,
              const std::vector<backend::ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].coords != b[i].coords || a[i].count != b[i].count ||
        a[i].min_v != b[i].min_v || a[i].max_v != b[i].max_v) {
      return false;
    }
    const double tol = 1e-9 * std::max(1.0, std::abs(a[i].sum));
    if (std::abs(a[i].sum - b[i].sum) > tol) return false;
  }
  return true;
}

/// The injector is process-wide; restore it to pristine on entry and exit
/// of every test so a failing test cannot leak armed sites into successors.
struct InjectorReset {
  InjectorReset() { Reset(); }
  ~InjectorReset() { Reset(); }
  static void Reset() {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }
};

TEST(FaultInjectorTest, DisarmedInjectorNeverFires) {
  InjectorReset guard;
  FaultInjector& fi = FaultInjector::Global();
  EXPECT_FALSE(fi.armed());
  EXPECT_TRUE(fi.Check(FaultSite::kDiskRead).ok());
  EXPECT_FALSE(fi.ShouldInject(FaultSite::kFactScan));
  EXPECT_EQ(fi.faults_injected(), 0u);
}

TEST(FaultInjectorTest, BudgetAndSkipAreExact) {
  InjectorReset guard;
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FaultSite::kDiskRead, 1.0, StatusCode::kIoError, /*max_faults=*/3,
         /*skip_ops=*/2);
  EXPECT_TRUE(fi.armed());
  int faults = 0;
  for (int i = 0; i < 10; ++i) {
    if (!fi.Check(FaultSite::kDiskRead).ok()) ++faults;
  }
  // Ops 0-1 skipped, ops 2-4 fault, then the budget is spent.
  EXPECT_EQ(faults, 3);
  EXPECT_EQ(fi.faults_injected(FaultSite::kDiskRead), 3u);
  EXPECT_EQ(fi.checks(), 10u);

  // The surfaced status carries the configured code and names the site.
  fi.Arm(FaultSite::kAggScan, 1.0, StatusCode::kResourceExhausted);
  Status s = fi.Check(FaultSite::kAggScan);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.ToString().find("agg-scan"), std::string::npos);
}

TEST(FaultInjectorTest, SeededDrawsReproduceOnOneThread) {
  InjectorReset guard;
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FaultSite::kFactScan, 0.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(fi.Check(FaultSite::kFactScan).ok());
  }
  fi.Arm(FaultSite::kFactScan, 0.5);
  fi.Seed(1234);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(!fi.Check(FaultSite::kFactScan).ok());
  }
  fi.Seed(1234);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(!fi.Check(FaultSite::kFactScan).ok(), first[i]) << i;
  }
}

TEST(FaultInjectorTest, ChecksumTurnsBitFlipsIntoCorruption) {
  InjectorReset guard;
  InMemoryDiskManager disk;
  const uint32_t file_id = disk.CreateFile();
  auto id = disk.AllocatePage(file_id);
  ASSERT_TRUE(id.ok());
  Page p;
  for (size_t i = 0; i < p.data.size(); ++i) {
    p.data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE(disk.WritePage(*id, p).ok());

  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FaultSite::kDiskCorrupt, 1.0, StatusCode::kIoError, /*max_faults=*/1);
  Page out;
  Status s = disk.ReadPage(*id, &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(disk.stats().checksum_failures, 1u);

  // The flip hit the served copy, not the store: a retry reads clean.
  Page again;
  ASSERT_TRUE(disk.ReadPage(*id, &again).ok());
  EXPECT_EQ(std::memcmp(again.data.data(), p.data.data(), p.data.size()), 0);
}

/// Backend + middle tier over a healthy in-memory disk; faults come from
/// the compiled-in injection sites rather than a decorator, so the whole
/// production stack (checksums, retries, degraded mode) is exercised.
class RobustTierFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 10000;

  void SetUp() override {
    InjectorReset::Reset();
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ =
        std::make_unique<chunks::ChunkingScheme>(std::move(scheme).value());
    pool_ = std::make_unique<BufferPool>(&disk_, 512);
    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 7;
    auto file = backend::ChunkedFile::BulkLoad(
        pool_.get(), scheme_.get(), schema::GenerateFactTuples(*schema_, gen));
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(
        pool_.get(), file_.get(), scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
    // All pages clean: the storm workload is read-only, so armed write
    // faults cannot be triggered by background eviction of load-time dirt.
    ASSERT_TRUE(pool_->FlushAll().ok());
  }

  void TearDown() override { InjectorReset::Reset(); }

  core::ChunkManagerOptions FastRetryOptions() const {
    core::ChunkManagerOptions opts;
    opts.retry.backoff_base_us = 20;
    opts.retry.backoff_max_us = 200;
    return opts;
  }

  backend::StarJoinQuery FullDomainQuery(const chunks::GroupBySpec& gb) const {
    backend::StarJoinQuery q;
    q.group_by = gb;
    for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
      q.selection[d] = {
          0, schema_->dimension(d).hierarchy.LevelCardinality(gb.levels[d]) -
                 1};
    }
    return q;
  }

  backend::StarJoinQuery CoarseQuery() const {
    return FullDomainQuery(chunks::GroupBySpec{{2, 1, 2, 1}, 4});
  }

  InMemoryDiskManager disk_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(RobustTierFixture, RetryRecoversFromTransientFaults) {
  core::ChunkCacheManager tier(engine_.get(), FastRetryOptions());
  const auto q = CoarseQuery();
  core::QueryStats stats;
  auto ref = tier.Execute(q, &stats);
  ASSERT_TRUE(ref.ok());
  tier.chunk_cache().Clear();

  // Two admission faults, default policy of three attempts: the query
  // must recover on the last attempt without surfacing any error.
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FaultSite::kScanAdmit, 1.0, StatusCode::kResourceExhausted,
         /*max_faults=*/2);
  core::QueryStats retry_stats;
  auto rows = tier.Execute(q, &retry_stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(RowsEqual(*rows, *ref));
  EXPECT_EQ(retry_stats.retries, 2u);
  EXPECT_EQ(fi.faults_injected(FaultSite::kScanAdmit), 2u);

  const auto snap = tier.StatsSnapshot();
  EXPECT_GE(snap.retries, 2u);
  EXPECT_GE(snap.faults_injected, 2u);
}

TEST_F(RobustTierFixture, DegradedModeAnswersFromFinerChunks) {
  const auto opts = FastRetryOptions();
  core::ChunkCacheManager tier(engine_.get(), opts);
  core::ChunkCacheManager reference(engine_.get(), opts);

  const auto coarse = CoarseQuery();
  core::QueryStats ref_stats;
  auto ref = reference.Execute(coarse, &ref_stats);
  ASSERT_TRUE(ref.ok());

  // Warm the cache with the full base-level domain — strictly finer than
  // the coarse query in every dimension, so the closure property applies.
  const auto fine = FullDomainQuery(chunks::GroupBySpec{{3, 2, 3, 2}, 4});
  core::QueryStats warm_stats;
  ASSERT_TRUE(tier.Execute(fine, &warm_stats).ok());
  EXPECT_GT(warm_stats.chunks_from_backend, 0u);

  // Kill the backend at both scan layers.
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FaultSite::kFactScan, 1.0);
  fi.Arm(FaultSite::kAggScan, 1.0);

  core::QueryStats stats;
  auto rows = tier.Execute(coarse, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(RowsNear(*rows, *ref));
  EXPECT_EQ(stats.chunks_from_backend, 0u);
  EXPECT_EQ(stats.degraded_answers, stats.chunks_needed);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(tier.StatsSnapshot().degraded_answers, stats.degraded_answers);

  // The degraded answer is exactly what the healthy in-cache-aggregation
  // extension produces from the same cached chunks — bit-for-bit: the
  // closure-property roll-up is one deterministic code path, degraded
  // mode only changes when it runs.
  auto agg_opts = opts;
  agg_opts.enable_in_cache_aggregation = true;
  core::ChunkCacheManager agg_tier(engine_.get(), agg_opts);
  fi.DisarmAll();
  core::QueryStats agg_warm;
  ASSERT_TRUE(agg_tier.Execute(fine, &agg_warm).ok());
  core::QueryStats agg_stats;
  auto agg_rows = agg_tier.Execute(coarse, &agg_stats);
  ASSERT_TRUE(agg_rows.ok());
  EXPECT_GT(agg_stats.chunks_from_aggregation, 0u);
  EXPECT_TRUE(RowsEqual(*rows, *agg_rows));
  fi.Arm(FaultSite::kFactScan, 1.0);
  fi.Arm(FaultSite::kAggScan, 1.0);

  // Without a cached closure set the same dead backend is a clean error.
  tier.chunk_cache().Clear();
  core::QueryStats cold;
  auto dead = tier.Execute(coarse, &cold);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kIoError);

  fi.DisarmAll();
  core::QueryStats healthy_stats;
  auto healthy = tier.Execute(coarse, &healthy_stats);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(RowsEqual(*healthy, *ref));
}

TEST_F(RobustTierFixture, ExpiredControlFailsFastWithoutPoisoningInflight) {
  core::ChunkCacheManager tier(engine_.get(), FastRetryOptions());
  const auto q = CoarseQuery();

  ExecControl expired;
  expired.deadline = Deadline(std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1));
  core::QueryStats stats;
  auto rows = tier.Execute(q, &stats, expired);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);

  CancellationSource source;
  source.Cancel();
  ExecControl cancelled;
  cancelled.cancel = source.token();
  auto c = tier.Execute(q, &stats, cancelled);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kCancelled);

  // Neither failure claimed an in-flight slot: the same query runs clean
  // immediately, with no dead owner to time out on.
  core::QueryStats ok_stats;
  auto ok = tier.Execute(q, &ok_stats);
  ASSERT_TRUE(ok.ok());
  EXPECT_GT(ok->size(), 0u);
}

// ---------------------- scheduler admission deadlines -----------------------

/// DiskManager decorator whose gate blocks ReadPage while closed; holds a
/// scheduler leader mid-scan so a second batch queues deterministically.
class GateDiskManager final : public DiskManager {
 public:
  explicit GateDiskManager(DiskManager* inner) : inner_(inner) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  int blocked_readers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }

  uint32_t CreateFile() override { return inner_->CreateFile(); }
  Result<PageId> AllocatePage(uint32_t file_id) override {
    return inner_->AllocatePage(file_id);
  }
  Status ReadPage(PageId id, Page* out) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!open_) {
        ++blocked_;
        cv_.wait(lock, [&] { return open_; });
        --blocked_;
      }
    }
    return inner_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const Page& page) override {
    return inner_->WritePage(id, page);
  }
  uint32_t FilePageCount(uint32_t file_id) const override {
    return inner_->FilePageCount(file_id);
  }

 private:
  DiskManager* inner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  int blocked_ = 0;
};

TEST(SchedulerDeadlineTest, QueuedLeaderShedsWhenDeadlineExpires) {
  InjectorReset guard;
  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme = chunks::ChunkingScheme::Build(schema.get(), copts, 6000);
  ASSERT_TRUE(scheme.ok());
  InMemoryDiskManager disk;
  GateDiskManager gate(&disk);
  // Tiny pool: reads cannot hide in the buffer pool, so the gate always
  // reaches the disk layer.
  BufferPool pool(&gate, 4);
  schema::FactGenOptions gen;
  gen.num_tuples = 6000;
  gen.seed = 7;
  auto file = backend::ChunkedFile::BulkLoad(
      &pool, &*scheme, schema::GenerateFactTuples(*schema, gen));
  ASSERT_TRUE(file.ok());
  backend::BackendEngine engine(&pool, &*file, &*scheme);
  ASSERT_TRUE(engine.BuildBitmapIndexes().ok());

  backend::ScanSchedulerOptions sopts;
  sopts.max_outstanding_scans = 1;
  backend::ScanScheduler sched(&engine, sopts);

  // An already-expired control is refused at admission without queueing.
  {
    ExecControl dead;
    dead.deadline = Deadline(std::chrono::steady_clock::now());
    WorkCounters work;
    auto res = sched.Compute(chunks::GroupBySpec{{2, 1, 1, 1}, 4}, {0}, {},
                             &work);
    ASSERT_TRUE(res.ok());  // sanity: the scan itself works when ungated
    auto refused = sched.Compute(chunks::GroupBySpec{{2, 1, 1, 1}, 4}, {0},
                                 {}, &work, nullptr, &dead);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);
  }

  // Drop every pooled page so the gated leader is guaranteed to reach the
  // disk layer (the sanity scan above may have pooled the hot pages).
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());

  gate.CloseGate();
  WorkCounters work_a;
  Result<std::vector<backend::ChunkData>> res_a =
      Status::Internal("not yet run");
  std::thread leader([&] {
    res_a = sched.Compute(chunks::GroupBySpec{{1, 1, 1, 1}, 4}, {0}, {},
                          &work_a);
  });
  bool reached_gate = false;
  for (int i = 0; i < 10000 && !reached_gate; ++i) {
    reached_gate = gate.blocked_readers() > 0;
    if (!reached_gate) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!reached_gate) {
    gate.OpenGate();
    leader.join();
    FAIL() << "leader never reached the gated disk";
  }

  // The second batch (different group-by, so it cannot merge) never gets
  // the single scan slot; its deadline sheds it instead of wedging.
  ExecControl ctrl;
  ctrl.deadline = Deadline::AfterMs(100);
  WorkCounters work_b;
  auto res_b = sched.Compute(chunks::GroupBySpec{{3, 1, 1, 1}, 4}, {0}, {},
                             &work_b, nullptr, &ctrl);
  ASSERT_FALSE(res_b.ok());
  EXPECT_EQ(res_b.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(sched.stats().deadline_sheds, 1u);

  gate.OpenGate();
  leader.join();
  ASSERT_TRUE(res_a.ok()) << res_a.status().ToString();
  ASSERT_EQ(res_a->size(), 1u);
}

// ------------------------------- fault storm --------------------------------

class FaultStorm : public RobustTierFixture {};

TEST_F(FaultStorm, SeededStormNeverCorruptsAndRecoversBitIdentical) {
  auto opts = FastRetryOptions();
  opts.num_workers = 2;
  opts.cache_shards = 4;
  core::ChunkCacheManager tier(engine_.get(), opts);

  std::vector<backend::StarJoinQuery> queries;
  queries.push_back(CoarseQuery());
  {
    auto q = CoarseQuery();
    q.selection[0] = {10, 39};
    q.selection[2] = {5, 19};
    queries.push_back(q);
  }
  queries.push_back(FullDomainQuery(chunks::GroupBySpec{{1, 1, 1, 1}, 4}));
  {
    auto q = FullDomainQuery(chunks::GroupBySpec{{3, 2, 3, 2}, 4});
    q.selection[0] = {0, 59};
    queries.push_back(q);
  }
  queries.push_back(FullDomainQuery(chunks::GroupBySpec{{2, 2, 1, 2}, 4}));

  // Healthy reference answers.
  std::vector<std::vector<backend::ResultRow>> ref;
  for (const auto& q : queries) {
    core::QueryStats s;
    auto rows = tier.Execute(q, &s);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ref.push_back(std::move(*rows));
  }

  int iters = 3;  // CI's fault_storm target raises this via the environment
  if (const char* env = std::getenv("CHUNKCACHE_STORM_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) iters = parsed;
  }
  constexpr int kThreads = 3;

  FaultInjector& fi = FaultInjector::Global();
  for (int iter = 0; iter < iters; ++iter) {
    fi.Seed(0xC0FFEE00ull + static_cast<uint64_t>(iter));
    fi.ResetCounters();
    fi.ArmAll(0.02);
    tier.chunk_cache().Clear();  // force backend traffic under fire

    std::mutex err_mu;
    std::vector<std::string> violations;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ExecControl ctrl;
          if ((t + static_cast<int>(qi)) % 3 == 0) {
            ctrl.deadline = Deadline::AfterMs(500);
          }
          core::QueryStats s;
          auto rows = tier.Execute(queries[qi], &s, ctrl);
          if (rows.ok()) {
            // A query that answers at all must answer exactly: injected
            // faults may fail queries but never corrupt results. (Sums
            // compare up to fp rounding — degraded answers re-associate.)
            if (!RowsNear(*rows, ref[qi])) {
              std::lock_guard<std::mutex> lock(err_mu);
              violations.push_back("wrong rows for query " +
                                   std::to_string(qi));
            }
          } else {
            const StatusCode code = rows.status().code();
            if (code != StatusCode::kIoError &&
                code != StatusCode::kCorruption &&
                code != StatusCode::kResourceExhausted &&
                code != StatusCode::kDeadlineExceeded) {
              std::lock_guard<std::mutex> lock(err_mu);
              violations.push_back("unexpected status: " +
                                   rows.status().ToString());
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_TRUE(violations.empty()) << violations.front();
    EXPECT_GT(fi.checks(), 0u);

    // Faults off: every answer must come back, bit-identical to healthy.
    fi.DisarmAll();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      core::QueryStats s;
      auto rows = tier.Execute(queries[qi], &s);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      EXPECT_TRUE(RowsNear(*rows, ref[qi]))
          << "query " << qi << " iteration " << iter;
    }
  }
}

}  // namespace
}  // namespace chunkcache
