// Failure-injection tests: a DiskManager decorator that starts failing
// after a programmable number of operations verifies that every layer
// (buffer pool, fact file, B+Tree, bitmap index, backend engine, middle
// tier) propagates Status instead of crashing or corrupting siblings, and
// that a recovered disk leaves readable state behind.

#include <gtest/gtest.h>

#include <memory>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "core/chunk_cache_manager.h"
#include "index/bitmap_index.h"
#include "index/btree.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fact_file.h"

namespace chunkcache {
namespace {

using storage::BufferPool;
using storage::DiskManager;
using storage::InMemoryDiskManager;
using storage::Page;
using storage::PageId;
using storage::Tuple;
using storage::TupleDesc;

/// Decorator that fails reads/writes once `budget` operations have been
/// consumed. budget < 0 disables injection.
class FaultyDiskManager final : public DiskManager {
 public:
  explicit FaultyDiskManager(DiskManager* inner) : inner_(inner) {}

  void SetBudget(int64_t ops) { budget_ = ops; }

  uint32_t CreateFile() override { return inner_->CreateFile(); }

  Result<PageId> AllocatePage(uint32_t file_id) override {
    if (Exhausted()) return Status::IoError("injected allocation fault");
    return inner_->AllocatePage(file_id);
  }
  Status ReadPage(PageId id, Page* out) override {
    if (Exhausted()) return Status::IoError("injected read fault");
    CountRead();
    return inner_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const Page& page) override {
    if (Exhausted()) return Status::IoError("injected write fault");
    CountWrite();
    return inner_->WritePage(id, page);
  }
  uint32_t FilePageCount(uint32_t file_id) const override {
    return inner_->FilePageCount(file_id);
  }

 private:
  bool Exhausted() {
    if (budget_ < 0) return false;
    if (budget_ == 0) return true;
    --budget_;
    return false;
  }

  DiskManager* inner_;
  int64_t budget_ = -1;
};

TEST(FaultTest, FactFileAppendSurfacesIoError) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 4);  // tiny pool forces eviction I/O
  auto file = storage::FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  Tuple t;
  t.keys[0] = 1;
  disk.SetBudget(3);
  Status last = Status::OK();
  for (int i = 0; i < 100000 && last.ok(); ++i) {
    last = file->Append(t).status();
  }
  EXPECT_EQ(last.code(), StatusCode::kIoError);
  // Disabling injection makes the file usable again.
  disk.SetBudget(-1);
  EXPECT_TRUE(file->Append(t).ok());
}

TEST(FaultTest, BTreeOperationsSurfaceIoErrorsAtEveryStage) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 8);
  auto tree = index::BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree->Insert(k, index::BTreePayload{k, 0}).ok());
  }
  // Fail during lookups at several budgets: must return IoError, never
  // crash or return wrong data.
  for (int64_t budget : {0, 1, 2, 3, 5}) {
    disk.SetBudget(budget);
    auto got = tree->Get(1234);
    if (got.ok()) {
      EXPECT_EQ(got->v1, 1234u);
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kIoError);
    }
  }
  disk.SetBudget(-1);
  auto got = tree->Get(1234);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->v1, 1234u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(FaultTest, BTreeInsertFaultsDoNotCorruptExistingData) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 8);
  auto tree = index::BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree->Insert(k * 2, index::BTreePayload{k, 0}).ok());
  }
  // Inject faults while inserting new keys; failures are allowed, but
  // previously committed keys must stay readable afterwards.
  disk.SetBudget(20);
  for (uint64_t k = 0; k < 500; ++k) {
    (void)tree->Insert(100000 + k, index::BTreePayload{k, 0});
  }
  disk.SetBudget(-1);
  for (uint64_t k = 0; k < 1000; k += 97) {
    auto got = tree->Get(k * 2);
    ASSERT_TRUE(got.ok()) << "key " << k * 2;
    EXPECT_EQ(got->v1, k);
  }
}

TEST(FaultTest, EngineAndMiddleTierPropagateBackendFaults) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 512);
  auto s = schema::BuildPaperSchema();
  ASSERT_TRUE(s.ok());
  auto schema = std::make_unique<schema::StarSchema>(std::move(s).value());
  chunks::ChunkingOptions copts;
  copts.range_fraction = 0.2;
  auto scheme = chunks::ChunkingScheme::Build(schema.get(), copts, 10000);
  ASSERT_TRUE(scheme.ok());
  schema::FactGenOptions gen;
  gen.num_tuples = 10000;
  auto file = backend::ChunkedFile::BulkLoad(
      &pool, &*scheme, schema::GenerateFactTuples(*schema, gen));
  ASSERT_TRUE(file.ok());
  backend::BackendEngine engine(&pool, &*file, &*scheme);
  ASSERT_TRUE(engine.BuildBitmapIndexes().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());

  core::ChunkCacheManager tier(&engine, core::ChunkManagerOptions{});
  backend::StarJoinQuery q;
  q.group_by = chunks::GroupBySpec{{2, 1, 2, 1}, 4};
  q.selection[0] = {0, 49};
  q.selection[1] = {0, 24};
  q.selection[2] = {0, 24};
  q.selection[3] = {0, 9};

  // A cold query with a zero I/O budget must fail cleanly...
  disk.SetBudget(0);
  core::QueryStats stats;
  auto rows = tier.Execute(q, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);

  // ...and succeed once the disk recovers, with correct contents.
  disk.SetBudget(-1);
  auto ok_rows = tier.Execute(q, &stats);
  ASSERT_TRUE(ok_rows.ok());
  EXPECT_GT(ok_rows->size(), 0u);

  // A later injected fault mid-stream must not poison subsequent queries.
  disk.SetBudget(5);
  backend::StarJoinQuery q2 = q;
  q2.selection[0] = {10, 39};
  (void)tier.Execute(q2, &stats);
  disk.SetBudget(-1);
  auto again = tier.Execute(q2, &stats);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->size(), 0u);
}

TEST(FaultTest, BitmapIndexReadFaultsPropagate) {
  InMemoryDiskManager real;
  FaultyDiskManager disk(&real);
  BufferPool pool(&disk, 64);
  auto file = storage::FactFile::Create(&pool, TupleDesc{2});
  ASSERT_TRUE(file.ok());
  for (uint32_t i = 0; i < 5000; ++i) {
    Tuple t;
    t.keys[0] = i % 10;
    ASSERT_TRUE(file->Append(t).ok());
  }
  auto idx = index::BitmapIndex::Build(&pool, &*file, 0, 10);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  disk.SetBudget(0);
  index::Bitmap b;
  EXPECT_EQ(idx->ReadBitmap(3, &b).code(), StatusCode::kIoError);
  disk.SetBudget(-1);
  ASSERT_TRUE(idx->ReadBitmap(3, &b).ok());
  EXPECT_EQ(b.CountSet(), 500u);
}

}  // namespace
}  // namespace chunkcache
