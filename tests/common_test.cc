#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/cost_model.h"
#include "common/crc32c.h"
#include "common/inflight_table.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/token_bucket.h"

namespace chunkcache {
namespace {

// --------------------------- Status / Result --------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("chunk 17");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "chunk 17");
  EXPECT_EQ(s.ToString(), "NotFound: chunk 17");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  CHUNKCACHE_ASSIGN_OR_RETURN(int h, Half(x));
  CHUNKCACHE_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseMacros(6, &out);  // 6/2=3 is odd at the second step
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --------------------------------- Random -----------------------------------

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, SeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformInBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.UniformInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random r(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

// --------------------------------- BitUtil ----------------------------------

TEST(BitUtilTest, WordsForBits) {
  EXPECT_EQ(bit_util::WordsForBits(0), 0u);
  EXPECT_EQ(bit_util::WordsForBits(1), 1u);
  EXPECT_EQ(bit_util::WordsForBits(64), 1u);
  EXPECT_EQ(bit_util::WordsForBits(65), 2u);
  EXPECT_EQ(bit_util::WordsForBits(128), 2u);
}

TEST(BitUtilTest, SetGetClear) {
  uint64_t words[2] = {0, 0};
  bit_util::SetBit(words, 0);
  bit_util::SetBit(words, 63);
  bit_util::SetBit(words, 64);
  EXPECT_TRUE(bit_util::GetBit(words, 0));
  EXPECT_TRUE(bit_util::GetBit(words, 63));
  EXPECT_TRUE(bit_util::GetBit(words, 64));
  EXPECT_FALSE(bit_util::GetBit(words, 1));
  bit_util::ClearBit(words, 63);
  EXPECT_FALSE(bit_util::GetBit(words, 63));
  EXPECT_TRUE(bit_util::GetBit(words, 0));
}

TEST(BitUtilTest, RoundUp) {
  EXPECT_EQ(bit_util::RoundUp(0, 8), 0u);
  EXPECT_EQ(bit_util::RoundUp(1, 8), 8u);
  EXPECT_EQ(bit_util::RoundUp(8, 8), 8u);
  EXPECT_EQ(bit_util::RoundUp(9, 8), 16u);
}

// -------------------------------- CostModel ---------------------------------

TEST(CostModelTest, LinearCombination) {
  CostModel m;
  m.page_read_ms = 10;
  m.page_write_ms = 20;
  m.tuple_cpu_ms = 0.5;
  EXPECT_DOUBLE_EQ(m.Cost(3, 2, 4), 30 + 40 + 2.0);
}

// ------------------------------ ThreadPool ---------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  WaitGroup wg;
  constexpr uint64_t kTasks = 200;
  wg.Add(kTasks);
  for (uint64_t i = 0; i < kTasks; ++i) {
    pool.Submit([&sum, &wg, i] {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
  ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_submitted, kTasks);
  EXPECT_EQ(s.tasks_run, kTasks);
  EXPECT_EQ(s.steal_queue_depth, 0u);  // work-stealing-free by construction
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<uint32_t> ran{0};
  {
    ThreadPool pool(2);
    for (uint32_t i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool must run everything already submitted
  EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPoolTest, InWorkerThreadDistinguishesCallers) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(1);
  bool inside = false;
  WaitGroup wg;
  wg.Add(1);
  pool.Submit([&inside, &wg] {
    inside = ThreadPool::InWorkerThread();
    wg.Done();
  });
  wg.Wait();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(1);  // one worker: nested blocking would deadlock
  std::atomic<uint32_t> ran{0};
  WaitGroup wg;
  wg.Add(2);
  pool.Submit([&] {
    pool.Submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
    ran.fetch_add(1, std::memory_order_relaxed);
    wg.Done();
  });
  wg.Wait();
  EXPECT_EQ(ran.load(), 2u);
}

TEST(WaitGroupTest, IsReusableAcrossRounds) {
  WaitGroup wg;
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    std::atomic<uint32_t> ran{0};
    wg.Add(8);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&] {
        ran.fetch_add(1, std::memory_order_relaxed);
        wg.Done();
      });
    }
    wg.Wait();
    EXPECT_EQ(ran.load(), 8u);
    EXPECT_EQ(wg.pending(), 0u);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 1000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  ParallelFor(&pool, kN, [&hits](uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<uint64_t> order;
  ParallelFor(nullptr, 5, [&order](uint64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, FallsBackToSerialInsideWorker) {
  ThreadPool pool(2);
  WaitGroup wg;
  std::atomic<uint64_t> total{0};
  wg.Add(1);
  pool.Submit([&] {
    // Nested fan-out from a worker must not block on the pool.
    ParallelFor(&pool, 100, [&total](uint64_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
    wg.Done();
  });
  wg.Wait();
  EXPECT_EQ(total.load(), 99ull * 100 / 2);
}

TEST(CostModelTest, WorkCountersCompose) {
  WorkCounters a{10, 5, 100};
  WorkCounters b{1, 2, 3};
  a += b;
  EXPECT_EQ(a.pages_read, 11u);
  EXPECT_EQ(a.pages_written, 7u);
  EXPECT_EQ(a.tuples_processed, 103u);
  WorkCounters d = a - b;
  EXPECT_EQ(d.pages_read, 10u);
  EXPECT_EQ(d.pages_written, 5u);
  EXPECT_EQ(d.tuples_processed, 100u);
}

// --------------------- deadlines, cancellation, retry -----------------------

TEST(StatusTest, DeadlineAndCancelledFactories) {
  Status d = Status::DeadlineExceeded("late");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: late");
  Status c = Status::Cancelled("stop");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: stop");
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::steady_clock::duration::max());
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline past(std::chrono::steady_clock::now() -
                std::chrono::milliseconds(1));
  EXPECT_FALSE(past.infinite());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), std::chrono::steady_clock::duration::zero());
  EXPECT_FALSE(Deadline::AfterMs(60000).expired());
  EXPECT_GT(Deadline::AfterUs(60000000).remaining(),
            std::chrono::steady_clock::duration::zero());
}

TEST(CancellationTest, TokenObservesSource) {
  CancellationSource src;
  CancellationToken tok = src.token();
  EXPECT_FALSE(tok.cancelled());
  src.Cancel();
  EXPECT_TRUE(tok.cancelled());
  EXPECT_TRUE(src.cancelled());
  // A default token can never be cancelled: "no cancellation" case.
  EXPECT_FALSE(CancellationToken().cancelled());
}

TEST(ExecControlTest, CancelWinsOverExpiredDeadline) {
  ExecControl ctrl;
  EXPECT_TRUE(ctrl.Check().ok());
  ctrl.deadline =
      Deadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_EQ(ctrl.Check().code(), StatusCode::kDeadlineExceeded);
  CancellationSource src;
  src.Cancel();
  ctrl.cancel = src.token();
  EXPECT_EQ(ctrl.Check().code(), StatusCode::kCancelled);
}

TEST(RetryTest, FirstAttemptSuccessDoesNotRetry) {
  uint64_t retries = 0;
  int calls = 0;
  Status s = RunWithRetry(RetryPolicy{}, ExecControl{}, &retries, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, RetryableFailureIsReattemptedOnResultPath) {
  RetryPolicy policy;
  policy.backoff_base_us = 1;
  policy.backoff_max_us = 10;
  uint64_t retries = 0;
  int calls = 0;
  Result<int> r =
      RunWithRetry(policy, ExecControl{}, &retries, [&]() -> Result<int> {
        if (++calls < 3) return Status::IoError("flaky");
        return 42;
      });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, ExhaustedAttemptsReturnLastError) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base_us = 1;
  policy.backoff_max_us = 5;
  uint64_t retries = 0;
  int calls = 0;
  Status s = RunWithRetry(policy, ExecControl{}, &retries, [&] {
    ++calls;
    return Status::IoError("still down");
  });
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries, 3u);
}

TEST(RetryTest, NonRetryableFailureReturnsImmediately) {
  uint64_t retries = 0;
  int calls = 0;
  Status s = RunWithRetry(RetryPolicy{}, ExecControl{}, &retries, [&] {
    ++calls;
    return Status::InvalidArgument("bad plan");
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, CancellationInterruptsTheLoop) {
  CancellationSource src;
  ExecControl ctrl;
  ctrl.cancel = src.token();
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base_us = 1;
  int calls = 0;
  Status s = RunWithRetry(policy, ctrl, nullptr, [&] {
    ++calls;
    src.Cancel();  // cancel arrives while the attempt is in flight
    return Status::IoError("flaky");
  });
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, DeadlineBoundsRetrying) {
  ExecControl ctrl;
  ctrl.deadline = Deadline::AfterMs(5);
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.backoff_base_us = 2000;
  policy.backoff_max_us = 2000;
  policy.jitter = 0;
  int calls = 0;
  Status s = RunWithRetry(policy, ctrl, nullptr, [&] {
    ++calls;
    return Status::IoError("down");
  });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(calls, 1);
  EXPECT_LT(calls, 1000);
}

TEST(InflightWaitUntilTest, TimesOutThenStillReceivesAfterPublish) {
  InflightTable<int, int> table;
  auto owner = table.Acquire(5);
  ASSERT_TRUE(owner.owner);
  auto waiter = table.Acquire(5);
  ASSERT_FALSE(waiter.owner);

  auto timed_out = waiter.slot->WaitUntil(Deadline::AfterMs(5));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  // The timeout gave up the wait, not the slot: publish still delivers.
  table.Publish(5, owner.slot, 11);
  auto got = waiter.slot->WaitUntil(Deadline::AfterMs(1000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 11);
  auto inf = owner.slot->WaitUntil(Deadline::Infinite());
  ASSERT_TRUE(inf.ok());
  EXPECT_EQ(*inf, 11);
}

// -------------------------------- CRC32C ------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // "123456789" -> 0xE3069283 (the classic check value).
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(Crc32cSoftware(digits, 9), 0xE3069283u);
}

TEST(Crc32cTest, HardwareMatchesSoftwareAllLengthsAndOffsets) {
  // The hardware path has three regimes (byte-at-a-time head alignment,
  // the 8-byte loop, and 4/2/1-byte tail steps); lengths 0..32 at start
  // offsets 0..8 cover every head/tail combination against the table
  // implementation.
  Random rng(7);
  std::vector<uint8_t> buf(64);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Uniform(256));
  for (size_t off = 0; off <= 8; ++off) {
    for (size_t len = 0; len <= 32; ++len) {
      const uint32_t sw = Crc32cSoftware(buf.data() + off, len);
      const uint32_t hw = Crc32c(buf.data() + off, len);
      EXPECT_EQ(hw, sw) << "off=" << off << " len=" << len;
    }
  }
}

TEST(Crc32cTest, SeedChainingMatchesOneShot) {
  Random rng(11);
  std::vector<uint8_t> buf(47);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Uniform(256));
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); ++split) {
    const uint32_t part = Crc32c(buf.data(), split);
    const uint32_t chained =
        Crc32c(buf.data() + split, buf.size() - split, part);
    EXPECT_EQ(chained, whole) << "split=" << split;
    const uint32_t sw_part = Crc32cSoftware(buf.data(), split);
    const uint32_t sw_chained =
        Crc32cSoftware(buf.data() + split, buf.size() - split, sw_part);
    EXPECT_EQ(sw_chained, whole) << "split=" << split;
  }
}

// ------------------------------ SIMD dispatch -------------------------------

TEST(SimdTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd::IsaLevelName(simd::IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::IsaLevelName(simd::IsaLevel::kAvx2), "avx2");
}

TEST(SimdTest, ActiveLevelNeverExceedsDetected) {
  EXPECT_LE(simd::ActiveLevel(), simd::DetectedLevel());
  // Requesting more than the CPU supports clamps to the detected level.
  simd::ScopedLevel pin(simd::IsaLevel::kAvx2);
  EXPECT_LE(simd::ActiveLevel(), simd::DetectedLevel());
}

TEST(SimdTest, ScopedLevelRestores) {
  const simd::IsaLevel before = simd::ActiveLevel();
  {
    simd::ScopedLevel pin(simd::IsaLevel::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), simd::IsaLevel::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
}

TEST(SimdTest, WordKernelsMatchScalarAtEveryLength) {
  Random rng(23);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{8}, size_t{9}, size_t{31}, size_t{64},
                   size_t{65}}) {
    std::vector<uint64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Next64();
      b[i] = rng.Next64();
    }
    std::vector<uint64_t> and_ref = a, or_ref = a;
    uint64_t pop_ref = 0;
    for (size_t i = 0; i < n; ++i) {
      and_ref[i] &= b[i];
      or_ref[i] |= b[i];
      pop_ref += static_cast<uint64_t>(std::popcount(a[i]));
    }
    for (simd::IsaLevel level :
         {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2}) {
      simd::ScopedLevel pin(level);
      std::vector<uint64_t> and_got = a, or_got = a;
      simd::AndWords(and_got.data(), b.data(), n);
      simd::OrWords(or_got.data(), b.data(), n);
      EXPECT_EQ(and_got, and_ref) << "n=" << n;
      EXPECT_EQ(or_got, or_ref) << "n=" << n;
      EXPECT_EQ(simd::PopcountWords(a.data(), n), pop_ref) << "n=" << n;
    }
  }
}

// ------------------------------ TokenBucket ---------------------------------

TEST(TokenBucketTest, StartsFullAndDrainsToEmpty) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));  // burst exhausted, no time passed
}

TEST(TokenBucketTest, RefillsAtRateUpToBurst) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
  // 10 tokens/s: one full token exists 100 ms later, not at 50 ms.
  EXPECT_FALSE(bucket.TryAcquire(50'000'000));
  EXPECT_TRUE(bucket.TryAcquire(100'000'000));
  EXPECT_FALSE(bucket.TryAcquire(100'000'000));
  // A long idle period banks at most `burst` tokens.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(3'600'000'000'000ull), 3.0);
}

TEST(TokenBucketTest, BackwardsTimeMintsNothing) {
  TokenBucket bucket(/*rate_per_sec=*/1.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.TryAcquire(5'000'000'000ull));
  // An earlier timestamp (admission-mutex reordering) must not refill.
  EXPECT_FALSE(bucket.TryAcquire(1'000'000'000ull));
  EXPECT_FALSE(bucket.TryAcquire(5'500'000'000ull));
  EXPECT_TRUE(bucket.TryAcquire(6'000'000'000ull));
}

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(/*rate_per_sec=*/0.0, /*burst=*/1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
}

TEST(TokenBucketTest, FractionalCostAndMinimumBurst) {
  TokenBucket bucket(/*rate_per_sec=*/5.0, /*burst=*/0.0);  // clamped to 1
  EXPECT_DOUBLE_EQ(bucket.burst(), 1.0);
  EXPECT_TRUE(bucket.TryAcquire(0, /*cost=*/0.5));
  EXPECT_TRUE(bucket.TryAcquire(0, /*cost=*/0.5));
  EXPECT_FALSE(bucket.TryAcquire(0, /*cost=*/0.5));
}

TEST(TokenBucketTest, DeterministicDecisionSequence) {
  // The admission story leans on exact reproducibility: two buckets fed the
  // same (now_ns, cost) schedule decide identically, call for call.
  TokenBucket a(7.0, 2.0), b(7.0, 2.0);
  Random rng(99);
  uint64_t now = 0;
  for (int i = 0; i < 500; ++i) {
    now += rng.Uniform(300'000'000);
    const double cost = 0.25 * static_cast<double>(1 + rng.Uniform(4));
    EXPECT_EQ(a.TryAcquire(now, cost), b.TryAcquire(now, cost)) << i;
  }
}

}  // namespace
}  // namespace chunkcache
