// Cross-subsystem statistics invariants, checked against the metrics
// registry after real workloads: every chunk a successful query requested
// is accounted for by exactly one provenance counter, the cache can never
// evict more than it inserted, and every scheduler admission reaches
// exactly one terminal outcome. The StatsInvariantStorm suite re-checks
// all of it while the fault injector is firing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/chunked_file.h"
#include "backend/engine.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "core/chunk_cache_manager.h"
#include "schema/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace chunkcache::core {
namespace {

using backend::StarJoinQuery;
using chunks::GroupBySpec;

struct InjectorReset {
  static void Reset() {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }
};

/// Asserts every cross-subsystem invariant on a quiesced tier (no query
/// in flight, prefetch drained). Call sites pass the expected number of
/// Execute calls and how many of them succeeded.
void ExpectInvariants(ChunkCacheManager& tier, uint64_t executions,
                      uint64_t successes) {
  const cache::ChunkCacheStats s = tier.StatsSnapshot();
  const MetricsRegistry::Snapshot m = tier.metrics().TakeSnapshot();

  // Query accounting: every Execute ended as exactly one of ok / error.
  EXPECT_EQ(m.counter("query.executions"), executions);
  EXPECT_EQ(m.counter("query.errors"), executions - successes);

  // Chunk provenance: each chunk a successful query needed came from
  // exactly one source — cache hit, middle-tier aggregation, backend
  // scan, a coalesced wait on another query, or a degraded answer.
  EXPECT_EQ(m.counter("chunks.requested"),
            m.counter("chunks.from_cache") +
                m.counter("chunks.from_aggregation") +
                m.counter("chunks.from_backend") +
                m.counter("chunks.coalesced_waits") +
                m.counter("chunks.degraded_answers"));

  // Cache lifecycle: nothing evicts that was not inserted, and what is
  // resident now is part of the unevicted remainder (Clear() may retire
  // entries without counting an eviction, hence <=).
  EXPECT_LE(m.counter("cache.evictions"), m.counter("cache.insertions"));
  EXPECT_LE(m.counter("cache.evictions") + tier.chunk_cache().num_chunks(),
            m.counter("cache.insertions"));
  EXPECT_LE(s.hits, s.lookups);

  // Shard counters fold exactly into the totals.
  uint64_t shard_lookups = 0;
  uint64_t shard_hits = 0;
  for (const auto& sh : s.shards) {
    EXPECT_LE(sh.hits, sh.lookups);
    shard_lookups += sh.lookups;
    shard_hits += sh.hits;
  }
  EXPECT_EQ(shard_lookups, s.lookups);
  EXPECT_EQ(shard_hits, s.hits);

  // Scheduler: once quiesced, every admitted miss batch reached exactly
  // one terminal outcome. (All zero when coalescing is off.)
  EXPECT_EQ(m.counter("scheduler.requests"),
            m.counter("scheduler.completions") +
                m.counter("scheduler.deadline_sheds") +
                m.counter("scheduler.request_errors"));
}

class StatsInvariantFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kTuples = 10000;

  void SetUp() override {
    InjectorReset::Reset();
    auto s = schema::BuildPaperSchema();
    ASSERT_TRUE(s.ok());
    schema_ = std::make_unique<schema::StarSchema>(std::move(s).value());
    chunks::ChunkingOptions copts;
    copts.range_fraction = 0.2;
    auto scheme = chunks::ChunkingScheme::Build(schema_.get(), copts, kTuples);
    ASSERT_TRUE(scheme.ok());
    scheme_ =
        std::make_unique<chunks::ChunkingScheme>(std::move(scheme).value());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 2048);
    schema::FactGenOptions gen;
    gen.num_tuples = kTuples;
    gen.seed = 7;
    auto file = backend::ChunkedFile::BulkLoad(
        pool_.get(), scheme_.get(), schema::GenerateFactTuples(*schema_, gen));
    ASSERT_TRUE(file.ok());
    file_ = std::make_unique<backend::ChunkedFile>(std::move(file).value());
    engine_ = std::make_unique<backend::BackendEngine>(
        pool_.get(), file_.get(), scheme_.get());
    ASSERT_TRUE(engine_->BuildBitmapIndexes().ok());
    ASSERT_TRUE(pool_->FlushAll().ok());
  }

  void TearDown() override { InjectorReset::Reset(); }

  StarJoinQuery FullDomainQuery(const GroupBySpec& gb) const {
    StarJoinQuery q;
    q.group_by = gb;
    for (uint32_t d = 0; d < schema_->num_dims(); ++d) {
      q.selection[d] = {
          0,
          schema_->dimension(d).hierarchy.LevelCardinality(gb.levels[d]) - 1};
    }
    return q;
  }

  /// Mixed canned workload: repeats (hits), subsets, a finer and a
  /// coarser group-by (aggregation sources/targets), misaligned ranges.
  std::vector<StarJoinQuery> MixedWorkload() const {
    std::vector<StarJoinQuery> queries;
    auto q1 = FullDomainQuery(GroupBySpec{{2, 1, 2, 1}, 4});
    queries.push_back(q1);
    queries.push_back(q1);  // full-hit repeat
    {
      auto q = q1;
      q.selection[0] = {7, 33};
      q.selection[2] = {5, 19};
      queries.push_back(q);
    }
    queries.push_back(FullDomainQuery(GroupBySpec{{3, 2, 3, 2}, 4}));
    queries.push_back(FullDomainQuery(GroupBySpec{{1, 1, 1, 1}, 4}));
    queries.push_back(FullDomainQuery(GroupBySpec{{2, 2, 1, 2}, 4}));
    return queries;
  }

  storage::InMemoryDiskManager disk_;
  std::unique_ptr<schema::StarSchema> schema_;
  std::unique_ptr<chunks::ChunkingScheme> scheme_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<backend::ChunkedFile> file_;
  std::unique_ptr<backend::BackendEngine> engine_;
};

TEST_F(StatsInvariantFixture, ProvenanceAccountsEveryChunkServed) {
  ChunkManagerOptions opts;
  opts.enable_in_cache_aggregation = true;
  ChunkCacheManager tier(engine_.get(), opts);

  uint64_t want_requested = 0;
  uint64_t want_cache = 0;
  uint64_t want_agg = 0;
  uint64_t want_backend = 0;
  const auto queries = MixedWorkload();
  for (const StarJoinQuery& q : queries) {
    QueryStats s;
    auto rows = tier.Execute(q, &s);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    want_requested += s.chunks_needed;
    want_cache += s.chunks_from_cache;
    want_agg += s.chunks_from_aggregation;
    want_backend += s.chunks_from_backend;
  }
  // The registry totals are exactly the per-query stats, summed.
  const MetricsRegistry::Snapshot m = tier.metrics().TakeSnapshot();
  EXPECT_EQ(m.counter("chunks.requested"), want_requested);
  EXPECT_EQ(m.counter("chunks.from_cache"), want_cache);
  EXPECT_EQ(m.counter("chunks.from_aggregation"), want_agg);
  EXPECT_EQ(m.counter("chunks.from_backend"), want_backend);
  EXPECT_GT(want_cache, 0u);      // the repeat hit
  EXPECT_GT(want_agg, 0u);        // the coarser query rolled up
  ExpectInvariants(tier, queries.size(), queries.size());
}

TEST_F(StatsInvariantFixture, EvictionPressureKeepsLifecycleConsistent) {
  ChunkManagerOptions opts;
  opts.cache_bytes = 96 << 10;  // tiny: force evictions
  opts.cache_shards = 2;
  ChunkCacheManager tier(engine_.get(), opts);
  const auto queries = MixedWorkload();
  for (int round = 0; round < 2; ++round) {
    for (const StarJoinQuery& q : queries) {
      QueryStats s;
      ASSERT_TRUE(tier.Execute(q, &s).ok());
    }
  }
  const MetricsRegistry::Snapshot m = tier.metrics().TakeSnapshot();
  EXPECT_GT(m.counter("cache.evictions"), 0u);
  ExpectInvariants(tier, 2 * queries.size(), 2 * queries.size());
}

TEST_F(StatsInvariantFixture, SchedulerAdmissionsReachOneTerminalOutcome) {
  ChunkManagerOptions opts;
  opts.num_workers = 3;
  opts.cache_shards = 4;
  opts.enable_miss_coalescing = true;
  ChunkCacheManager tier(engine_.get(), opts);

  const auto queries = MixedWorkload();
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<uint64_t> ok_count{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (const StarJoinQuery& q : queries) {
        QueryStats s;
        if (tier.Execute(q, &s).ok()) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  tier.DrainPrefetch();
  ASSERT_EQ(ok_count.load(), kThreads * queries.size());
  const MetricsRegistry::Snapshot m = tier.metrics().TakeSnapshot();
  EXPECT_GT(m.counter("scheduler.requests"), 0u);
  EXPECT_EQ(m.counter("scheduler.deadline_sheds"), 0u);
  EXPECT_EQ(m.counter("scheduler.request_errors"), 0u);
  ExpectInvariants(tier, kThreads * queries.size(), ok_count.load());
}

TEST_F(StatsInvariantFixture, StatsSnapshotAgreesWithRegistry) {
  // The torn-read satellite: ChunkCacheStats is assembled from one
  // registry snapshot, so its fields must agree exactly with the
  // registry's own counters — there is no second bookkeeping to drift.
  ChunkManagerOptions opts;
  opts.num_workers = 2;
  opts.enable_in_cache_aggregation = true;
  ChunkCacheManager tier(engine_.get(), opts);
  for (const StarJoinQuery& q : MixedWorkload()) {
    QueryStats s;
    ASSERT_TRUE(tier.Execute(q, &s).ok());
  }
  tier.DrainPrefetch();
  const cache::ChunkCacheStats s = tier.StatsSnapshot();
  const MetricsRegistry::Snapshot m = tier.metrics().TakeSnapshot();
  EXPECT_EQ(s.lookups, m.counter("cache.shard0.lookups") +
                           m.counter("cache.shard1.lookups") +
                           m.counter("cache.shard2.lookups") +
                           m.counter("cache.shard3.lookups"));
  EXPECT_EQ(s.insertions, m.counter("cache.insertions"));
  EXPECT_EQ(s.evictions, m.counter("cache.evictions"));
  EXPECT_EQ(s.rejected, m.counter("cache.rejected"));
  EXPECT_EQ(s.coalesced_waits, m.counter("chunks.coalesced_waits"));
  EXPECT_EQ(s.degraded_answers, m.counter("chunks.degraded_answers"));
  EXPECT_EQ(s.retries, m.counter("backend.retries"));
  EXPECT_EQ(s.deadline_expired, m.counter("query.deadline_expired"));
  EXPECT_EQ(s.shared_scan_requests, m.counter("scheduler.requests"));
  EXPECT_EQ(s.shared_scan_batches, m.counter("scheduler.batches"));
  EXPECT_EQ(s.scan_deadline_sheds, m.counter("scheduler.deadline_sheds"));
  EXPECT_EQ(s.prefetch_dropped_inflight,
            m.counter("prefetch.dropped_inflight"));
  EXPECT_EQ(s.async_prefetched_chunks, m.counter("prefetch.async_chunks"));
  EXPECT_EQ(s.faults_injected,
            FaultInjector::Global().faults_injected());
  EXPECT_EQ(s.contention_ns,
            m.histograms.at("cache.lock_wait_ns").sum);
  // Latency histogram saw exactly one record per Execute.
  EXPECT_EQ(m.histograms.at("query.latency_ns").count,
            m.counter("query.executions"));
}

// ---------------------------------------------------------------------------
// Storm suite: the same invariants must hold while the fault injector is
// killing scans, with concurrent clients and deadlines. Run with more
// iterations by the stats_invariant_storm ctest target via
// CHUNKCACHE_STORM_ITERS.

using StatsInvariantStorm = StatsInvariantFixture;

TEST_F(StatsInvariantStorm, InvariantsSurviveSeededFaultStorm) {
  ChunkManagerOptions opts;
  opts.retry.backoff_base_us = 20;
  opts.retry.backoff_max_us = 200;
  opts.num_workers = 3;
  opts.cache_shards = 4;
  ChunkCacheManager tier(engine_.get(), opts);
  const auto queries = MixedWorkload();

  int iters = 3;
  if (const char* env = std::getenv("CHUNKCACHE_STORM_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) iters = parsed;
  }
  constexpr int kThreads = 3;

  uint64_t executions = 0;
  std::atomic<uint64_t> ok_count{0};
  FaultInjector& fi = FaultInjector::Global();
  for (int iter = 0; iter < iters; ++iter) {
    fi.Seed(0x57A75000ull + static_cast<uint64_t>(iter));
    fi.ArmAll(0.02);
    tier.chunk_cache().Clear();  // force backend traffic under fire

    std::mutex err_mu;
    std::vector<std::string> violations;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ExecControl ctrl;
          if ((t + static_cast<int>(qi)) % 3 == 0) {
            ctrl.deadline = Deadline::AfterMs(500);
          }
          QueryStats s;
          auto rows = tier.Execute(queries[qi], &s, ctrl);
          if (rows.ok()) {
            ok_count.fetch_add(1);
          } else {
            const StatusCode code = rows.status().code();
            if (code != StatusCode::kIoError &&
                code != StatusCode::kCorruption &&
                code != StatusCode::kResourceExhausted &&
                code != StatusCode::kDeadlineExceeded) {
              std::lock_guard<std::mutex> lock(err_mu);
              violations.push_back("unexpected status: " +
                                   rows.status().ToString());
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_TRUE(violations.empty()) << violations.front();
    executions += static_cast<uint64_t>(kThreads) * queries.size();

    // Quiesce, then: the invariants hold mid-storm, error paths included.
    fi.DisarmAll();
    tier.DrainPrefetch();
    ExpectInvariants(tier, executions, ok_count.load());
  }
  EXPECT_GT(FaultInjector::Global().faults_injected(), 0u);
}

}  // namespace
}  // namespace chunkcache::core
